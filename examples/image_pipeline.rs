//! Image pipeline: decode the test sequences with an approximated IDCT and
//! watch quality degrade gracefully — the deterministic alternative to
//! aging-induced timing errors.
//!
//! Run with `cargo run --release --example image_pipeline`.
//! Writes reconstructed frames to `out/example_*.pgm`.

use aix::dct::{
    decode_image, encode_image, DatapathPrecision, FixedPointTransform, OPERAND_SHIFT,
};
use aix::image::{psnr, write_pgm, Sequence};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all("out")?;
    let exact = FixedPointTransform::exact();

    println!(
        "datapath guard bits: {OPERAND_SHIFT} (the first {OPERAND_SHIFT} truncated LSBs are free)\n"
    );
    println!(
        "{:<12} PSNR [dB] at multiplier truncation of 0 / 8 / 10 / 12 / 14 bits",
        "sequence"
    );
    for sequence in Sequence::ALL {
        let frame = sequence.frame_qcif(0);
        let encoded = encode_image(&frame, &exact);
        let mut row = format!("{:<12}", sequence.label());
        for truncation in [0u32, 8, 10, 12, 14] {
            let decoder =
                FixedPointTransform::new(DatapathPrecision::new(truncation, 0));
            let decoded = decode_image(&encoded, &decoder);
            row.push_str(&format!(" {:>6.1}", psnr(&frame, &decoded)));
            if truncation == 12 {
                let path = format!("out/example_{}_t12.pgm", sequence.label());
                write_pgm(std::fs::File::create(&path)?, &decoded)?;
            }
        }
        println!("{row}");
    }
    println!("\nreconstructions at 12-bit truncation written to out/example_*_t12.pgm");
    println!("30 dB is the commonly accepted threshold for acceptable image quality.");
    Ok(())
}
