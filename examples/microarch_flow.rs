//! The complete Fig. 6 flow on a small microarchitecture: build a library
//! of aging-induced approximations, compute per-block slacks under aging,
//! select precisions, validate, and compare against the aging-aware
//! synthesis baseline.
//!
//! Run with `cargo run --release --example microarch_flow`.

use aix::aging::{AgingModel, AgingScenario, Lifetime};
use aix::cells::Library;
use aix::core::{
    apply_aging_approximations, characterize_component, compare_against_aging_aware,
    ApproxLibrary, CharacterizationConfig, ComponentKind, MicroarchDesign,
};
use aix::synth::Effort;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cells = Arc::new(Library::nangate45_like());
    let effort = Effort::Medium;
    let model = AgingModel::calibrated();
    let scenario = AgingScenario::worst_case(Lifetime::YEARS_10);

    // 1. A small video-filter-like design: one multiplier, one adder.
    let mut design = MicroarchDesign::new("filter", effort);
    design.add_block(&cells, "coeff-multiplier", ComponentKind::Multiplier, 16)?;
    design.add_block(&cells, "accumulator", ComponentKind::Adder, 16)?;
    let constraint = design.timing_constraint()?;
    println!("design `{}`: timing constraint {constraint}", design.name());

    // 2. Pre-characterize the components (one-time effort, reusable).
    let mut library = ApproxLibrary::new();
    for kind in [ComponentKind::Multiplier, ComponentKind::Adder] {
        let config = CharacterizationConfig {
            kind,
            width: 16,
            precisions: (6..=16).rev().collect(),
            scenarios: vec![AgingScenario::Fresh, scenario],
            effort,
        };
        library.insert(characterize_component(&cells, &config)?);
    }
    println!("approximation library built ({} components)\n", library.len());

    // 3. The Fig. 6 flow: slack -> precision per block.
    let plan = apply_aging_approximations(&design, &library, &model, scenario)?;
    for block in &plan.blocks {
        println!(
            "block {:<17} aged {:>6.1} ps, rel. slack {:>+6.1}% -> precision {}b (-{} bits)",
            block.name,
            block.aged_delay_ps,
            block.relative_slack * 100.0,
            block.precision,
            block.truncated_bits()
        );
    }

    // 4. Validate: re-synthesize at the chosen precisions, aged STA.
    let validation = plan.validate(&cells, effort, &model)?;
    println!(
        "\nvalidation: timing under {scenario} {}",
        if validation.timing_met { "MET" } else { "VIOLATED" }
    );

    // 5. Compare with the aging-aware synthesis baseline (Fig. 8c).
    let savings = compare_against_aging_aware(&design, &plan, &cells, &model, scenario, 200)?;
    println!(
        "vs aging-aware synthesis: {:+.1}% frequency, {:+.1}% area, {:+.1}% leakage, {:+.1}% energy",
        savings.frequency_gain() * 100.0,
        savings.area_saving() * 100.0,
        savings.leakage_saving() * 100.0,
        savings.energy_saving() * 100.0
    );
    Ok(())
}
