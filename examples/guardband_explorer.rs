//! Guardband explorer: sweep lifetime and stress and report, for each RTL
//! component, the timing guardband aging would require and the precision
//! reduction that removes it.
//!
//! Run with `cargo run --release --example guardband_explorer`.

use aix::aging::{AgingScenario, Lifetime};
use aix::cells::Library;
use aix::core::{characterize_component, CharacterizationConfig, ComponentKind};
use aix::synth::Effort;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cells = Arc::new(Library::nangate45_like());
    let width = 16;
    println!("{width}-bit components, medium synthesis effort\n");
    for kind in ComponentKind::ALL {
        let config = CharacterizationConfig {
            kind,
            width,
            precisions: (width / 2..=width).rev().collect(),
            scenarios: lifetimes_and_stresses(),
            effort: Effort::Medium,
        };
        let characterization = characterize_component(&cells, &config)?;
        let constraint = characterization.fresh_full_delay_ps();
        println!("{kind}-{width}  (fresh critical path {constraint:.0} ps)");
        println!("  {:<14} {:>14} {:>22}", "scenario", "guardband", "Eq. 2 precision");
        for scenario in lifetimes_and_stresses().into_iter().skip(1) {
            let guardband = characterization
                .guardband_ps(width, scenario)
                .expect("characterized");
            let precision = characterization.required_precision(scenario);
            println!(
                "  {:<14} {:>10.1} ps {:>22}",
                scenario.to_string(),
                guardband,
                match precision {
                    Some(p) => format!("{p}b (-{} bits)", width - p),
                    None => "not compensable".into(),
                }
            );
        }
        println!();
    }
    println!(
        "reading: the guardband grows with lifetime and stress; every listed\n\
         scenario can instead be absorbed by truncating the listed number of bits."
    );
    Ok(())
}

fn lifetimes_and_stresses() -> Vec<AgingScenario> {
    let mut scenarios = vec![AgingScenario::Fresh];
    for years in [1.0, 3.0, 10.0] {
        scenarios.push(AgingScenario::balanced(Lifetime::from_years(years)));
        scenarios.push(AgingScenario::worst_case(Lifetime::from_years(years)));
    }
    scenarios
}
