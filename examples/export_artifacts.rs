//! Artifact export: write the cell library (Liberty), the degradation-aware
//! stress tables, a synthesized netlist (structural Verilog + DOT) and the
//! characterization library to `out/` — everything a downstream EDA flow or
//! a curious reviewer would want to inspect.
//!
//! Run with `cargo run --release --example export_artifacts`.

use aix::aging::{AgingModel, AgingScenario, Lifetime};
use aix::arith::ComponentSpec;
use aix::cells::{degradation_to_text, to_liberty, DegradationAwareLibrary, Library};
use aix::core::{characterize_component, ApproxLibrary, CharacterizationConfig, ComponentKind};
use aix::netlist::{to_dot, to_verilog};
use aix::synth::{Effort, Synthesizer};
use std::fs;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    fs::create_dir_all("out")?;
    let cells = Arc::new(Library::nangate45_like());
    let model = AgingModel::calibrated();

    // 1. The fresh cell library, Liberty-style.
    fs::write("out/aix_45nm.lib", to_liberty(&cells))?;
    println!("out/aix_45nm.lib            fresh cell library ({} cells)", cells.len());

    // 2. The degradation-aware tables (the DAC'16-style artifact).
    let aged = DegradationAwareLibrary::generate(&cells, &model, Lifetime::YEARS_10);
    fs::write("out/aix_45nm_aged10y.tbl", degradation_to_text(&cells, &aged))?;
    println!("out/aix_45nm_aged10y.tbl    11x11 stress-indexed delay factors");

    // 3. A synthesized component as structural Verilog and Graphviz DOT.
    let synth = Synthesizer::new(cells.clone(), Effort::Ultra);
    let adder = synth.adder(ComponentSpec::full(16))?;
    fs::write("out/adder16_ultra.v", to_verilog(&adder))?;
    fs::write("out/adder16_ultra.dot", to_dot(&adder))?;
    println!(
        "out/adder16_ultra.v/.dot    synthesized 16-bit adder ({} gates)",
        adder.gate_count()
    );

    // 4. A characterization library row, in its persistent text format.
    let mut library = ApproxLibrary::new();
    library.insert(characterize_component(
        &cells,
        &CharacterizationConfig::quick(ComponentKind::Adder, 16),
    )?);
    fs::write("out/example-approx-library.txt", library.to_text())?;
    let characterization = library
        .get(ComponentKind::Adder, 16)
        .expect("just inserted");
    println!(
        "out/example-approx-library.txt  Eq. 2 gives {:?} bits for 10y worst case",
        characterization
            .required_precision(AgingScenario::worst_case(Lifetime::YEARS_10))
            .map(|p| 16 - p)
    );
    Ok(())
}
