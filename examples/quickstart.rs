//! Quickstart: characterize a 16-bit adder and find the precision that
//! absorbs ten years of worst-case aging (the paper's Eq. 2).
//!
//! Run with `cargo run --release --example quickstart`.

use aix::aging::{AgingModel, AgingScenario, Lifetime, StressFactor};
use aix::cells::Library;
use aix::core::{characterize_component, CharacterizationConfig, ComponentKind};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The physics: how much slower do gates get?
    let model = AgingModel::calibrated();
    for years in [1.0, 5.0, 10.0] {
        let factor = model.delay_factor(StressFactor::WORST, Lifetime::from_years(years));
        println!(
            "worst-case aging after {years:>4} years: gates {:.1}% slower",
            (factor - 1.0) * 100.0
        );
    }

    // 2. Characterize an adder: delay at every precision, fresh and aged.
    let cells = Arc::new(Library::nangate45_like());
    let config = CharacterizationConfig::paper_default(ComponentKind::Adder, 16);
    let characterization = characterize_component(&cells, &config)?;
    let constraint = characterization.fresh_full_delay_ps();
    println!("\n16-bit adder, fresh critical path: {constraint:.1} ps (= the timing constraint)");

    // 3. Eq. 2: find the precision whose aged delay meets the fresh
    //    constraint - converting nondeterministic timing errors into a
    //    deterministic, bounded approximation.
    let scenario = AgingScenario::worst_case(Lifetime::YEARS_10);
    match characterization.required_precision(scenario) {
        Some(precision) => {
            let aged = characterization
                .delay_ps(precision, scenario.into())
                .expect("characterized point");
            println!(
                "Eq. 2 satisfied at {precision} bits ({} truncated): aged delay {aged:.1} ps <= {constraint:.1} ps",
                16 - precision
            );
            println!("-> the adder can run guardband-free for 10 years of worst-case aging.");
        }
        None => println!("no characterized precision compensates this scenario"),
    }
    Ok(())
}
