//! Offline, vendored stand-in for the `rand` crate.
//!
//! The build container has no network access and no registry cache, so the
//! workspace vendors the subset of the `rand 0.8` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] and [`Rng::gen_bool`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically strong, fully
//! deterministic for a given seed, and portable across platforms, which is
//! exactly what the seeded characterization and verification campaigns
//! need. Output streams differ from upstream `rand`'s `StdRng` (ChaCha12);
//! nothing in the workspace depends on upstream's exact stream.

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Rng::gen`] can produce with a uniform distribution.
pub trait Standard: Sized {
    /// Samples one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A value uniformly distributed over `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64: seeds the main generator and backs `seed_from_u64`.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y: u32 = rng.gen_range(5u32..=5);
            assert_eq!(y, 5);
            let f: f64 = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = rng.gen::<u64>();
        let b = rng.gen::<u64>();
        assert!(a != 0 || b != 0);
    }
}
