//! Offline, vendored stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! subset of the proptest API its property tests use: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map`/`prop_flat_map`, [`arbitrary::any`],
//! range strategies, [`array::uniform32`], `prop_assert!`/`prop_assert_eq!`
//! and [`ProptestConfig::with_cases`]. Cases are sampled from a generator
//! seeded per test function, so runs are deterministic; there is no
//! shrinking — a failing case reports its inputs via the assertion message
//! instead.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::ops::{Range, RangeInclusive};

pub use strategy::Strategy;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// The generator threaded through strategies while sampling cases.
pub type TestRng = StdRng;

/// Run configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

#[doc(hidden)]
pub fn __rng_for_test(name: &str) -> TestRng {
    // FNV-1a over the test path: deterministic per test, distinct across
    // tests, stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::seed_from_u64(hash)
}

/// Strategy combinators and implementations.
pub mod strategy {
    use super::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Samples one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy producing `f` applied to this strategy's values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// A strategy that derives a second strategy from each value and
        /// samples from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }
}

/// `any::<T>()` and the [`Arbitrary`] trait behind it.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical uniform strategy.
    pub trait Arbitrary: Sized {
        /// Samples one value uniformly.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// The canonical strategy for `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical uniform strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

/// Variable-size collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An element-count range, as real proptest's `SizeRange`.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            Self(len..len + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            Self(range)
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            Self(*range.start()..range.end() + 1)
        }
    }

    /// A strategy producing `Vec`s whose length is sampled from `size`
    /// and whose elements all come from one element strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.0.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::strategy::Strategy;
    use super::TestRng;

    macro_rules! uniform_array {
        ($($name:ident => $n:literal),*) => {$(
            /// A strategy producing arrays whose elements all come from
            /// one element strategy.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element }
            }
        )*};
    }

    uniform_array!(uniform4 => 4, uniform8 => 8, uniform16 => 16, uniform32 => 32);

    /// See [`uniform32`] and friends.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::__rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                #[allow(clippy::redundant_closure_call)]
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let _case_inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                        $(&$arg),+
                    );
                    let run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    };
                    run().map_err(|e| {
                        $crate::TestCaseError::fail(format!("{e}\n  inputs: {_case_inputs}"))
                    })
                })();
                if let Err(error) = result {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        error
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn strategies_sample_within_bounds() {
        let mut rng = crate::__rng_for_test("bounds");
        for _ in 0..500 {
            let x = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&x));
            let y = (10u32..=12).generate(&mut rng);
            assert!((10..=12).contains(&y));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = crate::__rng_for_test("compose");
        let strat = (1usize..5).prop_flat_map(|n| (0usize..n).prop_map(move |k| (n, k)));
        for _ in 0..200 {
            let (n, k) = strat.generate(&mut rng);
            assert!(k < n);
        }
    }

    #[test]
    fn uniform_arrays_fill_every_slot() {
        let mut rng = crate::__rng_for_test("arrays");
        let block = crate::array::uniform32(any::<u8>()).generate(&mut rng);
        assert_eq!(block.len(), 32);
    }

    #[test]
    fn tuple_and_array_strategies_sample_componentwise() {
        let mut rng = crate::__rng_for_test("tuples");
        for _ in 0..200 {
            let (a, b, c) = (1usize..4, any::<bool>(), 10i32..20).generate(&mut rng);
            assert!((1..4).contains(&a));
            let _ = b;
            assert!((10..20).contains(&c));
            let picks = [0usize..8, 0usize..8, 0usize..8].generate(&mut rng);
            assert!(picks.iter().all(|p| *p < 8));
        }
    }

    #[test]
    fn collection_vec_respects_size_bounds() {
        let mut rng = crate::__rng_for_test("vecs");
        for _ in 0..200 {
            let open = crate::collection::vec(any::<bool>(), 2usize..5).generate(&mut rng);
            assert!((2..5).contains(&open.len()));
            let closed = crate::collection::vec(0usize..3, 1usize..=4).generate(&mut rng);
            assert!((1..=4).contains(&closed.len()));
            assert!(closed.iter().all(|x| *x < 3));
            let exact = crate::collection::vec(any::<u8>(), 6usize).generate(&mut rng);
            assert_eq!(exact.len(), 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: arguments arrive within their strategies.
        #[test]
        fn macro_generates_cases(a in 0usize..10, b in any::<bool>()) {
            prop_assert!(a < 10, "a = {a}, b = {b}");
            prop_assert_eq!(a < 10, true);
        }
    }
}
