//! Offline, vendored stand-in for the `criterion` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! API subset its benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size`), [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`]/[`criterion_main!`] macros.
//! Measurements are simple wall-clock medians over a handful of samples —
//! enough to compare orders of magnitude, which is all the paper-claim
//! benches assert narratively.

use std::time::{Duration, Instant};

/// Re-export of the standard black box, like `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.into(), self.default_sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &format!("{}/{}", self.name, name.into()),
            self.sample_size,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times the closure handed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the total time and iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then a timed batch sized so that very fast
        // bodies still accumulate a measurable duration.
        black_box(f());
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_micros(200) || batch >= 1 << 20 {
                self.elapsed += elapsed;
                self.iterations += batch;
                return;
            }
            batch *= 4;
        }
    }

    fn per_iteration(&self) -> Duration {
        if self.iterations == 0 {
            Duration::ZERO
        } else {
            self.elapsed / u32::try_from(self.iterations).unwrap_or(u32::MAX)
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples.max(2) {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        times.push(bencher.per_iteration());
    }
    times.sort();
    let median = times[times.len() / 2];
    let (min, max) = (times[0], times[times.len() - 1]);
    println!("{name:<50} median {median:>12.3?}  [{min:.3?} .. {max:.3?}]");
}

/// Collects benchmark functions into one runnable group, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups, like criterion's.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut bencher = Bencher::default();
        bencher.iter(|| black_box(3u64.pow(7)));
        assert!(bencher.iterations > 0);
    }

    #[test]
    fn groups_and_functions_run() {
        let mut criterion = Criterion::default();
        criterion.bench_function("noop", |b| b.iter(|| ()));
        let mut group = criterion.benchmark_group("group");
        group.sample_size(3);
        group.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
