//! Shape-level assertions of the paper's key claims, at test-friendly
//! scale. Each test pins the *direction and rough factor* of one reported
//! result; the full-scale numbers live in the `exp-*` binaries and
//! EXPERIMENTS.md.

use aix::aging::{AgingModel, AgingScenario, Lifetime, StressFactor};
use aix::cells::Library;
use aix::core::{
    apply_aging_approximations, average_psnr_db, characterize_component,
    compare_against_aging_aware, evaluate_sequences, ApproxLibrary, CharacterizationConfig,
    ComponentKind, MicroarchDesign,
};
use aix::dct::DatapathPrecision;
use aix::image::Sequence;
use aix::synth::Effort;
use std::sync::Arc;

/// §I / Eq. 1 — aging demands a double-digit guardband over ten years.
#[test]
fn guardband_magnitude_matches_paper() {
    let model = AgingModel::calibrated();
    let wc10 = model.delay_factor(StressFactor::WORST, Lifetime::YEARS_10);
    let wc1 = model.delay_factor(StressFactor::WORST, Lifetime::YEARS_1);
    assert!((0.15..0.18).contains(&(wc10 - 1.0)), "10y: {wc10}");
    assert!((0.09..0.13).contains(&(wc1 - 1.0)), "1y: {wc1}");
}

/// §VI headline — a handful of truncated bits absorbs worst-case aging on
/// the critical multiplier, and only there.
#[test]
fn idct_flow_headline_shape() {
    let cells = Arc::new(Library::nangate45_like());
    let effort = Effort::Medium;
    let width = 16;
    let mut library = ApproxLibrary::new();
    library.insert(
        characterize_component(
            &cells,
            &CharacterizationConfig {
                kind: ComponentKind::Multiplier,
                width,
                precisions: (4..=width).rev().collect(),
                scenarios: vec![
                    AgingScenario::Fresh,
                    AgingScenario::worst_case(Lifetime::YEARS_10),
                ],
                effort,
            },
        )
        .expect("characterization"),
    );
    let mut design = MicroarchDesign::new("mini-idct", effort);
    design
        .add_block(&cells, "multiplier", ComponentKind::Multiplier, width)
        .expect("synthesis");
    design
        .add_block(&cells, "accumulator", ComponentKind::Adder, width)
        .expect("synthesis");
    let model = AgingModel::calibrated();
    let scenario = AgingScenario::worst_case(Lifetime::YEARS_10);
    let plan = apply_aging_approximations(&design, &library, &model, scenario).expect("flow");

    let mult = plan.block("multiplier").expect("plan entry");
    let adder = plan.block("accumulator").expect("plan entry");
    assert!(
        (1..=8).contains(&mult.truncated_bits()),
        "a handful of bits absorbs aging, got {}",
        mult.truncated_bits()
    );
    assert_eq!(adder.truncated_bits(), 0, "non-critical blocks stay exact");
    assert!(
        (-0.25..0.0).contains(&mult.relative_slack),
        "negative relative slack of the right magnitude: {}",
        mult.relative_slack
    );
    assert!(plan
        .validate(&cells, effort, &model)
        .expect("validation")
        .timing_met);
}

/// Fig. 8(b) — the quality cost of the headline truncation is mild: the
/// average PSNR drop is single-digit dB and `mobile` is the worst content.
#[test]
fn quality_shape_matches_fig8b() {
    let precision = DatapathPrecision::new(9, 0);
    let results = evaluate_sequences(precision, 88, 72);
    let average = average_psnr_db(&results);
    let exact: f64 =
        results.iter().map(|r| r.exact_psnr_db).sum::<f64>() / results.len() as f64;
    let drop = exact - average;
    assert!(
        (0.1..12.0).contains(&drop),
        "average drop should be mild, got {drop:.1} dB"
    );
    let worst = results
        .iter()
        .min_by(|a, b| a.psnr_db.partial_cmp(&b.psnr_db).expect("finite"))
        .expect("nine sequences");
    assert_eq!(
        worst.sequence,
        Sequence::Mobile,
        "mobile is the hardest content"
    );
    assert!(average > 25.0, "average stays usable: {average:.1} dB");
}

/// Fig. 8(c) — converting guardbands into approximations beats aging-aware
/// synthesis on frequency, area, leakage and energy simultaneously.
#[test]
fn savings_shape_matches_fig8c() {
    let cells = Arc::new(Library::nangate45_like());
    let effort = Effort::Medium;
    let width = 12;
    let mut library = ApproxLibrary::new();
    library.insert(
        characterize_component(
            &cells,
            &CharacterizationConfig {
                kind: ComponentKind::Multiplier,
                width,
                precisions: (4..=width).rev().collect(),
                scenarios: vec![
                    AgingScenario::Fresh,
                    AgingScenario::worst_case(Lifetime::YEARS_10),
                ],
                effort,
            },
        )
        .expect("characterization"),
    );
    let mut design = MicroarchDesign::new("mini", effort);
    design
        .add_block(&cells, "multiplier", ComponentKind::Multiplier, width)
        .expect("synthesis");
    let model = AgingModel::calibrated();
    let scenario = AgingScenario::worst_case(Lifetime::YEARS_10);
    let plan = apply_aging_approximations(&design, &library, &model, scenario).expect("flow");
    let savings = compare_against_aging_aware(&design, &plan, &cells, &model, scenario, 150)
        .expect("comparison");
    assert!(savings.frequency_gain() > 0.0, "faster than the baseline");
    assert!(savings.area_saving() > 0.0, "smaller than the baseline");
    assert!(savings.leakage_saving() > 0.0, "leaks less than the baseline");
    assert!(savings.energy_saving() > 0.0, "more efficient than the baseline");
    // Rough factor: the paper reports low-double-digit percentages.
    assert!(
        savings.area_saving() < 0.8,
        "sanity: savings are percentages, not collapse"
    );
}
