//! End-to-end integration: characterize → persist → reload → apply at the
//! microarchitecture level → validate, across crate boundaries.

use aix::aging::{AgingModel, AgingScenario, Lifetime};
use aix::cells::Library;
use aix::core::{
    apply_aging_approximations, characterize_component, ApproxLibrary, CharacterizationConfig,
    ComponentKind, MicroarchDesign,
};
use aix::synth::Effort;
use std::sync::Arc;

fn quick_library(cells: &Arc<Library>, width: usize, effort: Effort) -> ApproxLibrary {
    let mut library = ApproxLibrary::new();
    for kind in [ComponentKind::Adder, ComponentKind::Multiplier] {
        let config = CharacterizationConfig {
            kind,
            width,
            precisions: (width / 2..=width).rev().collect(),
            scenarios: vec![
                AgingScenario::Fresh,
                AgingScenario::worst_case(Lifetime::YEARS_1),
                AgingScenario::worst_case(Lifetime::YEARS_10),
            ],
            effort,
        };
        library.insert(characterize_component(cells, &config).expect("characterization"));
    }
    library
}

#[test]
fn characterize_persist_reload_apply_validate() {
    let cells = Arc::new(Library::nangate45_like());
    let effort = Effort::Medium;
    let library = quick_library(&cells, 12, effort);

    // Persist and reload through the text artifact.
    let dir = std::env::temp_dir().join("aix-e2e-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("library.txt");
    std::fs::write(&path, library.to_text()).expect("write artifact");
    let reloaded =
        ApproxLibrary::from_text(&std::fs::read_to_string(&path).expect("read artifact"))
            .expect("parse artifact");
    assert_eq!(reloaded.len(), library.len());

    // Apply the reloaded library to a design.
    let mut design = MicroarchDesign::new("e2e", effort);
    design
        .add_block(&cells, "multiplier", ComponentKind::Multiplier, 12)
        .expect("synthesis");
    design
        .add_block(&cells, "adder", ComponentKind::Adder, 12)
        .expect("synthesis");
    let model = AgingModel::calibrated();
    let scenario = AgingScenario::worst_case(Lifetime::YEARS_10);
    let plan =
        apply_aging_approximations(&design, &reloaded, &model, scenario).expect("flow");
    assert!(
        plan.has_approximations(),
        "10-year worst-case aging must force some approximation"
    );

    // Validate: the approximated design meets the fresh constraint while aged.
    let report = plan.validate(&cells, effort, &model).expect("validation");
    assert!(report.timing_met, "{report:?}");
}

#[test]
fn lifetime_sweep_needs_monotonically_more_truncation() {
    let cells = Arc::new(Library::nangate45_like());
    let effort = Effort::Medium;
    let config = CharacterizationConfig {
        kind: ComponentKind::Adder,
        width: 12,
        precisions: (4..=12).rev().collect(),
        scenarios: [0.5, 1.0, 2.0, 5.0, 10.0]
            .iter()
            .map(|&y| AgingScenario::worst_case(Lifetime::from_years(y)))
            .chain(std::iter::once(AgingScenario::Fresh))
            .collect(),
        effort,
    };
    let characterization = characterize_component(&cells, &config).expect("characterization");
    let mut last_precision = usize::MAX;
    for years in [0.5, 1.0, 2.0, 5.0, 10.0] {
        let scenario = AgingScenario::worst_case(Lifetime::from_years(years));
        let precision = characterization
            .required_precision(scenario)
            .expect("compensable within 8 truncated bits");
        assert!(
            precision <= last_precision,
            "longer lifetimes cannot need less truncation ({years}y: {precision} vs {last_precision})"
        );
        last_precision = precision;
    }
    assert!(last_precision < 12, "10 years must require truncation");
}

#[test]
fn balanced_stress_needs_no_more_truncation_than_worst() {
    let cells = Arc::new(Library::nangate45_like());
    let config = CharacterizationConfig {
        kind: ComponentKind::Multiplier,
        width: 12,
        precisions: (4..=12).rev().collect(),
        scenarios: vec![
            AgingScenario::Fresh,
            AgingScenario::balanced(Lifetime::YEARS_10),
            AgingScenario::worst_case(Lifetime::YEARS_10),
        ],
        effort: Effort::Medium,
    };
    let characterization = characterize_component(&cells, &config).expect("characterization");
    let balanced = characterization
        .required_precision(AgingScenario::balanced(Lifetime::YEARS_10))
        .expect("compensable");
    let worst = characterization
        .required_precision(AgingScenario::worst_case(Lifetime::YEARS_10))
        .expect("compensable");
    assert!(
        balanced >= worst,
        "balanced ({balanced}b) must keep at least as much precision as worst case ({worst}b)"
    );
}
