//! Pinned-seed regression for the Fig. 1 canonical data point: the
//! ultra-mapped carry-select adder-32, clocked at its fresh critical path
//! and aged ten years under worst-case stress, errs on ~5.6 % of 4000
//! seeded signed-normal vectors (EXPERIMENTS.md). The value must survive
//! the simulation-engine swap: both engines are asserted equal bit for
//! bit, and the headline rate must stay inside a generous band so an
//! engine regression (or an accidental semantics change) trips loudly.

use aix::aging::{AgingModel, AgingScenario, Lifetime};
use aix::arith::ComponentSpec;
use aix::cells::Library;
use aix::sim::{measure_errors_with, OperandSource, SignedNormalOperands, SimEngine};
use aix::sta::{analyze, NetDelays};
use aix::synth::{Effort, Synthesizer};
use std::sync::Arc;

#[test]
fn canonical_adder32_ten_year_error_rate_survives_engine_swap() {
    let cells = Arc::new(Library::nangate45_like());
    let synth = Synthesizer::new(cells, Effort::Ultra);
    let adder = synth
        .adder(ComponentSpec::full(32))
        .expect("adder synthesis");

    let clock = analyze(&adder, &NetDelays::fresh(&adder))
        .expect("synthesized netlists are acyclic")
        .max_delay_ps();
    let model = AgingModel::calibrated();
    let delays = NetDelays::aged(
        &adder,
        &model,
        AgingScenario::worst_case(Lifetime::YEARS_10),
    );

    // Exactly the Fig. 1 recipe: seed 1, 4000 signed-normal vectors.
    let width = adder.inputs().len() / 2;
    let padding = adder.inputs().len() - 2 * width;
    let stimuli: Vec<Vec<bool>> = SignedNormalOperands::for_width(width, 1)
        .vectors_with_zeros(4000, padding)
        .collect();

    let scalar = measure_errors_with(
        &adder,
        &delays,
        clock,
        stimuli.iter().cloned(),
        SimEngine::Scalar,
    )
    .expect("scalar measurement");
    let packed = measure_errors_with(
        &adder,
        &delays,
        clock,
        stimuli.iter().cloned(),
        SimEngine::Packed,
    )
    .expect("packed measurement");

    assert_eq!(
        scalar, packed,
        "engines must agree exactly on the canonical Fig. 1 point"
    );

    // EXPERIMENTS.md records 5.6 % for this exact pinned recipe. A wide
    // band tolerates delay-model recalibration but catches an engine that
    // silently changes what is being simulated.
    let percent = packed.error_percent();
    assert!(
        (2.0..=11.0).contains(&percent),
        "canonical 10y worst-case error rate drifted: {percent:.2}% (expected ~5.6%)"
    );
    assert_eq!(packed.vectors, 4000);
    assert!(packed.erroneous > 0, "the aged adder must actually err");
}
