//! Differential conformance: the scalar and packed simulation engines must
//! produce *identical* results — same `ErrorStats` (including the f64
//! fields, bit for bit), same `Activity`, same `FaultCoverage` — for every
//! library component shape, at vector counts that exercise full words,
//! partial words and the scalar tail.

use aix::aging::{AgingModel, AgingScenario, Lifetime};
use aix::arith::{
    build_adder, build_mac, build_multiplier, AdderKind, ComponentSpec, MultiplierKind,
};
use aix::cells::Library;
use aix::netlist::Netlist;
use aix::sim::{
    full_fault_list, measure_errors_with, simulate_faults_with, Activity, OperandSource,
    SimEngine, UniformOperands,
};
use aix::sta::{analyze, NetDelays};
use std::sync::Arc;

fn cells() -> Arc<Library> {
    Arc::new(Library::nangate45_like())
}

/// Seeded uniform stimuli shaped to any component's input count.
fn stimuli(netlist: &Netlist, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let inputs = netlist.inputs().len();
    let width = (inputs / 2).clamp(1, 32);
    let padding = inputs - 2 * width;
    UniformOperands::new(width, seed)
        .vectors_with_zeros(count, padding)
        .collect()
}

/// Asserts both engines agree exactly on all three value-mode consumers.
fn assert_engines_agree(name: &str, netlist: &Netlist, vectors: &[Vec<bool>]) {
    let scalar_activity =
        Activity::collect_with(netlist, vectors.iter().cloned(), SimEngine::Scalar)
            .expect("scalar activity");
    let packed_activity =
        Activity::collect_with(netlist, vectors.iter().cloned(), SimEngine::Packed)
            .expect("packed activity");
    assert_eq!(
        scalar_activity, packed_activity,
        "{name}: Activity diverges over {} vectors",
        vectors.len()
    );

    let model = AgingModel::calibrated();
    let clock = analyze(netlist, &NetDelays::fresh(netlist))
        .expect("acyclic netlist")
        .max_delay_ps();
    let aged = NetDelays::aged(
        netlist,
        &model,
        AgingScenario::worst_case(Lifetime::YEARS_10),
    );
    let scalar_errors = measure_errors_with(
        netlist,
        &aged,
        clock,
        vectors.iter().cloned(),
        SimEngine::Scalar,
    )
    .expect("scalar error measurement");
    let packed_errors = measure_errors_with(
        netlist,
        &aged,
        clock,
        vectors.iter().cloned(),
        SimEngine::Packed,
    )
    .expect("packed error measurement");
    assert_eq!(
        scalar_errors, packed_errors,
        "{name}: ErrorStats diverges over {} vectors",
        vectors.len()
    );

    let faults = full_fault_list(netlist);
    let fault_vectors = &vectors[..vectors.len().min(96)];
    let scalar_coverage =
        simulate_faults_with(netlist, &faults, fault_vectors, SimEngine::Scalar)
            .expect("scalar fault simulation");
    let packed_coverage =
        simulate_faults_with(netlist, &faults, fault_vectors, SimEngine::Packed)
            .expect("packed fault simulation");
    assert_eq!(
        scalar_coverage, packed_coverage,
        "{name}: FaultCoverage diverges over {} vectors",
        fault_vectors.len()
    );
}

#[test]
fn every_component_shape_agrees_on_4k_vectors() {
    let lib = cells();
    // Adders are cheap to clock-simulate: full 4k differential vectors.
    let components = [
        (
            "adder-8 (ripple)",
            build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(8)).unwrap(),
            4000,
        ),
        (
            "adder-16 (kogge-stone)",
            build_adder(&lib, AdderKind::KoggeStone, ComponentSpec::full(16)).unwrap(),
            4000,
        ),
        (
            "adder-16/12 (carry-select, truncated)",
            build_adder(
                &lib,
                AdderKind::CarrySelect,
                ComponentSpec::new(16, 12).unwrap(),
            )
            .unwrap(),
            4000,
        ),
        // Multiplier/MAC arrays glitch heavily under timed simulation;
        // fewer vectors keep the tier-1 budget while still crossing many
        // word boundaries.
        (
            "multiplier-8 (array)",
            build_multiplier(&lib, MultiplierKind::Array, ComponentSpec::full(8)).unwrap(),
            700,
        ),
        (
            "mac-8",
            build_mac(&lib, ComponentSpec::full(8)).unwrap(),
            700,
        ),
    ];
    for (index, (name, netlist, count)) in components.iter().enumerate() {
        let vectors = stimuli(netlist, *count, 100 + index as u64);
        assert_engines_agree(name, netlist, &vectors);
    }
}

/// Vector counts around the 64-lane word boundary pin the scalar-tail
/// path: 1 (tail only), 63 (one partial word), 64 (exactly one word),
/// 65 (word + 1 tail), 1000 (15 words + 40 tail).
#[test]
fn word_boundary_vector_counts_agree() {
    let lib = cells();
    let netlist = build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(8)).unwrap();
    for (index, count) in [1usize, 63, 64, 65, 1000].into_iter().enumerate() {
        let vectors = stimuli(&netlist, count, 200 + index as u64);
        assert_engines_agree(&format!("adder-8 x{count}"), &netlist, &vectors);
    }
}

/// The environment switch drives the same engines the explicit API does.
#[test]
fn default_collect_matches_both_explicit_engines() {
    let lib = cells();
    let netlist = build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(8)).unwrap();
    let vectors = stimuli(&netlist, 300, 7);
    let default = Activity::collect(&netlist, vectors.iter().cloned()).unwrap();
    for engine in [SimEngine::Scalar, SimEngine::Packed] {
        let explicit =
            Activity::collect_with(&netlist, vectors.iter().cloned(), engine).unwrap();
        assert_eq!(default, explicit, "{engine} differs from the default");
    }
}
