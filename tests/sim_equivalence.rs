//! Differential conformance: the scalar and packed simulation engines must
//! produce *identical* results — same `ErrorStats` (including the f64
//! fields, bit for bit), same `Activity`, same `FaultCoverage`, and for
//! the timed engines the same per-vector `StepOutcome` (sampled/settled
//! outputs, timing-error flag, settle time, transitions) and per-net
//! transition counters — for every library component shape, fresh and
//! aged, at vector counts that exercise full words, partial words and the
//! scalar tail.

use aix::aging::{AgingModel, AgingScenario, Lifetime};
use aix::arith::{
    build_adder, build_mac, build_multiplier, AdderKind, ComponentSpec, MultiplierKind,
};
use aix::cells::Library;
use aix::netlist::Netlist;
use aix::sim::{
    collect_timed_activity_with, full_fault_list, measure_errors_with, simulate_faults_with,
    Activity, OperandSource, PackedTimedSimulator, SimEngine, TimedSimulator, UniformOperands,
};
use aix::sta::{analyze, NetDelays};
use std::sync::Arc;

fn cells() -> Arc<Library> {
    Arc::new(Library::nangate45_like())
}

/// Seeded uniform stimuli shaped to any component's input count.
fn stimuli(netlist: &Netlist, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let inputs = netlist.inputs().len();
    let width = (inputs / 2).clamp(1, 32);
    let padding = inputs - 2 * width;
    UniformOperands::new(width, seed)
        .vectors_with_zeros(count, padding)
        .collect()
}

/// Asserts both engines agree exactly on all three value-mode consumers.
fn assert_engines_agree(name: &str, netlist: &Netlist, vectors: &[Vec<bool>]) {
    let scalar_activity =
        Activity::collect_with(netlist, vectors.iter().cloned(), SimEngine::Scalar)
            .expect("scalar activity");
    let packed_activity =
        Activity::collect_with(netlist, vectors.iter().cloned(), SimEngine::Packed)
            .expect("packed activity");
    assert_eq!(
        scalar_activity, packed_activity,
        "{name}: Activity diverges over {} vectors",
        vectors.len()
    );

    let model = AgingModel::calibrated();
    let clock = analyze(netlist, &NetDelays::fresh(netlist))
        .expect("acyclic netlist")
        .max_delay_ps();
    let aged = NetDelays::aged(
        netlist,
        &model,
        AgingScenario::worst_case(Lifetime::YEARS_10),
    );
    let scalar_errors = measure_errors_with(
        netlist,
        &aged,
        clock,
        vectors.iter().cloned(),
        SimEngine::Scalar,
    )
    .expect("scalar error measurement");
    let packed_errors = measure_errors_with(
        netlist,
        &aged,
        clock,
        vectors.iter().cloned(),
        SimEngine::Packed,
    )
    .expect("packed error measurement");
    assert_eq!(
        scalar_errors, packed_errors,
        "{name}: ErrorStats diverges over {} vectors",
        vectors.len()
    );

    let faults = full_fault_list(netlist);
    let fault_vectors = &vectors[..vectors.len().min(96)];
    let scalar_coverage =
        simulate_faults_with(netlist, &faults, fault_vectors, SimEngine::Scalar)
            .expect("scalar fault simulation");
    let packed_coverage =
        simulate_faults_with(netlist, &faults, fault_vectors, SimEngine::Packed)
            .expect("packed fault simulation");
    assert_eq!(
        scalar_coverage, packed_coverage,
        "{name}: FaultCoverage diverges over {} vectors",
        fault_vectors.len()
    );
}

#[test]
fn every_component_shape_agrees_on_4k_vectors() {
    let lib = cells();
    // Adders are cheap to clock-simulate: full 4k differential vectors.
    let components = [
        (
            "adder-8 (ripple)",
            build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(8)).unwrap(),
            4000,
        ),
        (
            "adder-16 (kogge-stone)",
            build_adder(&lib, AdderKind::KoggeStone, ComponentSpec::full(16)).unwrap(),
            4000,
        ),
        (
            "adder-16/12 (carry-select, truncated)",
            build_adder(
                &lib,
                AdderKind::CarrySelect,
                ComponentSpec::new(16, 12).unwrap(),
            )
            .unwrap(),
            4000,
        ),
        // Multiplier/MAC arrays glitch heavily under timed simulation;
        // fewer vectors keep the tier-1 budget while still crossing many
        // word boundaries.
        (
            "multiplier-8 (array)",
            build_multiplier(&lib, MultiplierKind::Array, ComponentSpec::full(8)).unwrap(),
            700,
        ),
        (
            "mac-8",
            build_mac(&lib, ComponentSpec::full(8)).unwrap(),
            700,
        ),
    ];
    for (index, (name, netlist, count)) in components.iter().enumerate() {
        let vectors = stimuli(netlist, *count, 100 + index as u64);
        assert_engines_agree(name, netlist, &vectors);
    }
}

/// Vector counts around the 64-lane word boundary pin the scalar-tail
/// path: 1 (tail only), 63 (one partial word), 64 (exactly one word),
/// 65 (word + 1 tail), 1000 (15 words + 40 tail).
#[test]
fn word_boundary_vector_counts_agree() {
    let lib = cells();
    let netlist = build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(8)).unwrap();
    for (index, count) in [1usize, 63, 64, 65, 1000].into_iter().enumerate() {
        let vectors = stimuli(&netlist, count, 200 + index as u64);
        assert_engines_agree(&format!("adder-8 x{count}"), &netlist, &vectors);
    }
}

/// Asserts the packed timed engine reproduces the scalar engine *per
/// vector*: every lane's sampled/settled outputs, timing-error flag,
/// settle time and transition count, plus the cumulative per-net
/// transition counters at the end of the stream.
fn assert_timed_engines_agree(
    name: &str,
    netlist: &Netlist,
    delays: &NetDelays,
    clock_ps: f64,
    vectors: &[Vec<bool>],
) {
    let mut scalar = TimedSimulator::new(netlist, delays).expect("scalar timed simulator");
    let mut packed = PackedTimedSimulator::new(netlist, delays).expect("packed timed simulator");
    let mut index = 0usize;
    for batch in vectors.chunks(aix::sim::LANES) {
        let outcome = packed
            .step_stream_batch(batch, clock_ps)
            .expect("packed timed step");
        for (lane, vector) in batch.iter().enumerate() {
            let expected = scalar.step(vector, clock_ps).expect("scalar timed step");
            assert_eq!(
                outcome.outcome_for_lane(lane),
                expected,
                "{name}: vector {index} (lane {lane}) diverges"
            );
            index += 1;
        }
    }
    assert_eq!(
        scalar.transition_counts(),
        packed.transition_counts(),
        "{name}: per-net transition counts diverge over {} vectors",
        vectors.len()
    );
}

/// Timed differential: adders of every architecture plus a multiplier,
/// fresh and aged (10 and 20 years), must agree per vector between the
/// scalar and packed event-driven engines.
#[test]
fn timed_engines_agree_per_vector_fresh_and_aged() {
    let lib = cells();
    let components = [
        (
            "adder-8 (ripple)",
            build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(8)).unwrap(),
            400,
        ),
        (
            "adder-16 (carry-select)",
            build_adder(&lib, AdderKind::CarrySelect, ComponentSpec::full(16)).unwrap(),
            400,
        ),
        (
            "adder-16 (kogge-stone)",
            build_adder(&lib, AdderKind::KoggeStone, ComponentSpec::full(16)).unwrap(),
            400,
        ),
        (
            "multiplier-8 (array)",
            build_multiplier(&lib, MultiplierKind::Array, ComponentSpec::full(8)).unwrap(),
            200,
        ),
    ];
    let model = AgingModel::calibrated();
    for (index, (name, netlist, count)) in components.iter().enumerate() {
        let vectors = stimuli(netlist, *count, 300 + index as u64);
        let clock = analyze(netlist, &NetDelays::fresh(netlist))
            .expect("acyclic netlist")
            .max_delay_ps();
        let delay_sets = [
            ("fresh", NetDelays::fresh(netlist)),
            (
                "10y worst",
                NetDelays::aged(
                    netlist,
                    &model,
                    AgingScenario::worst_case(Lifetime::YEARS_10),
                ),
            ),
            (
                "20y worst",
                NetDelays::aged(
                    netlist,
                    &model,
                    AgingScenario::worst_case(Lifetime::from_years(20.0)),
                ),
            ),
        ];
        for (condition, delays) in &delay_sets {
            assert_timed_engines_agree(
                &format!("{name} {condition}"),
                netlist,
                delays,
                clock,
                &vectors,
            );
        }
    }
}

/// Lane-tail vector counts around the 64-lane word boundary for the timed
/// engine, on an aged netlist so violations are actually in play.
#[test]
fn timed_word_boundary_vector_counts_agree() {
    let lib = cells();
    let netlist = build_adder(&lib, AdderKind::KoggeStone, ComponentSpec::full(16)).unwrap();
    let clock = analyze(&netlist, &NetDelays::fresh(&netlist))
        .expect("acyclic netlist")
        .max_delay_ps();
    let delays = NetDelays::aged(
        &netlist,
        &AgingModel::calibrated(),
        AgingScenario::worst_case(Lifetime::YEARS_10),
    );
    for (index, count) in [1usize, 63, 64, 65].into_iter().enumerate() {
        let vectors = stimuli(&netlist, count, 400 + index as u64);
        assert_timed_engines_agree(
            &format!("adder-16 x{count}"),
            &netlist,
            &delays,
            clock,
            &vectors,
        );
    }
}

/// Timed activity (signal probabilities + toggles from the event-driven
/// engine, glitches included) must agree exactly across engines.
#[test]
fn timed_activity_agrees_across_engines() {
    let lib = cells();
    let netlist = build_adder(&lib, AdderKind::KoggeStone, ComponentSpec::full(16)).unwrap();
    let delays = NetDelays::aged(
        &netlist,
        &AgingModel::calibrated(),
        AgingScenario::worst_case(Lifetime::YEARS_10),
    );
    for count in [65usize, 500] {
        let vectors = stimuli(&netlist, count, 500);
        let scalar = collect_timed_activity_with(
            &netlist,
            &delays,
            vectors.iter().cloned(),
            SimEngine::Scalar,
        )
        .expect("scalar timed activity");
        let packed = collect_timed_activity_with(
            &netlist,
            &delays,
            vectors.iter().cloned(),
            SimEngine::Packed,
        )
        .expect("packed timed activity");
        assert_eq!(scalar, packed, "timed Activity diverges over {count} vectors");
    }
}

/// The environment switch drives the same engines the explicit API does.
#[test]
fn default_collect_matches_both_explicit_engines() {
    let lib = cells();
    let netlist = build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(8)).unwrap();
    let vectors = stimuli(&netlist, 300, 7);
    let default = Activity::collect(&netlist, vectors.iter().cloned()).unwrap();
    for engine in [SimEngine::Scalar, SimEngine::Packed] {
        let explicit =
            Activity::collect_with(&netlist, vectors.iter().cloned(), engine).unwrap();
        assert_eq!(default, explicit, "{engine} differs from the default");
    }
}
