//! Integration tests of the `aix serve` daemon: concurrent fault-injected
//! load with a zero-hang guarantee, backpressure and coalescing, deadline
//! handling, graceful drain, crash recovery with byte-identical replay
//! (including a torn journal tail), and fleet-level chaos — a SIGKILLed
//! replica and a stalled replica, both survived without changing bytes.

use aix::core::EngineOptions;
use aix::serve::health::HealthConfig;
use aix::serve::{Client, FleetClient, FleetConfig, Server, ServerConfig};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aix-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn engine_in(dir: &Path, faults: Option<&str>) -> EngineOptions {
    let mut engine = EngineOptions::sequential();
    engine.cache_dir = Some(dir.join("cache"));
    engine.journal_dir = Some(dir.join("journal"));
    engine.resume = true;
    engine.retries = 2;
    engine.backoff_ms = 1;
    engine.backoff_cap_ms = 10;
    engine.faults = faults.map(|spec| Arc::new(spec.parse().expect("fault spec")));
    engine
}

fn spawn_server(mut config: ServerConfig) -> (String, std::thread::JoinHandle<std::io::Result<()>>)
{
    config.addr = "127.0.0.1:0".to_owned();
    let server = Server::bind(config).expect("bind loopback");
    let addr = server.local_addr().expect("bound address").to_string();
    (addr, std::thread::spawn(move || server.run()))
}

fn request(op: &str, width: usize, deadline_ms: u64) -> String {
    format!(
        "{{\"op\":\"{op}\",\"kind\":\"adder\",\"width\":{width},\"quick\":true,\
         \"samples\":2,\"seed\":7,\"deadline_ms\":{deadline_ms}}}"
    )
}

/// The acceptance load: 100 concurrent requests under pinned-seed fault
/// injection. Zero crashes, zero hangs — every request reaches a terminal
/// status, and the daemon drains cleanly afterwards.
#[test]
fn hundred_request_fault_injected_load_reaches_terminal_outcomes() {
    let dir = scratch("load");
    let mut config = ServerConfig::local_default(engine_in(
        &dir,
        Some("io:p=0.3,seed=5,stage=synth;delay:p=0.1,ms=5,stage=sta"),
    ));
    config.workers = 2;
    config.queue_cap = 2;
    config.journal_path = Some(dir.join("serve-requests.journal"));
    let (addr, daemon) = spawn_server(config);

    let clients = 8usize;
    let fleet: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                client
                    .set_response_timeout(Some(Duration::from_secs(120)))
                    .expect("timeout");
                let mut outcomes = Vec::new();
                for i in (c..100).step_by(clients) {
                    let op = ["characterize", "select-precision", "verify"][i % 3];
                    let width = 4 + 2 * (i % 2);
                    let deadline_ms = if i % 10 == 9 { 1 } else { 60_000 };
                    let response = client
                        .call(&request(op, width, deadline_ms))
                        .expect("a terminal response, never a hang");
                    outcomes.push(response.status().to_owned());
                }
                outcomes
            })
        })
        .collect();
    let mut histogram = std::collections::BTreeMap::new();
    for worker in fleet {
        for outcome in worker.join().expect("client thread") {
            assert!(
                ["ok", "partial", "deadline", "overloaded", "error"].contains(&outcome.as_str()),
                "unexpected terminal status `{outcome}`"
            );
            *histogram.entry(outcome).or_insert(0usize) += 1;
        }
    }
    assert_eq!(
        histogram.values().sum::<usize>(),
        100,
        "all 100 requests answered: {histogram:?}"
    );
    assert!(
        histogram.get("ok").copied().unwrap_or(0) > 0,
        "the load must include successes: {histogram:?}"
    );

    let status = Client::connect(&addr)
        .and_then(|mut c| c.status())
        .expect("status");
    assert!(status.int_field("coalesce_hits").unwrap_or(0) > 0);
    Client::connect(&addr)
        .and_then(|mut c| c.shutdown())
        .expect("shutdown");
    daemon
        .join()
        .expect("daemon thread")
        .expect("daemon drains cleanly after the load");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Backpressure: with one worker pinned by slow jobs and a one-slot
/// queue, distinct requests shed with `overloaded` + a retry hint while
/// identical requests coalesce instead of shedding.
#[test]
fn overload_sheds_with_retry_hint_while_identical_requests_coalesce() {
    let dir = scratch("overload");
    // Every synth job sleeps, so the queue backs up deterministically.
    let mut config =
        ServerConfig::local_default(engine_in(&dir, Some("delay:ms=400,stage=synth")));
    config.workers = 1;
    config.queue_cap = 1;
    let (addr, daemon) = spawn_server(config);

    // Stage the congestion deterministically: each slow campaign runs for
    // seconds (every synth job sleeps), so poll the status endpoint
    // between sends instead of racing the worker.
    let mut client = Client::connect(&addr).expect("connect");
    let wait_for = |client: &mut Client, what: &str, ready: &dyn Fn(i64, i64) -> bool| {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let status = client.status().expect("status");
            let accepted = status.int_field("accepted").unwrap_or(0);
            let depth = status.int_field("queue_depth").unwrap_or(0);
            if ready(accepted, depth) {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "never reached `{what}`: {}",
                status.to_wire()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    };

    // First campaign: wait until the worker picked it up (accepted, queue
    // drained again)...
    let busy_worker = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            client.call(&request("characterize", 4, 0)).expect("response")
        })
    };
    wait_for(&mut client, "worker busy", &|accepted, depth| {
        accepted >= 1 && depth == 0
    });
    // ...second campaign: occupies the single queue slot.
    let busy_queued = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            client.call(&request("characterize", 6, 0)).expect("response")
        })
    };
    wait_for(&mut client, "queue full", &|accepted, depth| {
        accepted >= 2 && depth >= 1
    });
    let busy = [busy_worker, busy_queued];

    // A third distinct campaign must shed...
    let shed = client.call(&request("characterize", 8, 0)).expect("response");
    assert_eq!(shed.status(), "overloaded", "{}", shed.to_wire());
    assert!(shed.int_field("retry_after_ms").unwrap_or(0) > 0);

    // ...while a request identical to a queued one joins it instead.
    let coalesced = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            client.call(&request("characterize", 6, 0)).expect("response")
        })
    };
    for handle in busy {
        assert_eq!(handle.join().expect("busy client").status(), "ok");
    }
    assert_eq!(coalesced.join().expect("coalesced client").status(), "ok");

    let status = client.status().expect("status");
    assert!(status.int_field("shed").unwrap_or(0) >= 1, "{}", status.to_wire());
    assert!(
        status.int_field("coalesce_hits").unwrap_or(0) >= 1,
        "{}",
        status.to_wire()
    );
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon thread").expect("clean drain");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A hopeless deadline returns a `deadline` response quickly — partial
/// results, no hang — while the same campaign without a deadline succeeds.
#[test]
fn deadlines_cancel_remaining_work_and_report_partial_results() {
    let dir = scratch("deadline");
    let mut config =
        ServerConfig::local_default(engine_in(&dir, Some("delay:ms=100,stage=synth")));
    config.workers = 1;
    let (addr, daemon) = spawn_server(config);

    let mut client = Client::connect(&addr).expect("connect");
    client
        .set_response_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let started = Instant::now();
    let response = client.call(&request("characterize", 4, 50)).expect("response");
    assert_eq!(response.status(), "deadline", "{}", response.to_wire());
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "a 50 ms deadline must not take {:?}",
        started.elapsed()
    );
    // The identical campaign without the deadline runs to completion (the
    // deadline response was not cached).
    let response = client.call(&request("characterize", 4, 0)).expect("response");
    assert_eq!(response.status(), "ok", "{}", response.to_wire());

    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon thread").expect("clean drain");
    let _ = std::fs::remove_dir_all(&dir);
}

fn aix() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aix"))
}

fn spawn_daemon(dir: &Path, crash: bool, fault_env: Option<&str>) -> (Child, String) {
    let addr_file = dir.join("addr.txt");
    let _ = std::fs::remove_file(&addr_file);
    let mut command = aix();
    command
        .arg("serve")
        .args(["--addr", "127.0.0.1:0", "--workers", "1", "--quiet"])
        .arg("--addr-file")
        .arg(&addr_file)
        .arg("--cache")
        .arg(dir.join("cache"))
        .arg("--journal")
        .arg(dir.join("journal"))
        .env_remove("AIX_FAULT")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if crash {
        command.arg("--crash-on-panic");
    }
    if let Some(spec) = fault_env {
        command.env("AIX_FAULT", spec);
    }
    let child = command.spawn().expect("spawn aix serve");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&addr_file) {
            if addr.trim().ends_with(|c: char| c.is_ascii_digit()) && !addr.trim().is_empty() {
                break addr.trim().to_owned();
            }
        }
        assert!(Instant::now() < deadline, "daemon never wrote its address");
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, addr)
}

/// Crash recovery end to end: a serve-stage injected panic kills the
/// daemon mid-request (journal pending, tail torn); the restarted daemon
/// replays the journaled request and answers a re-send byte-identically
/// to a never-crashed daemon.
#[test]
fn killed_daemon_replays_the_journal_and_answers_byte_identically() {
    let dir = scratch("crash");
    let payload = request("characterize", 4, 0);

    // Phase 1: the daemon crashes on the injected serve-stage panic.
    let (mut child, addr) = spawn_daemon(&dir, true, Some("panic:stage=serve"));
    let mut client = Client::connect(&addr).expect("connect");
    let error = client.call(&payload).expect_err("the daemon must die mid-request");
    assert!(
        error.to_string().contains("connection closed")
            || matches!(
                error.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::BrokenPipe
            ),
        "unexpected failure shape: {error}"
    );
    let status = child.wait().expect("child exit");
    assert_eq!(status.code(), Some(101), "crash-on-panic exits 101");
    let journal_path = dir.join("journal").join("serve-requests.journal");
    let journal = std::fs::read_to_string(&journal_path).expect("journal persisted");
    assert!(
        journal.lines().any(|l| l.starts_with("pending ")),
        "the in-flight request must still be pending:\n{journal}"
    );

    // Tear the journal tail, as a crash mid-append would.
    {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal_path)
            .expect("journal reopens");
        file.write_all(b"pending deadbeef").expect("torn tail");
    }

    // Phase 2: restart (fault plan still in the environment — replay must
    // not re-trip it), re-send, and capture the replayed response.
    let (mut child, addr) = spawn_daemon(&dir, true, Some("panic:stage=serve"));
    let mut client = Client::connect(&addr).expect("reconnect");
    client
        .set_response_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let replayed = client.call(&payload).expect("replayed response");
    assert_eq!(replayed.status(), "ok", "{}", replayed.to_wire());
    client.shutdown().expect("drain");
    assert_eq!(child.wait().expect("exit").code(), Some(0), "drain exits 0");

    // Phase 3: a never-crashed daemon over fresh state must produce the
    // byte-identical response.
    let reference_dir = scratch("crash-ref");
    let (mut child, addr) = spawn_daemon(&reference_dir, false, None);
    let mut client = Client::connect(&addr).expect("connect reference");
    client
        .set_response_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let reference = client.call(&payload).expect("reference response");
    client.shutdown().expect("drain reference");
    child.wait().expect("reference exit");

    assert_eq!(
        replayed.to_wire(),
        reference.to_wire(),
        "crash recovery must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&reference_dir);
}

/// `aix serve shutdown` drains the daemon to a zero exit, and new work
/// during the drain is refused with `draining`.
#[test]
fn graceful_drain_refuses_new_work_and_exits_zero() {
    let dir = scratch("drain");
    let (mut child, addr) = spawn_daemon(&dir, false, None);
    let mut client = Client::connect(&addr).expect("connect");
    let response = client.shutdown().expect("shutdown accepted");
    assert_eq!(response.status(), "ok");
    // The same connection stays usable; new work is refused while the
    // daemon drains.
    let refused = client.call(&request("characterize", 4, 0)).expect("response");
    assert_eq!(refused.status(), "draining", "{}", refused.to_wire());
    drop(client);
    assert_eq!(child.wait().expect("exit").code(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The fleet campaign mix used by the chaos tests below: distinct
/// campaigns across all three work operations.
fn fleet_mix(requests: usize) -> Vec<String> {
    (0..requests)
        .map(|i| {
            let op = ["characterize", "select-precision", "verify"][i % 3];
            request(op, 4 + i % 3, 0)
        })
        .collect()
}

/// Replication under a hard crash: one of two replica daemons is
/// SIGKILLed mid-campaign. The fleet client completes every remaining
/// request through the survivor, the prober trips the dead replica's
/// breaker, and every response is byte-identical to a single
/// never-killed daemon answering the same campaigns.
#[test]
fn sigkilled_replica_fails_over_and_stays_byte_identical() {
    let victim_dir = scratch("fleet-kill-victim");
    let survivor_dir = scratch("fleet-kill-survivor");
    let (mut victim, victim_addr) = spawn_daemon(&victim_dir, false, None);
    let (mut survivor, survivor_addr) = spawn_daemon(&survivor_dir, false, None);

    let mut config = FleetConfig::new(vec![victim_addr.clone(), survivor_addr]);
    config.connect_timeout_ms = Some(1_000);
    config.response_timeout = Duration::from_secs(60);
    // A generous floor: pre-kill, a slightly slow cold campaign must not
    // fire hedges — this test is about failover, not tail rescue.
    config.hedge_floor = Duration::from_millis(500);
    config.probe_timeout = Duration::from_millis(500);
    config.health = HealthConfig {
        failure_threshold: 3,
        backoff_base_ms: 500,
        backoff_cap_ms: 4_000,
        probe_interval: Duration::from_millis(100),
    };
    let fleet = FleetClient::new(config).expect("two-replica fleet");

    let mix = fleet_mix(9);
    let mut wires = Vec::new();
    for (i, payload) in mix.iter().enumerate() {
        if i == 3 {
            // Mid-campaign, SIGKILL one replica: no drain, no goodbye.
            victim.kill().expect("SIGKILL the victim replica");
            victim.wait().expect("victim reaped");
        }
        let response = fleet.call(payload).expect("a terminal response");
        assert_eq!(response.status(), "ok", "request {i}: {}", response.to_wire());
        wires.push(response.to_wire());
    }

    // The fleet must notice the death: either a call routed to the dead
    // replica and failed over, or the prober tripped its breaker (both,
    // usually). Give the prober time to finish the job either way.
    let stats = fleet.stats();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let failovers = stats.failovers.load(std::sync::atomic::Ordering::Relaxed);
        let trips = stats.breaker_trips.load(std::sync::atomic::Ordering::Relaxed);
        if failovers >= 1 || trips >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "the fleet never noticed the SIGKILLed replica"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(fleet);

    // Byte-identity: a fresh daemon answering the same campaigns alone
    // must produce exactly the bytes the fleet produced.
    let reference_dir = scratch("fleet-kill-ref");
    let (mut reference, reference_addr) = spawn_daemon(&reference_dir, false, None);
    let mut client = Client::connect(&reference_addr).expect("connect reference");
    client
        .set_response_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    for (payload, fleet_wire) in mix.iter().zip(&wires) {
        let reference_wire = client.call(payload).expect("reference response").to_wire();
        assert_eq!(
            &reference_wire, fleet_wire,
            "fleet response must be byte-identical to the reference for {payload}"
        );
    }
    client.shutdown().expect("drain reference");
    reference.wait().expect("reference exit");
    survivor.kill().expect("stop survivor");
    survivor.wait().expect("survivor reaped");
    let _ = std::fs::remove_dir_all(&victim_dir);
    let _ = std::fs::remove_dir_all(&survivor_dir);
    let _ = std::fs::remove_dir_all(&reference_dir);
}

/// Replication under a wedge: a replica that accepts every frame and
/// never answers (serve-stage `stall` fault). Every call's primary goes
/// silent, the hedge rescues it on the healthy replica, and the bytes
/// match asking the healthy replica directly.
#[test]
fn stalled_replica_is_hedged_around_with_identical_bytes() {
    let dir = scratch("fleet-stall");
    let mut stalled = ServerConfig::local_default(engine_in(
        &dir.join("stalled"),
        Some("stall:p=1,stage=serve"),
    ));
    stalled.workers = 1;
    let mut healthy = ServerConfig::local_default(engine_in(&dir.join("healthy"), None));
    healthy.workers = 1;

    // The stalled replica cannot answer a shutdown request — its handler
    // stalls too — so both replicas drain in-process via handles.
    let bind = |config: ServerConfig| {
        let mut config = config;
        config.addr = "127.0.0.1:0".to_owned();
        let server = Server::bind(config).expect("bind loopback");
        let addr = server.local_addr().expect("bound address").to_string();
        let drain = server.drain_handle();
        (addr, drain, std::thread::spawn(move || server.run()))
    };
    let (stalled_addr, stalled_drain, stalled_daemon) = bind(stalled);
    let (healthy_addr, healthy_drain, healthy_daemon) = bind(healthy);

    // Stalled replica first: never-tried replicas rank first, and it
    // never produces a latency sample, so it stays the primary and every
    // call exercises the hedge path.
    let mut config = FleetConfig::new(vec![stalled_addr, healthy_addr.clone()]);
    config.connect_timeout_ms = Some(1_000);
    config.response_timeout = Duration::from_secs(5);
    config.hedge_floor = Duration::from_millis(100);
    config.probe = false;
    let fleet = FleetClient::new(config).expect("two-replica fleet");

    let mix = fleet_mix(3);
    let mut wires = Vec::new();
    for payload in &mix {
        let response = fleet.call(payload).expect("the hedge must rescue the call");
        assert_eq!(response.status(), "ok", "{}", response.to_wire());
        wires.push(response.to_wire());
    }
    let stats = fleet.stats();
    assert!(
        stats.hedges_won.load(std::sync::atomic::Ordering::Relaxed) >= 1,
        "a hedge must have won against the stalled primary"
    );
    drop(fleet);

    // The healthy replica asked directly must return the same bytes the
    // fleet returned.
    let mut client = Client::connect(&healthy_addr).expect("connect healthy replica");
    client
        .set_response_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    for (payload, fleet_wire) in mix.iter().zip(&wires) {
        let direct_wire = client.call(payload).expect("direct response").to_wire();
        assert_eq!(&direct_wire, fleet_wire, "hedged bytes must match for {payload}");
    }
    drop(client);

    stalled_drain.drain();
    healthy_drain.drain();
    stalled_daemon.join().expect("stalled daemon").expect("clean drain");
    healthy_daemon.join().expect("healthy daemon").expect("clean drain");
    let _ = std::fs::remove_dir_all(&dir);
}
