//! Golden corpus for the netlist import front-end: hand-written Verilog
//! and EDIF files under `tests/corpus/` covering the constructs real
//! exporters emit (non-ANSI and ANSI headers, bus ports, escaped
//! identifiers, constant ties, `(rename …)` forms, array ports, tie
//! cells) plus negative cases for the error taxonomy.
//!
//! Every positive file's imported structure and Verilog projection are
//! pinned in `tests/golden/import_corpus.txt` — any importer or exporter
//! drift trips the comparison loudly. Regenerate after an *intentional*
//! change with: `UPDATE_GOLDEN=1 cargo test --test import_corpus`

use aix::cells::Library;
use aix::netlist::{import_netlist, to_verilog, ImportError, ImportFormat, Netlist};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

const GOLDEN_PATH: &str = "tests/golden/import_corpus.txt";
const GOLDEN: &str = include_str!("golden/import_corpus.txt");

/// The positive corpus, in pinned order.
const POSITIVE: [&str; 8] = [
    "full_adder.v",
    "bus_mux.v",
    "escaped.v",
    "const_ties.v",
    "rca8.v",
    "half_adder.edif",
    "tie_bus.edif",
    "rca4.edif",
];

fn import_corpus_file(name: &str) -> Result<Netlist, ImportError> {
    let path = Path::new("tests/corpus").join(name);
    let source = std::fs::read_to_string(&path).expect("corpus file exists");
    let format = ImportFormat::from_path(&path).expect("corpus extensions are recognized");
    let cells = Arc::new(Library::nangate45_like());
    import_netlist(&source, format, &cells)
}

/// One corpus entry of the golden file: a summary line plus the imported
/// netlist's Verilog projection.
fn render_entry(name: &str, netlist: &Netlist) -> String {
    let stats = netlist.stats();
    let mut out = format!(
        "==== {name}: `{}` {} gate(s), {} net(s), {} input(s), {} output(s)\n",
        netlist.name(),
        stats.gate_count,
        stats.net_count,
        stats.input_count,
        stats.output_count
    );
    out.push_str(&to_verilog(netlist));
    out
}

#[test]
fn corpus_matches_the_pinned_golden() {
    let mut rendered = String::new();
    for name in POSITIVE {
        let netlist = import_corpus_file(name)
            .unwrap_or_else(|e| panic!("corpus file {name} must import: {e}"));
        netlist.validate().expect("imported corpus designs validate");
        let _ = write!(rendered, "{}", render_entry(name, &netlist));
    }
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden");
        return;
    }
    assert_eq!(
        rendered, GOLDEN,
        "imported corpus drifted from {GOLDEN_PATH}; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// Corpus designs behave: spot-check the functional semantics the files
/// encode, so the golden pins structure *and* the structure is right.
#[test]
fn corpus_designs_compute_what_they_claim() {
    // full_adder: 1+1+1 = 11b.
    let fa = import_corpus_file("full_adder.v").unwrap();
    assert_eq!(fa.eval(&[true, true, true]).unwrap(), vec![true, true]);
    // bus_mux: sel=0 picks a, sel=1 picks b (inputs a[4], b[4], sel).
    let mux = import_corpus_file("bus_mux.v").unwrap();
    let mut vector = vec![true, false, true, false, false, true, false, true, false];
    let y0 = mux.eval(&vector).unwrap();
    assert_eq!(y0, vec![true, false, true, false], "sel=0 must pass a");
    *vector.last_mut().unwrap() = true;
    let y1 = mux.eval(&vector).unwrap();
    assert_eq!(y1, vec![false, true, false, true], "sel=1 must pass b");
    // escaped: y = !(d0 ^ d1).
    let esc = import_corpus_file("escaped.v").unwrap();
    assert_eq!(esc.eval(&[true, false]).unwrap(), vec![false]);
    assert_eq!(esc.eval(&[true, true]).unwrap(), vec![true]);
    // const_ties: y = a & 1 | 0 = a; z = !(a & 0) = 1.
    let ties = import_corpus_file("const_ties.v").unwrap();
    assert_eq!(ties.eval(&[true]).unwrap(), vec![true, true]);
    assert_eq!(ties.eval(&[false]).unwrap(), vec![false, true]);
    // half_adder.edif: sum and carry of x+y.
    let ha = import_corpus_file("half_adder.edif").unwrap();
    assert_eq!(ha.eval(&[true, true]).unwrap(), vec![false, true]);
    // tie_bus.edif: q = d & 1 = d.
    let tie = import_corpus_file("tie_bus.edif").unwrap();
    assert_eq!(
        tie.eval(&[true, false]).unwrap(),
        vec![true, false],
        "AND with TIE1 must be the identity"
    );
    // The ripple-carry adders really add, LSB-first buses.
    use aix::netlist::{bus_from_u64, bus_to_u64};
    let rca8 = import_corpus_file("rca8.v").unwrap();
    let mut vector = bus_from_u64(173, 8);
    vector.extend(bus_from_u64(90, 8));
    vector.push(true);
    let out = rca8.eval(&vector).unwrap();
    assert_eq!(bus_to_u64(&out), 173 + 90 + 1, "rca8 must add with carry");
    let rca4 = import_corpus_file("rca4.edif").unwrap();
    let mut vector = bus_from_u64(11, 4);
    vector.extend(bus_from_u64(6, 4));
    vector.push(false);
    let out = rca4.eval(&vector).unwrap();
    assert_eq!(bus_to_u64(&out), 11 + 6, "rca4 must add");
}

/// Re-importing a corpus design's own re-export is a fixpoint, the same
/// invariant the synthesized round-trip suite proves at scale.
#[test]
fn corpus_reexports_are_fixpoints() {
    let cells = Arc::new(Library::nangate45_like());
    for name in POSITIVE {
        let netlist = import_corpus_file(name).unwrap();
        let first = to_verilog(&netlist);
        let again = aix::netlist::import_verilog(&first, &cells)
            .unwrap_or_else(|e| panic!("{name} re-import: {e}"));
        assert_eq!(first, to_verilog(&again), "{name} verilog fixpoint");
    }
}

#[test]
fn unknown_cell_is_reported_with_its_position() {
    let error = import_corpus_file("unknown_cell.v").expect_err("must fail");
    assert!(
        matches!(error, ImportError::UnknownCell { ref cell, .. } if cell == "BOGUS_X9"),
        "{error:?}"
    );
    let text = error.to_string();
    assert!(
        text.starts_with("4:12:"),
        "the message must lead with line:col: {text}"
    );
}

#[test]
fn double_driven_wire_is_reported() {
    let error = import_corpus_file("two_drivers.v").expect_err("must fail");
    assert!(
        matches!(error, ImportError::MultipleDrivers { ref name, .. } if name == "w"),
        "{error:?}"
    );
}
