//! Property tests for the netlist import front-end.
//!
//! Three families:
//!
//! 1. **Grammar-directed round trips** — random valid netlists (arbitrary
//!    DAG shapes, hostile port/wire names) export to Verilog and EDIF,
//!    re-import, and re-export byte-identically, and the import preserves
//!    functional behaviour.
//! 2. **Mutation fuzzing** — seeded byte mutations of valid exporter
//!    output must never panic the parsers: every outcome is either a
//!    successful import or a structured [`ImportError`] whose message
//!    renders.
//! 3. **Resource bounds** — truncated files and adversarially deep EDIF
//!    nesting fail cleanly (positioned errors, no stack overflow).

use aix::cells::{CellFunction, Library};
use aix::netlist::{
    import_edif, import_verilog, to_edif, to_verilog, ImportError, Netlist,
};
use proptest::prelude::*;
use std::sync::Arc;

fn lib() -> Arc<Library> {
    Arc::new(Library::nangate45_like())
}

/// A deterministic xorshift step.
fn next(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Builds a random combinational DAG: `inputs` hostile-named inputs, then
/// `gates` random non-sequential cells whose fanin is drawn from every
/// net created so far, with a few constants mixed in.
fn random_netlist(lib: &Arc<Library>, seed: u64, inputs: usize, gates: usize) -> Netlist {
    // Names that stress the sanitizer: spaces, brackets, digits first,
    // keywords, duplicates-after-sanitizing.
    const NAMES: [&str; 8] = [
        "a", "data[3]", "3начало", "clk enable", "module", "a+b", "_", "véry-long.name",
    ];
    let mut state = seed | 1;
    let mut nl = Netlist::new(format!("rand_{seed}"), Arc::clone(lib));
    let mut nets = Vec::new();
    for i in 0..inputs {
        let base = NAMES[(next(&mut state) as usize) % NAMES.len()];
        nets.push(nl.add_input(format!("{base}{i}")));
    }
    let cells: Vec<_> = lib
        .iter()
        .filter(|(_, cell)| cell.function != CellFunction::Dff)
        .map(|(id, cell)| (id, cell.function.input_count()))
        .collect();
    for g in 0..gates {
        let (cell, arity) = cells[(next(&mut state) as usize) % cells.len()];
        let fanin: Vec<_> = (0..arity)
            .map(|_| {
                if next(&mut state) % 13 == 0 {
                    nl.constant(next(&mut state) % 2 == 0)
                } else {
                    nets[(next(&mut state) as usize) % nets.len()]
                }
            })
            .collect();
        let outs = nl.add_gate(cell, &fanin).expect("valid arity");
        if next(&mut state) % 3 == 0 {
            nl.mark_output(format!("out[{g}]"), outs[0]);
        }
        nets.extend(outs);
    }
    // Guarantee at least one output.
    nl.mark_output("last", *nets.last().expect("nonempty"));
    nl.validate().expect("random DAGs are valid by construction");
    nl
}

/// Random input vectors for `netlist`, derived from `seed`.
fn vectors(netlist: &Netlist, seed: u64, count: usize) -> Vec<Vec<bool>> {
    let mut state = seed | 1;
    (0..count)
        .map(|_| {
            (0..netlist.inputs().len())
                .map(|_| next(&mut state) % 2 == 0)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Export → import → re-export is the identity on both formats for
    /// arbitrary valid netlists, and the import computes the same function.
    #[test]
    fn random_netlists_round_trip(
        seed in any::<u64>(),
        inputs in 1usize..6,
        gates in 1usize..24,
    ) {
        let lib = lib();
        let original = random_netlist(&lib, seed, inputs, gates);

        let verilog = to_verilog(&original);
        let from_v = import_verilog(&verilog, &lib)
            .map_err(|e| TestCaseError::fail(format!("verilog import: {e}\n{verilog}")))?;
        prop_assert_eq!(&to_verilog(&from_v), &verilog, "verilog fixpoint");

        let edif = to_edif(&original);
        let from_e = import_edif(&edif, &lib)
            .map_err(|e| TestCaseError::fail(format!("edif import: {e}\n{edif}")))?;
        prop_assert_eq!(&to_edif(&from_e), &edif, "edif fixpoint");

        for vector in vectors(&original, seed ^ 0x5eed, 16) {
            let want = original.eval(&vector).expect("original evals");
            prop_assert_eq!(&from_v.eval(&vector).expect("import evals"), &want);
            prop_assert_eq!(&from_e.eval(&vector).expect("import evals"), &want);
        }
    }

    /// Seeded byte mutations of valid sources never panic either parser:
    /// the result is Ok or a structured error that renders.
    #[test]
    fn mutated_sources_never_panic(
        seed in any::<u64>(),
        mutations in 1usize..12,
    ) {
        let lib = lib();
        let base = random_netlist(&lib, seed, 3, 8);
        for (text, verilog) in [(to_verilog(&base), true), (to_edif(&base), false)] {
            let mut bytes = text.into_bytes();
            let mut state = seed | 1;
            for _ in 0..mutations {
                let at = (next(&mut state) as usize) % bytes.len();
                match next(&mut state) % 3 {
                    0 => bytes[at] = (next(&mut state) % 256) as u8,
                    1 => { bytes.remove(at); },
                    _ => bytes.insert(at, (next(&mut state) % 128) as u8),
                }
                if bytes.is_empty() {
                    bytes.push(b' ');
                }
            }
            let mutated = String::from_utf8_lossy(&bytes).into_owned();
            let lib = Arc::clone(&lib);
            let outcome = std::panic::catch_unwind(move || {
                let result = if verilog {
                    import_verilog(&mutated, &lib)
                } else {
                    import_edif(&mutated, &lib)
                };
                if let Err(error) = result {
                    prop_assert!(!error.to_string().is_empty());
                }
                Ok(())
            });
            match outcome {
                Ok(inner) => inner?,
                Err(_) => return Err(TestCaseError::fail("parser panicked on mutated input")),
            }
        }
    }

    /// Every prefix of a valid source fails cleanly (or parses, for
    /// prefixes that happen to be complete): no panic, positioned errors.
    #[test]
    fn truncated_sources_fail_cleanly(seed in any::<u64>(), stride in 1usize..37) {
        let lib = lib();
        let base = random_netlist(&lib, seed, 2, 6);
        for text in [to_verilog(&base), to_edif(&base)] {
            let mut cut = 0;
            while cut < text.len() {
                if let Some(prefix) = text.get(..cut) {
                    let _ = import_verilog(prefix, &lib).map_err(structured);
                    let _ = import_edif(prefix, &lib).map_err(structured);
                }
                cut += stride;
            }
        }
    }
}

/// Asserts an error is well-formed: it renders, and syntax errors carry a
/// position.
fn structured(error: ImportError) -> ImportError {
    let text = error.to_string();
    assert!(!text.is_empty());
    if let ImportError::Syntax { .. } = &error {
        assert!(error.loc().is_some(), "syntax errors must be positioned");
    }
    error
}

/// Adversarially deep EDIF nesting is capped, not a stack overflow.
#[test]
fn edif_deep_nesting_is_rejected() {
    let lib = lib();
    let bomb = format!("(edif x {}", "(a ".repeat(5000));
    match import_edif(&bomb, &lib) {
        Err(ImportError::DepthExceeded { limit, .. }) => assert!(limit >= 16),
        other => panic!("expected DepthExceeded, got {other:?}"),
    }
}

/// The deepest *accepted* nesting still parses without issue right below
/// the cap (the limit is a guard, not a functional restriction).
#[test]
fn shallow_nesting_is_unaffected() {
    let lib = lib();
    let nested = format!("(edif x {}{}", "(a ".repeat(40), ")".repeat(40));
    // Structurally meaningless but shallow: must fail on *content*, not
    // on depth.
    match import_edif(&nested, &lib) {
        Err(ImportError::DepthExceeded { .. }) => panic!("depth cap fired below its limit"),
        Err(_) | Ok(_) => {}
    }
}
