//! Round-trip differential suite for the netlist import front-end.
//!
//! Every synthesized component is a free conformance case: export it,
//! import the text back, and the result must be indistinguishable from
//! the original — byte-identical on a second export (the fixpoint), and
//! bit-identical under every analysis the flow runs (functional
//! simulation on both engines, switching activity, aged STA).

use aix::aging::{AgingModel, AgingScenario, Lifetime};
use aix::arith::{
    build_adder, build_mac, build_multiplier, AdderKind, ComponentSpec, MultiplierKind,
};
use aix::cells::Library;
use aix::netlist::{
    import_edif, import_verilog, to_edif, to_verilog, NetDriver, Netlist,
};
use aix::sim::{measure_errors_with, stress_pairs, Activity, SimEngine};
use aix::sta::{analyze, NetDelays, StressSource};
use std::sync::Arc;

fn cells() -> Arc<Library> {
    Arc::new(Library::nangate45_like())
}

/// Deterministic stimuli covering all primary inputs of `netlist`.
fn stimuli(netlist: &Netlist, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let inputs = netlist.inputs().len();
    let mut state = seed.wrapping_mul(2) | 1;
    (0..count)
        .map(|_| {
            (0..inputs)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 33) & 1 == 1
                })
                .collect()
        })
        .collect()
}

/// The generator sweep: every adder and multiplier architecture plus the
/// MAC, at widths 8/16/32, full precision and one reduced precision.
fn sweep(lib: &Arc<Library>) -> Vec<Netlist> {
    let mut designs = Vec::new();
    for &width in &[8usize, 16, 32] {
        let specs = [
            ComponentSpec::full(width),
            ComponentSpec::new(width, width - 2).expect("valid spec"),
        ];
        for spec in specs {
            for kind in AdderKind::ALL {
                designs.push(build_adder(lib, kind, spec).expect("adder builds"));
            }
            for kind in MultiplierKind::ALL {
                designs.push(build_multiplier(lib, kind, spec).expect("multiplier builds"));
            }
            designs.push(build_mac(lib, spec).expect("mac builds"));
        }
    }
    designs
}

/// Net correspondence between an original netlist and its re-import:
/// input bits pair by position, gate outputs by (gate, pin), constants
/// by value. Returns `(original net index, imported net index)` pairs.
fn correspondence(original: &Netlist, imported: &Netlist) -> Vec<(usize, usize)> {
    assert_eq!(original.inputs().len(), imported.inputs().len());
    assert_eq!(original.gate_count(), imported.gate_count());
    let mut pairs = Vec::with_capacity(original.net_count());
    for (a, b) in original.inputs().iter().zip(imported.inputs()) {
        pairs.push((a.index(), b.index()));
    }
    for ((ga, gate_a), (gb, gate_b)) in original.gates().zip(imported.gates()) {
        assert_eq!(ga.index(), gb.index(), "gate order must be preserved");
        assert_eq!(
            gate_a.cell, gate_b.cell,
            "gate {ga} must keep its cell through the round trip"
        );
        for (oa, ob) in gate_a.outputs.iter().zip(&gate_b.outputs) {
            pairs.push((oa.index(), ob.index()));
        }
    }
    for (id, net) in original.nets() {
        if let NetDriver::Constant(value) = net.driver {
            let twin = imported
                .nets()
                .find(|(_, n)| n.driver == NetDriver::Constant(value))
                .map(|(i, _)| i.index())
                .expect("imported netlist keeps the constant");
            pairs.push((id.index(), twin));
        }
    }
    pairs
}

/// Asserts the imported netlist is analysis-equivalent to the original:
/// identical activity on every corresponding net, identical per-gate
/// stress pairs, identical error statistics on both engines, and
/// 6-decimal-identical aged STA at fresh/10y/20y.
fn assert_equivalent(original: &Netlist, imported: &Netlist, label: &str) {
    let vectors = stimuli(original, 192, 0xA1C);

    // Switching activity, bit-identical per corresponding net.
    let act_orig = Activity::collect(original, vectors.iter().cloned()).expect("activity");
    let act_imp = Activity::collect(imported, vectors.iter().cloned()).expect("activity");
    for &(a, b) in &correspondence(original, imported) {
        assert_eq!(
            act_orig.probability_one(a).to_bits(),
            act_imp.probability_one(b).to_bits(),
            "{label}: signal probability differs on net pair ({a}, {b})"
        );
        assert_eq!(
            act_orig.toggle_rate(a).to_bits(),
            act_imp.toggle_rate(b).to_bits(),
            "{label}: toggle rate differs on net pair ({a}, {b})"
        );
    }

    // Per-gate stress extraction (activity → stress), bit-identical.
    let stress_orig = stress_pairs(original, &act_orig);
    let stress_imp = stress_pairs(imported, &act_imp);
    assert_eq!(stress_orig, stress_imp, "{label}: stress pairs differ");

    // Aged STA at fresh / 10y / 20y, to 6 decimals.
    let model = AgingModel::calibrated();
    let fresh_clock = analyze(original, &NetDelays::fresh(original))
        .expect("sta")
        .max_delay_ps();
    for (scenario, tag) in [
        (AgingScenario::Fresh, "fresh"),
        (AgingScenario::worst_case(Lifetime::YEARS_10), "10y"),
        (AgingScenario::worst_case(Lifetime::from_years(20.0)), "20y"),
    ] {
        let d_orig = NetDelays::aged(original, &model, scenario);
        let d_imp = NetDelays::aged(imported, &model, scenario);
        let t_orig = analyze(original, &d_orig).expect("sta").max_delay_ps();
        let t_imp = analyze(imported, &d_imp).expect("sta").max_delay_ps();
        assert!(
            (t_orig - t_imp).abs() < 5e-7,
            "{label}: {tag} critical path differs: {t_orig} vs {t_imp}"
        );
    }

    // Actual-case aging from the extracted stress, same tolerance.
    let d_orig = NetDelays::aged_with_stress(
        original,
        &model,
        &StressSource::PerGate(stress_orig),
        Lifetime::YEARS_10,
    );
    let d_imp = NetDelays::aged_with_stress(
        imported,
        &model,
        &StressSource::PerGate(stress_imp),
        Lifetime::YEARS_10,
    );
    let t_orig = analyze(original, &d_orig).expect("sta").max_delay_ps();
    let t_imp = analyze(imported, &d_imp).expect("sta").max_delay_ps();
    assert!(
        (t_orig - t_imp).abs() < 5e-7,
        "{label}: actual-case critical path differs: {t_orig} vs {t_imp}"
    );

    // Timing-error statistics under an aged netlist at the fresh clock,
    // bit-identical on both sim engines.
    let aged_orig = NetDelays::aged(
        original,
        &model,
        AgingScenario::worst_case(Lifetime::YEARS_10),
    );
    let aged_imp = NetDelays::aged(
        imported,
        &model,
        AgingScenario::worst_case(Lifetime::YEARS_10),
    );
    for engine in [SimEngine::Scalar, SimEngine::Packed] {
        let e_orig = measure_errors_with(
            original,
            &aged_orig,
            fresh_clock,
            vectors.iter().cloned(),
            engine,
        )
        .expect("measure");
        let e_imp = measure_errors_with(
            imported,
            &aged_imp,
            fresh_clock,
            vectors.iter().cloned(),
            engine,
        )
        .expect("measure");
        assert_eq!(
            e_orig, e_imp,
            "{label}: {engine:?} error statistics differ"
        );
    }
}

/// Verilog: export → import → re-export is a fixpoint, for every
/// generator kind × width × precision.
#[test]
fn verilog_reexport_is_a_fixpoint() {
    let lib = cells();
    for netlist in sweep(&lib) {
        let first = to_verilog(&netlist);
        let imported = import_verilog(&first, &lib)
            .unwrap_or_else(|e| panic!("{} fails to re-import: {e}", netlist.name()));
        let second = to_verilog(&imported);
        assert_eq!(first, second, "{} verilog re-export drifted", netlist.name());
    }
}

/// EDIF: export → import → re-export is a fixpoint, for every generator
/// kind × width × precision.
#[test]
fn edif_reexport_is_a_fixpoint() {
    let lib = cells();
    for netlist in sweep(&lib) {
        let first = to_edif(&netlist);
        let imported = import_edif(&first, &lib)
            .unwrap_or_else(|e| panic!("{} fails to re-import: {e}", netlist.name()));
        let second = to_edif(&imported);
        assert_eq!(first, second, "{} edif re-export drifted", netlist.name());
    }
}

/// Cross-format: importing the Verilog and the EDIF of the same design
/// yields structurally identical netlists. (Their `to_edif` outputs may
/// differ in `(rename …)` forms — EDIF preserves original bus-bit names
/// where Verilog text cannot — but the Verilog projection and the gate
/// structure must agree exactly.)
#[test]
fn verilog_and_edif_imports_agree() {
    let lib = cells();
    let netlist = build_adder(&lib, AdderKind::ALL[0], ComponentSpec::full(8)).expect("adder");
    let from_v = import_verilog(&to_verilog(&netlist), &lib).expect("verilog import");
    let from_e = import_edif(&to_edif(&netlist), &lib).expect("edif import");
    assert_eq!(to_verilog(&from_v), to_verilog(&from_e));
    assert_eq!(from_v.gate_count(), from_e.gate_count());
    for ((_, a), (_, b)) in from_v.gates().zip(from_e.gates()) {
        assert_eq!(a, b, "gate tables must match across formats");
    }
}

/// Imported adders are analysis-equivalent to their originals across
/// widths and aging scenarios (the full differential battery).
#[test]
fn imported_adders_are_analysis_equivalent() {
    let lib = cells();
    for &width in &[8usize, 16, 32] {
        for kind in AdderKind::ALL {
            let original =
                build_adder(&lib, kind, ComponentSpec::full(width)).expect("adder builds");
            let label = format!("{}", original.name());
            let imported = import_verilog(&to_verilog(&original), &lib).expect("import");
            assert_equivalent(&original, &imported, &label);
        }
    }
}

/// Same battery for multipliers (via EDIF, so both formats get deep
/// differential coverage) at widths 8 and 16.
#[test]
fn imported_multipliers_are_analysis_equivalent() {
    let lib = cells();
    for &width in &[8usize, 16] {
        for kind in MultiplierKind::ALL {
            let original =
                build_multiplier(&lib, kind, ComponentSpec::full(width)).expect("mult builds");
            let label = format!("{}", original.name());
            let imported = import_edif(&to_edif(&original), &lib).expect("import");
            assert_equivalent(&original, &imported, &label);
        }
    }
}

/// Same battery for the MAC — the widest-interface component (4×width
/// input bits) and the one whose truncated variants tie inputs to
/// constants, exercising the constant round trip.
#[test]
fn imported_macs_are_analysis_equivalent() {
    let lib = cells();
    for &width in &[8usize, 16] {
        for spec in [
            ComponentSpec::full(width),
            ComponentSpec::new(width, width - 2).expect("valid spec"),
        ] {
            let original = build_mac(&lib, spec).expect("mac builds");
            let label = format!("{}", original.name());
            let imported = import_verilog(&to_verilog(&original), &lib).expect("import");
            assert_equivalent(&original, &imported, &label);

            let imported_e = import_edif(&to_edif(&original), &lib).expect("edif import");
            assert_equivalent(&original, &imported_e, &label);
        }
    }
}
