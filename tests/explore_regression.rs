//! Pinned-seed regression for the approximation search: the 16-bit adder
//! searched for 48 candidates under the ten-year worst-case scenario must
//! reproduce the golden Pareto front byte for byte. The front JSON is a
//! deterministic function of (library, scenario, seed, vectors, budget) —
//! any drift in the variant generators, the optimizer, the aging model,
//! the STA or the search loop itself trips this test loudly.
//!
//! Regenerate the golden after an *intentional* change with:
//! `UPDATE_GOLDEN=1 cargo test --test explore_regression`

use aix::cells::Library;
use aix::core::ComponentKind;
use aix::explore::{explore, ExploreConfig};
use std::sync::Arc;

const GOLDEN_PATH: &str = "tests/golden/explore_adder16_10y.json";
const GOLDEN: &str = include_str!("golden/explore_adder16_10y.json");

fn pinned_config() -> ExploreConfig {
    let mut config = ExploreConfig::new(ComponentKind::Adder, 16);
    config.seed = 1;
    config.budget = 48;
    config.vectors = 512;
    config
}

#[test]
fn adder16_ten_year_front_matches_golden() {
    let cells = Arc::new(Library::nangate45_like());
    let outcome = explore(&cells, &pinned_config()).expect("pinned search");
    assert!(outcome.quarantined.is_empty() && !outcome.cancelled);
    let front = format!("{}\n", outcome.front_json());
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &front).expect("write golden");
        return;
    }
    assert_eq!(
        front, GOLDEN,
        "pinned adder-16 front drifted from {GOLDEN_PATH}; if the change \
         is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn pinned_front_is_job_count_invariant() {
    let cells = Arc::new(Library::nangate45_like());
    let mut parallel = pinned_config();
    parallel.jobs = 8;
    let outcome = explore(&cells, &parallel).expect("pinned search");
    assert_eq!(format!("{}\n", outcome.front_json()), GOLDEN);
}
