//! Trace-conformance tests: spawn the real `aix` binary with `--trace`
//! and assert over the recorded JSONL event stream — the trace doubles as
//! a conformance surface for the engine's cache, journal and quarantine
//! behaviour, so these tests pin exactly which work each run performed.
//!
//! All traced runs set `AIX_TRACE_TIMINGS=off` so events carry no
//! wall-clock fields and byte-level comparisons are meaningful.

use aix::obs::{Event, EventKind, TraceSummary};
use std::path::{Path, PathBuf};
use std::process::Command;

fn aix() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_aix"));
    cmd.env("AIX_TRACE_TIMINGS", "off");
    cmd
}

/// A fresh scratch directory unique to this test and process.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aix-trace-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Parses every line of a trace file; panics on any malformed event.
fn events(path: &Path) -> Vec<Event> {
    std::fs::read_to_string(path)
        .expect("trace file")
        .lines()
        .map(|line| Event::parse(line).expect("valid trace event"))
        .collect()
}

fn count(events: &[Event], kind: EventKind, name: &str) -> usize {
    events
        .iter()
        .filter(|e| e.kind == kind && e.name == name)
        .count()
}

/// `characterize --kind adder --width 8` against `cache`, tracing to
/// `trace`.
fn characterize_adder8(cache: &Path, trace: &Path, jobs: &str) -> std::process::Output {
    aix()
        .args(["characterize", "--kind", "adder", "--width", "8"])
        .args(["--effort", "medium", "--no-journal", "--jobs", jobs])
        .arg(format!("--cache={}", cache.display()))
        .arg(format!("--trace={}", trace.display()))
        .output()
        .expect("spawn aix")
}

#[test]
fn cold_and_warm_traces_pin_the_work_performed() {
    let dir = scratch("coldwarm");
    let cache = dir.join("cache");

    // Cold: every one of the 8 planned jobs (precisions 8..=1) misses the
    // cache and synthesizes.
    let cold_trace = dir.join("cold.jsonl");
    let output = characterize_adder8(&cache, &cold_trace, "2");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let cold = events(&cold_trace);
    assert_eq!(count(&cold, EventKind::Counter, "cache_miss"), 8);
    assert_eq!(count(&cold, EventKind::Counter, "cache_hit"), 0);
    assert_eq!(count(&cold, EventKind::SpanOpen, "synth"), 8);
    assert_eq!(
        count(&cold, EventKind::SpanOpen, "synthesize"),
        8,
        "each engine synth job reaches the synthesizer exactly once"
    );

    // Warm: the cache serves everything — exactly zero synthesis spans and
    // one cache-hit event per planned job.
    let warm_trace = dir.join("warm.jsonl");
    let output = characterize_adder8(&cache, &warm_trace, "2");
    assert!(output.status.success());
    let warm = events(&warm_trace);
    assert_eq!(count(&warm, EventKind::Counter, "cache_hit"), 8);
    assert_eq!(count(&warm, EventKind::Counter, "cache_miss"), 0);
    assert_eq!(count(&warm, EventKind::SpanOpen, "synth"), 0);
    assert_eq!(count(&warm, EventKind::SpanOpen, "synthesize"), 0);
    assert_eq!(count(&warm, EventKind::SpanOpen, "sta"), 0);
    assert_eq!(count(&warm, EventKind::Quarantine, "job"), 0);

    // Both traces pass strict validation: dense seq numbers, matched
    // span pairs, a schema-carrying run_start header.
    TraceSummary::from_events(&cold, true).expect("strict cold trace");
    TraceSummary::from_events(&warm, true).expect("strict warm trace");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_traces_are_byte_identical_across_worker_counts() {
    let dir = scratch("warmjobs");
    let cache = dir.join("cache");

    // Populate the cache once, then trace two warm runs with different
    // worker counts: with timings off the files must match byte for byte,
    // because every warm event is emitted from sequential code in plan
    // order and no event records the worker count.
    let output = characterize_adder8(&cache, &dir.join("seed.jsonl"), "2");
    assert!(output.status.success());
    let serial = dir.join("warm-j1.jsonl");
    let parallel = dir.join("warm-j3.jsonl");
    assert!(characterize_adder8(&cache, &serial, "1").status.success());
    assert!(characterize_adder8(&cache, &parallel, "3").status.success());
    let serial_bytes = std::fs::read(&serial).expect("serial trace");
    let parallel_bytes = std::fs::read(&parallel).expect("parallel trace");
    assert_eq!(
        serial_bytes, parallel_bytes,
        "warm traces must not depend on --jobs"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// A deterministic fault seed whose synth-stage panic spec fires on some
/// but not all of the four jobs of `characterize --kind adder --width 4`.
fn partial_panic_seed() -> (u64, usize) {
    use aix::faults::{FaultMode, FaultSpec, FaultStage};
    (0..10_000u64)
        .find_map(|seed| {
            let spec = FaultSpec {
                mode: FaultMode::Panic,
                probability: 0.5,
                seed,
                stage: Some(FaultStage::Synth),
                delay_ms: 0,
            };
            let doomed = (1..=4)
                .filter(|p| spec.fires(FaultStage::Synth, &format!("adder-w4-p{p}-ultra"), 1))
                .count();
            (doomed > 0 && doomed < 4).then_some((seed, doomed))
        })
        .expect("a partial seed exists")
}

#[test]
fn quarantine_events_mirror_job_failures_and_resume_traces_the_remainder() {
    let dir = scratch("fault");
    let journal = dir.join("journal");
    let (seed, doomed) = partial_panic_seed();

    let characterize = |extra: &[String], trace: &Path| {
        let mut cmd = aix();
        cmd.args(["characterize", "--kind", "adder", "--width", "4", "--no-cache"]);
        cmd.arg(format!("--journal={}", journal.display()));
        cmd.arg(format!("--trace={}", trace.display()));
        cmd.args(extra);
        cmd.arg("--out").arg(dir.join("lib.txt"));
        cmd.output().expect("spawn aix")
    };

    // Faulted run: `doomed` of the 4 jobs panic in synthesis and are
    // quarantined.
    let fault_trace = dir.join("fault.jsonl");
    let output = characterize(
        &[format!("--fault=panic:p=0.5,seed={seed},stage=synth")],
        &fault_trace,
    );
    assert_eq!(output.status.code(), Some(2), "partial campaigns exit 2");
    let trace = events(&fault_trace);
    TraceSummary::from_events(&trace, true).expect("strict faulted trace");

    // One quarantine event per reported JobFailure, in the same (plan)
    // order, each naming the failed site and stage.
    let quarantines: Vec<&Event> = trace
        .iter()
        .filter(|e| e.kind == EventKind::Quarantine)
        .collect();
    assert_eq!(quarantines.len(), doomed);
    let stderr = String::from_utf8_lossy(&output.stderr);
    let failed_lines: Vec<&str> = stderr
        .lines()
        .filter(|line| line.contains("job FAILED"))
        .collect();
    assert_eq!(failed_lines.len(), doomed, "stderr: {stderr}");
    for (event, line) in quarantines.iter().zip(&failed_lines) {
        assert_eq!(event.name, "job");
        assert_eq!(event.str_field("stage"), Some("synth"));
        let site = event.str_field("job").expect("quarantine names its job");
        // Site `adder-w4-p2-ultra` appears on stderr as `adder w4 p2`.
        let precision = site
            .split("-p")
            .nth(1)
            .and_then(|rest| rest.split('-').next())
            .expect("site carries a precision");
        assert!(
            line.contains(&format!("adder w4 p{precision}")),
            "quarantine {site} must match failure line `{line}`"
        );
    }

    // Resume: the journal replays the survivors (journal_hit each) and
    // only the quarantined remainder is synthesized again.
    let resume_trace = dir.join("resume.jsonl");
    let output = characterize(&["--resume".into()], &resume_trace);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let resumed = events(&resume_trace);
    TraceSummary::from_events(&resumed, true).expect("strict resume trace");
    assert_eq!(
        count(&resumed, EventKind::Counter, "journal_hit"),
        4 - doomed,
        "every earlier success replays from the journal"
    );
    assert_eq!(count(&resumed, EventKind::SpanOpen, "synth"), doomed);
    assert_eq!(count(&resumed, EventKind::Quarantine, "job"), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quiet_runs_are_silent_on_stderr() {
    let dir = scratch("quiet");
    for env_quiet in [false, true] {
        let mut cmd = aix();
        cmd.args(["characterize", "--kind", "adder", "--width", "4"]);
        cmd.args(["--no-cache", "--no-journal"]);
        if env_quiet {
            cmd.env("AIX_QUIET", "1");
        } else {
            cmd.arg("--quiet");
        }
        let output = cmd.output().expect("spawn aix");
        assert!(output.status.success());
        assert!(
            output.stderr.is_empty(),
            "quiet run (env: {env_quiet}) must not write to stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        assert!(
            !output.stdout.is_empty(),
            "quiet silences progress, not results"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_summarize_renders_the_table_and_validates_strictly() {
    let dir = scratch("summarize");
    let cache = dir.join("cache");
    let trace = dir.join("run.jsonl");
    assert!(characterize_adder8(&cache, &trace, "2").status.success());

    // `--strict --no-record`: the table renders from a fully validated
    // trace without touching the benchmark log.
    let output = aix()
        .args(["trace", "summarize", "--strict", "--no-record", "--file"])
        .arg(&trace)
        .output()
        .expect("spawn aix");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    for needle in ["stage", "synth", "cache_miss", "quarantines: 0"] {
        assert!(stdout.contains(needle), "summary table must mention `{needle}`:\n{stdout}");
    }

    // Without `--no-record` the summary is appended to the benchmark log
    // (relative to the working directory) as a reparseable record.
    let output = aix()
        .args(["trace", "summarize", "--file"])
        .arg(&trace)
        .current_dir(&dir)
        .output()
        .expect("spawn aix");
    assert!(output.status.success());
    let bench = std::fs::read_to_string(dir.join("out/BENCH_characterize.json"))
        .expect("benchmark log written");
    let record = bench
        .lines()
        .map(str::trim)
        .find(|line| line.starts_with("{\"label\":\"trace:"))
        .expect("trace summary record present");
    aix::obs::parse_object(record.trim_end_matches(',')).expect("record is valid JSON");

    // A torn final line (a crash mid-append) is tolerated leniently but
    // rejected under --strict.
    let torn = dir.join("torn.jsonl");
    let mut text = std::fs::read_to_string(&trace).expect("trace");
    text.push_str("{\"seq\":9999,\"ev\":\"counter\",\"na");
    std::fs::write(&torn, text).expect("write torn trace");
    let lenient = aix()
        .args(["trace", "summarize", "--no-record", "--file"])
        .arg(&torn)
        .output()
        .expect("spawn aix");
    assert!(lenient.status.success());
    assert!(String::from_utf8_lossy(&lenient.stdout).contains("torn tail: yes"));
    let strict = aix()
        .args(["trace", "summarize", "--strict", "--no-record", "--file"])
        .arg(&torn)
        .output()
        .expect("spawn aix");
    assert!(!strict.status.success(), "--strict must reject a torn trace");

    let _ = std::fs::remove_dir_all(&dir);
}
