//! Property-based tests over the core data structures and invariants.

use aix::aging::{AgingModel, Lifetime, StressFactor, StressPair};
use aix::arith::{build_adder, build_multiplier, AdderKind, ComponentSpec, MultiplierKind};
use aix::cells::Library;
use aix::netlist::{bus_from_u64, bus_to_u64};
use aix::sim::{reference_outputs, OperandSource, SimEngine, TimedSimulator, UniformOperands};
use aix::sta::{analyze, NetDelays};
use aix::synth::optimize;
use proptest::prelude::*;
use std::sync::Arc;

fn cells() -> Arc<Library> {
    Arc::new(Library::nangate45_like())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bus packing is a bijection on in-range values.
    #[test]
    fn bus_roundtrip(value in any::<u64>(), width in 1usize..=64) {
        let mask = if width == 64 { u64::MAX } else { (1 << width) - 1 };
        prop_assert_eq!(bus_to_u64(&bus_from_u64(value, width)), value & mask);
    }

    /// ΔVth is monotone in both stress and lifetime.
    #[test]
    fn delta_vth_monotone(
        s1 in 0.0f64..=1.0, s2 in 0.0f64..=1.0,
        t1 in 0.0f64..=20.0, t2 in 0.0f64..=20.0,
    ) {
        let model = AgingModel::calibrated();
        let (lo_s, hi_s) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let (lo_t, hi_t) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let lo = model.delta_vth(
            StressFactor::new(lo_s).expect("in range"),
            Lifetime::from_years(lo_t),
        );
        let hi = model.delta_vth(
            StressFactor::new(hi_s).expect("in range"),
            Lifetime::from_years(hi_t),
        );
        prop_assert!(lo.volts() <= hi.volts() + 1e-15);
    }

    /// The degradation factor is ≥ 1 and bounded for any stress pair.
    #[test]
    fn degradation_factor_bounded(p in 0.0f64..=1.0, n in 0.0f64..=1.0) {
        let model = AgingModel::calibrated();
        let pair = StressPair::new(
            StressFactor::new(p).expect("in range"),
            StressFactor::new(n).expect("in range"),
        );
        let f = model.pair_delay_factor(pair, Lifetime::YEARS_10);
        prop_assert!((1.0..1.3).contains(&f), "factor {}", f);
    }

    /// Adders of every architecture match u64 addition at random widths,
    /// precisions and operands, before and after optimization.
    #[test]
    fn adder_matches_reference(
        width in 2usize..=20,
        cut in 0usize..=6,
        a in any::<u64>(),
        b in any::<u64>(),
        kind_index in 0usize..4,
    ) {
        let precision = width.saturating_sub(cut).max(1);
        let spec = ComponentSpec::new(width, precision).expect("valid");
        let kind = AdderKind::ALL[kind_index];
        let netlist = build_adder(&cells(), kind, spec).expect("build");
        let optimized = optimize(&netlist).expect("optimize");
        let mask = (1u64 << width) - 1;
        let (a, b) = (a & mask, b & mask);
        let expect = spec.truncate(a) + spec.truncate(b);
        let mut inputs = bus_from_u64(a, width);
        inputs.extend(bus_from_u64(b, width));
        prop_assert_eq!(bus_to_u64(&netlist.eval(&inputs).expect("eval")), expect);
        prop_assert_eq!(bus_to_u64(&optimized.eval(&inputs).expect("eval")), expect);
    }

    /// Multipliers of every architecture match u64 multiplication.
    #[test]
    fn multiplier_matches_reference(
        width in 2usize..=10,
        cut in 0usize..=4,
        a in any::<u64>(),
        b in any::<u64>(),
        kind_index in 0usize..3,
    ) {
        let precision = width.saturating_sub(cut).max(1);
        let spec = ComponentSpec::new(width, precision).expect("valid");
        let kind = MultiplierKind::ALL[kind_index];
        let netlist = build_multiplier(&cells(), kind, spec).expect("build");
        let mask = (1u64 << width) - 1;
        let (a, b) = (a & mask, b & mask);
        let expect = spec.truncate(a) * spec.truncate(b);
        let mut inputs = bus_from_u64(a, width);
        inputs.extend(bus_from_u64(b, width));
        prop_assert_eq!(bus_to_u64(&netlist.eval(&inputs).expect("eval")), expect);
    }

    /// STA arrival times never decrease under aging, on any net.
    #[test]
    fn sta_monotone_under_aging(width in 2usize..=12, years in 0.5f64..=10.0) {
        let netlist = build_adder(
            &cells(),
            AdderKind::CarrySelect,
            ComponentSpec::full(width),
        )
        .expect("build");
        let model = AgingModel::calibrated();
        let fresh = analyze(&netlist, &NetDelays::fresh(&netlist)).expect("STA");
        let aged = analyze(
            &netlist,
            &NetDelays::aged(
                &netlist,
                &model,
                aix::aging::AgingScenario::worst_case(Lifetime::from_years(years)),
            ),
        )
        .expect("STA");
        for (f, a) in fresh.arrivals().iter().zip(aged.arrivals()) {
            prop_assert!(a + 1e-12 >= *f);
        }
    }

    /// The timed simulator's settled state always equals the functional
    /// evaluation, regardless of clock or vector history.
    #[test]
    fn timed_sim_settles_to_functional(
        width in 2usize..=10,
        clock in 1.0f64..=2000.0,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let netlist = build_adder(
            &cells(),
            AdderKind::RippleCarry,
            ComponentSpec::full(width),
        )
        .expect("build");
        let delays = NetDelays::fresh(&netlist);
        let mut sim = TimedSimulator::new(&netlist, &delays).expect("simulator");
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = (1u64 << width) - 1;
        for _ in 0..8 {
            let a = rng.gen::<u64>() & mask;
            let b = rng.gen::<u64>() & mask;
            let mut inputs = bus_from_u64(a, width);
            inputs.extend(bus_from_u64(b, width));
            let out = sim.step(&inputs, clock).expect("step");
            prop_assert_eq!(bus_to_u64(&out.settled), a + b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random adder-variant configurations always produce well-formed,
    /// schedulable netlists that survive optimization, build
    /// deterministically, and report consistent gate counts.
    #[test]
    fn adder_variants_are_well_formed(
        width in 2usize..=12,
        kind_index in 0usize..4,
        precision_cut in 0usize..=4,
        lower_or in 0usize..=8,
        approx_fa in 0usize..=4,
        segment in 0usize..=8,
    ) {
        use aix::arith::AdderVariant;
        let precision = width.saturating_sub(precision_cut).max(1);
        let variant = AdderVariant {
            kind: AdderKind::ALL[kind_index],
            spec: ComponentSpec::new(width, precision).expect("valid spec"),
            lower_or_bits: lower_or.min(width - 1),
            approx_fa_bits: approx_fa.min(width - 1),
            segment_bits: segment % width,
        };
        let netlist = variant.build(&cells()).expect("variant builds");
        prop_assert!(netlist.validate().is_ok(), "variant netlist must validate");
        prop_assert!(netlist.schedule().is_ok(), "variant netlist must schedule");
        let stats = netlist.stats();
        prop_assert!(stats.gate_count > 0);
        let optimized = optimize(&netlist).expect("variant optimizes");
        prop_assert!(optimized.validate().is_ok());
        prop_assert!(optimized.stats().gate_count <= stats.gate_count);
        // Determinism: a second build is gate-for-gate the same circuit
        // with the same behaviour on seeded stimuli.
        let again = variant.build(&cells()).expect("variant rebuilds");
        prop_assert_eq!(again.stats().gate_count, stats.gate_count);
        let stimuli: Vec<Vec<bool>> = UniformOperands::new(width, 3)
            .vectors(64)
            .collect();
        let first = reference_outputs(&netlist, &stimuli, SimEngine::Packed)
            .expect("simulate");
        let second = reference_outputs(&again, &stimuli, SimEngine::Packed)
            .expect("simulate rebuild");
        prop_assert_eq!(first, second, "variant builds must be deterministic");
    }

    /// Random multiplier-variant configurations are equally well-formed:
    /// acyclic, optimizable, deterministic for a fixed seed.
    #[test]
    fn multiplier_variants_are_well_formed(
        width in 2usize..=8,
        kind_index in 0usize..3,
        precision_cut in 0usize..=3,
        pruned in 0usize..=6,
        merge_lower_or in 0usize..=6,
    ) {
        use aix::arith::MultiplierVariant;
        let precision = width.saturating_sub(precision_cut).max(1);
        let variant = MultiplierVariant {
            kind: MultiplierKind::ALL[kind_index],
            spec: ComponentSpec::new(width, precision).expect("valid spec"),
            pruned_columns: pruned.min(2 * width - 2),
            merge_lower_or: merge_lower_or.min(2 * width - 2),
        };
        let netlist = variant.build(&cells()).expect("variant builds");
        prop_assert!(netlist.validate().is_ok());
        prop_assert!(netlist.schedule().is_ok());
        let stats = netlist.stats();
        prop_assert!(stats.gate_count > 0);
        let optimized = optimize(&netlist).expect("variant optimizes");
        prop_assert!(optimized.validate().is_ok());
        let stimuli: Vec<Vec<bool>> = UniformOperands::new(width, 5)
            .vectors(64)
            .collect();
        let scalar = reference_outputs(&netlist, &stimuli, SimEngine::Scalar)
            .expect("scalar");
        let packed = reference_outputs(&netlist, &stimuli, SimEngine::Packed)
            .expect("packed");
        prop_assert_eq!(scalar, packed, "engines must agree on variant netlists");
    }
}
