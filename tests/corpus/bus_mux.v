// ANSI-header bus ports and positional instance connections: a 4-bit
// 2:1 multiplexer built from MUX2 primitives (select on pin c).
module bus_mux(input [3:0] a, b, input sel, output [3:0] y);
  MUX2_X1 m0 (a[0], b[0], sel, y[0]);
  MUX2_X1 m1 (a[1], b[1], sel, y[1]);
  MUX2_X1 m2 (a[2], b[2], sel, y[2]);
  MUX2_X1 m3 (a[3], b[3], sel, y[3]);
endmodule
