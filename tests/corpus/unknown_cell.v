// Negative case: the instantiated cell exists in no library and matches
// no alias — the importer must report UnknownCell with its position.
module unknown_cell(input a, output y);
  BOGUS_X9 u0 (.a(a), .y(y));
endmodule
