// Hand-written 8-bit ripple-carry adder: the canonical imported design
// for the aging flow — truncating LSBs shortens the carry chain, so
// Eq. 2 can trade precision for aged timing slack.
module rca8(input [7:0] a, input [7:0] b, input cin,
            output [7:0] sum, output cout);
  wire c0, c1, c2, c3, c4, c5, c6;
  FA_X1 fa0 (.a(a[0]), .b(b[0]), .c(cin), .y(sum[0]), .co(c0));
  FA_X1 fa1 (.a(a[1]), .b(b[1]), .c(c0), .y(sum[1]), .co(c1));
  FA_X1 fa2 (.a(a[2]), .b(b[2]), .c(c1), .y(sum[2]), .co(c2));
  FA_X1 fa3 (.a(a[3]), .b(b[3]), .c(c2), .y(sum[3]), .co(c3));
  FA_X1 fa4 (.a(a[4]), .b(b[4]), .c(c3), .y(sum[4]), .co(c4));
  FA_X1 fa5 (.a(a[5]), .b(b[5]), .c(c4), .y(sum[5]), .co(c5));
  FA_X1 fa6 (.a(a[6]), .b(b[6]), .c(c5), .y(sum[6]), .co(c6));
  FA_X1 fa7 (.a(a[7]), .b(b[7]), .c(c6), .y(sum[7]), .co(cout));
endmodule
