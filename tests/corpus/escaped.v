// Escaped identifiers: synthesis tools emit these for names with
// characters outside [A-Za-z0-9_$]. The importer must keep them distinct
// and the re-export must stay collision-free.
module escaped(\data[0] , \data[1] , \out! );
  input \data[0] ;
  input \data[1] ;
  output \out! ;

  wire \n#1 ;
  XOR2_X1 g0 (.a(\data[0] ), .b(\data[1] ), .y(\n#1 ));
  INV_X1 g1 (.a(\n#1 ), .y(\out! ));
endmodule
