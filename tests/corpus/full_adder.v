// Hand-written single-bit full adder in the classic non-ANSI style:
// the header lists port names, directions follow in the body.
module full_adder(a, b, cin, sum, cout);
  input a;
  input b;
  input cin;
  output sum;
  output cout;

  FA_X1 u_fa (.a(a), .b(b), .c(cin), .y(sum), .co(cout));
endmodule
