// Negative case: two gate outputs drive the same wire — structurally
// illegal for a combinational netlist, reported as MultipleDrivers.
module two_drivers(input a, input b, output y);
  wire w;
  INV_X1 g0 (.a(a), .y(w));
  INV_X1 g1 (.a(b), .y(w));
  BUF_X1 g2 (.a(w), .y(y));
endmodule
