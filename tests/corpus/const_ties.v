// Constant ties: literal 1'b0/1'b1 connections, the Verilog spelling of
// tie cells. Constant propagation downstream must see real constants.
module const_ties(input a, output y, output z);
  wire t;
  AND2_X1 g0 (.a(a), .b(1'b1), .y(t));
  OR2_X1 g1 (.a(t), .b(1'b0), .y(y));
  NAND2_X1 g2 (.a(a), .b(1'b0), .y(z));
endmodule
