//! End-to-end tests of the `aix` command-line tool: spawn the real binary
//! and check its observable behaviour.

use std::process::Command;

fn aix() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aix"))
}

#[test]
fn help_lists_every_command() {
    let output = aix().arg("help").output().expect("spawn aix");
    assert!(output.status.success());
    let text = String::from_utf8_lossy(&output.stdout);
    for command in ["characterize", "flow", "error-rate", "quality", "export"] {
        assert!(text.contains(command), "help must mention `{command}`");
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let output = aix().arg("frobnicate").output().expect("spawn aix");
    assert!(!output.status.success());
    let text = String::from_utf8_lossy(&output.stderr);
    assert!(text.contains("unknown command"));
    assert!(text.contains("usage:"));
}

#[test]
fn characterize_emits_a_parseable_library() {
    let dir = std::env::temp_dir().join("aix-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out = dir.join("adder8.txt");
    let output = aix()
        .args([
            "characterize",
            "--kind",
            "adder",
            "--width",
            "8",
            "--effort",
            "medium",
            "--out",
        ])
        .arg(&out)
        .output()
        .expect("spawn aix");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(&out).expect("library written");
    let library = aix::core::ApproxLibrary::from_text(&text).expect("parseable artifact");
    assert!(library
        .get(aix::core::ComponentKind::Adder, 8)
        .is_some());
    // The summary lines report Eq. 2 outcomes.
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("Eq. 2"));
}

#[test]
fn missing_required_flag_is_a_clean_error() {
    let output = aix().args(["characterize"]).output().expect("spawn aix");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("--kind is required"));
}

#[test]
fn error_rate_reports_percentage() {
    let output = aix()
        .args([
            "error-rate",
            "--kind",
            "adder",
            "--width",
            "12",
            "--effort",
            "medium",
            "--vectors",
            "200",
            "--years",
            "10",
        ])
        .output()
        .expect("spawn aix");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("erroneous outputs"));
    assert!(stdout.contains("10y(WC)"));
}
