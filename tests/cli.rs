//! End-to-end tests of the `aix` command-line tool: spawn the real binary
//! and check its observable behaviour.

use std::process::Command;

fn aix() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aix"))
}

#[test]
fn help_lists_every_command() {
    let output = aix().arg("help").output().expect("spawn aix");
    assert!(output.status.success());
    let text = String::from_utf8_lossy(&output.stdout);
    for command in ["import", "characterize", "explore", "flow", "verify", "error-rate", "quality", "export"] {
        assert!(text.contains(command), "help must mention `{command}`");
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let output = aix().arg("frobnicate").output().expect("spawn aix");
    assert!(!output.status.success());
    let text = String::from_utf8_lossy(&output.stderr);
    assert!(text.contains("unknown command"));
    assert!(text.contains("usage:"));
}

#[test]
fn characterize_emits_a_parseable_library() {
    let dir = std::env::temp_dir().join("aix-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out = dir.join("adder8.txt");
    let output = aix()
        .args([
            "characterize",
            "--kind",
            "adder",
            "--width",
            "8",
            "--effort",
            "medium",
            "--out",
        ])
        .arg(&out)
        .output()
        .expect("spawn aix");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(&out).expect("library written");
    let library = aix::core::ApproxLibrary::from_text(&text).expect("parseable artifact");
    assert!(library
        .get(aix::core::ComponentKind::Adder, 8)
        .is_some());
    // The summary lines report Eq. 2 outcomes.
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("Eq. 2"));
}

#[test]
fn explore_prints_a_front_and_writes_the_report() {
    let dir = std::env::temp_dir().join(format!("aix-cli-explore-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out = dir.join("front.json");
    let output = aix()
        .args([
            "explore", "--kind", "adder", "--width", "8", "--budget", "24", "--vectors", "256",
            "--no-cache", "--out",
        ])
        .arg(&out)
        .output()
        .expect("spawn aix");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("candidate"), "front table header missing");
    assert!(stdout.contains("add-csel_8b_lo0_afa0_seg0"), "exact anchor missing");
    let report = std::fs::read_to_string(&out).expect("report written");
    assert!(report.contains("\"status\":\"complete\""));
    assert!(report.contains("\"front\":["));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explore_quarantines_injected_faults_and_exits_partial() {
    let output = aix()
        .args([
            "explore", "--kind", "adder", "--width", "8", "--budget", "24", "--vectors", "256",
            "--no-cache", "--fault", "panic:p=0.3,seed=9,stage=synth",
        ])
        .output()
        .expect("spawn aix");
    assert_eq!(
        output.status.code(),
        Some(2),
        "injected faults must yield the partial exit code; stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("QUARANTINED"), "stderr: {stderr}");
    assert!(stderr.contains("search PARTIAL"), "stderr: {stderr}");
    // Survivors still form a front.
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.lines().count() > 2, "partial front must still print");
}

#[test]
fn explore_honors_a_deadline_mid_search() {
    // A budget far beyond what half a second (of debug-build evaluation)
    // can score: the deadline token must cut the search short, and the
    // partially explored front must still be reported.
    let output = aix()
        .args([
            "explore", "--kind", "adder", "--width", "12", "--budget", "1000000", "--vectors",
            "8192", "--no-cache", "--deadline", "0.5",
        ])
        .output()
        .expect("spawn aix");
    assert_eq!(
        output.status.code(),
        Some(2),
        "a mid-search deadline must yield the partial exit code; stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("deadline hit"), "stderr: {stderr}");
}

#[test]
fn missing_required_flag_is_a_clean_error() {
    let output = aix().args(["characterize"]).output().expect("spawn aix");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("--kind is required"));
}

/// Writes a quick honest 12-bit adder library to a temp file and returns
/// its path.
fn quick_library_file(name: &str) -> std::path::PathBuf {
    use aix::core::{characterize_component, ApproxLibrary, CharacterizationConfig, ComponentKind};
    let cells = std::sync::Arc::new(aix::cells::Library::nangate45_like());
    let mut library = ApproxLibrary::new();
    library.insert(
        characterize_component(
            &cells,
            &CharacterizationConfig::quick(ComponentKind::Adder, 12),
        )
        .expect("characterize"),
    );
    let dir = std::env::temp_dir().join("aix-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, library.to_text()).expect("write library");
    path
}

#[test]
fn verify_report_is_deterministic_per_seed() {
    let library = quick_library_file("verify-seed.txt");
    let run = |seed: &str| {
        let output = aix()
            .args(["verify", "--samples", "8", "--seed", seed, "--library"])
            .arg(&library)
            .output()
            .expect("spawn aix");
        assert!(
            output.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8_lossy(&output.stdout).into_owned()
    };
    let first = run("11");
    let second = run("11");
    assert_eq!(first, second, "same seed must reproduce the identical report");
    assert!(first.contains("seed 11"));
    assert!(first.contains("PASS"));
    let other = run("12");
    assert_ne!(first, other, "a different seed must draw different samples");
}

#[test]
fn verify_exits_nonzero_on_corrupted_library_under_failfast() {
    let honest = quick_library_file("verify-corrupt.txt");
    // Corrupt the artifact: claim full precision meets the guarantee under
    // 10-year worst-case aging by copying the fresh delay over the aged one.
    let text = std::fs::read_to_string(&honest).expect("read library");
    let fresh_delay = text
        .lines()
        .find_map(|l| l.strip_prefix("entry 12 fresh "))
        .expect("fresh full-precision entry")
        .to_owned();
    let corrupted: String = text
        .lines()
        .map(|l| {
            if l.starts_with("entry 12 wc:10 ") {
                format!("entry 12 wc:10 {fresh_delay}\n")
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    let path = std::env::temp_dir().join("aix-cli-test/verify-corrupted.txt");
    std::fs::write(&path, corrupted).expect("write corrupted library");

    let nominal = [
        "--samples",
        "1",
        "--sigma-global",
        "0",
        "--sigma-gate",
        "0",
        "--vectors",
        "0",
    ];
    let output = aix()
        .arg("verify")
        .args(nominal)
        .arg("--library")
        .arg(&path)
        .output()
        .expect("spawn aix");
    assert!(
        !output.status.success(),
        "failfast must exit non-zero on a violated guarantee"
    );
    assert!(String::from_utf8_lossy(&output.stdout).contains("FAIL"));

    // The same campaign under --policy warn reports but exits zero.
    let output = aix()
        .arg("verify")
        .args(nominal)
        .args(["--policy", "warn", "--library"])
        .arg(&path)
        .output()
        .expect("spawn aix");
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("FAIL"));
}

#[test]
fn bad_option_values_name_the_flag() {
    let output = aix()
        .args(["verify", "--samples", "banana"])
        .output()
        .expect("spawn aix");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--samples") && stderr.contains("banana"),
        "error must name the flag and value: {stderr}"
    );

    let output = aix()
        .args(["flow", "--verify", "sometimes"])
        .output()
        .expect("spawn aix");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--verify") && stderr.contains("sometimes"));

    let output = aix()
        .args(["error-rate", "--kind", "frobnicator"])
        .output()
        .expect("spawn aix");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--kind") && stderr.contains("frobnicator"));
}

#[test]
fn garbage_env_jobs_is_rejected_like_the_flag() {
    let base = [
        "characterize",
        "--kind",
        "adder",
        "--width",
        "4",
        "--no-cache",
        "--no-journal",
    ];
    let output = aix()
        .args(base)
        .env("AIX_JOBS", "three")
        .output()
        .expect("spawn aix");
    assert!(!output.status.success());
    let env_stderr = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(
        env_stderr.contains("AIX_JOBS") && env_stderr.contains("three"),
        "a garbage environment value must be diagnosed, not ignored: {env_stderr}"
    );

    // The same value through the flag earns the same treatment.
    let output = aix()
        .args(base)
        .args(["--jobs", "three"])
        .output()
        .expect("spawn aix");
    assert!(!output.status.success());
    let flag_stderr = String::from_utf8_lossy(&output.stderr);
    assert!(flag_stderr.contains("--jobs") && flag_stderr.contains("three"));
}

#[test]
fn injected_faults_quarantine_jobs_and_resume_is_byte_identical() {
    use aix::faults::{FaultMode, FaultSpec, FaultStage};
    let dir = std::env::temp_dir().join(format!("aix-cli-fault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let journal = dir.join("journal");

    // A seed whose panic spec fires on some but not all of the four
    // synthesis sites of `characterize --kind adder --width 4`.
    let seed = (0..10_000u64)
        .find(|&seed| {
            let spec = FaultSpec {
                mode: FaultMode::Panic,
                probability: 0.5,
                seed,
                stage: Some(FaultStage::Synth),
                delay_ms: 0,
            };
            let doomed = (1..=4)
                .filter(|p| spec.fires(FaultStage::Synth, &format!("adder-w4-p{p}-ultra"), 1))
                .count();
            doomed > 0 && doomed < 4
        })
        .expect("a partial seed exists");

    let characterize = |extra: &[String], out: &std::path::Path| {
        let mut cmd = aix();
        cmd.args(["characterize", "--kind", "adder", "--width", "4", "--no-cache"]);
        cmd.args(extra);
        cmd.arg("--out").arg(out);
        cmd.output().expect("spawn aix")
    };
    let journal_flag = || format!("--journal={}", journal.display());

    let reference = dir.join("ref.txt");
    let output = characterize(&["--no-journal".into()], &reference);
    assert!(output.status.success(), "fault-free run completes");

    // Faulted run: the partial exit code, a failure report naming the
    // jobs, and a journal recording them.
    let partial = dir.join("part.txt");
    let output = characterize(
        &[
            journal_flag(),
            format!("--fault=panic:p=0.5,seed={seed},stage=synth"),
        ],
        &partial,
    );
    assert_eq!(output.status.code(), Some(2), "partial campaigns exit 2");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("job FAILED") && stderr.contains("adder w4"),
        "failures are reported by job: {stderr}"
    );
    assert!(stderr.contains("--resume"), "the report suggests resuming");

    // Resume without faults: completes and matches the reference bytes.
    let resumed = dir.join("resumed.txt");
    let output = characterize(&[journal_flag(), "--resume".into()], &resumed);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let reference_text = std::fs::read_to_string(&reference).expect("reference");
    let resumed_text = std::fs::read_to_string(&resumed).expect("resumed");
    assert_eq!(
        resumed_text, reference_text,
        "resumed output is byte-identical to the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_library_file_error_names_the_path() {
    let output = aix()
        .args(["verify", "--library", "/nonexistent/lib.txt"])
        .output()
        .expect("spawn aix");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("/nonexistent/lib.txt"));
}

#[test]
fn import_summarizes_and_reemits_corpus_designs() {
    let dir = std::env::temp_dir().join(format!("aix-cli-import-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let reemitted = dir.join("rca8.edif");
    // Integration tests run from the workspace root, so the corpus is
    // reachable by relative path.
    let output = aix()
        .args(["import", "tests/corpus/rca8.v", "--emit", "edif", "--out"])
        .arg(&reemitted)
        .output()
        .expect("spawn aix");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("`rca8` 8 gate(s)"), "summary line: {stdout}");

    // The re-emitted EDIF imports too, closing the cross-format loop.
    let output = aix().arg("import").arg(&reemitted).output().expect("spawn aix");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn import_errors_name_file_line_and_column() {
    let dir = std::env::temp_dir().join("aix-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("broken.v");
    std::fs::write(&path, "module broken(a;\n").expect("write");
    let output = aix().arg("import").arg(&path).output().expect("spawn aix");
    assert_eq!(output.status.code(), Some(1), "nothing imported exits 1");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("broken.v:1:16:"),
        "errors must carry file:line:col: {stderr}"
    );
}

#[test]
fn import_exits_partial_when_some_files_fail() {
    let dir = std::env::temp_dir().join("aix-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("broken2.v");
    std::fs::write(&path, "module broken(\n").expect("write");
    let output = aix()
        .args(["import", "tests/corpus/full_adder.v"])
        .arg(&path)
        .output()
        .expect("spawn aix");
    assert_eq!(
        output.status.code(),
        Some(2),
        "a mixed batch exits 2; stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(String::from_utf8_lossy(&output.stdout).contains("full_adder"));
}

#[test]
fn import_fault_probe_quarantines_the_file() {
    // A certain-fire import-stage panic: the file is quarantined (not a
    // crash), and with no survivors the exit code is 1.
    let output = aix()
        .args([
            "import",
            "tests/corpus/full_adder.v",
            "--fault",
            "panic:p=1,seed=3,stage=import",
        ])
        .output()
        .expect("spawn aix");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("QUARANTINED"), "stderr: {stderr}");

    // The same plan scoped to another stage leaves the import untouched.
    let output = aix()
        .args([
            "import",
            "tests/corpus/full_adder.v",
            "--fault",
            "panic:p=1,seed=3,stage=synth",
        ])
        .output()
        .expect("spawn aix");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
}

/// The acceptance loop: the full aging flow (activity → aged STA → Eq. 2
/// precision selection) completes on one imported Verilog and one
/// imported EDIF corpus design.
#[test]
fn flow_completes_on_imported_corpus_designs() {
    for netlist in ["tests/corpus/rca8.v", "tests/corpus/rca4.edif"] {
        let output = aix()
            .args(["flow", "--netlist", netlist, "--vectors", "64"])
            .output()
            .expect("spawn aix");
        assert!(
            output.status.success(),
            "{netlist} stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(stdout.contains("timing MET"), "{netlist}: {stdout}");
        assert!(stdout.contains("cut"), "{netlist}: {stdout}");
    }
}

#[test]
fn verify_netlist_reports_margins_and_honors_policy() {
    let output = aix()
        .args([
            "verify", "--netlist", "tests/corpus/rca8.v", "--vectors", "64", "--samples", "8",
        ])
        .output()
        .expect("spawn aix");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("PASS") && stdout.contains("margin"), "{stdout}");
}

#[test]
fn error_rate_reports_percentage() {
    let output = aix()
        .args([
            "error-rate",
            "--kind",
            "adder",
            "--width",
            "12",
            "--effort",
            "medium",
            "--vectors",
            "200",
            "--years",
            "10",
        ])
        .output()
        .expect("spawn aix");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("erroneous outputs"));
    assert!(stdout.contains("10y(WC)"));
}
