//! Differential correctness harness for the approximation search space:
//! every variant generator at its *exact* parameter settings must be
//! bit-identical to the canonical generator it approximates, on thousands
//! of seeded vectors, under both simulation engines, and at lane-tail
//! vector counts (1, 63, 64, 65) that stress the packed engine's partial
//! final word. The search reports "exact" variants as zero-error Pareto
//! anchors — this harness is what makes that claim trustworthy.

use aix::arith::{
    build_adder, build_mac, build_multiplier, AdderKind, AdderVariant, ComponentSpec, MacVariant,
    MultiplierKind, MultiplierVariant,
};
use aix::cells::Library;
use aix::netlist::Netlist;
use aix::sim::{reference_outputs, OperandSource, SimEngine, UniformOperands};
use std::sync::Arc;

fn cells() -> Arc<Library> {
    Arc::new(Library::nangate45_like())
}

/// Vector counts that exercise the packed engine's 64-lane word: a single
/// lane, one short of a full word, exactly one word, one word plus a
/// one-lane tail — and a full-size differential run.
const LANE_TAILS: [usize; 5] = [1, 63, 64, 65, 4_096];

/// Asserts that `variant` and `canonical` produce identical output bits on
/// `stimuli`, for both engines, and that the two engines agree with each
/// other on both netlists.
fn assert_bit_identical(canonical: &Netlist, variant: &Netlist, stimuli: &[Vec<bool>], what: &str) {
    let canonical_scalar =
        reference_outputs(canonical, stimuli, SimEngine::Scalar).expect("canonical scalar");
    let canonical_packed =
        reference_outputs(canonical, stimuli, SimEngine::Packed).expect("canonical packed");
    let variant_scalar =
        reference_outputs(variant, stimuli, SimEngine::Scalar).expect("variant scalar");
    let variant_packed =
        reference_outputs(variant, stimuli, SimEngine::Packed).expect("variant packed");
    assert_eq!(
        canonical_scalar, canonical_packed,
        "{what}: canonical engines disagree"
    );
    assert_eq!(
        variant_scalar, variant_packed,
        "{what}: variant engines disagree"
    );
    assert_eq!(
        canonical_scalar, variant_scalar,
        "{what}: exact-parameter variant diverges from the canonical netlist"
    );
}

#[test]
fn exact_adder_variants_match_canonical_adders() {
    let lib = cells();
    let width = 16;
    for kind in AdderKind::ALL {
        for spec in [
            ComponentSpec::full(width),
            ComponentSpec::new(width, 11).expect("valid spec"),
        ] {
            let canonical = build_adder(&lib, kind, spec).expect("canonical adder");
            let variant = AdderVariant::exact(kind, spec)
                .build(&lib)
                .expect("variant adder");
            for count in LANE_TAILS {
                let stimuli: Vec<Vec<bool>> =
                    UniformOperands::new(width, 7).vectors(count).collect();
                assert_bit_identical(
                    &canonical,
                    &variant,
                    &stimuli,
                    &format!("adder {} {spec} x{count}", kind.label()),
                );
            }
        }
    }
}

#[test]
fn exact_multiplier_variants_match_canonical_multipliers() {
    let lib = cells();
    let width = 8;
    for kind in MultiplierKind::ALL {
        for spec in [
            ComponentSpec::full(width),
            ComponentSpec::new(width, 5).expect("valid spec"),
        ] {
            let canonical = build_multiplier(&lib, kind, spec).expect("canonical multiplier");
            let variant = MultiplierVariant::exact(kind, spec)
                .build(&lib)
                .expect("variant multiplier");
            for count in LANE_TAILS {
                let stimuli: Vec<Vec<bool>> =
                    UniformOperands::new(width, 11).vectors(count).collect();
                assert_bit_identical(
                    &canonical,
                    &variant,
                    &stimuli,
                    &format!("multiplier {} {spec} x{count}", kind.label()),
                );
            }
        }
    }
}

#[test]
fn exact_mac_variants_match_canonical_macs() {
    let lib = cells();
    let width = 6;
    for spec in [
        ComponentSpec::full(width),
        ComponentSpec::new(width, 4).expect("valid spec"),
    ] {
        let mut variant_config = MacVariant::exact(ComponentSpec::full(width));
        variant_config.mult.spec = spec;
        let canonical = build_mac(&lib, spec).expect("canonical MAC");
        let variant = variant_config.build(&lib).expect("variant MAC");
        for count in LANE_TAILS {
            // A MAC consumes 4·width input bits (a, b and the 2·width
            // accumulator); a 2·width-operand source supplies exactly that
            // many random bits per vector, driving the accumulator too.
            let stimuli: Vec<Vec<bool>> =
                UniformOperands::new(2 * width, 13).vectors(count).collect();
            assert_bit_identical(
                &canonical,
                &variant,
                &stimuli,
                &format!("mac {spec} x{count}"),
            );
        }
    }
}
