//! `aix` — command-line driver for the aging-induced-approximations
//! workspace: characterize components, run the microarchitecture flow,
//! verify guarantees, measure error rates and export EDA artifacts
//! without writing any code.
//!
//! ```text
//! aix import netlist.v [more.edif ...] [--emit verilog|edif|dot] [--out FILE]
//! aix characterize --kind adder --width 16 [--effort medium] [--out FILE]
//! aix explore --kind adder --width 32 [--years 10] [--budget 96] [--seed 1]
//! aix flow [--years 10] [--stress worst|balanced] [--library FILE]
//!          [--verify off|warn|degrade|failfast]
//! aix verify [--library FILE] [--samples N] [--seed N] [--policy failfast]
//! aix error-rate --kind adder --width 32 [--years 10] [--vectors 4000]
//! aix quality --truncation 9 [--width 176 --height 144]
//! aix export [--out-dir out]
//! aix serve [--addr 127.0.0.1:4617] [--workers 2] [--queue-cap 8]
//! aix serve status | shutdown [--addr HOST:PORT | --addr-file FILE]
//! aix help
//! ```

use aix::aging::{AgingModel, AgingScenario, Lifetime};
use aix::arith::ComponentSpec;
use aix::cells::{degradation_to_text, to_liberty, DegradationAwareLibrary, Library};
use aix::core::{
    append_bench_json, append_bench_record, characterize_imported, default_bench_json_path,
    idct_design, load_imported, panic_message, verify_imported, AixError, ApproxLibrary,
    CampaignStatus, CancelToken, CharacterizationConfig, CharacterizationEngine, ComponentKind,
    EngineOptions, ImportedConfig, FAULT_GRAMMAR,
};
use aix::explore::ExploreConfig;
use aix::dct::DatapathPrecision;
use aix::faults::{FaultPlan, FaultStage};
use aix::netlist::{to_dot, to_edif, to_verilog};
use aix::serve::{Client, FleetClient, FleetConfig, Server, ServerConfig};
use aix::sim::{measure_errors, OperandSource, SignedNormalOperands, SimEngine};
use aix::sta::{analyze, to_sdf, NetDelays};
use aix::synth::Effort;
use aix::verify::{
    apply_aging_approximations_verified, verify_library, Perturbation, VerifyConfig,
    VerifyError, VerifyPolicy,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let Some(command) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `trace` and `serve` take a positional action (`summarize`,
    // `status`/`shutdown`) before their flags; bare `aix serve` runs the
    // daemon. `import` takes positional netlist files before its flags.
    let action = match command.as_str() {
        "trace" => args.next(),
        "serve" => match args.peek() {
            Some(next) if !next.starts_with("--") => args.next(),
            _ => None,
        },
        _ => None,
    };
    let mut files = Vec::new();
    if command == "import" {
        while let Some(next) = args.peek() {
            if next.starts_with("--") {
                break;
            }
            files.push(args.next().expect("peeked"));
        }
    }
    let options = parse_options(args);
    let result = configure_observability(&command, &options)
        .and_then(|_| configure_sim_engine(&options))
        .and_then(|_| {
        let result = match command.as_str() {
            "import" => import_files(&files, &options),
            "characterize" => characterize(&options),
            "explore" => explore(&options),
            "flow" => flow(&options),
            "verify" => verify(&options),
            "error-rate" => error_rate(&options),
            "quality" => quality(&options),
            "export" => export(&options),
            "trace" => trace(action.as_deref(), &options),
            "serve" => serve(action.as_deref(), &options),
            "help" | "--help" | "-h" => {
                println!("{USAGE}");
                Ok(ExitCode::SUCCESS)
            }
            other => {
                eprintln!("aix: unknown command `{other}`\n{USAGE}");
                return Ok(ExitCode::FAILURE);
            }
        };
        // Dropping the recorder closes the trace file; announce it last so
        // the path is the final stderr line of a traced run.
        if let Some(recorder) = aix::obs::uninstall() {
            if let Some(path) = recorder.path() {
                aix::obs::progress!("trace written to {}", path.display());
            }
        }
        result
    });
    match result {
        Ok(code) => code,
        Err(error) => {
            eprintln!("aix: {error}");
            ExitCode::FAILURE
        }
    }
}

/// Installs the quiet flag and the global trace recorder from `--quiet`/
/// `--trace[=FILE]` and their environment equivalents (`AIX_QUIET`,
/// `AIX_TRACE`, `AIX_TRACE_TIMINGS`) before the command runs.
fn configure_observability(
    command: &str,
    options: &HashMap<String, String>,
) -> Result<(), AixError> {
    if get(options, "--quiet").is_some() {
        aix::obs::set_quiet(true);
    }
    // `trace summarize` reads traces, it must not record one of its own;
    // `help` has nothing to trace.
    if matches!(command, "trace" | "help" | "--help" | "-h") {
        return Ok(());
    }
    let path = match get(options, "--trace") {
        Some("true") => Some(default_trace_path()),
        Some(path) => Some(PathBuf::from(path)),
        None => match std::env::var(aix::obs::TRACE_ENV) {
            Ok(value) => match value.trim() {
                "" | "0" | "false" => None,
                "1" | "true" => Some(default_trace_path()),
                path => Some(PathBuf::from(path)),
            },
            Err(_) => None,
        },
    };
    let Some(path) = path else {
        return Ok(());
    };
    let recorder = aix::obs::Recorder::to_file(&path, command, aix::obs::timings_from_env())
        .map_err(|e| AixError::io(path.display().to_string(), e))?;
    aix::obs::install(recorder);
    Ok(())
}

/// Applies `--sim-engine scalar|packed` by exporting it as
/// `AIX_SIM_ENGINE` for the whole process, so every simulation entry
/// point — including library-level defaults — honors one engine choice.
/// With no flag, an already-set environment value is validated strictly
/// so typos fail fast instead of silently falling back to the default.
fn configure_sim_engine(options: &HashMap<String, String>) -> Result<(), AixError> {
    match get(options, "--sim-engine") {
        Some(value) => {
            let engine: SimEngine = value.parse().map_err(|_| AixError::InvalidOption {
                flag: "--sim-engine",
                value: value.to_owned(),
                expected: "scalar|packed",
            })?;
            std::env::set_var(SimEngine::ENV_VAR, engine.to_string());
        }
        None => {
            if SimEngine::from_env().is_err() {
                return Err(AixError::InvalidOption {
                    flag: "AIX_SIM_ENGINE",
                    value: std::env::var(SimEngine::ENV_VAR).unwrap_or_default(),
                    expected: "scalar|packed",
                });
            }
        }
    }
    Ok(())
}

/// The default trace location: one file per run, named after the wall
/// clock and process so concurrent runs never collide.
fn default_trace_path() -> PathBuf {
    let seconds = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|elapsed| elapsed.as_secs())
        .unwrap_or(0);
    PathBuf::from(format!(
        "out/trace/run-{seconds}-{}.jsonl",
        std::process::id()
    ))
}

const USAGE: &str = "\
usage: aix <command> [--key value ...]

commands:
  import        FILE... [--emit verilog|edif|dot] [--out FILE] [--fault SPEC]
                                  parse structural Verilog (.v/.sv) or EDIF
                                  2.0.0 (.edif/.edf) netlists, map every
                                  instance onto the cell library (with alias
                                  resolution), validate, and print one
                                  summary line per design; --emit re-exports
                                  the imported netlist (--out writes it to a
                                  file). Failures name the position as
                                  `file:line:col: message`. Exit code: 0 all
                                  imported, 2 some failed, 1 none did.
                                  Imported designs feed the full pipeline via
                                  `--netlist FILE` on characterize, explore,
                                  flow and verify
  characterize  --kind adder|multiplier|mac --width N [--effort area|medium|ultra]
                [--out FILE] [--jobs N] [--cache DIR] [--no-cache]
                [--journal DIR] [--no-journal] [--resume]
                [--job-timeout SECS] [--retries N] [--backoff-ms N]
                [--fault SPEC]
                                  characterize a component and print/store the
                                  aging-induced approximation library row;
                                  runs on N workers (0 = auto, also AIX_JOBS)
                                  over the persistent cache (default out/cache,
                                  also AIX_CACHE; per-stage timings appended to
                                  out/BENCH_characterize.json). Failed jobs are
                                  quarantined, reported, and recorded in the
                                  write-ahead journal (default out/journal, also
                                  AIX_JOURNAL) so --resume retries only them.
                                  Exit code: 0 complete, 2 partial, 1 empty.
                                  --fault injects deterministic faults (panic,
                                  io, delay; also AIX_FAULT) for harness tests.
                                  --netlist FILE sweeps truncations of an
                                  imported design instead (with --years,
                                  --stress, --vectors, --seed, --max-cut)
  explore       --kind adder|multiplier|mac --width N [--years N]
                [--stress worst|balanced] [--budget N] [--seed N]
                [--vectors N] [--deadline SECS] [--jobs N] [--cache DIR]
                [--no-cache] [--fault SPEC] [--out FILE]
                [--export-verilog DIR]
                                  search gate-level approximation variants
                                  (lower-OR adders, approximate full adders,
                                  speculative segments, column-pruned
                                  multipliers, approximate merges) against the
                                  aged clock and print the Pareto front of
                                  (error, aged slack, gate count). The clock
                                  is the exact component's own aged delay.
                                  Deterministic for a fixed seed: reports are
                                  byte-identical for any --jobs count and for
                                  cold vs warm caches. --out writes the JSON
                                  report; --export-verilog writes one netlist
                                  per front point. Exit code: 0 complete,
                                  2 partial (quarantines/deadline), 1 empty.
                                  --netlist FILE explores the truncation
                                  front of an imported design instead
  flow          [--years N] [--stress worst|balanced] [--library FILE]
                [--verify off|warn|degrade|failfast] [--samples N] [--seed N]
                [--jobs N] [--cache DIR] [--no-cache]
                                  run the Fig. 6 flow on the IDCT design,
                                  optionally gated by Monte-Carlo verification.
                                  --netlist FILE runs activity -> aged STA ->
                                  Eq. 2 precision selection on an imported
                                  design instead
  verify        [--library FILE] [--samples N] [--seed N] [--margin PS]
                [--sigma-global F] [--sigma-gate F] [--vectors N]
                [--policy off|warn|degrade|failfast] [--jobs N] [--cache DIR]
                                  adversarially re-validate every library entry;
                                  exits non-zero iff a failfast violation is
                                  found. --netlist FILE Monte-Carlo checks the
                                  Eq. 2 margin of an imported design instead
  error-rate    --kind adder|multiplier --width N [--years N] [--vectors N]
                                  measure timing-error probability at the fresh clock
  quality       --truncation N [--width W --height H]
                                  PSNR/SSIM of the test sequences at a datapath precision
  export        [--out-dir DIR]   write Liberty, degradation tables, Verilog,
                                  DOT and SDF artifacts
  serve         [--addr HOST:PORT] [--addr-file FILE] [--workers N]
                [--queue-cap N] [--deadline-ms N] [--crash-on-panic]
                [--jobs N] [--cache DIR] [--journal DIR] [--no-journal]
                [--fault SPEC]
                                  run the fault-tolerant characterization
                                  daemon (default 127.0.0.1:4617; port 0 picks
                                  a free port, written to --addr-file).
                                  Requests are length-prefixed JSON frames
                                  carrying characterize/select-precision/
                                  verify campaigns with optional per-request
                                  deadlines; identical in-flight campaigns
                                  coalesce, overload is shed with a
                                  retry-after hint, accepted requests are
                                  journaled for crash recovery, and SIGTERM
                                  drains gracefully
  serve call    --kind adder|multiplier|mac [--width N]
                [--op characterize|select-precision|verify] [--full]
                [--effort area|medium|ultra] [--years N]
                [--stress worst|balanced] [--samples N] [--seed N]
                [--deadline-ms N] [--connect-timeout-ms N]
                [--addr HOST:PORT | --addr-file FILE |
                 --fleet ADDR1,ADDR2,...]
                                  send one work request. --fleet routes it
                                  through the replicated client: replicas are
                                  health-probed with circuit breakers, a hedge
                                  fires after the primary's p95 latency, fast
                                  failures fail over, and hedges/failovers are
                                  bounded by a retry token budget so retries
                                  never amplify an overload
  serve status  [--addr HOST:PORT | --addr-file FILE |
                 --fleet ADDR1,ADDR2,...] [--connect-timeout-ms N]
                                  print a daemon's queue depths (per admission
                                  tier), shed/coalesce counters and p50/p99
                                  latencies; --fleet prints one block per
                                  replica plus the fleet.* snapshot
  serve shutdown [--addr HOST:PORT | --addr-file FILE |
                 --fleet ADDR1,ADDR2,...] [--connect-timeout-ms N]
                                  ask the daemon(s) to drain and exit 0
  trace         summarize [--file FILE] [--strict] [--no-record]
                                  render the per-stage latency/counter table of
                                  a recorded JSONL trace (newest under
                                  out/trace/ unless --file names one) and
                                  append a machine-readable summary record to
                                  out/BENCH_characterize.json
  help                            show this message

global flags (any command):
  --sim-engine scalar|packed      simulation engine for value-mode AND timed
                                  runs (error rates, activity, fault coverage;
                                  also AIX_SIM_ENGINE). packed evaluates 64
                                  vectors per word — for timed runs through
                                  one shared event calendar — and is the
                                  default; both engines produce byte-identical
                                  results
  --trace[=FILE]                  record a structured JSONL event trace
                                  (default out/trace/run-<ts>-<pid>.jsonl;
                                  also AIX_TRACE=1|PATH). Set
                                  AIX_TRACE_TIMINGS=off to drop elapsed_us
                                  fields for byte-reproducible traces
  --quiet                         silence progress chatter on stderr (also
                                  AIX_QUIET=1); errors still print";

type CliResult = Result<ExitCode, AixError>;

fn parse_options(args: impl Iterator<Item = String>) -> HashMap<String, String> {
    let mut options = HashMap::new();
    let mut key: Option<String> = None;
    for arg in args {
        if let Some(stripped) = arg.strip_prefix("--") {
            if let Some(pending) = key.take() {
                options.insert(pending, String::from("true"));
            }
            match stripped.split_once('=') {
                Some((k, v)) => {
                    options.insert(k.to_owned(), v.to_owned());
                }
                None => key = Some(stripped.to_owned()),
            }
        } else if let Some(pending) = key.take() {
            options.insert(pending, arg);
        }
    }
    if let Some(pending) = key.take() {
        options.insert(pending, String::from("true"));
    }
    options
}

/// Looks up `flag` (given with its leading dashes) in the parsed options.
fn get<'o>(options: &'o HashMap<String, String>, flag: &str) -> Option<&'o str> {
    options
        .get(flag.trim_start_matches('-'))
        .map(String::as_str)
}

/// A required option's value, or [`AixError::MissingOption`] naming it.
fn require<'o>(
    options: &'o HashMap<String, String>,
    flag: &'static str,
) -> Result<&'o str, AixError> {
    get(options, flag).ok_or(AixError::MissingOption { flag })
}

/// Parses an optional flag's value, defaulting when absent; a value that
/// fails to parse yields [`AixError::InvalidOption`] naming the flag.
fn parse_or<T: FromStr>(
    options: &HashMap<String, String>,
    flag: &'static str,
    default: T,
    expected: &'static str,
) -> Result<T, AixError> {
    match get(options, flag) {
        None => Ok(default),
        Some(value) => value.parse().map_err(|_| AixError::InvalidOption {
            flag,
            value: value.to_owned(),
            expected,
        }),
    }
}

fn parse_kind(options: &HashMap<String, String>) -> Result<ComponentKind, AixError> {
    let value = require(options, "--kind")?;
    value.parse().map_err(|_| AixError::InvalidOption {
        flag: "--kind",
        value: value.to_owned(),
        expected: "adder|multiplier|mac",
    })
}

fn parse_effort(options: &HashMap<String, String>) -> Result<Effort, AixError> {
    match get(options, "--effort").unwrap_or("ultra") {
        "area" => Ok(Effort::Area),
        "medium" => Ok(Effort::Medium),
        "ultra" => Ok(Effort::Ultra),
        other => Err(AixError::InvalidOption {
            flag: "--effort",
            value: other.to_owned(),
            expected: "area|medium|ultra",
        }),
    }
}

fn parse_scenario(options: &HashMap<String, String>) -> Result<AgingScenario, AixError> {
    let years: f64 = parse_or(options, "--years", 10.0, "a number of years")?;
    let lifetime = Lifetime::try_from_years(years).map_err(|_| AixError::InvalidOption {
        flag: "--years",
        value: years.to_string(),
        expected: "a finite, non-negative number of years",
    })?;
    match get(options, "--stress").unwrap_or("worst") {
        "worst" => Ok(AgingScenario::worst_case(lifetime)),
        "balanced" => Ok(AgingScenario::balanced(lifetime)),
        other => Err(AixError::InvalidOption {
            flag: "--stress",
            value: other.to_owned(),
            expected: "worst|balanced",
        }),
    }
}

fn parse_policy(
    options: &HashMap<String, String>,
    flag: &'static str,
    default: VerifyPolicy,
) -> Result<VerifyPolicy, AixError> {
    match get(options, flag) {
        None => Ok(default),
        Some(value) => value.parse().map_err(|_| AixError::InvalidOption {
            flag,
            value: value.to_owned(),
            expected: "off|warn|degrade|failfast",
        }),
    }
}

fn parse_verify_config(options: &HashMap<String, String>) -> Result<VerifyConfig, AixError> {
    let defaults = VerifyConfig::default();
    Ok(VerifyConfig {
        samples: parse_or(options, "--samples", defaults.samples, "a positive integer")?,
        perturbation: Perturbation {
            global_sigma: parse_or(
                options,
                "--sigma-global",
                defaults.perturbation.global_sigma,
                "a relative sigma like 0.03",
            )?,
            gate_sigma: parse_or(
                options,
                "--sigma-gate",
                defaults.perturbation.gate_sigma,
                "a relative sigma like 0.01",
            )?,
        },
        seed: parse_or(options, "--seed", defaults.seed, "an unsigned integer")?,
        margin_target_ps: parse_or(
            options,
            "--margin",
            defaults.margin_target_ps,
            "a margin in picoseconds",
        )?,
        sim_vectors: parse_or(
            options,
            "--vectors",
            defaults.sim_vectors,
            "a vector count",
        )?,
        max_degrade_steps: parse_or(
            options,
            "--max-degrade",
            defaults.max_degrade_steps,
            "a step count",
        )?,
        // `configure_sim_engine` already folded --sim-engine into the
        // environment, which the default reflects.
        sim_engine: defaults.sim_engine,
        cancel: None,
    })
}

/// Parses a wall-clock budget in seconds; `0`, `off` or `none` disable it.
fn parse_timeout(flag: &'static str, value: &str) -> Result<Option<Duration>, AixError> {
    if matches!(value, "0" | "off" | "none") {
        return Ok(None);
    }
    match value.parse::<f64>() {
        Ok(secs) if secs.is_finite() && secs > 0.0 => Ok(Some(Duration::from_secs_f64(secs))),
        _ => Err(AixError::InvalidOption {
            flag,
            value: value.to_owned(),
            expected: "a positive number of seconds (0/off/none disables)",
        }),
    }
}

/// Engine scheduling and robustness options. Flags override the matching
/// environment variables: `--jobs N` (0 = auto; `AIX_JOBS`),
/// `--cache DIR`/`--no-cache` (`AIX_CACHE`), `--journal DIR`/
/// `--no-journal` (`AIX_JOURNAL`), `--resume`, `--job-timeout SECS`
/// (`AIX_JOB_TIMEOUT`), `--retries N` (`AIX_RETRIES`), `--backoff-ms N`
/// (`AIX_BACKOFF_MS`), `--backoff-cap-ms N` (`AIX_BACKOFF_CAP_MS`) and
/// `--fault SPEC` (`AIX_FAULT`). A malformed environment value is
/// rejected with the same diagnostic as its flag.
fn parse_engine_options(options: &HashMap<String, String>) -> Result<EngineOptions, AixError> {
    let mut engine = EngineOptions::from_env_strict()?;
    if let Some(value) = get(options, "--jobs") {
        engine.jobs = value.parse().map_err(|_| AixError::InvalidOption {
            flag: "--jobs",
            value: value.to_owned(),
            expected: "a worker count (0 = auto)",
        })?;
    }
    if get(options, "--no-cache").is_some() {
        engine.cache_dir = None;
    } else if let Some(dir) = get(options, "--cache") {
        engine.cache_dir = Some(PathBuf::from(dir));
    }
    if get(options, "--no-journal").is_some() {
        engine.journal_dir = None;
    } else if let Some(dir) = get(options, "--journal") {
        engine.journal_dir = Some(PathBuf::from(dir));
    }
    if get(options, "--resume").is_some() {
        engine.resume = true;
    }
    if let Some(value) = get(options, "--job-timeout") {
        engine.job_timeout = parse_timeout("--job-timeout", value)?;
    }
    engine.retries = parse_or(options, "--retries", engine.retries, "a retry count")?;
    engine.backoff_ms = parse_or(
        options,
        "--backoff-ms",
        engine.backoff_ms,
        "a backoff in milliseconds",
    )?;
    engine.backoff_cap_ms = parse_or(
        options,
        "--backoff-cap-ms",
        engine.backoff_cap_ms,
        "a backoff cap in milliseconds (0 = uncapped)",
    )?;
    if let Some(value) = get(options, "--fault") {
        let plan: FaultPlan = value.parse().map_err(|_| AixError::InvalidOption {
            flag: "--fault",
            value: value.to_owned(),
            expected: FAULT_GRAMMAR,
        })?;
        engine.faults = Some(Arc::new(plan));
    }
    Ok(engine)
}

/// Records an engine run in `out/BENCH_characterize.json` and echoes the
/// per-stage summary.
fn record_engine_run(label: &str, report: &aix::core::EngineReport) -> Result<(), AixError> {
    aix::obs::progress!("# engine: {}", report.summary());
    let path = default_bench_json_path();
    append_bench_record(&path, label, report)
        .map_err(|e| AixError::io(path.display().to_string(), e))
}

/// `aix trace <action>`: operations over recorded JSONL traces.
fn trace(action: Option<&str>, options: &HashMap<String, String>) -> CliResult {
    match action {
        Some("summarize") => trace_summarize(options),
        Some(other) => Err(AixError::InvalidOption {
            flag: "trace",
            value: other.to_owned(),
            expected: "summarize",
        }),
        None => Err(AixError::MissingOption {
            flag: "trace summarize",
        }),
    }
}

/// Renders the per-stage latency/counter table of a trace file (newest
/// `out/trace/run-*.jsonl` unless `--file` names one) and appends the
/// machine-readable summary record to `out/BENCH_characterize.json`.
fn trace_summarize(options: &HashMap<String, String>) -> CliResult {
    let strict = get(options, "--strict").is_some();
    let path = match get(options, "--file") {
        Some(path) => PathBuf::from(path),
        None => latest_trace_path()?,
    };
    let summary = aix::obs::TraceSummary::read_file(&path, strict)
        .map_err(|error| summary_error(&path, error))?;
    print!("{}", summary.render_table());
    if get(options, "--no-record").is_none() {
        let bench = default_bench_json_path();
        append_bench_json(&bench, summary.to_json_record())
            .map_err(|e| AixError::io(bench.display().to_string(), e))?;
        aix::obs::progress!("summary recorded in {}", bench.display());
    }
    Ok(ExitCode::SUCCESS)
}

/// The most recently modified `.jsonl` file under `out/trace/`.
fn latest_trace_path() -> Result<PathBuf, AixError> {
    let dir = PathBuf::from("out/trace");
    let no_trace = || {
        AixError::io(
            dir.display().to_string(),
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "no trace files found; run a command with --trace first or pass --file",
            ),
        )
    };
    let entries = std::fs::read_dir(&dir).map_err(|_| no_trace())?;
    let mut newest: Option<(std::time::SystemTime, PathBuf)> = None;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_none_or(|ext| ext != "jsonl") {
            continue;
        }
        let modified = entry
            .metadata()
            .and_then(|meta| meta.modified())
            .unwrap_or(std::time::UNIX_EPOCH);
        if newest.as_ref().is_none_or(|(time, _)| modified >= *time) {
            newest = Some((modified, path));
        }
    }
    newest.map(|(_, path)| path).ok_or_else(no_trace)
}

/// Maps a trace-summary failure onto the CLI error taxonomy, keeping the
/// offending file in the message.
fn summary_error(path: &std::path::Path, error: aix::obs::SummaryError) -> AixError {
    match error {
        aix::obs::SummaryError::Io(source) => AixError::io(path.display().to_string(), source),
        other => AixError::io(
            path.display().to_string(),
            std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        ),
    }
}

fn read_library(path: &str) -> Result<ApproxLibrary, AixError> {
    let text = std::fs::read_to_string(path).map_err(|e| AixError::io(path, e))?;
    ApproxLibrary::from_text(&text).map_err(|e| AixError::library_file(path, e))
}

/// `aix import FILE...`: parse structural Verilog/EDIF netlists, map the
/// instances onto the cell library, validate, and summarize (or re-emit)
/// each design. Exit code: 0 all imported, 2 some failed, 1 none did.
fn import_files(files: &[String], options: &HashMap<String, String>) -> CliResult {
    if files.is_empty() {
        return Err(AixError::MissingOption { flag: "FILE" });
    }
    let emit = match get(options, "--emit") {
        None => None,
        Some(format @ ("verilog" | "edif" | "dot")) => Some(format.to_owned()),
        Some(other) => {
            return Err(AixError::InvalidOption {
                flag: "--emit",
                value: other.to_owned(),
                expected: "verilog|edif|dot",
            })
        }
    };
    if get(options, "--out").is_some() && files.len() > 1 {
        return Err(AixError::InvalidOption {
            flag: "--out",
            value: get(options, "--out").unwrap_or_default().to_owned(),
            expected: "a single input file when --out is given",
        });
    }
    let faults = parse_engine_options(options)?.faults;
    let cells = Arc::new(Library::nangate45_like());
    let mut imported = 0usize;
    let mut failed = 0usize;
    for file in files {
        // Guard each file like an engine job: an injected (or genuine)
        // panic quarantines the file instead of crashing the CLI.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(plan) = &faults {
                plan.probe(FaultStage::Import, file, 1);
            }
            load_imported(file, &cells)
        }));
        match result {
            Err(panic) => {
                failed += 1;
                eprintln!("aix: import QUARANTINED: {file}: {}", panic_message(panic));
            }
            Ok(Err(error)) => {
                failed += 1;
                eprintln!("aix: import FAILED: {error}");
            }
            Ok(Ok(netlist)) => {
                imported += 1;
                let stats = netlist.stats();
                println!(
                    "{file}: `{}` {} gate(s), {} net(s), {} input(s), {} output(s), {:.1} um2",
                    netlist.name(),
                    stats.gate_count,
                    stats.net_count,
                    stats.input_count,
                    stats.output_count,
                    stats.area_um2
                );
                if let Some(format) = &emit {
                    let text = match format.as_str() {
                        "verilog" => to_verilog(&netlist),
                        "edif" => to_edif(&netlist),
                        _ => to_dot(&netlist),
                    };
                    match get(options, "--out") {
                        Some(path) => {
                            std::fs::write(path, text).map_err(|e| AixError::io(path, e))?;
                            println!("written to {path}");
                        }
                        None => print!("{text}"),
                    }
                }
            }
        }
    }
    Ok(if failed == 0 {
        ExitCode::SUCCESS
    } else if imported > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::FAILURE
    })
}

/// The shared `--netlist` pipeline parameters (`--years`, `--stress`,
/// `--vectors`, `--seed`, `--max-cut`).
fn parse_imported_config(options: &HashMap<String, String>) -> Result<ImportedConfig, AixError> {
    let mut config = ImportedConfig::default();
    config.scenario = parse_scenario(options)?;
    config.vectors = parse_or(options, "--vectors", config.vectors, "a vector count")?;
    config.seed = parse_or(options, "--seed", config.seed, "an unsigned integer")?;
    if let Some(value) = get(options, "--max-cut") {
        let cut: u32 = value.parse().map_err(|_| AixError::InvalidOption {
            flag: "--max-cut",
            value: value.to_owned(),
            expected: "a truncation depth in bits",
        })?;
        config.max_cut = Some(cut);
    }
    Ok(config)
}

/// `aix characterize --netlist FILE`: the truncation sweep of an imported
/// design, rendered like a library characterization.
fn characterize_netlist(path: &str, options: &HashMap<String, String>) -> CliResult {
    let cells = Arc::new(Library::nangate45_like());
    let netlist = load_imported(path, &cells)?;
    let config = parse_imported_config(options)?;
    let report = characterize_imported(&netlist, &AgingModel::calibrated(), &config)?;
    let text = report.render();
    if let Some(out) = get(options, "--out") {
        std::fs::write(out, &text).map_err(|e| AixError::io(out, e))?;
        println!("written to {out}");
    } else {
        print!("{text}");
    }
    Ok(ExitCode::SUCCESS)
}

/// `aix explore --netlist FILE`: the Pareto front of the imported design's
/// truncation sweep on (error, aged delay, gate count).
fn explore_netlist(path: &str, options: &HashMap<String, String>) -> CliResult {
    let cells = Arc::new(Library::nangate45_like());
    let netlist = load_imported(path, &cells)?;
    let config = parse_imported_config(options)?;
    let report = characterize_imported(&netlist, &AgingModel::calibrated(), &config)?;
    println!(
        "{:>4} {:>7} {:>10} {:>9} {:>8}  candidate",
        "cut", "gates", "aged [ps]", "slack", "err [%]"
    );
    for v in report.pareto_front() {
        println!(
            "{:>4} {:>7} {:>10.1} {:>+9.1} {:>8.2}  {}_cut{}",
            v.cut, v.gates, v.aged_ps, v.slack_ps, v.error_percent, report.design, v.cut
        );
    }
    println!(
        "# clock {:.3} ps under {}; {} variant(s) evaluated",
        report.clock_ps,
        report.scenario,
        report.variants.len()
    );
    Ok(ExitCode::SUCCESS)
}

/// `aix flow --netlist FILE`: activity → aged STA → Eq. 2 precision
/// selection on an imported design.
fn flow_netlist(path: &str, options: &HashMap<String, String>) -> CliResult {
    let cells = Arc::new(Library::nangate45_like());
    let netlist = load_imported(path, &cells)?;
    let config = parse_imported_config(options)?;
    let report = characterize_imported(&netlist, &AgingModel::calibrated(), &config)?;
    println!(
        "imported design `{}` constraint {:.1} ps under {}:",
        report.design, report.clock_ps, report.scenario
    );
    match report.required_cut() {
        Some(cut) => {
            let v = &report.variants[cut as usize];
            println!(
                "  {:<12} aged {:>7.1} ps  slack {:>+6.1}%  -> cut {} LSB(s) \
                 ({} gates, err {:.2}%)",
                report.design,
                v.aged_ps,
                100.0 * v.slack_ps / report.clock_ps,
                cut,
                v.gates,
                v.error_percent
            );
            println!("validation: timing MET");
            Ok(ExitCode::SUCCESS)
        }
        None => {
            println!("validation: timing VIOLATED (no truncation compensates the aging)");
            Ok(ExitCode::FAILURE)
        }
    }
}

/// `aix verify --netlist FILE`: Monte-Carlo margin check of the Eq. 2
/// selection under perturbed per-gate aging.
fn verify_netlist(path: &str, options: &HashMap<String, String>) -> CliResult {
    let policy = parse_policy(options, "--policy", VerifyPolicy::FailFast)?;
    let cells = Arc::new(Library::nangate45_like());
    let netlist = load_imported(path, &cells)?;
    let config = parse_imported_config(options)?;
    let samples: usize = parse_or(options, "--samples", 24, "a positive sample count")?;
    let sigma: f64 = parse_or(options, "--sigma-gate", 0.03, "a relative delay spread")?;
    let seed: u64 = parse_or(options, "--seed", 42, "an unsigned integer")?;
    let outcome = verify_imported(&netlist, &AgingModel::calibrated(), &config, samples, sigma, seed)?;
    match outcome {
        None => {
            eprintln!(
                "aix: imported design `{}` is not compensable under {}",
                netlist.name(),
                config.scenario
            );
            Ok(ExitCode::FAILURE)
        }
        Some(verify) => {
            println!(
                "imported `{}` cut {}: {} of {} sample(s) met the clock \
                 (worst margin {:+.1} ps) — {}",
                netlist.name(),
                verify.cut,
                verify.samples - verify.failures,
                verify.samples,
                verify.worst_margin_ps,
                if verify.passed() { "PASS" } else { "FAIL" }
            );
            if !verify.passed() && policy == VerifyPolicy::FailFast {
                eprintln!("aix: verification failed under failfast policy");
                return Ok(ExitCode::FAILURE);
            }
            Ok(ExitCode::SUCCESS)
        }
    }
}

fn characterize(options: &HashMap<String, String>) -> CliResult {
    if let Some(path) = get(options, "--netlist") {
        return characterize_netlist(path, options);
    }
    let kind = parse_kind(options)?;
    let value = require(options, "--width")?;
    let width: usize = value.parse().map_err(|_| AixError::InvalidOption {
        flag: "--width",
        value: value.to_owned(),
        expected: "a positive operand width in bits",
    })?;
    let cells = Arc::new(Library::nangate45_like());
    let mut config = CharacterizationConfig::paper_default(kind, width);
    config.effort = parse_effort(options)?;
    let engine = CharacterizationEngine::new(Arc::clone(&cells), parse_engine_options(options)?);
    let campaign = engine.characterize_campaign(std::slice::from_ref(&config));
    record_engine_run(&format!("characterize {kind} {width}"), &campaign.report)?;
    for failure in &campaign.failures {
        eprintln!("aix: job FAILED: {failure}");
    }
    let library = campaign.library();
    let text = library.to_text();
    if let Some(path) = get(options, "--out") {
        std::fs::write(path, &text).map_err(|e| AixError::io(path, e))?;
        println!("written to {path}");
    } else {
        print!("{text}");
    }
    // The Eq. 2 summary needs the fresh full-precision anchor, which a
    // partial campaign may lack — it is only meaningful when complete.
    if campaign.status() == CampaignStatus::Complete {
        let characterization = library.get(kind, width).expect("complete campaign");
        for scenario in [
            AgingScenario::worst_case(Lifetime::YEARS_1),
            AgingScenario::worst_case(Lifetime::YEARS_10),
        ] {
            match characterization.required_precision(scenario) {
                Some(p) => println!(
                    "# Eq. 2 under {scenario}: precision {p}b ({} bits truncated)",
                    width - p
                ),
                None => println!("# Eq. 2 under {scenario}: not compensable"),
            }
        }
    }
    match campaign.status() {
        CampaignStatus::Complete => Ok(ExitCode::SUCCESS),
        CampaignStatus::Partial => {
            eprintln!(
                "aix: campaign PARTIAL: {} of {} job(s) failed; \
                 rerun with --resume to retry only the failures",
                campaign.failures.len(),
                campaign.report.synth_planned
            );
            Ok(ExitCode::from(2))
        }
        CampaignStatus::Empty => {
            eprintln!(
                "aix: campaign EMPTY: all {} job(s) failed",
                campaign.failures.len()
            );
            Ok(ExitCode::FAILURE)
        }
    }
}

/// `aix explore`: aging-aware approximation search. Builds variant
/// netlists, scores them for functional error and aged delay, and prints
/// the Pareto front of (error, aged slack, gate count).
fn explore(options: &HashMap<String, String>) -> CliResult {
    if let Some(path) = get(options, "--netlist") {
        return explore_netlist(path, options);
    }
    let kind = parse_kind(options)?;
    let value = require(options, "--width")?;
    let width: usize = match value.parse() {
        Ok(width) if (1..=32).contains(&width) => width,
        _ => {
            return Err(AixError::InvalidOption {
                flag: "--width",
                value: value.to_owned(),
                expected: "an operand width in 1..=32 bits",
            })
        }
    };
    let engine = parse_engine_options(options)?;
    let mut config = ExploreConfig::new(kind, width);
    config.scenario = parse_scenario(options)?;
    config.seed = parse_or(options, "--seed", config.seed, "an unsigned integer")?;
    config.budget = parse_or(options, "--budget", config.budget, "a candidate budget")?;
    if config.budget == 0 {
        return Err(AixError::InvalidOption {
            flag: "--budget",
            value: String::from("0"),
            expected: "a positive candidate budget",
        });
    }
    config.vectors = parse_or(options, "--vectors", config.vectors, "a vector count")?;
    config.engine = SimEngine::from_env().unwrap_or_default();
    config.jobs = engine.resolved_jobs();
    config.cache_dir = engine.cache_dir;
    config.faults = engine.faults;
    if let Some(value) = get(options, "--deadline") {
        config.cancel = parse_timeout("--deadline", value)?.map(CancelToken::deadline_in);
    }

    let cells = Arc::new(Library::nangate45_like());
    let outcome = aix::explore::explore(&cells, &config)?;

    print!("{}", outcome.table());
    println!(
        "# clock {:.3} ps under {}; {} evaluated, {} cached, {} skipped, {} quarantined",
        outcome.clock_ps,
        outcome.scenario,
        outcome.evaluated,
        outcome.cache_hits,
        outcome.skipped,
        outcome.quarantined.len(),
    );
    if let Some(path) = get(options, "--out") {
        let mut report = outcome.to_json();
        report.push('\n');
        std::fs::write(path, report).map_err(|e| AixError::io(path, e))?;
        println!("report written to {path}");
    }
    if let Some(dir) = get(options, "--export-verilog") {
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir).map_err(|e| AixError::io(dir.display().to_string(), e))?;
        for point in &outcome.front {
            let netlist = point.candidate.build(&cells)?;
            let optimized = aix::synth::optimize(&netlist)?;
            let path = dir.join(format!("{}.v", point.candidate.label()));
            std::fs::write(&path, to_verilog(&optimized))
                .map_err(|e| AixError::io(path.display().to_string(), e))?;
        }
        println!(
            "{} netlist(s) written to {}",
            outcome.front.len(),
            dir.display()
        );
    }
    for q in &outcome.quarantined {
        eprintln!("aix: candidate QUARANTINED: {}: {}", q.label, q.reason);
    }
    match outcome.status() {
        CampaignStatus::Complete => Ok(ExitCode::SUCCESS),
        CampaignStatus::Partial => {
            eprintln!(
                "aix: search PARTIAL: {} candidate(s) quarantined{}",
                outcome.quarantined.len(),
                if outcome.cancelled { "; deadline hit" } else { "" }
            );
            Ok(ExitCode::from(2))
        }
        CampaignStatus::Empty => {
            eprintln!("aix: search EMPTY: no candidate survived evaluation");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn flow(options: &HashMap<String, String>) -> CliResult {
    if let Some(path) = get(options, "--netlist") {
        return flow_netlist(path, options);
    }
    let scenario = parse_scenario(options)?;
    let policy = parse_policy(options, "--verify", VerifyPolicy::Off)?;
    let cells = Arc::new(Library::nangate45_like());
    let model = AgingModel::calibrated();
    let library = match get(options, "--library") {
        Some(path) => read_library(path)?,
        None => {
            aix::obs::progress!("(no --library given: characterizing the IDCT components, ~minutes)");
            let engine =
                CharacterizationEngine::new(Arc::clone(&cells), parse_engine_options(options)?);
            let configs: Vec<CharacterizationConfig> = [
                (ComponentKind::Multiplier, 32),
                (ComponentKind::Adder, 32),
                (ComponentKind::Adder, 16),
            ]
            .map(|(kind, width)| CharacterizationConfig::paper_default(kind, width))
            .into();
            let (library, report) = engine.characterize_all(&configs)?;
            record_engine_run("flow idct-library", &report)?;
            library
        }
    };
    let design = idct_design(&cells, Effort::Ultra)?;
    let verified = match apply_aging_approximations_verified(
        &cells,
        &design,
        &library,
        &model,
        scenario,
        policy,
        &parse_verify_config(options)?,
    ) {
        Ok(verified) => verified,
        Err(VerifyError::Aix(e)) => return Err(e),
        Err(e @ (VerifyError::GuaranteeViolated { .. } | VerifyError::Unrepairable { .. })) => {
            eprintln!("aix: {e}");
            return Ok(ExitCode::FAILURE);
        }
    };
    let plan = &verified.plan;
    println!(
        "design `{}` constraint {:.1} ps under {scenario} (verify: {policy}):",
        design.name(),
        plan.constraint_ps
    );
    for block in &plan.blocks {
        println!(
            "  {:<12} aged {:>7.1} ps  slack {:>+6.1}%  -> precision {}b (-{} bits)",
            block.name,
            block.aged_delay_ps,
            block.relative_slack * 100.0,
            block.precision,
            block.truncated_bits()
        );
    }
    for verification in &verified.blocks {
        if verification.degraded_bits() > 0 {
            println!(
                "  {:<12} degraded {} extra bit(s): {}b -> {}b (worst margin {:+.1} ps)",
                verification.name,
                verification.degraded_bits(),
                verification.planned_precision,
                verification.final_precision,
                verification.stats.min_ps
            );
        }
    }
    for warning in verified.warnings() {
        aix::obs::warn!(
            "block `{}` misses its margin target by {:.1} ps at precision {}b",
            warning.name,
            -warning.stats.min_ps,
            warning.final_precision
        );
    }
    let validation = plan.validate(&cells, design.effort(), &model)?;
    println!(
        "validation: timing {}",
        if validation.timing_met { "MET" } else { "VIOLATED" }
    );
    Ok(ExitCode::SUCCESS)
}

fn verify(options: &HashMap<String, String>) -> CliResult {
    if let Some(path) = get(options, "--netlist") {
        return verify_netlist(path, options);
    }
    let policy = parse_policy(options, "--policy", VerifyPolicy::FailFast)?;
    let config = parse_verify_config(options)?;
    let cells = Arc::new(Library::nangate45_like());
    let model = AgingModel::calibrated();
    let library = match get(options, "--library") {
        Some(path) => read_library(path)?,
        None => {
            aix::obs::progress!("(no --library given: characterizing a quick demo library)");
            let engine =
                CharacterizationEngine::new(Arc::clone(&cells), parse_engine_options(options)?);
            let configs: Vec<CharacterizationConfig> =
                [ComponentKind::Adder, ComponentKind::Multiplier]
                    .map(|kind| CharacterizationConfig::quick(kind, 16))
                    .into();
            let (library, report) = engine.characterize_all(&configs)?;
            record_engine_run("verify demo-library", &report)?;
            library
        }
    };
    let report = verify_library(&cells, &library, &model, &config)?;
    print!("{}", report.render());
    if policy == VerifyPolicy::FailFast && !report.all_passed() {
        eprintln!("aix: verification failed under failfast policy");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// Default loopback address of the characterization daemon.
const SERVE_DEFAULT_ADDR: &str = "127.0.0.1:4617";

/// `aix serve [status|shutdown]`: run the fault-tolerant characterization
/// daemon, or talk to a running one.
fn serve(action: Option<&str>, options: &HashMap<String, String>) -> CliResult {
    match action {
        None | Some("run") => serve_run(options),
        Some("call") => serve_work_call(options),
        Some("status") => serve_call(options, "{\"op\":\"status\"}"),
        Some("shutdown") => serve_call(options, "{\"op\":\"shutdown\"}"),
        Some(other) => Err(AixError::InvalidOption {
            flag: "serve",
            value: other.to_owned(),
            expected: "run|call|status|shutdown",
        }),
    }
}

fn serve_run(options: &HashMap<String, String>) -> CliResult {
    let mut config = ServerConfig::local_default(parse_engine_options(options)?);
    config.addr = get(options, "--addr")
        .unwrap_or(SERVE_DEFAULT_ADDR)
        .to_owned();
    config.addr_file = get(options, "--addr-file").map(PathBuf::from);
    config.workers = parse_or(options, "--workers", 2, "a positive worker count")?;
    config.queue_cap = parse_or(options, "--queue-cap", 8, "a positive queue capacity")?;
    let deadline_ms: u64 = parse_or(
        options,
        "--deadline-ms",
        0,
        "a default request deadline in milliseconds (0 = none)",
    )?;
    config.default_deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
    config.crash_on_panic = get(options, "--crash-on-panic").is_some();
    // Crash recovery rides on the engine journal directory: `--no-journal`
    // disables both the run journal and the serve request journal.
    config.journal_path = config
        .engine
        .journal_dir
        .as_ref()
        .map(|dir| dir.join("serve-requests.journal"));
    aix::serve::install_sigterm_drain();
    let server =
        Server::bind(config).map_err(|e| AixError::io("aix serve bind".to_owned(), e))?;
    let addr = server
        .local_addr()
        .map_err(|e| AixError::io("aix serve".to_owned(), e))?;
    aix::obs::progress!(
        "aix serve listening on {addr} (SIGTERM or `aix serve shutdown` drains gracefully)"
    );
    server
        .run()
        .map_err(|e| AixError::io(addr.to_string(), e))?;
    aix::obs::progress!("aix serve drained cleanly");
    Ok(ExitCode::SUCCESS)
}

/// The strict `--connect-timeout-ms` parse (the lenient env-var read
/// lives in [`aix::serve::client::connect_timeout`]); `0` disables the
/// bound.
fn parse_connect_timeout(options: &HashMap<String, String>) -> Result<Option<u64>, AixError> {
    match get(options, "--connect-timeout-ms") {
        None => Ok(None),
        Some(value) => value
            .parse::<u64>()
            .map(Some)
            .map_err(|_| AixError::InvalidOption {
                flag: "--connect-timeout-ms",
                value: value.to_owned(),
                expected: "a connect timeout in milliseconds (0 = unbounded)",
            }),
    }
}

/// `--fleet addr1,addr2,...` parsed into a replica list.
fn parse_fleet_addrs(list: &str) -> Result<Vec<String>, AixError> {
    let addrs: Vec<String> = list
        .split(',')
        .map(str::trim)
        .filter(|a| !a.is_empty())
        .map(str::to_owned)
        .collect();
    if addrs.is_empty() {
        return Err(AixError::InvalidOption {
            flag: "--fleet",
            value: list.to_owned(),
            expected: "a comma-separated list of replica addresses",
        });
    }
    Ok(addrs)
}

fn single_addr(options: &HashMap<String, String>) -> Result<String, AixError> {
    Ok(match get(options, "--addr") {
        Some(addr) => addr.to_owned(),
        None => match get(options, "--addr-file") {
            Some(path) => std::fs::read_to_string(path)
                .map_err(|e| AixError::io(path.to_owned(), e))?
                .trim()
                .to_owned(),
            None => SERVE_DEFAULT_ADDR.to_owned(),
        },
    })
}

fn serve_call(options: &HashMap<String, String>, payload: &str) -> CliResult {
    let connect_override = parse_connect_timeout(options)?;
    if let Some(list) = get(options, "--fleet") {
        return serve_fleet_admin(payload, list, connect_override);
    }
    let addr = single_addr(options)?;
    let timeout = aix::serve::client::connect_timeout(connect_override);
    let mut client = Client::connect_with_timeout(&addr, timeout)
        .map_err(|e| AixError::io(addr.clone(), e))?;
    client
        .set_response_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| AixError::io(addr.clone(), e))?;
    let response = client
        .call(payload)
        .map_err(|e| AixError::io(addr.clone(), e))?;
    for (key, value) in response.fields() {
        println!("{key}: {value}");
    }
    Ok(if response.status() == "ok" {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Fleet-aware `status`/`shutdown`: address every replica, print a block
/// per replica, and (for `status`) the fleet client's own `fleet.*`
/// snapshot. Exits 0 when every replica answered.
fn serve_fleet_admin(
    payload: &str,
    list: &str,
    connect_override: Option<u64>,
) -> CliResult {
    let addrs = parse_fleet_addrs(list)?;
    let timeout = aix::serve::client::connect_timeout(connect_override);
    let mut failures = 0usize;
    for addr in &addrs {
        println!("[{addr}]");
        let result = Client::connect_with_timeout(addr, timeout).and_then(|mut client| {
            client.set_response_timeout(Some(Duration::from_secs(10)))?;
            client.call(payload)
        });
        match result {
            Ok(response) => {
                for (key, value) in response.fields() {
                    println!("  {key}: {value}");
                }
                if response.status() != "ok" {
                    failures += 1;
                }
            }
            Err(e) => {
                println!("  error: {e}");
                failures += 1;
            }
        }
    }
    if payload.contains("\"op\":\"status\"") {
        // A fresh CLI process has no call history, but the snapshot still
        // reports the fleet shape and per-replica breaker/latency fields
        // under the same names `serve call --fleet` uses.
        let mut config = FleetConfig::new(addrs);
        config.connect_timeout_ms = connect_override;
        config.probe = false;
        if let Ok(fleet) = FleetClient::new(config) {
            println!("[fleet]");
            for (key, value) in fleet.snapshot_fields() {
                println!("  {key}: {value}");
            }
        }
    }
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `aix serve call`: send one work request, either to a single daemon
/// (`--addr`/`--addr-file`) or through the replicated fleet client
/// (`--fleet addr1,addr2,...` — health-checked routing, hedging,
/// failover).
fn serve_work_call(options: &HashMap<String, String>) -> CliResult {
    let op = get(options, "--op").unwrap_or("select-precision");
    if !matches!(op, "characterize" | "select-precision" | "verify") {
        return Err(AixError::InvalidOption {
            flag: "--op",
            value: op.to_owned(),
            expected: "characterize|select-precision|verify",
        });
    }
    let kind = parse_kind(options)?;
    let width: usize = parse_or(options, "--width", 16, "a positive operand width in bits")?;
    let effort = match get(options, "--effort").unwrap_or("medium") {
        "area" => "area",
        "medium" => "medium",
        "ultra" => "ultra",
        other => {
            return Err(AixError::InvalidOption {
                flag: "--effort",
                value: other.to_owned(),
                expected: "area|medium|ultra",
            })
        }
    };
    let stress = match get(options, "--stress").unwrap_or("worst") {
        "worst" => "worst",
        "balanced" => "balanced",
        other => {
            return Err(AixError::InvalidOption {
                flag: "--stress",
                value: other.to_owned(),
                expected: "worst|balanced",
            })
        }
    };
    let years: f64 = parse_or(options, "--years", 10.0, "a number of years")?;
    let samples: usize = parse_or(options, "--samples", 8, "a positive sample count")?;
    let seed: u64 = parse_or(options, "--seed", 42, "a campaign seed")?;
    let deadline_ms: u64 = parse_or(
        options,
        "--deadline-ms",
        0,
        "a request deadline in milliseconds (0 = none)",
    )?;
    let quick = get(options, "--full").is_none();

    let mut fields: Vec<(&str, aix::obs::Value)> = vec![
        ("op", aix::obs::Value::from(op)),
        ("kind", aix::obs::Value::from(kind.label())),
        ("width", aix::obs::Value::from(width)),
        ("effort", aix::obs::Value::from(effort)),
        ("quick", aix::obs::Value::from(quick)),
        ("years", aix::obs::Value::from(years)),
        ("stress", aix::obs::Value::from(stress)),
        ("samples", aix::obs::Value::from(samples)),
        ("seed", aix::obs::Value::from(seed)),
    ];
    if deadline_ms > 0 {
        fields.push(("deadline_ms", aix::obs::Value::from(deadline_ms)));
    }
    let payload = aix::obs::render_object(&fields);

    let connect_override = parse_connect_timeout(options)?;
    // Bound the response wait: the deadline plus slack when one is set,
    // otherwise a generous ceiling so a wedged daemon still cannot hang
    // the CLI forever.
    let response_timeout = if deadline_ms > 0 {
        Duration::from_millis(deadline_ms) + Duration::from_secs(10)
    } else {
        Duration::from_secs(600)
    };

    let response = if let Some(list) = get(options, "--fleet") {
        let mut config = FleetConfig::new(parse_fleet_addrs(list)?);
        config.connect_timeout_ms = connect_override;
        config.response_timeout = response_timeout;
        let fleet = FleetClient::new(config).map_err(|e| AixError::io(list.to_owned(), e))?;
        let response = fleet
            .call(&payload)
            .map_err(|e| AixError::io(list.to_owned(), e))?;
        for (key, value) in response.fields() {
            println!("{key}: {value}");
        }
        println!("[fleet]");
        for (key, value) in fleet.snapshot_fields() {
            println!("  {key}: {value}");
        }
        response
    } else {
        let addr = single_addr(options)?;
        let timeout = aix::serve::client::connect_timeout(connect_override);
        let mut client = Client::connect_with_timeout(&addr, timeout)
            .map_err(|e| AixError::io(addr.clone(), e))?;
        client
            .set_response_timeout(Some(response_timeout))
            .map_err(|e| AixError::io(addr.clone(), e))?;
        let response = client
            .call(&payload)
            .map_err(|e| AixError::io(addr.clone(), e))?;
        for (key, value) in response.fields() {
            println!("{key}: {value}");
        }
        response
    };
    Ok(if matches!(response.status(), "ok" | "partial") {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn error_rate(options: &HashMap<String, String>) -> CliResult {
    let kind = parse_kind(options)?;
    let width: usize = parse_or(options, "--width", 32, "a positive operand width in bits")?;
    let vectors: usize = parse_or(options, "--vectors", 4000, "a positive vector count")?;
    let scenario = parse_scenario(options)?;
    let cells = Arc::new(Library::nangate45_like());
    let model = AgingModel::calibrated();
    let netlist = kind.synthesize(&cells, ComponentSpec::full(width), parse_effort(options)?)?;
    let clock = analyze(&netlist, &NetDelays::fresh(&netlist))?.max_delay_ps();
    let aged = NetDelays::aged(&netlist, &model, scenario);
    let padding = netlist.inputs().len() - 2 * width;
    let stats = measure_errors(
        &netlist,
        &aged,
        clock,
        SignedNormalOperands::for_width(width, 1).vectors_with_zeros(vectors, padding),
    )?;
    println!(
        "{kind}-{width} at fresh clock {clock:.1} ps under {scenario}: \
         {:.2}% erroneous outputs ({} of {} vectors, mean |error| {:.1})",
        stats.error_percent(),
        stats.erroneous,
        stats.vectors,
        stats.mean_abs_error
    );
    Ok(ExitCode::SUCCESS)
}

fn quality(options: &HashMap<String, String>) -> CliResult {
    let value = require(options, "--truncation")?;
    let truncation: u32 = value.parse().map_err(|_| AixError::InvalidOption {
        flag: "--truncation",
        value: value.to_owned(),
        expected: "a truncated-bit count",
    })?;
    let width: usize = parse_or(options, "--width", 176, "a frame width in pixels")?;
    let height: usize = parse_or(options, "--height", 144, "a frame height in pixels")?;
    let results = aix::core::evaluate_sequences(
        DatapathPrecision::new(truncation, 0),
        width,
        height,
    );
    println!("{:<10} {:>10} {:>10} {:>8}", "sequence", "PSNR [dB]", "exact", "SSIM");
    for r in &results {
        println!(
            "{:<10} {:>10.1} {:>10.1} {:>8.3}",
            r.sequence.label(),
            r.psnr_db,
            r.exact_psnr_db,
            r.ssim
        );
    }
    println!(
        "{:<10} {:>10.1}",
        "average",
        aix::core::average_psnr_db(&results)
    );
    Ok(ExitCode::SUCCESS)
}

fn export(options: &HashMap<String, String>) -> CliResult {
    let dir = get(options, "--out-dir").unwrap_or("out");
    std::fs::create_dir_all(dir).map_err(|e| AixError::io(dir, e))?;
    let write = |path: String, contents: String| -> Result<(), AixError> {
        std::fs::write(&path, contents).map_err(|e| AixError::io(path, e))
    };
    let cells = Arc::new(Library::nangate45_like());
    let model = AgingModel::calibrated();
    write(format!("{dir}/aix_45nm.lib"), to_liberty(&cells))?;
    let aged = DegradationAwareLibrary::generate(&cells, &model, Lifetime::YEARS_10);
    write(
        format!("{dir}/aix_45nm_aged10y.tbl"),
        degradation_to_text(&cells, &aged),
    )?;
    let adder = ComponentKind::Adder.synthesize(&cells, ComponentSpec::full(16), Effort::Ultra)?;
    write(format!("{dir}/adder16_ultra.v"), to_verilog(&adder))?;
    write(format!("{dir}/adder16_ultra.dot"), to_dot(&adder))?;
    write(
        format!("{dir}/adder16_ultra_fresh.sdf"),
        to_sdf(&adder, &NetDelays::fresh(&adder), "fresh"),
    )?;
    write(
        format!("{dir}/adder16_ultra_aged10y.sdf"),
        to_sdf(
            &adder,
            &NetDelays::aged(
                &adder,
                &model,
                AgingScenario::worst_case(Lifetime::YEARS_10),
            ),
            "aged-10y-worst",
        ),
    )?;
    println!("artifacts written to {dir}/");
    for name in [
        "aix_45nm.lib",
        "aix_45nm_aged10y.tbl",
        "adder16_ultra.v",
        "adder16_ultra.dot",
        "adder16_ultra_fresh.sdf",
        "adder16_ultra_aged10y.sdf",
    ] {
        println!("  {dir}/{name}");
    }
    Ok(ExitCode::SUCCESS)
}
