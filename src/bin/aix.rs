//! `aix` — command-line driver for the aging-induced-approximations
//! workspace: characterize components, run the microarchitecture flow,
//! measure error rates and export EDA artifacts without writing any code.
//!
//! ```text
//! aix characterize --kind adder --width 16 [--effort medium] [--out FILE]
//! aix flow [--years 10] [--stress worst|balanced] [--library FILE]
//! aix error-rate --kind adder --width 32 [--years 10] [--vectors 4000]
//! aix quality --truncation 9 [--width 176 --height 144]
//! aix export [--out-dir out]
//! aix help
//! ```

use aix::aging::{AgingModel, AgingScenario, Lifetime};
use aix::arith::ComponentSpec;
use aix::cells::{degradation_to_text, to_liberty, DegradationAwareLibrary, Library};
use aix::core::{
    apply_aging_approximations, characterize_component, idct_design, ApproxLibrary,
    CharacterizationConfig, ComponentKind,
};
use aix::dct::DatapathPrecision;
use aix::netlist::{to_dot, to_verilog};
use aix::sim::{measure_errors, OperandSource, SignedNormalOperands};
use aix::sta::{analyze, to_sdf, NetDelays};
use aix::synth::Effort;
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let options = parse_options(args);
    let result = match command.as_str() {
        "characterize" => characterize(&options),
        "flow" => flow(&options),
        "error-rate" => error_rate(&options),
        "quality" => quality(&options),
        "export" => export(&options),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("aix: {error}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage: aix <command> [--key value ...]

commands:
  characterize  --kind adder|multiplier|mac --width N [--effort area|medium|ultra]
                [--out FILE]      characterize a component and print/store the
                                  aging-induced approximation library row
  flow          [--years N] [--stress worst|balanced] [--library FILE]
                                  run the Fig. 6 flow on the IDCT design
  error-rate    --kind adder|multiplier --width N [--years N] [--vectors N]
                                  measure timing-error probability at the fresh clock
  quality       --truncation N [--width W --height H]
                                  PSNR/SSIM of the test sequences at a datapath precision
  export        [--out-dir DIR]   write Liberty, degradation tables, Verilog,
                                  DOT and SDF artifacts
  help                            show this message";

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn parse_options(args: impl Iterator<Item = String>) -> HashMap<String, String> {
    let mut options = HashMap::new();
    let mut key: Option<String> = None;
    for arg in args {
        if let Some(stripped) = arg.strip_prefix("--") {
            if let Some(pending) = key.take() {
                options.insert(pending, String::from("true"));
            }
            match stripped.split_once('=') {
                Some((k, v)) => {
                    options.insert(k.to_owned(), v.to_owned());
                }
                None => key = Some(stripped.to_owned()),
            }
        } else if let Some(pending) = key.take() {
            options.insert(pending, arg);
        }
    }
    if let Some(pending) = key.take() {
        options.insert(pending, String::from("true"));
    }
    options
}

fn get<'o>(options: &'o HashMap<String, String>, key: &str) -> Option<&'o str> {
    options.get(key).map(String::as_str)
}

fn parse_kind(options: &HashMap<String, String>) -> Result<ComponentKind, String> {
    get(options, "kind")
        .ok_or("--kind is required")?
        .parse()
        .map_err(|e| format!("{e}"))
}

fn parse_effort(options: &HashMap<String, String>) -> Result<Effort, String> {
    match get(options, "effort").unwrap_or("ultra") {
        "area" => Ok(Effort::Area),
        "medium" => Ok(Effort::Medium),
        "ultra" => Ok(Effort::Ultra),
        other => Err(format!("unknown effort `{other}`")),
    }
}

fn parse_scenario(options: &HashMap<String, String>) -> Result<AgingScenario, String> {
    let years: f64 = get(options, "years")
        .unwrap_or("10")
        .parse()
        .map_err(|_| "bad --years")?;
    let lifetime = Lifetime::try_from_years(years).map_err(|e| e.to_string())?;
    match get(options, "stress").unwrap_or("worst") {
        "worst" => Ok(AgingScenario::worst_case(lifetime)),
        "balanced" => Ok(AgingScenario::balanced(lifetime)),
        other => Err(format!("unknown stress `{other}`")),
    }
}

fn characterize(options: &HashMap<String, String>) -> CliResult {
    let kind = parse_kind(options)?;
    let width: usize = get(options, "width")
        .ok_or("--width is required")?
        .parse()
        .map_err(|_| "bad --width")?;
    let cells = Arc::new(Library::nangate45_like());
    let mut config = CharacterizationConfig::paper_default(kind, width);
    config.effort = parse_effort(options)?;
    let characterization = characterize_component(&cells, &config)?;
    let mut library = ApproxLibrary::new();
    library.insert(characterization);
    let text = library.to_text();
    if let Some(path) = get(options, "out") {
        std::fs::write(path, &text)?;
        println!("written to {path}");
    } else {
        print!("{text}");
    }
    let characterization = library.get(kind, width).expect("just inserted");
    for scenario in [
        AgingScenario::worst_case(Lifetime::YEARS_1),
        AgingScenario::worst_case(Lifetime::YEARS_10),
    ] {
        match characterization.required_precision(scenario) {
            Some(p) => println!(
                "# Eq. 2 under {scenario}: precision {p}b ({} bits truncated)",
                width - p
            ),
            None => println!("# Eq. 2 under {scenario}: not compensable"),
        }
    }
    Ok(())
}

fn flow(options: &HashMap<String, String>) -> CliResult {
    let scenario = parse_scenario(options)?;
    let cells = Arc::new(Library::nangate45_like());
    let model = AgingModel::calibrated();
    let library = match get(options, "library") {
        Some(path) => ApproxLibrary::from_text(&std::fs::read_to_string(path)?)?,
        None => {
            eprintln!("(no --library given: characterizing the IDCT components, ~minutes)");
            let mut library = ApproxLibrary::new();
            for (kind, width) in [
                (ComponentKind::Multiplier, 32),
                (ComponentKind::Adder, 32),
                (ComponentKind::Adder, 16),
            ] {
                library.insert(characterize_component(
                    &cells,
                    &CharacterizationConfig::paper_default(kind, width),
                )?);
            }
            library
        }
    };
    let design = idct_design(&cells, Effort::Ultra)?;
    let plan = apply_aging_approximations(&design, &library, &model, scenario)?;
    println!(
        "design `{}` constraint {:.1} ps under {scenario}:",
        design.name(),
        plan.constraint_ps
    );
    for block in &plan.blocks {
        println!(
            "  {:<12} aged {:>7.1} ps  slack {:>+6.1}%  -> precision {}b (-{} bits)",
            block.name,
            block.aged_delay_ps,
            block.relative_slack * 100.0,
            block.precision,
            block.truncated_bits()
        );
    }
    let validation = plan.validate(&cells, design.effort(), &model)?;
    println!(
        "validation: timing {}",
        if validation.timing_met { "MET" } else { "VIOLATED" }
    );
    Ok(())
}

fn error_rate(options: &HashMap<String, String>) -> CliResult {
    let kind = parse_kind(options)?;
    let width: usize = get(options, "width")
        .unwrap_or("32")
        .parse()
        .map_err(|_| "bad --width")?;
    let vectors: usize = get(options, "vectors")
        .unwrap_or("4000")
        .parse()
        .map_err(|_| "bad --vectors")?;
    let scenario = parse_scenario(options)?;
    let cells = Arc::new(Library::nangate45_like());
    let model = AgingModel::calibrated();
    let netlist = kind.synthesize(&cells, ComponentSpec::full(width), parse_effort(options)?)?;
    let clock = analyze(&netlist, &NetDelays::fresh(&netlist))?.max_delay_ps();
    let aged = NetDelays::aged(&netlist, &model, scenario);
    let padding = netlist.inputs().len() - 2 * width;
    let stats = measure_errors(
        &netlist,
        &aged,
        clock,
        SignedNormalOperands::for_width(width, 1).vectors_with_zeros(vectors, padding),
    )?;
    println!(
        "{kind}-{width} at fresh clock {clock:.1} ps under {scenario}: \
         {:.2}% erroneous outputs ({} of {} vectors, mean |error| {:.1})",
        stats.error_percent(),
        stats.erroneous,
        stats.vectors,
        stats.mean_abs_error
    );
    Ok(())
}

fn quality(options: &HashMap<String, String>) -> CliResult {
    let truncation: u32 = get(options, "truncation")
        .ok_or("--truncation is required")?
        .parse()
        .map_err(|_| "bad --truncation")?;
    let width: usize = get(options, "width")
        .unwrap_or("176")
        .parse()
        .map_err(|_| "bad --width")?;
    let height: usize = get(options, "height")
        .unwrap_or("144")
        .parse()
        .map_err(|_| "bad --height")?;
    let results = aix::core::evaluate_sequences(
        DatapathPrecision::new(truncation, 0),
        width,
        height,
    );
    println!("{:<10} {:>10} {:>10} {:>8}", "sequence", "PSNR [dB]", "exact", "SSIM");
    for r in &results {
        println!(
            "{:<10} {:>10.1} {:>10.1} {:>8.3}",
            r.sequence.label(),
            r.psnr_db,
            r.exact_psnr_db,
            r.ssim
        );
    }
    println!(
        "{:<10} {:>10.1}",
        "average",
        aix::core::average_psnr_db(&results)
    );
    Ok(())
}

fn export(options: &HashMap<String, String>) -> CliResult {
    let dir = get(options, "out-dir").unwrap_or("out");
    std::fs::create_dir_all(dir)?;
    let cells = Arc::new(Library::nangate45_like());
    let model = AgingModel::calibrated();
    std::fs::write(format!("{dir}/aix_45nm.lib"), to_liberty(&cells))?;
    let aged = DegradationAwareLibrary::generate(&cells, &model, Lifetime::YEARS_10);
    std::fs::write(
        format!("{dir}/aix_45nm_aged10y.tbl"),
        degradation_to_text(&cells, &aged),
    )?;
    let adder = ComponentKind::Adder.synthesize(&cells, ComponentSpec::full(16), Effort::Ultra)?;
    std::fs::write(format!("{dir}/adder16_ultra.v"), to_verilog(&adder))?;
    std::fs::write(format!("{dir}/adder16_ultra.dot"), to_dot(&adder))?;
    std::fs::write(
        format!("{dir}/adder16_ultra_fresh.sdf"),
        to_sdf(&adder, &NetDelays::fresh(&adder), "fresh"),
    )?;
    std::fs::write(
        format!("{dir}/adder16_ultra_aged10y.sdf"),
        to_sdf(
            &adder,
            &NetDelays::aged(
                &adder,
                &model,
                AgingScenario::worst_case(Lifetime::YEARS_10),
            ),
            "aged-10y-worst",
        ),
    )?;
    println!("artifacts written to {dir}/");
    for name in [
        "aix_45nm.lib",
        "aix_45nm_aged10y.tbl",
        "adder16_ultra.v",
        "adder16_ultra.dot",
        "adder16_ultra_fresh.sdf",
        "adder16_ultra_aged10y.sdf",
    ] {
        println!("  {dir}/{name}");
    }
    Ok(())
}
