//! # aix — aging-induced approximations
//!
//! Facade crate re-exporting the whole workspace: a Rust reproduction of
//! *"Towards Aging-Induced Approximations"* (DAC 2017), which removes the
//! timing guardbands that transistor aging (BTI) normally demands by
//! converting the would-be timing errors into deterministic, bounded
//! precision reductions of the datapath's arithmetic components.
//!
//! Entry points:
//!
//! * [`core`] — the paper's methodology: component characterization
//!   (Eq. 2), the approximation library, and the microarchitecture flow
//!   (Fig. 6).
//! * [`aging`], [`cells`], [`netlist`], [`arith`], [`synth`], [`sta`],
//!   [`sim`], [`power`] — the EDA substrate everything is built on.
//! * [`verify`] — adversarial re-validation: Monte-Carlo guarantee
//!   verification, fault injection and graceful precision degradation.
//! * [`faults`] — the deterministic fault-injection harness (`AIX_FAULT`)
//!   used to exercise campaign fault tolerance end to end.
//! * [`obs`] — the structured observability layer: hierarchical spans,
//!   typed metrics and the crash-safe JSONL event trace behind `--trace`.
//! * [`dct`], [`image`] — the error-tolerant multimedia case study.
//!
//! # Examples
//!
//! ```
//! use aix::aging::{AgingModel, Lifetime, StressFactor};
//!
//! // Ten years of worst-case BTI stress costs roughly 16 % gate delay —
//! // the guardband this workspace's methodology trades for precision.
//! let model = AgingModel::calibrated();
//! let factor = model.delay_factor(StressFactor::WORST, Lifetime::YEARS_10);
//! assert!(factor > 1.1);
//! ```
//!
//! See the repository's `README.md` for a tour, `DESIGN.md` for the
//! substitution inventory and `EXPERIMENTS.md` for paper-vs-measured
//! results of every figure.

pub use aix_aging as aging;
pub use aix_arith as arith;
pub use aix_cells as cells;
pub use aix_core as core;
pub use aix_dct as dct;
pub use aix_explore as explore;
pub use aix_faults as faults;
pub use aix_image as image;
pub use aix_netlist as netlist;
pub use aix_obs as obs;
pub use aix_power as power;
pub use aix_serve as serve;
pub use aix_sim as sim;
pub use aix_sta as sta;
pub use aix_synth as synth;
pub use aix_verify as verify;
