//! Algebraic property tests for the arithmetic generators.

use aix_arith::{
    build_adder, build_mac, build_multiplier, AdderKind, ComponentSpec, MultiplierKind,
};
use aix_cells::Library;
use aix_netlist::{bus_from_u64, bus_to_u64, Netlist};
use proptest::prelude::*;
use std::sync::Arc;

fn cells() -> Arc<Library> {
    Arc::new(Library::nangate45_like())
}

fn run2(netlist: &Netlist, width: usize, a: u64, b: u64) -> u64 {
    let mut inputs = bus_from_u64(a, width);
    inputs.extend(bus_from_u64(b, width));
    bus_to_u64(&netlist.eval(&inputs).expect("eval"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Addition is commutative through every adder netlist.
    #[test]
    fn adder_commutes(width in 2usize..=14, a in any::<u64>(), b in any::<u64>(), k in 0usize..4) {
        let kind = AdderKind::ALL[k];
        let nl = build_adder(&cells(), kind, ComponentSpec::full(width)).expect("build");
        let mask = (1u64 << width) - 1;
        let (a, b) = (a & mask, b & mask);
        prop_assert_eq!(run2(&nl, width, a, b), run2(&nl, width, b, a));
    }

    /// Zero is the additive identity and produces no carry.
    #[test]
    fn adder_identity(width in 2usize..=14, a in any::<u64>(), k in 0usize..4) {
        let kind = AdderKind::ALL[k];
        let nl = build_adder(&cells(), kind, ComponentSpec::full(width)).expect("build");
        let mask = (1u64 << width) - 1;
        let a = a & mask;
        prop_assert_eq!(run2(&nl, width, a, 0), a);
    }

    /// Multiplication commutes and one is its identity.
    #[test]
    fn multiplier_algebra(width in 2usize..=8, a in any::<u64>(), b in any::<u64>(), k in 0usize..3) {
        let kind = MultiplierKind::ALL[k];
        let nl = build_multiplier(&cells(), kind, ComponentSpec::full(width)).expect("build");
        let mask = (1u64 << width) - 1;
        let (a, b) = (a & mask, b & mask);
        prop_assert_eq!(run2(&nl, width, a, b), run2(&nl, width, b, a));
        prop_assert_eq!(run2(&nl, width, a, 1), a);
        prop_assert_eq!(run2(&nl, width, a, 0), 0);
    }

    /// The MAC agrees with multiply-then-add and truncation masks only the
    /// multiplier operands.
    #[test]
    fn mac_decomposes(
        width in 2usize..=8,
        cut in 0usize..=3,
        a in any::<u64>(),
        b in any::<u64>(),
        acc in any::<u64>(),
    ) {
        let precision = width.saturating_sub(cut).max(1);
        let spec = ComponentSpec::new(width, precision).expect("valid");
        let nl = build_mac(&cells(), spec).expect("build");
        let mask = (1u64 << width) - 1;
        let acc_mask = (1u64 << (2 * width)) - 1;
        let (a, b, acc) = (a & mask, b & mask, acc & acc_mask);
        let mut inputs = bus_from_u64(a, width);
        inputs.extend(bus_from_u64(b, width));
        inputs.extend(bus_from_u64(acc, 2 * width));
        let got = bus_to_u64(&nl.eval(&inputs).expect("eval"));
        let expect = (spec.truncate(a) * spec.truncate(b) + acc) & acc_mask;
        prop_assert_eq!(got, expect);
    }

    /// All adder architectures agree with each other bit-for-bit.
    #[test]
    fn adder_architectures_agree(width in 2usize..=12, a in any::<u64>(), b in any::<u64>()) {
        let mask = (1u64 << width) - 1;
        let (a, b) = (a & mask, b & mask);
        let reference = run2(
            &build_adder(&cells(), AdderKind::RippleCarry, ComponentSpec::full(width))
                .expect("build"),
            width,
            a,
            b,
        );
        for kind in [AdderKind::CarryLookahead, AdderKind::CarrySelect, AdderKind::KoggeStone] {
            let nl = build_adder(&cells(), kind, ComponentSpec::full(width)).expect("build");
            prop_assert_eq!(run2(&nl, width, a, b), reference, "{:?}", kind);
        }
    }
}
