//! Adder generators: ripple-carry, carry-lookahead, carry-select and
//! Kogge-Stone architectures.

use crate::{CellSet, ComponentSpec};
use aix_cells::Library;
use aix_netlist::{NetId, Netlist, NetlistError};
use std::sync::Arc;

/// Adder architecture.
///
/// The architectures trade delay against area and — crucially for this
/// paper — differ in how strongly truncating LSBs shortens the critical
/// path: linear for [`AdderKind::RippleCarry`], roughly `width/block` for
/// [`AdderKind::CarrySelect`] and [`AdderKind::CarryLookahead`], and only
/// logarithmically (via reduced loading) for [`AdderKind::KoggeStone`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AdderKind {
    /// Chain of full adders; smallest area, longest delay.
    RippleCarry,
    /// 4-bit-block carry lookahead with rippling block carries.
    CarryLookahead,
    /// 4-bit-block carry select; the workspace's best-performance mapping.
    CarrySelect,
    /// Kogge-Stone parallel-prefix adder; logarithmic depth.
    KoggeStone,
}

impl AdderKind {
    /// All architectures, for sweeps and ablations.
    pub const ALL: [AdderKind; 4] = [
        AdderKind::RippleCarry,
        AdderKind::CarryLookahead,
        AdderKind::CarrySelect,
        AdderKind::KoggeStone,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            AdderKind::RippleCarry => "rca",
            AdderKind::CarryLookahead => "cla",
            AdderKind::CarrySelect => "csel",
            AdderKind::KoggeStone => "ks",
        }
    }
}

/// Block size used by the blocked architectures.
const BLOCK: usize = 4;

/// Instantiates an adder over existing operand buses, returning the sum bus
/// (same width as the operands) and the carry-out net.
///
/// `a` and `b` must be equal-length, LSB-first buses. `cin` defaults to
/// constant zero.
///
/// # Errors
///
/// Propagates [`NetlistError`] from gate instantiation; never fails on
/// well-formed buses.
///
/// # Panics
///
/// Panics if `a` and `b` differ in length or are empty.
pub fn add_into(
    nl: &mut Netlist,
    kind: AdderKind,
    a: &[NetId],
    b: &[NetId],
    cin: Option<NetId>,
) -> Result<(Vec<NetId>, NetId), NetlistError> {
    assert_eq!(a.len(), b.len(), "operand buses must match");
    assert!(!a.is_empty(), "operands must be at least one bit");
    let cells = CellSet::resolve(nl.library());
    let cin = match cin {
        Some(net) => net,
        None => nl.constant(false),
    };
    match kind {
        AdderKind::RippleCarry => ripple_carry(nl, &cells, a, b, cin),
        AdderKind::CarryLookahead => carry_lookahead(nl, &cells, a, b, cin),
        AdderKind::CarrySelect => carry_select(nl, &cells, a, b, cin),
        AdderKind::KoggeStone => kogge_stone(nl, &cells, a, b, cin),
    }
}

fn ripple_carry(
    nl: &mut Netlist,
    cells: &CellSet,
    a: &[NetId],
    b: &[NetId],
    cin: NetId,
) -> Result<(Vec<NetId>, NetId), NetlistError> {
    let mut carry = cin;
    let mut sum = Vec::with_capacity(a.len());
    for (&ai, &bi) in a.iter().zip(b) {
        let out = nl.add_gate(cells.fa, &[ai, bi, carry])?;
        sum.push(out[0]);
        carry = out[1];
    }
    Ok((sum, carry))
}

/// Per-bit propagate/generate signals.
fn propagate_generate(
    nl: &mut Netlist,
    cells: &CellSet,
    a: &[NetId],
    b: &[NetId],
) -> Result<(Vec<NetId>, Vec<NetId>), NetlistError> {
    let mut p = Vec::with_capacity(a.len());
    let mut g = Vec::with_capacity(a.len());
    for (&ai, &bi) in a.iter().zip(b) {
        p.push(nl.add_gate(cells.xor2, &[ai, bi])?[0]);
        g.push(nl.add_gate(cells.and2, &[ai, bi])?[0]);
    }
    Ok((p, g))
}

/// `g | (p & c)` — the carry-merge operator.
fn carry_merge(
    nl: &mut Netlist,
    cells: &CellSet,
    g: NetId,
    p: NetId,
    c: NetId,
) -> Result<NetId, NetlistError> {
    let pc = nl.add_gate(cells.and2, &[p, c])?[0];
    Ok(nl.add_gate(cells.or2, &[g, pc])?[0])
}

fn carry_lookahead(
    nl: &mut Netlist,
    cells: &CellSet,
    a: &[NetId],
    b: &[NetId],
    cin: NetId,
) -> Result<(Vec<NetId>, NetId), NetlistError> {
    let n = a.len();
    let (p, g) = propagate_generate(nl, cells, a, b)?;
    let mut sum = Vec::with_capacity(n);
    let mut block_cin = cin;
    for block_start in (0..n).step_by(BLOCK) {
        let block_end = (block_start + BLOCK).min(n);
        // Within-block carries from the block carry-in.
        let mut c = block_cin;
        for i in block_start..block_end {
            sum.push(nl.add_gate(cells.xor2, &[p[i], c])?[0]);
            c = carry_merge(nl, cells, g[i], p[i], c)?;
        }
        // Block generate/propagate for the lookahead carry into the next
        // block: G = g3 + p3 g2 + p3 p2 g1 + ..., P = p3 p2 p1 p0.
        let mut block_g = g[block_start];
        let mut block_p = p[block_start];
        for i in block_start + 1..block_end {
            block_g = carry_merge(nl, cells, g[i], p[i], block_g)?;
            block_p = nl.add_gate(cells.and2, &[block_p, p[i]])?[0];
        }
        block_cin = carry_merge(nl, cells, block_g, block_p, block_cin)?;
    }
    Ok((sum, block_cin))
}

fn carry_select(
    nl: &mut Netlist,
    cells: &CellSet,
    a: &[NetId],
    b: &[NetId],
    cin: NetId,
) -> Result<(Vec<NetId>, NetId), NetlistError> {
    let n = a.len();
    let zero = nl.constant(false);
    let one = nl.constant(true);
    let mut sum = Vec::with_capacity(n);
    // First block ripples directly from cin.
    let first_end = BLOCK.min(n);
    let (s0, mut carry) = ripple_carry(nl, cells, &a[..first_end], &b[..first_end], cin)?;
    sum.extend(s0);
    let mut start = first_end;
    while start < n {
        let end = (start + BLOCK).min(n);
        let (sz, cz) = ripple_carry(nl, cells, &a[start..end], &b[start..end], zero)?;
        let (so, co) = ripple_carry(nl, cells, &a[start..end], &b[start..end], one)?;
        for (s_zero, s_one) in sz.iter().zip(&so) {
            sum.push(nl.add_gate(cells.mux2, &[*s_zero, *s_one, carry])?[0]);
        }
        carry = nl.add_gate(cells.mux2, &[cz, co, carry])?[0];
        start = end;
    }
    Ok((sum, carry))
}

fn kogge_stone(
    nl: &mut Netlist,
    cells: &CellSet,
    a: &[NetId],
    b: &[NetId],
    cin: NetId,
) -> Result<(Vec<NetId>, NetId), NetlistError> {
    let n = a.len();
    let (p, g) = propagate_generate(nl, cells, a, b)?;
    // Prefix spans: big_g[i]/big_p[i] cover bits 0..=i.
    let mut big_g = g.clone();
    let mut big_p = p.clone();
    let mut d = 1;
    while d < n {
        let mut next_g = big_g.clone();
        let mut next_p = big_p.clone();
        for i in d..n {
            next_g[i] = carry_merge(nl, cells, big_g[i], big_p[i], big_g[i - d])?;
            next_p[i] = nl.add_gate(cells.and2, &[big_p[i], big_p[i - d]])?[0];
        }
        big_g = next_g;
        big_p = next_p;
        d *= 2;
    }
    // Carry into bit i: prefix over bits 0..i merged with cin.
    let mut sum = Vec::with_capacity(n);
    sum.push(nl.add_gate(cells.xor2, &[p[0], cin])?[0]);
    for i in 1..n {
        let carry_in = carry_merge(nl, cells, big_g[i - 1], big_p[i - 1], cin)?;
        sum.push(nl.add_gate(cells.xor2, &[p[i], carry_in])?[0]);
    }
    let cout = carry_merge(nl, cells, big_g[n - 1], big_p[n - 1], cin)?;
    Ok((sum, cout))
}

/// Replaces the low truncated bits of a bus with constant zero, implementing
/// the paper's LSB-truncation approximation at the operand boundary.
pub(crate) fn truncate_bus(nl: &mut Netlist, bus: &[NetId], spec: ComponentSpec) -> Vec<NetId> {
    let zero = nl.constant(false);
    bus.iter()
        .enumerate()
        .map(|(i, &net)| if i < spec.truncated_bits() { zero } else { net })
        .collect()
}

/// Builds a complete adder component: inputs `a` and `b` of
/// [`ComponentSpec::width`] bits, outputs `sum[width]` plus `cout`.
///
/// # Errors
///
/// Propagates [`NetlistError`] from construction; well-formed specs never fail.
pub fn build_adder(
    library: &Arc<Library>,
    kind: AdderKind,
    spec: ComponentSpec,
) -> Result<Netlist, NetlistError> {
    let mut nl = Netlist::new(
        format!("adder_{}_{}", kind.label(), spec),
        Arc::clone(library),
    );
    let a = nl.add_input_bus("a", spec.width());
    let b = nl.add_input_bus("b", spec.width());
    let at = truncate_bus(&mut nl, &a, spec);
    let bt = truncate_bus(&mut nl, &b, spec);
    let (sum, cout) = add_into(&mut nl, kind, &at, &bt, None)?;
    nl.mark_output_bus("sum", &sum);
    nl.mark_output("cout", cout);
    nl.validate()?;
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aix_netlist::{bus_from_u64, bus_to_u64};

    fn lib() -> Arc<Library> {
        Arc::new(Library::nangate45_like())
    }

    fn run_adder(nl: &Netlist, width: usize, a: u64, b: u64) -> u64 {
        let mut inputs = bus_from_u64(a, width);
        inputs.extend(bus_from_u64(b, width));
        bus_to_u64(&nl.eval(&inputs).unwrap())
    }

    #[test]
    fn exhaustive_four_bit_all_architectures() {
        let lib = lib();
        for kind in AdderKind::ALL {
            let nl = build_adder(&lib, kind, ComponentSpec::full(4)).unwrap();
            for a in 0u64..16 {
                for b in 0u64..16 {
                    assert_eq!(run_adder(&nl, 4, a, b), a + b, "{kind:?} {a}+{b}");
                }
            }
        }
    }

    #[test]
    fn random_32_bit_all_architectures() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let lib = lib();
        let mut rng = StdRng::seed_from_u64(7);
        for kind in AdderKind::ALL {
            let nl = build_adder(&lib, kind, ComponentSpec::full(32)).unwrap();
            for _ in 0..200 {
                let a: u64 = rng.gen::<u32>() as u64;
                let b: u64 = rng.gen::<u32>() as u64;
                assert_eq!(run_adder(&nl, 32, a, b), a + b, "{kind:?} {a}+{b}");
            }
        }
    }

    #[test]
    fn truncated_adder_matches_masked_reference() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let lib = lib();
        let spec = ComponentSpec::new(16, 11).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for kind in AdderKind::ALL {
            let nl = build_adder(&lib, kind, spec).unwrap();
            for _ in 0..100 {
                let a: u64 = rng.gen::<u16>() as u64;
                let b: u64 = rng.gen::<u16>() as u64;
                let expect = spec.truncate(a) + spec.truncate(b);
                assert_eq!(run_adder(&nl, 16, a, b), expect, "{kind:?}");
            }
        }
    }

    #[test]
    fn one_bit_adders_work() {
        let lib = lib();
        for kind in AdderKind::ALL {
            let nl = build_adder(&lib, kind, ComponentSpec::full(1)).unwrap();
            for a in 0..2u64 {
                for b in 0..2u64 {
                    assert_eq!(run_adder(&nl, 1, a, b), a + b, "{kind:?}");
                }
            }
        }
    }

    #[test]
    fn non_multiple_of_block_width() {
        let lib = lib();
        for kind in [AdderKind::CarryLookahead, AdderKind::CarrySelect] {
            let nl = build_adder(&lib, kind, ComponentSpec::full(10)).unwrap();
            for (a, b) in [(1023, 1), (512, 511), (700, 700)] {
                assert_eq!(run_adder(&nl, 10, a, b), a + b, "{kind:?}");
            }
        }
    }

    #[test]
    fn ripple_carry_is_smallest() {
        let lib = lib();
        let spec = ComponentSpec::full(16);
        let rca = build_adder(&lib, AdderKind::RippleCarry, spec).unwrap();
        for kind in [AdderKind::CarrySelect, AdderKind::KoggeStone] {
            let other = build_adder(&lib, kind, spec).unwrap();
            assert!(
                rca.stats().area_um2 < other.stats().area_um2,
                "RCA should be smaller than {kind:?}"
            );
        }
    }

    #[test]
    fn composable_form_uses_caller_cin() {
        let lib = lib();
        let mut nl = Netlist::new("with_cin", lib.clone());
        let a = nl.add_input_bus("a", 4);
        let b = nl.add_input_bus("b", 4);
        let cin = nl.add_input("cin");
        let (sum, cout) = add_into(&mut nl, AdderKind::RippleCarry, &a, &b, Some(cin)).unwrap();
        nl.mark_output_bus("sum", &sum);
        nl.mark_output("cout", cout);
        let mut inputs = bus_from_u64(7, 4);
        inputs.extend(bus_from_u64(8, 4));
        inputs.push(true);
        assert_eq!(bus_to_u64(&nl.eval(&inputs).unwrap()), 16);
    }
}
