//! Multiplier generators: carry-save array and Wallace-tree architectures.

use crate::adder::truncate_bus;
use crate::{add_into, AdderKind, CellSet, ComponentSpec};
use aix_cells::Library;
use aix_netlist::{NetId, Netlist, NetlistError};
use std::sync::Arc;

/// Multiplier architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MultiplierKind {
    /// Carry-save array: regular layout, delay linear in width. Truncation
    /// removes whole rows *and* columns, so its delay responds strongly to
    /// precision reduction — the behaviour the paper reports for its MAC.
    Array,
    /// Wallace tree with a carry-select final adder: logarithmic reduction
    /// depth, the best-performance mapping.
    Wallace,
    /// Wallace tree with a Kogge-Stone final adder: a fully balanced
    /// structure whose exercised paths hug the critical path — the ablation
    /// used to study dynamic timing-error sensitivity.
    WallacePrefix,
}

impl MultiplierKind {
    /// All architectures, for sweeps and ablations.
    pub const ALL: [MultiplierKind; 3] = [
        MultiplierKind::Array,
        MultiplierKind::Wallace,
        MultiplierKind::WallacePrefix,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            MultiplierKind::Array => "array",
            MultiplierKind::Wallace => "wallace",
            MultiplierKind::WallacePrefix => "wallace-ks",
        }
    }
}

/// Generates the unsigned partial-product matrix: `pp[i][j] = a[i] & b[j]`.
pub(crate) fn partial_products(
    nl: &mut Netlist,
    cells: &CellSet,
    a: &[NetId],
    b: &[NetId],
) -> Result<Vec<Vec<NetId>>, NetlistError> {
    a.iter()
        .map(|&ai| {
            b.iter()
                .map(|&bj| Ok(nl.add_gate(cells.and2, &[ai, bj])?[0]))
                .collect()
        })
        .collect()
}

/// Instantiates a multiplier over existing operand buses, returning the
/// `a.len() + b.len()`-bit product bus.
///
/// # Errors
///
/// Propagates [`NetlistError`] from gate instantiation.
///
/// # Panics
///
/// Panics if either operand bus is empty.
pub fn multiply_into(
    nl: &mut Netlist,
    kind: MultiplierKind,
    a: &[NetId],
    b: &[NetId],
) -> Result<Vec<NetId>, NetlistError> {
    assert!(!a.is_empty() && !b.is_empty(), "operands must be non-empty");
    let cells = CellSet::resolve(nl.library());
    match kind {
        MultiplierKind::Array => array_multiplier(nl, &cells, a, b),
        MultiplierKind::Wallace => {
            wallace_multiplier(nl, &cells, a, b, AdderKind::CarrySelect)
        }
        MultiplierKind::WallacePrefix => {
            wallace_multiplier(nl, &cells, a, b, AdderKind::KoggeStone)
        }
    }
}

/// Classic carry-save array: each row adds one partial product, carries are
/// saved diagonally, and a final ripple row merges the remaining carries.
fn array_multiplier(
    nl: &mut Netlist,
    cells: &CellSet,
    a: &[NetId],
    b: &[NetId],
) -> Result<Vec<NetId>, NetlistError> {
    let n = a.len();
    let m = b.len();
    let pp = partial_products(nl, cells, a, b)?;
    let zero = nl.constant(false);
    let mut product = Vec::with_capacity(n + m);
    // Running carry-save state: `sums[j]` is the current sum bit for weight
    // `row + j`, `carries[j]` the carry generated at that position.
    let mut sums: Vec<NetId> = pp[0].clone();
    let mut carries: Vec<NetId> = vec![zero; m];
    product.push(sums[0]);
    for (row, pp_row) in pp.iter().enumerate().skip(1) {
        let mut next_sums = Vec::with_capacity(m);
        let mut next_carries = Vec::with_capacity(m);
        for j in 0..m {
            // Bits of weight row + j: this row's pp, the shifted previous
            // sum, and the previous carry of the same weight.
            let prev_sum = if j + 1 < m { sums[j + 1] } else { zero };
            let out = nl.add_gate(cells.fa, &[pp_row[j], prev_sum, carries[j]])?;
            next_sums.push(out[0]);
            next_carries.push(out[1]);
        }
        sums = next_sums;
        carries = next_carries;
        product.push(sums[0]);
        let _ = row;
    }
    // Final merge: remaining sum bits plus carries, rippled.
    let mut carry = zero;
    for j in 1..m {
        let out = nl.add_gate(cells.fa, &[sums[j], carries[j - 1], carry])?;
        product.push(out[0]);
        carry = out[1];
    }
    let out = nl.add_gate(cells.ha, &[carries[m - 1], carry])?;
    product.push(out[0]);
    debug_assert_eq!(product.len(), n + m);
    Ok(product)
}

/// Wallace-style column compression down to two rows, then one fast
/// carry-select addition.
fn wallace_multiplier(
    nl: &mut Netlist,
    cells: &CellSet,
    a: &[NetId],
    b: &[NetId],
    merge: AdderKind,
) -> Result<Vec<NetId>, NetlistError> {
    let n = a.len();
    let m = b.len();
    let width = n + m;
    let pp = partial_products(nl, cells, a, b)?;
    let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); width];
    for (i, row) in pp.iter().enumerate() {
        for (j, &bit) in row.iter().enumerate() {
            columns[i + j].push(bit);
        }
    }
    // Compress until every column holds at most two bits.
    while columns.iter().any(|c| c.len() > 2) {
        let mut next: Vec<Vec<NetId>> = vec![Vec::new(); width];
        for (w, column) in columns.iter().enumerate() {
            let mut idx = 0;
            while column.len() - idx >= 3 {
                let out = nl.add_gate(
                    cells.fa,
                    &[column[idx], column[idx + 1], column[idx + 2]],
                )?;
                next[w].push(out[0]);
                if w + 1 < width {
                    next[w + 1].push(out[1]);
                }
                idx += 3;
            }
            if column.len() - idx == 2 {
                let out = nl.add_gate(cells.ha, &[column[idx], column[idx + 1]])?;
                next[w].push(out[0]);
                if w + 1 < width {
                    next[w + 1].push(out[1]);
                }
            } else if column.len() - idx == 1 {
                next[w].push(column[idx]);
            }
        }
        columns = next;
    }
    // Two remaining rows -> fast adder.
    let zero = nl.constant(false);
    let row_a: Vec<NetId> = columns
        .iter()
        .map(|c| c.first().copied().unwrap_or(zero))
        .collect();
    let row_b: Vec<NetId> = columns
        .iter()
        .map(|c| c.get(1).copied().unwrap_or(zero))
        .collect();
    let (sum, _overflow) = add_into(nl, merge, &row_a, &row_b, None)?;
    Ok(sum)
}

/// Builds a complete multiplier component: inputs `a`, `b` of
/// [`ComponentSpec::width`] bits, output `p` of `2 × width` bits.
///
/// # Errors
///
/// Propagates [`NetlistError`] from construction.
pub fn build_multiplier(
    library: &Arc<Library>,
    kind: MultiplierKind,
    spec: ComponentSpec,
) -> Result<Netlist, NetlistError> {
    let mut nl = Netlist::new(
        format!("mult_{}_{}", kind.label(), spec),
        Arc::clone(library),
    );
    let a = nl.add_input_bus("a", spec.width());
    let b = nl.add_input_bus("b", spec.width());
    let at = truncate_bus(&mut nl, &a, spec);
    let bt = truncate_bus(&mut nl, &b, spec);
    let product = multiply_into(&mut nl, kind, &at, &bt)?;
    nl.mark_output_bus("p", &product);
    nl.validate()?;
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aix_netlist::{bus_from_u64, bus_to_u64};

    fn lib() -> Arc<Library> {
        Arc::new(Library::nangate45_like())
    }

    fn run_mult(nl: &Netlist, width: usize, a: u64, b: u64) -> u64 {
        let mut inputs = bus_from_u64(a, width);
        inputs.extend(bus_from_u64(b, width));
        bus_to_u64(&nl.eval(&inputs).unwrap())
    }

    #[test]
    fn exhaustive_four_bit_both_architectures() {
        let lib = lib();
        for kind in MultiplierKind::ALL {
            let nl = build_multiplier(&lib, kind, ComponentSpec::full(4)).unwrap();
            for a in 0u64..16 {
                for b in 0u64..16 {
                    assert_eq!(run_mult(&nl, 4, a, b), a * b, "{kind:?} {a}*{b}");
                }
            }
        }
    }

    #[test]
    fn random_16_bit_both_architectures() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let lib = lib();
        let mut rng = StdRng::seed_from_u64(13);
        for kind in MultiplierKind::ALL {
            let nl = build_multiplier(&lib, kind, ComponentSpec::full(16)).unwrap();
            for _ in 0..100 {
                let a: u64 = rng.gen::<u16>() as u64;
                let b: u64 = rng.gen::<u16>() as u64;
                assert_eq!(run_mult(&nl, 16, a, b), a * b, "{kind:?} {a}*{b}");
            }
        }
    }

    #[test]
    fn random_32_bit_wallace() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let lib = lib();
        let mut rng = StdRng::seed_from_u64(17);
        let nl = build_multiplier(&lib, MultiplierKind::Wallace, ComponentSpec::full(32)).unwrap();
        for _ in 0..25 {
            let a: u64 = rng.gen::<u32>() as u64;
            let b: u64 = rng.gen::<u32>() as u64;
            assert_eq!(run_mult(&nl, 32, a, b), a * b);
        }
    }

    #[test]
    fn truncated_multiplier_matches_masked_reference() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let lib = lib();
        let spec = ComponentSpec::new(12, 9).unwrap();
        let mut rng = StdRng::seed_from_u64(19);
        for kind in MultiplierKind::ALL {
            let nl = build_multiplier(&lib, kind, spec).unwrap();
            for _ in 0..50 {
                let a = u64::from(rng.gen::<u16>() & 0xFFF);
                let b = u64::from(rng.gen::<u16>() & 0xFFF);
                let expect = spec.truncate(a) * spec.truncate(b);
                assert_eq!(run_mult(&nl, 12, a, b), expect, "{kind:?}");
            }
        }
    }

    #[test]
    fn one_bit_multiplier() {
        let lib = lib();
        for kind in MultiplierKind::ALL {
            let nl = build_multiplier(&lib, kind, ComponentSpec::full(1)).unwrap();
            for a in 0..2u64 {
                for b in 0..2u64 {
                    assert_eq!(run_mult(&nl, 1, a, b), a * b, "{kind:?}");
                }
            }
        }
    }

    #[test]
    fn product_width_is_double() {
        let lib = lib();
        let nl = build_multiplier(&lib, MultiplierKind::Array, ComponentSpec::full(8)).unwrap();
        assert_eq!(nl.outputs().len(), 16);
        let max = run_mult(&nl, 8, 255, 255);
        assert_eq!(max, 255 * 255);
    }
}
