//! Component specifications: operand width and effective precision.

use std::error::Error;
use std::fmt;

/// Width and precision of an arithmetic component.
///
/// `width` is the declared operand width; `precision` is the number of
/// most-significant operand bits that actually participate. The remaining
/// `width − precision` least-significant bits are tied to constant zero —
/// the paper's generic truncation-based approximation.
///
/// # Examples
///
/// ```
/// use aix_arith::ComponentSpec;
///
/// let full = ComponentSpec::full(32);
/// assert_eq!(full.truncated_bits(), 0);
/// let cut = ComponentSpec::new(32, 29)?;
/// assert_eq!(cut.truncated_bits(), 3);
/// # Ok::<(), aix_arith::InvalidSpecError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComponentSpec {
    width: usize,
    precision: usize,
}

/// Error returned for inconsistent width/precision combinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidSpecError {
    width: usize,
    precision: usize,
}

impl fmt::Display for InvalidSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid component spec: precision {} must satisfy 1 <= precision <= width {} and width <= 64",
            self.precision, self.width
        )
    }
}

impl Error for InvalidSpecError {}

impl ComponentSpec {
    /// Full-precision component of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds 64.
    pub fn full(width: usize) -> Self {
        Self::new(width, width).expect("width must be in 1..=64")
    }

    /// A component of `width` bits operating at `precision` effective bits.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidSpecError`] unless `1 ≤ precision ≤ width ≤ 64`.
    pub fn new(width: usize, precision: usize) -> Result<Self, InvalidSpecError> {
        if width == 0 || width > 64 || precision == 0 || precision > width {
            Err(InvalidSpecError { width, precision })
        } else {
            Ok(Self { width, precision })
        }
    }

    /// Declared operand width in bits.
    pub fn width(self) -> usize {
        self.width
    }

    /// Effective precision in bits.
    pub fn precision(self) -> usize {
        self.precision
    }

    /// Number of truncated least-significant bits.
    pub fn truncated_bits(self) -> usize {
        self.width - self.precision
    }

    /// The operand mask: ones on the bits that participate.
    pub fn operand_mask(self) -> u64 {
        let full = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        full & !((1u64 << self.truncated_bits()) - 1)
    }

    /// Applies the truncation to an operand value (the functional reference
    /// used by the RTL-level quality model and by tests).
    pub fn truncate(self, value: u64) -> u64 {
        value & self.operand_mask()
    }

    /// A spec with the same width and `bits` fewer effective bits.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidSpecError`] if the reduction would leave no bits.
    pub fn reduced_by(self, bits: usize) -> Result<Self, InvalidSpecError> {
        if bits >= self.precision {
            Err(InvalidSpecError {
                width: self.width,
                precision: self.precision.saturating_sub(bits),
            })
        } else {
            Self::new(self.width, self.precision - bits)
        }
    }
}

impl fmt::Display for ComponentSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.precision == self.width {
            write!(f, "{}b", self.width)
        } else {
            write!(f, "{}b@{}", self.width, self.precision)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(ComponentSpec::new(0, 0).is_err());
        assert!(ComponentSpec::new(8, 0).is_err());
        assert!(ComponentSpec::new(8, 9).is_err());
        assert!(ComponentSpec::new(65, 65).is_err());
        assert!(ComponentSpec::new(64, 1).is_ok());
    }

    #[test]
    fn mask_and_truncate() {
        let spec = ComponentSpec::new(8, 5).unwrap();
        assert_eq!(spec.truncated_bits(), 3);
        assert_eq!(spec.operand_mask(), 0b1111_1000);
        assert_eq!(spec.truncate(0xFF), 0b1111_1000);
        assert_eq!(spec.truncate(0b0000_0111), 0);
    }

    #[test]
    fn full_width_mask_is_all_ones() {
        assert_eq!(ComponentSpec::full(64).operand_mask(), u64::MAX);
        assert_eq!(ComponentSpec::full(8).operand_mask(), 0xFF);
    }

    #[test]
    fn reduced_by_steps_down() {
        let spec = ComponentSpec::full(32);
        let cut = spec.reduced_by(3).unwrap();
        assert_eq!(cut.precision(), 29);
        assert!(spec.reduced_by(32).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(ComponentSpec::full(32).to_string(), "32b");
        assert_eq!(ComponentSpec::new(32, 29).unwrap().to_string(), "32b@29");
    }
}
