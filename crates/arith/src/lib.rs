//! Gate-level generators for the arithmetic RTL components the paper
//! characterizes: adders, multipliers and multiply-accumulate (MAC) units.
//!
//! Every generator exists in two forms:
//!
//! * a *composable* form (`add_into`, `multiply_into`, `mac_into`) that
//!   instantiates logic into an existing [`aix_netlist::Netlist`] and wires
//!   it to caller-provided operand buses, and
//! * a *component* form ([`build_adder`], [`build_multiplier`],
//!   [`build_mac`]) that produces a complete netlist with named ports —
//!   the unit the paper's characterization flow synthesizes and ages.
//!
//! # Precision reduction
//!
//! The paper's generic approximation is truncation of least-significant
//! bits. [`ComponentSpec::precision`] below the full width ties the low
//! operand bits to constant zero; the synthesis optimizer
//! (`aix-synth`) then removes the dead logic, exactly like re-synthesizing
//! the component at reduced precision, which shortens its critical path.
//!
//! # Examples
//!
//! ```
//! use aix_arith::{build_adder, AdderKind, ComponentSpec};
//! use aix_cells::Library;
//! use aix_netlist::{bus_from_u64, bus_to_u64};
//! use std::sync::Arc;
//!
//! let lib = Arc::new(Library::nangate45_like());
//! let adder = build_adder(&lib, AdderKind::CarrySelect, ComponentSpec::full(8))?;
//! let mut inputs = bus_from_u64(100, 8);
//! inputs.extend(bus_from_u64(55, 8));
//! let out = adder.eval(&inputs)?;
//! assert_eq!(bus_to_u64(&out), 155);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod adder;
mod cellset;
mod mac;
mod multiplier;
mod spec;
mod variant;

pub use adder::{add_into, build_adder, AdderKind};
pub use mac::{build_mac, mac_into};
pub use multiplier::{build_multiplier, multiply_into, MultiplierKind};
pub use spec::{ComponentSpec, InvalidSpecError};
pub use variant::{
    variant_add_into, variant_mac_into, variant_multiply_into, AdderVariant, MacVariant,
    MultiplierVariant,
};

pub(crate) use cellset::CellSet;
