//! Multiply-accumulate (MAC) generator: `out = a × b + acc` over a
//! fixed-width accumulator.

use crate::adder::truncate_bus;
use crate::{add_into, multiply_into, AdderKind, ComponentSpec, MultiplierKind};
use aix_cells::Library;
use aix_netlist::{NetId, Netlist, NetlistError};
use std::sync::Arc;

/// Instantiates a MAC over existing buses: `a × b + acc`, wrapping at the
/// accumulator width `a.len() + b.len()`.
///
/// # Errors
///
/// Propagates [`NetlistError`] from gate instantiation.
///
/// # Panics
///
/// Panics if `acc` is not exactly `a.len() + b.len()` bits wide.
pub fn mac_into(
    nl: &mut Netlist,
    mult: MultiplierKind,
    adder: AdderKind,
    a: &[NetId],
    b: &[NetId],
    acc: &[NetId],
) -> Result<Vec<NetId>, NetlistError> {
    assert_eq!(
        acc.len(),
        a.len() + b.len(),
        "accumulator must match product width"
    );
    let product = multiply_into(nl, mult, a, b)?;
    let (sum, _wrap) = add_into(nl, adder, &product, acc, None)?;
    Ok(sum)
}

/// Builds a complete MAC component: inputs `a`, `b` of
/// [`ComponentSpec::width`] bits and `acc` of `2 × width` bits; output
/// `out = a × b + acc` of `2 × width` bits (wrapping).
///
/// The multiplier core uses the carry-save array and the accumulate adder
/// the carry-select architecture — the combination whose delay responds
/// most strongly to precision reduction, mirroring the MAC behaviour the
/// paper reports in Fig. 7(a).
///
/// # Errors
///
/// Propagates [`NetlistError`] from construction.
pub fn build_mac(library: &Arc<Library>, spec: ComponentSpec) -> Result<Netlist, NetlistError> {
    let mut nl = Netlist::new(format!("mac_{spec}"), Arc::clone(library));
    let a = nl.add_input_bus("a", spec.width());
    let b = nl.add_input_bus("b", spec.width());
    let acc = nl.add_input_bus("acc", 2 * spec.width());
    let at = truncate_bus(&mut nl, &a, spec);
    let bt = truncate_bus(&mut nl, &b, spec);
    let out = mac_into(
        &mut nl,
        MultiplierKind::Array,
        AdderKind::CarrySelect,
        &at,
        &bt,
        &acc,
    )?;
    nl.mark_output_bus("out", &out);
    nl.validate()?;
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aix_netlist::{bus_from_u64, bus_to_u64};

    fn lib() -> Arc<Library> {
        Arc::new(Library::nangate45_like())
    }

    fn run_mac(nl: &Netlist, width: usize, a: u64, b: u64, acc: u64) -> u64 {
        let mut inputs = bus_from_u64(a, width);
        inputs.extend(bus_from_u64(b, width));
        inputs.extend(bus_from_u64(acc, 2 * width));
        bus_to_u64(&nl.eval(&inputs).unwrap())
    }

    #[test]
    fn exhaustive_three_bit_mac() {
        let lib = lib();
        let nl = build_mac(&lib, ComponentSpec::full(3)).unwrap();
        for a in 0u64..8 {
            for b in 0u64..8 {
                for acc in [0u64, 1, 31, 63] {
                    let expect = (a * b + acc) & 0x3F;
                    assert_eq!(run_mac(&nl, 3, a, b, acc), expect, "{a}*{b}+{acc}");
                }
            }
        }
    }

    #[test]
    fn random_16_bit_mac() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let lib = lib();
        let nl = build_mac(&lib, ComponentSpec::full(16)).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..50 {
            let a = u64::from(rng.gen::<u16>());
            let b = u64::from(rng.gen::<u16>());
            let acc = u64::from(rng.gen::<u32>());
            let expect = (a * b + acc) & 0xFFFF_FFFF;
            assert_eq!(run_mac(&nl, 16, a, b, acc), expect);
        }
    }

    #[test]
    fn accumulate_wraps_at_width() {
        let lib = lib();
        let nl = build_mac(&lib, ComponentSpec::full(4)).unwrap();
        // 15*15 + 255 = 480 = 0b1_1110_0000 wraps to 0xE0 in 8 bits.
        assert_eq!(run_mac(&nl, 4, 15, 15, 255), 480 & 0xFF);
    }

    #[test]
    fn truncation_masks_multiplier_operands_only() {
        let lib = lib();
        let spec = ComponentSpec::new(8, 6).unwrap();
        let nl = build_mac(&lib, spec).unwrap();
        let a = 0xFF;
        let b = 0x0F;
        let acc = 0x3;
        let expect = (spec.truncate(a) * spec.truncate(b) + acc) & 0xFFFF;
        assert_eq!(run_mac(&nl, 8, a, b, acc), expect);
    }
}
