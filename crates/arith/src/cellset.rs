//! Cached X1 cell ids for the generators.

use aix_cells::{CellFunction, CellId, DriveStrength, Library};

/// The X1 cells the arithmetic generators instantiate, resolved once.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CellSet {
    pub and2: CellId,
    pub or2: CellId,
    pub xor2: CellId,
    pub mux2: CellId,
    pub ha: CellId,
    pub fa: CellId,
}

impl CellSet {
    /// Resolves the generator cell set from `library`.
    ///
    /// # Panics
    ///
    /// Panics if the library is missing any required cell — impossible for
    /// [`Library::nangate45_like`].
    pub(crate) fn resolve(library: &Library) -> Self {
        let get = |f: CellFunction| {
            library
                .find(f, DriveStrength::X1)
                .unwrap_or_else(|| panic!("library missing {f} at X1"))
        };
        Self {
            and2: get(CellFunction::And2),
            or2: get(CellFunction::Or2),
            xor2: get(CellFunction::Xor2),
            mux2: get(CellFunction::Mux2),
            ha: get(CellFunction::HalfAdder),
            fa: get(CellFunction::FullAdder),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_from_default_library() {
        let lib = Library::nangate45_like();
        let set = CellSet::resolve(&lib);
        assert_eq!(lib.cell(set.fa).function, CellFunction::FullAdder);
        assert_eq!(lib.cell(set.mux2).function, CellFunction::Mux2);
    }
}
