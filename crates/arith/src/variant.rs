//! Functional approximation variants of the arithmetic generators.
//!
//! The paper's only approximation knob is uniform LSB truncation
//! ([`ComponentSpec::precision`]). This module opens the gate-level design
//! space that Balaskas et al. (arXiv:2203.07962) search against aging:
//!
//! * **Lower-OR adders** ([`AdderVariant::lower_or_bits`]): the lowest bits
//!   compute `sum_i = a_i | b_i` with no carry chain at all (LOA), and the
//!   carry into the exact region is speculated as `a & b` of the last OR
//!   bit. Cuts the carry chain like truncation but keeps most of the
//!   information in the low bits.
//! * **Approximate full adders** ([`AdderVariant::approx_fa_bits`]): AMA/AXA
//!   style cells whose sum is `(a ^ b) | c` — wrong only when `a ^ b` and
//!   `c` are both one — while the carry stays exact, so the error does not
//!   propagate up the chain.
//! * **Speculative segmentation** ([`AdderVariant::segment_bits`]): the
//!   exact region is split into segments whose carry-in is speculated from
//!   the neighbouring generate bit (`a & b`), bounding the carry chain — and
//!   hence the aged critical path — by the segment length.
//! * **Per-column multiplier pruning** ([`MultiplierVariant::pruned_columns`]):
//!   partial products of weight below the cut are dropped before
//!   compression, bounding the error by the pruned column values instead of
//!   the operand magnitudes that uniform truncation forfeits.
//! * **Approximate final merge** ([`MultiplierVariant::merge_lower_or`]):
//!   the multiplier's final two-row addition uses a lower-OR region,
//!   shortening the merge carry chain that dominates the post-compression
//!   critical path.
//!
//! Every knob at its zero ("exact") setting reproduces the canonical
//! generator bit-for-bit on every input — the invariant
//! `tests/explore_equivalence.rs` enforces differentially, packed and
//! scalar engines both. That round-trip is what lets the explorer trust a
//! variant netlist as a drop-in for the component it approximates: the
//! search moves through a space whose origin is provably the baseline, so
//! any error measured on a candidate is attributable to its knobs alone.

use crate::adder::truncate_bus;
use crate::multiplier::partial_products;
use crate::{add_into, AdderKind, CellSet, ComponentSpec, MultiplierKind};
use aix_cells::Library;
use aix_netlist::{NetId, Netlist, NetlistError};
use std::fmt;
use std::sync::Arc;

/// An approximate adder configuration.
///
/// Bits are consumed LSB-first by three regions: `lower_or_bits` OR-gate
/// bits, then `approx_fa_bits` approximate full adders, then the remaining
/// bits built by the canonical [`AdderKind`] architecture — optionally split
/// into carry-speculating segments of `segment_bits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AdderVariant {
    /// Architecture of the exact region.
    pub kind: AdderKind,
    /// Width and uniform operand truncation, as for [`crate::build_adder`].
    pub spec: ComponentSpec,
    /// Lowest bits computed as `a | b` with no carry (LOA region).
    pub lower_or_bits: usize,
    /// Bits above the OR region using `(a ^ b) | c` approximate sums.
    pub approx_fa_bits: usize,
    /// Segment length for speculative carries in the exact region;
    /// `0` keeps the single exact carry chain.
    pub segment_bits: usize,
}

impl AdderVariant {
    /// The exact (zero-knob) variant of `kind` at `spec`.
    pub fn exact(kind: AdderKind, spec: ComponentSpec) -> Self {
        AdderVariant {
            kind,
            spec,
            lower_or_bits: 0,
            approx_fa_bits: 0,
            segment_bits: 0,
        }
    }

    /// Whether every approximation knob is at its exact setting.
    ///
    /// Note this is about the *variant* knobs: a truncated [`ComponentSpec`]
    /// is still "exact" in the sense of matching [`crate::build_adder`] at
    /// the same spec.
    pub fn is_exact(&self) -> bool {
        self.lower_or_bits == 0 && self.approx_fa_bits == 0 && self.segment_bits == 0
    }

    /// Builds the complete component: inputs `a`, `b` of `spec.width()` bits,
    /// outputs `sum[width]` plus `cout`, like [`crate::build_adder`].
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from construction.
    pub fn build(&self, library: &Arc<Library>) -> Result<Netlist, NetlistError> {
        let mut nl = Netlist::new(format!("adder_{self}"), Arc::clone(library));
        let a = nl.add_input_bus("a", self.spec.width());
        let b = nl.add_input_bus("b", self.spec.width());
        let at = truncate_bus(&mut nl, &a, self.spec);
        let bt = truncate_bus(&mut nl, &b, self.spec);
        let (sum, cout) = variant_add_into(&mut nl, self, &at, &bt)?;
        nl.mark_output_bus("sum", &sum);
        nl.mark_output("cout", cout);
        nl.validate()?;
        Ok(nl)
    }
}

impl fmt::Display for AdderVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}_{}_lo{}_afa{}_seg{}",
            self.kind.label(),
            self.spec,
            self.lower_or_bits,
            self.approx_fa_bits,
            self.segment_bits
        )
    }
}

/// Instantiates an [`AdderVariant`] over existing operand buses, returning
/// the sum bus and carry-out like [`add_into`].
///
/// Region widths are clamped to the operand width, LSB-first:
/// OR region, then approximate-FA region, then the exact remainder.
///
/// # Errors
///
/// Propagates [`NetlistError`] from gate instantiation.
///
/// # Panics
///
/// Panics if `a` and `b` differ in length or are empty.
pub fn variant_add_into(
    nl: &mut Netlist,
    variant: &AdderVariant,
    a: &[NetId],
    b: &[NetId],
) -> Result<(Vec<NetId>, NetId), NetlistError> {
    assert_eq!(a.len(), b.len(), "operand buses must match");
    assert!(!a.is_empty(), "operands must be at least one bit");
    let w = a.len();
    let cells = CellSet::resolve(nl.library());
    let or_end = variant.lower_or_bits.min(w);
    let afa_end = (or_end + variant.approx_fa_bits).min(w);
    let mut sum = Vec::with_capacity(w);

    // Region 1: lower-OR bits, no carry chain.
    for i in 0..or_end {
        sum.push(nl.add_gate(cells.or2, &[a[i], b[i]])?[0]);
    }
    // LOA+ carry speculation into the next region: generate of the top OR
    // bit. With no OR region this is the canonical constant-zero carry-in.
    let mut carry = if or_end > 0 {
        nl.add_gate(cells.and2, &[a[or_end - 1], b[or_end - 1]])?[0]
    } else {
        nl.constant(false)
    };

    // Region 2: approximate full adders — exact carry, OR-relaxed sum.
    for i in or_end..afa_end {
        let p = nl.add_gate(cells.xor2, &[a[i], b[i]])?[0];
        let g = nl.add_gate(cells.and2, &[a[i], b[i]])?[0];
        sum.push(nl.add_gate(cells.or2, &[p, carry])?[0]);
        let pc = nl.add_gate(cells.and2, &[p, carry])?[0];
        carry = nl.add_gate(cells.or2, &[g, pc])?[0];
    }

    // Region 3: the exact remainder, optionally segmented with speculative
    // carries. Segment j > 0 takes `a & b` of the bit below it as carry-in,
    // cutting the true carry chain at the boundary.
    let mut start = afa_end;
    while start < w {
        let seg = if variant.segment_bits == 0 {
            w - start
        } else {
            variant.segment_bits.min(w - start)
        };
        let end = start + seg;
        let cin = if start == afa_end {
            carry
        } else {
            nl.add_gate(cells.and2, &[a[start - 1], b[start - 1]])?[0]
        };
        let (seg_sum, seg_cout) = add_into(nl, variant.kind, &a[start..end], &b[start..end], Some(cin))?;
        sum.extend(seg_sum);
        carry = seg_cout;
        start = end;
    }
    Ok((sum, carry))
}

/// An approximate multiplier configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MultiplierVariant {
    /// Architecture selecting the final merge adder, as in
    /// [`crate::multiply_into`].
    pub kind: MultiplierKind,
    /// Width and uniform operand truncation.
    pub spec: ComponentSpec,
    /// Product columns of weight below this are pruned: their partial
    /// products are dropped before compression and the output bits forced
    /// to zero.
    pub pruned_columns: usize,
    /// Lower-OR bits applied to the final two-row merge addition.
    pub merge_lower_or: usize,
}

impl MultiplierVariant {
    /// The exact (zero-knob) variant of `kind` at `spec`.
    pub fn exact(kind: MultiplierKind, spec: ComponentSpec) -> Self {
        MultiplierVariant {
            kind,
            spec,
            pruned_columns: 0,
            merge_lower_or: 0,
        }
    }

    /// Whether every approximation knob is at its exact setting.
    pub fn is_exact(&self) -> bool {
        self.pruned_columns == 0 && self.merge_lower_or == 0
    }

    /// The merge-adder architecture implied by [`MultiplierKind`]: the array
    /// multiplier ripples, the Wallace trees use their fast final adders.
    fn merge_kind(&self) -> AdderKind {
        match self.kind {
            MultiplierKind::Array => AdderKind::RippleCarry,
            MultiplierKind::Wallace => AdderKind::CarrySelect,
            MultiplierKind::WallacePrefix => AdderKind::KoggeStone,
        }
    }

    /// Builds the complete component: inputs `a`, `b` of `spec.width()`
    /// bits, output `p` of `2 × width` bits, like [`crate::build_multiplier`].
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from construction.
    pub fn build(&self, library: &Arc<Library>) -> Result<Netlist, NetlistError> {
        let mut nl = Netlist::new(format!("mult_{self}"), Arc::clone(library));
        let a = nl.add_input_bus("a", self.spec.width());
        let b = nl.add_input_bus("b", self.spec.width());
        let at = truncate_bus(&mut nl, &a, self.spec);
        let bt = truncate_bus(&mut nl, &b, self.spec);
        let product = variant_multiply_into(&mut nl, self, &at, &bt)?;
        nl.mark_output_bus("p", &product);
        nl.validate()?;
        Ok(nl)
    }
}

impl fmt::Display for MultiplierVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}_{}_col{}_mlo{}",
            self.kind.label(),
            self.spec,
            self.pruned_columns,
            self.merge_lower_or
        )
    }
}

/// Instantiates a [`MultiplierVariant`] over existing operand buses,
/// returning the `a.len() + b.len()`-bit product bus like
/// [`crate::multiply_into`].
///
/// All variants compress the partial-product matrix Wallace-style; the
/// [`MultiplierKind`] chooses the final merge adder, so the exact variant of
/// every kind computes the same full product as the canonical generator.
///
/// # Errors
///
/// Propagates [`NetlistError`] from gate instantiation.
///
/// # Panics
///
/// Panics if either operand bus is empty.
pub fn variant_multiply_into(
    nl: &mut Netlist,
    variant: &MultiplierVariant,
    a: &[NetId],
    b: &[NetId],
) -> Result<Vec<NetId>, NetlistError> {
    assert!(!a.is_empty() && !b.is_empty(), "operands must be non-empty");
    let cells = CellSet::resolve(nl.library());
    let width = a.len() + b.len();
    let pruned = variant.pruned_columns.min(width);
    let zero = nl.constant(false);
    let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); width];
    // Partial products below the pruning cut never reach the columns; the
    // synthesis optimizer then removes the unreferenced AND gates.
    let pp = partial_products(nl, &cells, a, b)?;
    for (i, row) in pp.iter().enumerate() {
        for (j, &bit) in row.iter().enumerate() {
            if i + j >= pruned {
                columns[i + j].push(bit);
            }
        }
    }
    // Compress until every column holds at most two bits (Wallace 3:2/2:2).
    while columns.iter().any(|c| c.len() > 2) {
        let mut next: Vec<Vec<NetId>> = vec![Vec::new(); width];
        for (w, column) in columns.iter().enumerate() {
            let mut idx = 0;
            while column.len() - idx >= 3 {
                let out = nl.add_gate(cells.fa, &[column[idx], column[idx + 1], column[idx + 2]])?;
                next[w].push(out[0]);
                if w + 1 < width {
                    next[w + 1].push(out[1]);
                }
                idx += 3;
            }
            if column.len() - idx == 2 {
                let out = nl.add_gate(cells.ha, &[column[idx], column[idx + 1]])?;
                next[w].push(out[0]);
                if w + 1 < width {
                    next[w + 1].push(out[1]);
                }
            } else if column.len() - idx == 1 {
                next[w].push(column[idx]);
            }
        }
        columns = next;
    }
    let row_a: Vec<NetId> = columns
        .iter()
        .map(|c| c.first().copied().unwrap_or(zero))
        .collect();
    let row_b: Vec<NetId> = columns
        .iter()
        .map(|c| c.get(1).copied().unwrap_or(zero))
        .collect();
    let merge = AdderVariant {
        kind: variant.merge_kind(),
        spec: ComponentSpec::full(width.min(64)),
        lower_or_bits: variant.merge_lower_or,
        approx_fa_bits: 0,
        segment_bits: 0,
    };
    let (sum, _overflow) = variant_add_into(nl, &merge, &row_a, &row_b)?;
    Ok(sum)
}

/// An approximate multiply-accumulate configuration: a
/// [`MultiplierVariant`] product core feeding an [`AdderVariant`]
/// accumulator at `2 × width` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacVariant {
    /// Product core.
    pub mult: MultiplierVariant,
    /// Accumulate adder; its spec width must be `2 × mult.spec.width()`.
    pub adder: AdderVariant,
}

impl MacVariant {
    /// The exact variant matching [`crate::build_mac`]'s architecture
    /// (array core, carry-select accumulator).
    pub fn exact(spec: ComponentSpec) -> Self {
        MacVariant {
            mult: MultiplierVariant::exact(MultiplierKind::Array, spec),
            adder: AdderVariant::exact(
                AdderKind::CarrySelect,
                ComponentSpec::full(2 * spec.width()),
            ),
        }
    }

    /// Whether every approximation knob is at its exact setting.
    pub fn is_exact(&self) -> bool {
        self.mult.is_exact() && self.adder.is_exact()
    }

    /// Builds the complete component: inputs `a`, `b` of width bits and
    /// `acc` of `2 × width` bits, output `out` like [`crate::build_mac`].
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from construction.
    pub fn build(&self, library: &Arc<Library>) -> Result<Netlist, NetlistError> {
        let spec = self.mult.spec;
        let mut nl = Netlist::new(format!("mac_{self}"), Arc::clone(library));
        let a = nl.add_input_bus("a", spec.width());
        let b = nl.add_input_bus("b", spec.width());
        let acc = nl.add_input_bus("acc", 2 * spec.width());
        let at = truncate_bus(&mut nl, &a, spec);
        let bt = truncate_bus(&mut nl, &b, spec);
        let out = variant_mac_into(&mut nl, self, &at, &bt, &acc)?;
        nl.mark_output_bus("out", &out);
        nl.validate()?;
        Ok(nl)
    }
}

impl fmt::Display for MacVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}_{}", self.mult, self.adder)
    }
}

/// Instantiates a [`MacVariant`] over existing buses: `a × b + acc`,
/// wrapping at the accumulator width, like [`crate::mac_into`].
///
/// # Errors
///
/// Propagates [`NetlistError`] from gate instantiation.
///
/// # Panics
///
/// Panics if `acc` is not exactly `a.len() + b.len()` bits wide.
pub fn variant_mac_into(
    nl: &mut Netlist,
    variant: &MacVariant,
    a: &[NetId],
    b: &[NetId],
    acc: &[NetId],
) -> Result<Vec<NetId>, NetlistError> {
    assert_eq!(
        acc.len(),
        a.len() + b.len(),
        "accumulator must match product width"
    );
    let product = variant_multiply_into(nl, &variant.mult, a, b)?;
    let (sum, _wrap) = variant_add_into(nl, &variant.adder, &product, acc)?;
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aix_netlist::{bus_from_u64, bus_to_u64};

    fn lib() -> Arc<Library> {
        Arc::new(Library::nangate45_like())
    }

    fn run2(nl: &Netlist, width: usize, a: u64, b: u64) -> u64 {
        let mut inputs = bus_from_u64(a, width);
        inputs.extend(bus_from_u64(b, width));
        bus_to_u64(&nl.eval(&inputs).unwrap())
    }

    #[test]
    fn exact_adder_variant_matches_sum_exhaustively() {
        let lib = lib();
        for kind in AdderKind::ALL {
            let variant = AdderVariant::exact(kind, ComponentSpec::full(5));
            let nl = variant.build(&lib).unwrap();
            for a in 0u64..32 {
                for b in 0u64..32 {
                    assert_eq!(run2(&nl, 5, a, b), a + b, "{kind:?} {a}+{b}");
                }
            }
        }
    }

    #[test]
    fn lower_or_adder_error_is_bounded_by_region() {
        let lib = lib();
        let variant = AdderVariant {
            kind: AdderKind::RippleCarry,
            spec: ComponentSpec::full(8),
            lower_or_bits: 3,
            approx_fa_bits: 0,
            segment_bits: 0,
        };
        let nl = variant.build(&lib).unwrap();
        for a in (0u64..256).step_by(7) {
            for b in (0u64..256).step_by(11) {
                // sum plus cout is the full 9-bit value, so the bound holds
                // without wraparound: the error is confined to the OR region
                // and its speculated carry.
                let got = run2(&nl, 8, a, b);
                assert!(
                    got.abs_diff(a + b) < (1 << 4),
                    "{a}+{b}: got {got}, exact {}",
                    a + b
                );
            }
        }
    }

    #[test]
    fn approx_fa_sum_only_overestimates() {
        let lib = lib();
        let variant = AdderVariant {
            kind: AdderKind::CarrySelect,
            spec: ComponentSpec::full(8),
            lower_or_bits: 0,
            approx_fa_bits: 4,
            segment_bits: 0,
        };
        let nl = variant.build(&lib).unwrap();
        for a in (0u64..256).step_by(5) {
            for b in (0u64..256).step_by(9) {
                let got = run2(&nl, 8, a, b);
                let exact = (a + b) & 0x1FF;
                // `(a ^ b) | c` never flips a one-bit to zero and the carry
                // is exact, so the result can only gain low-region bits.
                assert!(got >= exact, "{a}+{b}: got {got} < exact {exact}");
                assert!(got - exact < (1 << 4), "{a}+{b}: error too large");
            }
        }
    }

    #[test]
    fn segmented_adder_is_exact_when_no_boundary_carry() {
        let lib = lib();
        let variant = AdderVariant {
            kind: AdderKind::RippleCarry,
            spec: ComponentSpec::full(8),
            lower_or_bits: 0,
            approx_fa_bits: 0,
            segment_bits: 4,
        };
        let nl = variant.build(&lib).unwrap();
        // Low nibbles that generate no carry out are always exact.
        assert_eq!(run2(&nl, 8, 0x31, 0x42), 0x73);
        // A generate at the boundary bit is speculated correctly.
        assert_eq!(run2(&nl, 8, 0x0F, 0x09), 0x18);
    }

    #[test]
    fn exact_multiplier_variant_matches_product_exhaustively() {
        let lib = lib();
        for kind in MultiplierKind::ALL {
            let variant = MultiplierVariant::exact(kind, ComponentSpec::full(4));
            let nl = variant.build(&lib).unwrap();
            for a in 0u64..16 {
                for b in 0u64..16 {
                    assert_eq!(run2(&nl, 4, a, b), a * b, "{kind:?} {a}*{b}");
                }
            }
        }
    }

    #[test]
    fn pruned_multiplier_error_is_bounded_by_column_values() {
        let lib = lib();
        let variant = MultiplierVariant {
            kind: MultiplierKind::Wallace,
            spec: ComponentSpec::full(6),
            pruned_columns: 4,
            merge_lower_or: 0,
        };
        let nl = variant.build(&lib).unwrap();
        // Dropped value is at most sum over pruned columns of
        // height(c) * 2^c < width * 2^pruned.
        let bound = 6 * (1 << 4);
        for a in 0u64..64 {
            for b in 0u64..64 {
                let got = run2(&nl, 6, a, b);
                let exact = a * b;
                assert!(got <= exact, "pruning only removes value");
                assert!(exact - got < bound, "{a}*{b}: {got} vs {exact}");
            }
        }
    }

    #[test]
    fn exact_mac_variant_matches_reference() {
        let lib = lib();
        let nl = MacVariant::exact(ComponentSpec::full(4)).build(&lib).unwrap();
        for a in 0u64..16 {
            for b in 0u64..16 {
                for acc in [0u64, 5, 200, 255] {
                    let mut inputs = bus_from_u64(a, 4);
                    inputs.extend(bus_from_u64(b, 4));
                    inputs.extend(bus_from_u64(acc, 8));
                    let got = bus_to_u64(&nl.eval(&inputs).unwrap());
                    assert_eq!(got, (a * b + acc) & 0xFF, "{a}*{b}+{acc}");
                }
            }
        }
    }

    #[test]
    fn variants_validate_and_schedule() {
        let lib = lib();
        let variant = AdderVariant {
            kind: AdderKind::KoggeStone,
            spec: ComponentSpec::new(16, 12).unwrap(),
            lower_or_bits: 3,
            approx_fa_bits: 2,
            segment_bits: 5,
        };
        let nl = variant.build(&lib).unwrap();
        assert!(nl.schedule().is_ok());
        // Construction is deterministic: a second build reports identical
        // structure.
        let again = variant.build(&lib).unwrap();
        assert_eq!(nl.stats().gate_count, again.stats().gate_count);
        assert_eq!(nl.stats().net_count, again.stats().net_count);
    }
}
