//! Power, energy and area analysis of gate-level netlists.
//!
//! The Rust counterpart of running the synthesis tool's power analysis
//! "after taking the switching activities induced by the simulated input
//! stimuli into account" (paper §VI):
//!
//! * **leakage** — the sum of per-cell static leakage,
//! * **dynamic** — `½ · α · C · Vdd² · f` summed over nets, with the toggle
//!   rate `α` taken from an [`aix_sim::Activity`] extraction, plus per-cell
//!   internal switching energy,
//! * **energy per operation** — total power divided by clock frequency.
//!
//! # Examples
//!
//! ```
//! use aix_arith::{build_adder, AdderKind, ComponentSpec};
//! use aix_cells::Library;
//! use aix_power::{analyze_power, PowerConfig};
//! use aix_sim::{Activity, NormalOperands, OperandSource};
//! use std::sync::Arc;
//!
//! let lib = Arc::new(Library::nangate45_like());
//! let adder = build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(8))?;
//! let activity = Activity::collect(&adder, NormalOperands::new(8, 1).vectors(200))?;
//! let report = analyze_power(&adder, &activity, &PowerConfig::at_frequency_ghz(1.0));
//! assert!(report.total_uw() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use aix_cells::Cell;
use aix_netlist::{NetDriver, Netlist};
use aix_sim::Activity;
use std::fmt;

/// Operating point for power analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerConfig {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Clock frequency in gigahertz (one new input vector per cycle).
    pub frequency_ghz: f64,
}

impl PowerConfig {
    /// Nominal 45 nm supply at the given clock frequency.
    ///
    /// # Panics
    ///
    /// Panics if `frequency_ghz` is not positive and finite.
    pub fn at_frequency_ghz(frequency_ghz: f64) -> Self {
        assert!(
            frequency_ghz.is_finite() && frequency_ghz > 0.0,
            "frequency must be positive, got {frequency_ghz}"
        );
        Self {
            vdd: aix_cells_vdd(),
            frequency_ghz,
        }
    }

    /// The operating point implied by clocking at a period in picoseconds.
    pub fn at_period_ps(period_ps: f64) -> Self {
        Self::at_frequency_ghz(1000.0 / period_ps)
    }
}

fn aix_cells_vdd() -> f64 {
    // Matches aix_aging::VDD_V without taking the dependency.
    1.1
}

/// Power/area analysis result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Total layout area in µm².
    pub area_um2: f64,
    /// Static leakage power in µW.
    pub leakage_uw: f64,
    /// Dynamic (switching) power in µW at the configured frequency.
    pub dynamic_uw: f64,
    /// Clock frequency used, in GHz.
    pub frequency_ghz: f64,
}

impl PowerReport {
    /// Total power in µW.
    pub fn total_uw(&self) -> f64 {
        self.leakage_uw + self.dynamic_uw
    }

    /// Energy per clocked operation in femtojoules.
    pub fn energy_per_op_fj(&self) -> f64 {
        // µW / GHz = fJ.
        self.total_uw() / self.frequency_ghz
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "area {:.1} um2, leakage {:.2} uW, dynamic {:.2} uW @ {:.3} GHz ({:.1} fJ/op)",
            self.area_um2,
            self.leakage_uw,
            self.dynamic_uw,
            self.frequency_ghz,
            self.energy_per_op_fj()
        )
    }
}

/// Analyzes area, leakage and activity-driven dynamic power of `netlist`.
///
/// `activity` must have been collected on the same netlist; toggle rates
/// are read per net. Dynamic power combines net switching
/// (`½ · α · C_load · Vdd² · f`) with the driving cell's internal
/// switching energy per toggle.
pub fn analyze_power(netlist: &Netlist, activity: &Activity, config: &PowerConfig) -> PowerReport {
    let stats = netlist.stats();
    let loads = netlist.net_loads_ff();
    let mut dynamic_uw = 0.0;
    for (id, net) in netlist.nets() {
        let toggle_rate = activity.toggle_rate(id.index());
        if toggle_rate == 0.0 {
            continue;
        }
        let cell: Option<&Cell> = match net.driver {
            NetDriver::Gate { gate, .. } => Some(netlist.library().cell(netlist.gate(gate).cell)),
            _ => None,
        };
        // Net switching energy per toggle: ½ C V² (fF·V² = fJ).
        let net_energy_fj = 0.5 * loads[id.index()] * config.vdd * config.vdd;
        // Internal cell energy per output toggle.
        let cell_energy_fj = cell.map_or(0.0, |c| c.switching_energy_fj(config.vdd));
        // fJ per toggle × toggles per cycle × GHz cycles/ns = µW.
        dynamic_uw += (net_energy_fj + cell_energy_fj) * toggle_rate * config.frequency_ghz;
    }
    PowerReport {
        area_um2: stats.area_um2,
        leakage_uw: stats.leakage_nw / 1000.0,
        dynamic_uw,
        frequency_ghz: config.frequency_ghz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aix_arith::{build_adder, AdderKind, ComponentSpec};
    use aix_cells::Library;
    use aix_sim::{NormalOperands, OperandSource};
    use std::sync::Arc;

    fn adder_with_activity(width: usize) -> (Netlist, Activity) {
        let lib = Arc::new(Library::nangate45_like());
        let nl = build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(width)).unwrap();
        let act = Activity::collect(&nl, NormalOperands::new(width, 3).vectors(300)).unwrap();
        (nl, act)
    }

    #[test]
    fn idle_circuit_consumes_only_leakage() {
        let lib = Arc::new(Library::nangate45_like());
        let nl = build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(8)).unwrap();
        let idle = Activity::collect(&nl, vec![vec![false; 16]; 50]).unwrap();
        let report = analyze_power(&nl, &idle, &PowerConfig::at_frequency_ghz(2.0));
        assert_eq!(report.dynamic_uw, 0.0);
        assert!(report.leakage_uw > 0.0);
        assert_eq!(report.total_uw(), report.leakage_uw);
    }

    #[test]
    fn dynamic_power_scales_with_frequency() {
        let (nl, act) = adder_with_activity(8);
        let at1 = analyze_power(&nl, &act, &PowerConfig::at_frequency_ghz(1.0));
        let at2 = analyze_power(&nl, &act, &PowerConfig::at_frequency_ghz(2.0));
        assert!((at2.dynamic_uw / at1.dynamic_uw - 2.0).abs() < 1e-9);
        assert_eq!(at1.leakage_uw, at2.leakage_uw);
    }

    #[test]
    fn energy_per_op_is_frequency_invariant_for_dynamic_dominated() {
        let (nl, act) = adder_with_activity(16);
        let at1 = analyze_power(&nl, &act, &PowerConfig::at_frequency_ghz(1.0));
        let at2 = analyze_power(&nl, &act, &PowerConfig::at_frequency_ghz(2.0));
        // Dynamic energy per op is constant; leakage energy halves at 2 GHz.
        assert!(at2.energy_per_op_fj() < at1.energy_per_op_fj());
        let dyn1 = at1.dynamic_uw / at1.frequency_ghz;
        let dyn2 = at2.dynamic_uw / at2.frequency_ghz;
        assert!((dyn1 - dyn2).abs() < 1e-9);
    }

    #[test]
    fn bigger_circuits_burn_more() {
        let (small_nl, small_act) = adder_with_activity(8);
        let (big_nl, big_act) = adder_with_activity(32);
        let cfg = PowerConfig::at_frequency_ghz(1.0);
        let small = analyze_power(&small_nl, &small_act, &cfg);
        let big = analyze_power(&big_nl, &big_act, &cfg);
        assert!(big.area_um2 > small.area_um2);
        assert!(big.leakage_uw > small.leakage_uw);
        assert!(big.dynamic_uw > small.dynamic_uw);
    }

    #[test]
    fn period_constructor_matches_frequency() {
        let cfg = PowerConfig::at_period_ps(500.0);
        assert!((cfg.frequency_ghz - 2.0).abs() < 1e-12);
    }

    #[test]
    fn glitch_aware_dynamic_power_is_higher() {
        use aix_sim::collect_timed_activity;
        use aix_sta::NetDelays;
        let lib = Arc::new(Library::nangate45_like());
        let nl = build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(12)).unwrap();
        let vectors: Vec<Vec<bool>> = NormalOperands::new(12, 8).vectors(200).collect();
        let cfg = PowerConfig::at_frequency_ghz(1.0);
        let functional =
            analyze_power(&nl, &Activity::collect(&nl, vectors.clone()).unwrap(), &cfg);
        let timed = analyze_power(
            &nl,
            &collect_timed_activity(&nl, &NetDelays::fresh(&nl), vectors).unwrap(),
            &cfg,
        );
        assert!(
            timed.dynamic_uw >= functional.dynamic_uw,
            "glitches only add transitions: {} vs {}",
            timed.dynamic_uw,
            functional.dynamic_uw
        );
        assert_eq!(timed.leakage_uw, functional.leakage_uw);
    }

    #[test]
    fn truncation_saves_power() {
        use aix_synth::optimize;
        let lib = Arc::new(Library::nangate45_like());
        let full = build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(32)).unwrap();
        let cut = optimize(
            &build_adder(
                &lib,
                AdderKind::RippleCarry,
                ComponentSpec::new(32, 24).unwrap(),
            )
            .unwrap(),
        )
        .unwrap();
        let cfg = PowerConfig::at_frequency_ghz(1.0);
        let act_full =
            Activity::collect(&full, NormalOperands::new(32, 5).vectors(200)).unwrap();
        let act_cut = Activity::collect(&cut, NormalOperands::new(32, 5).vectors(200)).unwrap();
        let p_full = analyze_power(&full, &act_full, &cfg);
        let p_cut = analyze_power(&cut, &act_cut, &cfg);
        assert!(p_cut.area_um2 < p_full.area_um2);
        assert!(p_cut.leakage_uw < p_full.leakage_uw);
        assert!(p_cut.dynamic_uw < p_full.dynamic_uw);
    }
}
