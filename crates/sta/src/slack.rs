//! Clock constraints and slack arithmetic.

use crate::TimingReport;
use std::fmt;

/// The timing constraint a design must meet over its lifetime: the clock
/// period fixed at design time in the absence of aging
/// (`t_clock = t_CP(noAging)` when the guardband is removed).
///
/// # Examples
///
/// ```
/// use aix_sta::ClockConstraint;
///
/// let clk = ClockConstraint::from_period_ps(500.0);
/// assert_eq!(clk.period_ps(), 500.0);
/// assert!((clk.frequency_ghz() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct ClockConstraint {
    period_ps: f64,
}

impl ClockConstraint {
    /// A constraint with the given period in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `period_ps` is not positive and finite.
    pub fn from_period_ps(period_ps: f64) -> Self {
        assert!(
            period_ps.is_finite() && period_ps > 0.0,
            "clock period must be positive, got {period_ps}"
        );
        Self { period_ps }
    }

    /// The constraint implied by clocking a design exactly at its fresh
    /// critical-path delay — the paper's "guardband removed" operating point.
    pub fn from_report(report: &TimingReport) -> Self {
        Self::from_period_ps(report.max_delay_ps())
    }

    /// Clock period in picoseconds.
    pub fn period_ps(self) -> f64 {
        self.period_ps
    }

    /// Clock frequency in gigahertz.
    pub fn frequency_ghz(self) -> f64 {
        1000.0 / self.period_ps
    }

    /// Absolute slack of `report` against this constraint, in picoseconds.
    /// Negative slack means timing violations will occur.
    pub fn slack_ps(self, report: &TimingReport) -> f64 {
        self.period_ps - report.max_delay_ps()
    }

    /// Relative slack `slack / t_clock`, the quantity the paper uses to
    /// index its approximation library (e.g. −8.3 % for the IDCT multiplier
    /// after 10 years of worst-case aging).
    pub fn relative_slack(self, report: &TimingReport) -> f64 {
        self.slack_ps(report) / self.period_ps
    }

    /// Whether `report` meets this constraint.
    pub fn is_met_by(self, report: &TimingReport) -> bool {
        self.slack_ps(report) >= 0.0
    }

    /// A constraint lengthened by an explicit guardband.
    pub fn with_guardband_ps(self, guardband_ps: f64) -> Self {
        Self::from_period_ps(self.period_ps + guardband_ps.max(0.0))
    }
}

impl fmt::Display for ClockConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} ps ({:.3} GHz)",
            self.period_ps,
            self.frequency_ghz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, NetDelays};
    use aix_aging::{AgingModel, AgingScenario, Lifetime};
    use aix_arith::{build_adder, AdderKind, ComponentSpec};
    use aix_cells::Library;
    use std::sync::Arc;

    #[test]
    fn slack_signs() {
        let lib = Arc::new(Library::nangate45_like());
        let nl = build_adder(&lib, AdderKind::CarrySelect, ComponentSpec::full(16)).unwrap();
        let model = AgingModel::calibrated();
        let fresh = analyze(&nl, &NetDelays::fresh(&nl)).unwrap();
        let clk = ClockConstraint::from_report(&fresh);
        assert!(clk.is_met_by(&fresh));
        assert!(clk.slack_ps(&fresh).abs() < 1e-9);

        let aged = analyze(
            &nl,
            &NetDelays::aged(&nl, &model, AgingScenario::worst_case(Lifetime::YEARS_10)),
        )
        .unwrap();
        assert!(!clk.is_met_by(&aged));
        assert!(clk.relative_slack(&aged) < -0.1);
    }

    #[test]
    fn guardband_restores_timing() {
        let lib = Arc::new(Library::nangate45_like());
        let nl = build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(8)).unwrap();
        let model = AgingModel::calibrated();
        let fresh = analyze(&nl, &NetDelays::fresh(&nl)).unwrap();
        let aged = analyze(
            &nl,
            &NetDelays::aged(&nl, &model, AgingScenario::worst_case(Lifetime::YEARS_10)),
        )
        .unwrap();
        let clk = ClockConstraint::from_report(&fresh);
        let needed = aged.max_delay_ps() - fresh.max_delay_ps();
        assert!(clk.with_guardband_ps(needed + 1e-9).is_met_by(&aged));
        // A guardband costs frequency.
        assert!(clk.with_guardband_ps(needed).frequency_ghz() < clk.frequency_ghz());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_period() {
        let _ = ClockConstraint::from_period_ps(0.0);
    }
}
