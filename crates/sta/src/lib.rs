//! Aging-aware static timing analysis (STA).
//!
//! Computes arrival times over a combinational [`aix_netlist::Netlist`]
//! using load-dependent cell delays, optionally degraded by an aging
//! condition: uniform worst-case / balanced stress, or per-gate *actual
//! case* stress extracted from switching activity. This is the Rust
//! counterpart of running Synopsys STA with the degradation-aware cell
//! library, the workhorse of the paper's characterization flow.
//!
//! # Examples
//!
//! ```
//! use aix_arith::{build_adder, AdderKind, ComponentSpec};
//! use aix_cells::Library;
//! use aix_sta::{analyze, NetDelays, StressSource};
//! use aix_aging::{AgingModel, AgingScenario, Lifetime};
//! use std::sync::Arc;
//!
//! let lib = Arc::new(Library::nangate45_like());
//! let adder = build_adder(&lib, AdderKind::CarrySelect, ComponentSpec::full(16))?;
//! let model = AgingModel::calibrated();
//!
//! let fresh = analyze(&adder, &NetDelays::fresh(&adder))?;
//! let aged = analyze(
//!     &adder,
//!     &NetDelays::aged(&adder, &model, AgingScenario::worst_case(Lifetime::YEARS_10)),
//! )?;
//! assert!(aged.max_delay_ps() > fresh.max_delay_ps());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod analysis;
mod delays;
mod required;
mod sdf;
mod slack;

pub use analysis::{analyze, critical_path, TimingReport};
pub use delays::{NetDelays, StressSource};
pub use required::SlackReport;
pub use sdf::to_sdf;
pub use slack::ClockConstraint;
