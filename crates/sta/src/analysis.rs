//! Arrival-time propagation and critical-path extraction.

use crate::NetDelays;
use aix_netlist::{GateId, NetDriver, NetId, Netlist, NetlistError};

/// Result of a static timing analysis.
///
/// Arrival times are measured from the primary inputs (all launched at
/// `t = 0`); the maximum over primary outputs is the component delay the
/// paper's Eq. 1 and Eq. 2 reason about.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    arrival_ps: Vec<f64>,
    max_delay_ps: f64,
    critical_output: Option<usize>,
    per_output_ps: Vec<f64>,
}

impl TimingReport {
    /// Arrival time of net `net`, in picoseconds.
    pub fn arrival_ps(&self, net: NetId) -> f64 {
        self.arrival_ps[net.index()]
    }

    /// All per-net arrival times, indexed by net id.
    pub fn arrivals(&self) -> &[f64] {
        &self.arrival_ps
    }

    /// The component's maximum (critical-path) delay in picoseconds.
    pub fn max_delay_ps(&self) -> f64 {
        self.max_delay_ps
    }

    /// Index (into the netlist's output ports) of the latest-arriving
    /// output.
    pub fn critical_output(&self) -> Option<usize> {
        self.critical_output
    }

    /// Arrival time of each primary output, in port order.
    pub fn per_output_ps(&self) -> &[f64] {
        &self.per_output_ps
    }
}

/// Runs STA: propagates arrival times in topological order and records the
/// critical (maximum) delay over all primary outputs.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
pub fn analyze(netlist: &Netlist, delays: &NetDelays) -> Result<TimingReport, NetlistError> {
    let order = netlist.topological_order()?;
    let mut arrival = vec![0.0f64; netlist.net_count()];
    for gate_id in order {
        let gate = netlist.gate(gate_id);
        let input_arrival = gate
            .inputs
            .iter()
            .map(|n| arrival[n.index()])
            .fold(0.0f64, f64::max);
        for &out in &gate.outputs {
            arrival[out.index()] = input_arrival + delays.of(out.index());
        }
    }
    let per_output: Vec<f64> = netlist
        .outputs()
        .iter()
        .map(|(_, net)| arrival[net.index()])
        .collect();
    // Seed with the first output so a netlist whose outputs all arrive at
    // exactly 0 ps (pass-through or constant outputs) still reports a
    // critical output; ties keep the earliest port. An outputless netlist
    // reports `None` and a 0 ps delay.
    let (critical_output, max_delay) = per_output.iter().enumerate().fold(
        (None, 0.0f64),
        |(best, max), (i, &t)| {
            if best.is_none() || t > max {
                (Some(i), t)
            } else {
                (best, max)
            }
        },
    );
    Ok(TimingReport {
        arrival_ps: arrival,
        max_delay_ps: max_delay,
        critical_output,
        per_output_ps: per_output,
    })
}

/// Extracts the gates along the critical path, inputs first.
///
/// Walks back from the latest-arriving output through, at every gate, the
/// input whose arrival time dominates.
pub fn critical_path(
    netlist: &Netlist,
    delays: &NetDelays,
    report: &TimingReport,
) -> Vec<GateId> {
    let Some(out_idx) = report.critical_output() else {
        return Vec::new();
    };
    let mut path = Vec::new();
    let mut net = netlist.outputs()[out_idx].1;
    while let NetDriver::Gate { gate, .. } = netlist.net(net).driver {
        path.push(gate);
        let g = netlist.gate(gate);
        let Some(&next) = g.inputs.iter().max_by(|a, b| {
            report.arrival_ps[a.index()]
                .partial_cmp(&report.arrival_ps[b.index()])
                .expect("arrival times are finite")
        }) else {
            break;
        };
        net = next;
    }
    let _ = delays;
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StressSource;
    use aix_aging::{AgingModel, AgingScenario, Lifetime, StressPair};
    use aix_arith::{build_adder, build_multiplier, AdderKind, ComponentSpec, MultiplierKind};
    use aix_cells::{CellFunction, DriveStrength, Library};
    use std::sync::Arc;

    fn lib() -> Arc<Library> {
        Arc::new(Library::nangate45_like())
    }

    #[test]
    fn chain_delay_is_sum_of_gate_delays() {
        let lib = lib();
        let inv = lib.find(CellFunction::Inv, DriveStrength::X1).unwrap();
        let mut nl = aix_netlist::Netlist::new("chain", lib.clone());
        let a = nl.add_input("a");
        let mut prev = a;
        for _ in 0..5 {
            prev = nl.add_gate(inv, &[prev]).unwrap()[0];
        }
        nl.mark_output("y", prev);
        let delays = NetDelays::fresh(&nl);
        let report = analyze(&nl, &delays).unwrap();
        let expect: f64 = nl
            .nets()
            .filter(|(_, n)| matches!(n.driver, aix_netlist::NetDriver::Gate { .. }))
            .map(|(id, _)| delays.of(id.index()))
            .sum();
        assert!((report.max_delay_ps() - expect).abs() < 1e-9);
    }

    #[test]
    fn brute_force_longest_path_matches() {
        // Exhaustive DFS longest path on a small adder must equal STA.
        let lib = lib();
        let nl = build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(4)).unwrap();
        let delays = NetDelays::fresh(&nl);
        let report = analyze(&nl, &delays).unwrap();

        fn longest(
            nl: &aix_netlist::Netlist,
            delays: &NetDelays,
            net: aix_netlist::NetId,
        ) -> f64 {
            match nl.net(net).driver {
                aix_netlist::NetDriver::Gate { gate, .. } => {
                    let g = nl.gate(gate);
                    let input_max = g
                        .inputs
                        .iter()
                        .map(|&i| longest(nl, delays, i))
                        .fold(0.0f64, f64::max);
                    input_max + delays.of(net.index())
                }
                _ => 0.0,
            }
        }
        let brute = nl
            .outputs()
            .iter()
            .map(|(_, net)| longest(&nl, &delays, *net))
            .fold(0.0f64, f64::max);
        assert!((report.max_delay_ps() - brute).abs() < 1e-9);
    }

    #[test]
    fn zero_delay_outputs_still_report_a_critical_output() {
        // Regression: a pass-through netlist (outputs arriving at exactly
        // 0 ps) used to report `critical_output = None`.
        let lib = lib();
        let mut nl = aix_netlist::Netlist::new("passthrough", lib.clone());
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        nl.mark_output("y0", a);
        nl.mark_output("y1", b);
        let delays = NetDelays::fresh(&nl);
        let report = analyze(&nl, &delays).unwrap();
        assert_eq!(report.max_delay_ps(), 0.0);
        assert_eq!(report.critical_output(), Some(0), "ties keep the first port");
        // No gates on the path, but the output itself is identified.
        assert!(critical_path(&nl, &delays, &report).is_empty());
    }

    #[test]
    fn aging_increases_critical_path_uniformly() {
        let lib = lib();
        let nl = build_adder(&lib, AdderKind::CarrySelect, ComponentSpec::full(16)).unwrap();
        let model = AgingModel::calibrated();
        let fresh = analyze(&nl, &NetDelays::fresh(&nl)).unwrap();
        let aged = analyze(
            &nl,
            &NetDelays::aged(&nl, &model, AgingScenario::worst_case(Lifetime::YEARS_10)),
        )
        .unwrap();
        let ratio = aged.max_delay_ps() / fresh.max_delay_ps();
        assert!(ratio > 1.13 && ratio < 1.25, "ratio {ratio}");
    }

    #[test]
    fn truncation_shortens_critical_path_after_optimization_is_not_required() {
        // Even without dead-logic removal, tying LSBs to constants cannot
        // lengthen the measured critical path.
        let lib = lib();
        let full = build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(16)).unwrap();
        let cut = build_adder(
            &lib,
            AdderKind::RippleCarry,
            ComponentSpec::new(16, 8).unwrap(),
        )
        .unwrap();
        let d_full = analyze(&full, &NetDelays::fresh(&full)).unwrap();
        let d_cut = analyze(&cut, &NetDelays::fresh(&cut)).unwrap();
        assert!(d_cut.max_delay_ps() <= d_full.max_delay_ps() + 1e-9);
    }

    #[test]
    fn critical_path_is_connected_and_ends_at_output() {
        let lib = lib();
        let nl =
            build_multiplier(&lib, MultiplierKind::Array, ComponentSpec::full(8)).unwrap();
        let delays = NetDelays::fresh(&nl);
        let report = analyze(&nl, &delays).unwrap();
        let path = critical_path(&nl, &delays, &report);
        assert!(!path.is_empty());
        // Each consecutive pair must be connected.
        for pair in path.windows(2) {
            let (prev, next) = (pair[0], pair[1]);
            let next_gate = nl.gate(next);
            let connected = next_gate.inputs.iter().any(|&inp| {
                matches!(nl.net(inp).driver,
                    aix_netlist::NetDriver::Gate { gate, .. } if gate == prev)
            });
            assert!(connected, "gates {prev} -> {next} not connected");
        }
        // Last gate drives the critical output.
        let out_net = nl.outputs()[report.critical_output().unwrap()].1;
        assert!(matches!(
            nl.net(out_net).driver,
            aix_netlist::NetDriver::Gate { gate, .. } if gate == *path.last().unwrap()
        ));
    }

    #[test]
    fn architectures_rank_as_expected() {
        let lib = lib();
        let spec = ComponentSpec::full(32);
        let delay = |kind| {
            let nl = build_adder(&lib, kind, spec).unwrap();
            analyze(&nl, &NetDelays::fresh(&nl)).unwrap().max_delay_ps()
        };
        let rca = delay(AdderKind::RippleCarry);
        let csel = delay(AdderKind::CarrySelect);
        let ks = delay(AdderKind::KoggeStone);
        assert!(ks < csel, "Kogge-Stone {ks} should beat carry-select {csel}");
        assert!(csel < rca, "carry-select {csel} should beat ripple {rca}");
    }

    #[test]
    fn per_gate_stress_moves_critical_path() {
        // Age only the gates on the fresh critical path heavily; the
        // reported delay must grow at least as much as a uniform balanced
        // condition on those gates would imply.
        let lib = lib();
        let nl = build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(8)).unwrap();
        let model = AgingModel::calibrated();
        let fresh_delays = NetDelays::fresh(&nl);
        let fresh = analyze(&nl, &fresh_delays).unwrap();
        let path = critical_path(&nl, &fresh_delays, &fresh);
        let mut pairs = vec![StressPair::default(); nl.gate_count()];
        for g in &path {
            pairs[g.index()] = StressPair::WORST;
        }
        let aged = analyze(
            &nl,
            &NetDelays::aged_with_stress(
                &nl,
                &model,
                &StressSource::PerGate(pairs),
                Lifetime::YEARS_10,
            ),
        )
        .unwrap();
        assert!(aged.max_delay_ps() > fresh.max_delay_ps() * 1.1);
    }
}
