//! Required-time propagation and per-net slack.

use crate::{NetDelays, TimingReport};
use aix_netlist::{NetId, Netlist, NetlistError};

/// Per-net required times and slacks against a clock constraint.
///
/// Required times propagate backwards from the primary outputs (all
/// required at the clock period); `slack = required − arrival`. Nets that
/// reach no output have infinite required time and slack.
///
/// # Examples
///
/// ```
/// use aix_arith::{build_adder, AdderKind, ComponentSpec};
/// use aix_cells::Library;
/// use aix_sta::{analyze, NetDelays, SlackReport};
/// use std::sync::Arc;
///
/// let lib = Arc::new(Library::nangate45_like());
/// let adder = build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(8))?;
/// let delays = NetDelays::fresh(&adder);
/// let timing = analyze(&adder, &delays)?;
/// let slack = SlackReport::compute(&adder, &delays, &timing, timing.max_delay_ps())?;
/// assert!(slack.worst_slack_ps() >= -1e-9, "clocked at its own delay");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SlackReport {
    required_ps: Vec<f64>,
    slack_ps: Vec<f64>,
}

impl SlackReport {
    /// Computes required times and slacks for `netlist` against a required
    /// time of `clock_ps` at every primary output, given the arrival times
    /// in `report`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
    pub fn compute(
        netlist: &Netlist,
        delays: &NetDelays,
        report: &TimingReport,
        clock_ps: f64,
    ) -> Result<Self, NetlistError> {
        let mut required = vec![f64::INFINITY; netlist.net_count()];
        for (_, net) in netlist.outputs() {
            required[net.index()] = required[net.index()].min(clock_ps);
        }
        let order = netlist.topological_order()?;
        for gate_id in order.into_iter().rev() {
            let gate = netlist.gate(gate_id);
            // Required time at the gate's inputs: the tightest output
            // requirement minus that output's arc delay.
            let input_required = gate
                .outputs
                .iter()
                .map(|n| required[n.index()] - delays.of(n.index()))
                .fold(f64::INFINITY, f64::min);
            for &input in &gate.inputs {
                let r = &mut required[input.index()];
                *r = r.min(input_required);
            }
        }
        let slack = required
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                if r.is_finite() {
                    r - report.arrivals()[i]
                } else {
                    f64::INFINITY
                }
            })
            .collect();
        Ok(Self {
            required_ps: required,
            slack_ps: slack,
        })
    }

    /// Required time at a net (infinite if it reaches no output).
    pub fn required_ps(&self, net: NetId) -> f64 {
        self.required_ps[net.index()]
    }

    /// Slack at a net.
    pub fn slack_ps(&self, net: NetId) -> f64 {
        self.slack_ps[net.index()]
    }

    /// All per-net slacks, indexed by net id.
    pub fn slacks(&self) -> &[f64] {
        &self.slack_ps
    }

    /// The worst (most negative) finite slack in the design.
    pub fn worst_slack_ps(&self) -> f64 {
        self.slack_ps
            .iter()
            .copied()
            .filter(|s| s.is_finite())
            .fold(f64::INFINITY, f64::min)
    }

    /// Number of nets with negative slack (timing violations).
    pub fn violation_count(&self) -> usize {
        self.slack_ps.iter().filter(|&&s| s < -1e-12).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use aix_arith::{build_adder, AdderKind, ComponentSpec};
    use aix_cells::Library;
    use std::sync::Arc;

    fn setup() -> (aix_netlist::Netlist, NetDelays, TimingReport) {
        let lib = Arc::new(Library::nangate45_like());
        let nl = build_adder(&lib, AdderKind::CarrySelect, ComponentSpec::full(8)).unwrap();
        let delays = NetDelays::fresh(&nl);
        let report = analyze(&nl, &delays).unwrap();
        (nl, delays, report)
    }

    #[test]
    fn clocked_at_critical_path_has_zero_worst_slack() {
        let (nl, delays, report) = setup();
        let slack =
            SlackReport::compute(&nl, &delays, &report, report.max_delay_ps()).unwrap();
        assert!(slack.worst_slack_ps().abs() < 1e-9);
        assert_eq!(slack.violation_count(), 0);
    }

    #[test]
    fn tight_clock_creates_violations() {
        let (nl, delays, report) = setup();
        let slack =
            SlackReport::compute(&nl, &delays, &report, report.max_delay_ps() * 0.8).unwrap();
        assert!(slack.worst_slack_ps() < 0.0);
        assert!(slack.violation_count() > 0);
    }

    #[test]
    fn loose_clock_gives_uniform_headroom() {
        let (nl, delays, report) = setup();
        let margin = 100.0;
        let slack =
            SlackReport::compute(&nl, &delays, &report, report.max_delay_ps() + margin)
                .unwrap();
        assert!((slack.worst_slack_ps() - margin).abs() < 1e-9);
    }

    #[test]
    fn arrival_plus_slack_never_exceeds_required() {
        let (nl, delays, report) = setup();
        let clock = report.max_delay_ps();
        let slack = SlackReport::compute(&nl, &delays, &report, clock).unwrap();
        for (id, _) in nl.nets() {
            let r = slack.required_ps(id);
            if r.is_finite() {
                let recomputed = report.arrivals()[id.index()] + slack.slack_ps(id);
                assert!((recomputed - r).abs() < 1e-9);
                assert!(r <= clock + 1e-9, "requirements never exceed the clock");
            }
        }
    }
}
