//! Per-net delay calculation, fresh and under aging.

use aix_aging::{AgingModel, AgingScenario, CombinedAgingModel, Lifetime, StressPair};
use aix_cells::DegradationAwareLibrary;
use aix_netlist::{NetDriver, Netlist};

/// Where each gate's stress comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum StressSource {
    /// Every gate under the same stress pair (worst-case / balanced /
    /// uniform analyses).
    Uniform(StressPair),
    /// Per-gate stress pairs, indexed by gate id — the *actual case*,
    /// extracted from simulated switching activity.
    PerGate(Vec<StressPair>),
}

impl StressSource {
    /// The stress pair for gate `gate_index`.
    ///
    /// # Panics
    ///
    /// Panics if a per-gate source is shorter than the gate count.
    pub fn pair_for(&self, gate_index: usize) -> StressPair {
        match self {
            StressSource::Uniform(pair) => *pair,
            StressSource::PerGate(pairs) => pairs[gate_index],
        }
    }
}

/// The propagation delay contributed by the driver of each net, in
/// picoseconds. Primary inputs and constants contribute zero.
///
/// This is the "annotated netlist" of the paper's flow: fresh delays come
/// from the original library, aged delays from scaling each arc by the
/// degradation factor of its driving cell under that cell's stress.
#[derive(Debug, Clone, PartialEq)]
pub struct NetDelays {
    delays_ps: Vec<f64>,
}

impl NetDelays {
    /// Fresh (design-time) delays: the synthesis-library view.
    pub fn fresh(netlist: &Netlist) -> Self {
        Self::build(netlist, |_gate_index, _cell| 1.0)
    }

    /// Delays under a uniform aging scenario evaluated analytically from
    /// `model`.
    pub fn aged(netlist: &Netlist, model: &AgingModel, scenario: AgingScenario) -> Self {
        match scenario {
            AgingScenario::Fresh => Self::fresh(netlist),
            AgingScenario::Aged { stress, lifetime } => Self::aged_with_stress(
                netlist,
                model,
                &StressSource::Uniform(stress.stress_pair()),
                lifetime,
            ),
        }
    }

    /// Delays under an arbitrary stress source (uniform or per-gate),
    /// evaluated analytically from `model`. Cell-specific BTI sensitivity
    /// is applied on top, as in the degradation-aware library.
    pub fn aged_with_stress(
        netlist: &Netlist,
        model: &AgingModel,
        stress: &StressSource,
        lifetime: Lifetime,
    ) -> Self {
        // `build` applies the cell's BTI sensitivity via `aged_delay_ps`;
        // the closure supplies the raw physics factor.
        Self::build(netlist, |gate_index, _cell| {
            model.pair_delay_factor(stress.pair_for(gate_index), lifetime)
        })
    }

    /// Delays under the combined BTI + HCI model: duty-cycle stress per
    /// gate plus per-net toggle rates (HCI damage accrues on transitions).
    /// `toggle_rates` is indexed by net id, as produced by an
    /// activity extraction; a gate's rate is the maximum over its outputs.
    ///
    /// # Panics
    ///
    /// Panics if `toggle_rates` is shorter than the net count.
    pub fn aged_combined(
        netlist: &Netlist,
        model: &CombinedAgingModel,
        stress: &StressSource,
        toggle_rates: &[f64],
        lifetime: Lifetime,
    ) -> Self {
        assert!(
            toggle_rates.len() >= netlist.net_count(),
            "toggle rates must cover every net"
        );
        let mut delays = vec![0.0; netlist.net_count()];
        let loads = netlist.net_loads_ff();
        for (id, net) in netlist.nets() {
            if let NetDriver::Gate { gate, .. } = net.driver {
                let g = netlist.gate(gate);
                let cell = netlist.library().cell(g.cell);
                let rate = g
                    .outputs
                    .iter()
                    .map(|n| toggle_rates[n.index()])
                    .fold(0.0f64, f64::max);
                let base =
                    model.delay_factor(stress.pair_for(gate.index()), rate, lifetime);
                delays[id.index()] =
                    cell.aged_delay_ps(loads[id.index()], base.max(1.0));
            }
        }
        Self { delays_ps: delays }
    }

    /// Delays looked up from pre-generated degradation tables — the exact
    /// artifact path of the paper (STA with the degradation-aware cell
    /// library), including bilinear interpolation between grid points.
    pub fn aged_from_tables(
        netlist: &Netlist,
        tables: &DegradationAwareLibrary,
        stress: &StressSource,
    ) -> Self {
        let mut delays = vec![0.0; netlist.net_count()];
        let loads = netlist.net_loads_ff();
        for (id, net) in netlist.nets() {
            if let NetDriver::Gate { gate, .. } = net.driver {
                let g = netlist.gate(gate);
                let cell = netlist.library().cell(g.cell);
                let factor = tables.delay_factor(g.cell, stress.pair_for(gate.index()));
                delays[id.index()] = cell.delay_ps(loads[id.index()]) * factor;
            }
        }
        Self { delays_ps: delays }
    }

    fn build(netlist: &Netlist, factor: impl Fn(usize, &aix_cells::Cell) -> f64) -> Self {
        let mut delays = vec![0.0; netlist.net_count()];
        let loads = netlist.net_loads_ff();
        for (id, net) in netlist.nets() {
            if let NetDriver::Gate { gate, .. } = net.driver {
                let g = netlist.gate(gate);
                let cell = netlist.library().cell(g.cell);
                delays[id.index()] =
                    cell.aged_delay_ps(loads[id.index()], factor(gate.index(), cell).max(1.0));
            }
        }
        Self { delays_ps: delays }
    }

    /// Builds an annotation directly from per-net delays (indexed by net
    /// id). Used by verification layers that derate or fault existing
    /// annotations; normal flows should prefer the `fresh`/`aged`
    /// constructors.
    pub fn from_raw(delays_ps: Vec<f64>) -> Self {
        Self { delays_ps }
    }

    /// A copy with every gate-driven net's delay multiplied by
    /// `factor(gate_index)` — the hook Monte-Carlo derating and delay-fault
    /// injection build on. Primary inputs and constants stay at zero.
    pub fn scaled_by_gate(&self, netlist: &Netlist, factor: impl Fn(usize) -> f64) -> Self {
        let mut delays = self.delays_ps.clone();
        for (id, net) in netlist.nets() {
            if let NetDriver::Gate { gate, .. } = net.driver {
                delays[id.index()] *= factor(gate.index());
            }
        }
        Self { delays_ps: delays }
    }

    /// The delay contributed by the driver of net `net_index`.
    pub fn of(&self, net_index: usize) -> f64 {
        self.delays_ps[net_index]
    }

    /// All per-net delays (indexed by net id).
    pub fn as_slice(&self) -> &[f64] {
        &self.delays_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aix_aging::StressFactor;
    use aix_arith::{build_adder, AdderKind, ComponentSpec};
    use aix_cells::Library;
    use std::sync::Arc;

    fn adder() -> aix_netlist::Netlist {
        let lib = Arc::new(Library::nangate45_like());
        build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(8)).unwrap()
    }

    #[test]
    fn fresh_delays_zero_only_for_sources() {
        let nl = adder();
        let delays = NetDelays::fresh(&nl);
        for (id, net) in nl.nets() {
            let d = delays.of(id.index());
            match net.driver {
                aix_netlist::NetDriver::Gate { .. } => assert!(d > 0.0),
                _ => assert_eq!(d, 0.0),
            }
        }
    }

    #[test]
    fn aged_worst_case_scales_every_arc() {
        let nl = adder();
        let model = AgingModel::calibrated();
        let fresh = NetDelays::fresh(&nl);
        let aged = NetDelays::aged(
            &nl,
            &model,
            AgingScenario::worst_case(Lifetime::YEARS_10),
        );
        for (id, net) in nl.nets() {
            if matches!(net.driver, aix_netlist::NetDriver::Gate { .. }) {
                let ratio = aged.of(id.index()) / fresh.of(id.index());
                assert!(ratio > 1.1 && ratio < 1.3, "ratio {ratio}");
            }
        }
    }

    #[test]
    fn fresh_scenario_equals_fresh() {
        let nl = adder();
        let model = AgingModel::calibrated();
        assert_eq!(
            NetDelays::aged(&nl, &model, AgingScenario::Fresh),
            NetDelays::fresh(&nl)
        );
    }

    #[test]
    fn table_lookup_close_to_analytic() {
        let nl = adder();
        let model = AgingModel::calibrated();
        let tables =
            DegradationAwareLibrary::generate(nl.library(), &model, Lifetime::YEARS_10);
        let stress = StressSource::Uniform(StressPair::uniform(
            StressFactor::new(0.63).unwrap(),
        ));
        let from_tables = NetDelays::aged_from_tables(&nl, &tables, &stress);
        let analytic =
            NetDelays::aged_with_stress(&nl, &model, &stress, Lifetime::YEARS_10);
        for (id, net) in nl.nets() {
            if matches!(net.driver, aix_netlist::NetDriver::Gate { .. }) {
                let t = from_tables.of(id.index());
                let a = analytic.of(id.index());
                assert!((t - a).abs() / a < 0.01, "table {t} vs analytic {a}");
            }
        }
    }

    #[test]
    fn combined_model_adds_hci_on_top_of_bti() {
        let nl = adder();
        let bti = AgingModel::calibrated();
        let combined = CombinedAgingModel::calibrated();
        let stress = StressSource::Uniform(StressPair::BALANCED);
        let bti_only =
            NetDelays::aged_with_stress(&nl, &bti, &stress, Lifetime::YEARS_10);
        let idle = NetDelays::aged_combined(
            &nl,
            &combined,
            &stress,
            &vec![0.0; nl.net_count()],
            Lifetime::YEARS_10,
        );
        let busy = NetDelays::aged_combined(
            &nl,
            &combined,
            &stress,
            &vec![1.0; nl.net_count()],
            Lifetime::YEARS_10,
        );
        for (id, net) in nl.nets() {
            if matches!(net.driver, aix_netlist::NetDriver::Gate { .. }) {
                let i = id.index();
                assert!((idle.of(i) - bti_only.of(i)).abs() < 1e-9, "idle = BTI only");
                assert!(busy.of(i) > idle.of(i), "toggling gates age faster");
            }
        }
    }

    #[test]
    fn per_gate_stress_is_respected() {
        let nl = adder();
        let model = AgingModel::calibrated();
        // All gates fresh except gate 0 at worst stress.
        let mut pairs = vec![StressPair::default(); nl.gate_count()];
        pairs[0] = StressPair::WORST;
        let delays = NetDelays::aged_with_stress(
            &nl,
            &model,
            &StressSource::PerGate(pairs),
            Lifetime::YEARS_10,
        );
        let fresh = NetDelays::fresh(&nl);
        for (id, net) in nl.nets() {
            if let aix_netlist::NetDriver::Gate { gate, .. } = net.driver {
                let ratio = delays.of(id.index()) / fresh.of(id.index());
                if gate.index() == 0 {
                    assert!(ratio > 1.1);
                } else {
                    assert!((ratio - 1.0).abs() < 1e-12);
                }
            }
        }
    }
}
