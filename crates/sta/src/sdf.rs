//! Standard Delay Format (SDF) export of a delay annotation.
//!
//! The paper's gate-level flow hands an aged `.sdf` file to the simulator
//! ("the resulting standard delay file (.sdf) is finally used to perform
//! gate-level simulations"). This exporter produces the same artifact for
//! any [`NetDelays`] annotation of a netlist, pairing with the structural
//! Verilog export to make every analyzed design portable.

use crate::NetDelays;
use aix_netlist::Netlist;
use std::fmt::Write as _;

/// Sanitizes an instance/module name into an SDF identifier.
fn identifier(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Renders the per-arc delays of `netlist` as an SDF document.
///
/// One `CELL`/`IOPATH` group is emitted per gate output pin, carrying the
/// annotated delay in picoseconds (min = typ = max, as the analysis is a
/// single corner). Instance names match the `g<N>` scheme of
/// [`aix_netlist::to_verilog`].
///
/// # Examples
///
/// ```
/// use aix_arith::{build_adder, AdderKind, ComponentSpec};
/// use aix_cells::Library;
/// use aix_sta::{to_sdf, NetDelays};
/// use std::sync::Arc;
///
/// let lib = Arc::new(Library::nangate45_like());
/// let adder = build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(4))?;
/// let sdf = to_sdf(&adder, &NetDelays::fresh(&adder), "fresh");
/// assert!(sdf.starts_with("(DELAYFILE"));
/// assert!(sdf.contains("(INSTANCE g0)"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn to_sdf(netlist: &Netlist, delays: &NetDelays, corner: &str) -> String {
    let mut out = String::from("(DELAYFILE\n");
    let _ = writeln!(out, "  (SDFVERSION \"3.0\")");
    let _ = writeln!(out, "  (DESIGN \"{}\")", identifier(netlist.name()));
    let _ = writeln!(out, "  (VOLTAGE \"{corner}\")");
    let _ = writeln!(out, "  (TIMESCALE 1ps)");
    const OUTPUT_PINS: [&str; 2] = ["y", "co"];
    const INPUT_PINS: [&str; 3] = ["a", "b", "c"];
    for (id, gate) in netlist.gates() {
        let cell = netlist.library().cell(gate.cell);
        let _ = writeln!(out, "  (CELL (CELLTYPE \"{}\")", cell.name);
        let _ = writeln!(out, "    (INSTANCE g{})", id.index());
        out.push_str("    (DELAY (ABSOLUTE\n");
        for (pin, &net) in gate.outputs.iter().enumerate() {
            let delay = delays.of(net.index());
            for input in INPUT_PINS.iter().take(gate.inputs.len()) {
                let _ = writeln!(
                    out,
                    "      (IOPATH {input} {} ({delay:.2}:{delay:.2}:{delay:.2}))",
                    OUTPUT_PINS[pin]
                );
            }
        }
        out.push_str("    ))\n  )\n");
    }
    out.push_str(")\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aix_arith::{build_adder, AdderKind, ComponentSpec};
    use aix_cells::Library;
    use aix_aging::{AgingModel, AgingScenario, Lifetime};
    use std::sync::Arc;

    fn adder() -> Netlist {
        let lib = Arc::new(Library::nangate45_like());
        build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(4)).unwrap()
    }

    #[test]
    fn every_gate_has_a_cell_group() {
        let nl = adder();
        let sdf = to_sdf(&nl, &NetDelays::fresh(&nl), "fresh");
        assert_eq!(sdf.matches("(CELL (CELLTYPE").count(), nl.gate_count());
        assert!(sdf.trim_end().ends_with(')'));
    }

    #[test]
    fn aged_sdf_carries_larger_delays() {
        let nl = adder();
        let model = AgingModel::calibrated();
        let fresh = to_sdf(&nl, &NetDelays::fresh(&nl), "fresh");
        let aged = to_sdf(
            &nl,
            &NetDelays::aged(&nl, &model, AgingScenario::worst_case(Lifetime::YEARS_10)),
            "aged-10y-wc",
        );
        let sum = |text: &str| -> f64 {
            text.lines()
                .filter(|l| l.contains("IOPATH"))
                .filter_map(|l| {
                    l.split('(')
                        .next_back()?
                        .split(':')
                        .next()?
                        .parse::<f64>()
                        .ok()
                })
                .sum()
        };
        assert!(sum(&aged) > sum(&fresh) * 1.1, "aged arcs must be slower");
        assert!(aged.contains("aged-10y-wc"));
    }

    #[test]
    fn iopath_per_input_output_pair() {
        let nl = adder();
        let sdf = to_sdf(&nl, &NetDelays::fresh(&nl), "fresh");
        // A full adder has 3 inputs and 2 outputs: 6 IOPATH lines.
        let first_cell = sdf
            .split("(INSTANCE g0)")
            .nth(1)
            .and_then(|rest| rest.split("(CELL").next())
            .expect("first cell group");
        assert_eq!(first_cell.matches("IOPATH").count(), 6);
    }
}
