//! Property tests of the DCT pipeline's invariants.

use aix_dct::{DatapathPrecision, FixedPointTransform, Quantizer};
use proptest::prelude::*;

fn arbitrary_block() -> impl Strategy<Value = [u8; 64]> {
    proptest::array::uniform32(any::<u8>()).prop_flat_map(|lo| {
        proptest::array::uniform32(any::<u8>()).prop_map(move |hi| {
            let mut block = [0u8; 64];
            block[..32].copy_from_slice(&lo);
            block[32..].copy_from_slice(&hi);
            block
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The exact transform round trip is near-lossless on any block.
    #[test]
    fn exact_roundtrip_error_bounded(block in arbitrary_block()) {
        let t = FixedPointTransform::exact();
        let back = t.inverse_block(&t.forward_block(&block));
        for (&a, &b) in block.iter().zip(&back) {
            prop_assert!((i32::from(a) - i32::from(b)).abs() <= 2);
        }
    }

    /// Energy preservation (Parseval): the coefficient energy of a
    /// level-shifted block matches its pixel energy within fixed-point
    /// tolerance.
    #[test]
    fn parseval_holds(block in arbitrary_block()) {
        let t = FixedPointTransform::exact();
        let coeffs = t.forward_block(&block);
        let pixel_energy: f64 = block
            .iter()
            .map(|&p| (f64::from(p) - 128.0).powi(2))
            .sum();
        let coeff_energy: f64 = coeffs.iter().map(|&c| f64::from(c).powi(2)).sum();
        // Orthonormal basis preserves energy; allow fixed-point slack.
        let tolerance = 0.02 * pixel_energy + 2000.0;
        prop_assert!(
            (pixel_energy - coeff_energy).abs() <= tolerance,
            "pixels {pixel_energy} vs coefficients {coeff_energy}"
        );
    }

    /// More truncation never reduces the reconstruction error.
    #[test]
    fn truncation_error_monotone(block in arbitrary_block(), cut in 7u32..=14) {
        let exact = FixedPointTransform::exact();
        let coeffs = exact.forward_block(&block);
        let reference = exact.inverse_block(&coeffs);
        let err = |truncation: u32| -> u64 {
            let t = FixedPointTransform::new(DatapathPrecision::new(truncation, 0));
            t.inverse_block(&coeffs)
                .iter()
                .zip(&reference)
                .map(|(&a, &b)| (i64::from(a) - i64::from(b)).unsigned_abs())
                .sum()
        };
        // Not strictly monotone per-pixel, but a 2-bit step should never
        // *improve* total error beyond rounding noise.
        prop_assert!(err(cut + 2) + 64 >= err(cut));
    }

    /// Quantization error never exceeds half a step per coefficient.
    #[test]
    fn quantization_bounded(block in arbitrary_block(), quality in 10u8..=95) {
        let t = FixedPointTransform::exact();
        let coeffs = t.forward_block(&block);
        let q = Quantizer::jpeg_quality(quality);
        let mut lossy = coeffs;
        q.apply(&mut lossy);
        for i in 0..64 {
            let err = (coeffs[i] - lossy[i]).abs();
            prop_assert!(err <= (i32::from(q.step(i)) + 1) / 2);
        }
    }
}
