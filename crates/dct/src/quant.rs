//! JPEG-style coefficient quantization — the lossy stage of the image
//! pipeline the paper evaluates (its fresh DCT–IDCT chain reports ≈45 dB,
//! i.e. codec quality, not a lossless transform).

use std::fmt;

/// The standard JPEG luminance quantization matrix (Annex K), in the same
/// raster order as this crate's 8×8 blocks.
const JPEG_LUMINANCE: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// A per-coefficient quantizer for 8×8 DCT blocks.
///
/// # Examples
///
/// ```
/// use aix_dct::Quantizer;
///
/// let q = Quantizer::jpeg_quality(75);
/// let mut block = [100i32; 64];
/// q.apply(&mut block);
/// // Coefficients snap to multiples of their quantization step.
/// assert_ne!(block, [100i32; 64]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quantizer {
    steps: [u16; 64],
    quality: u8,
}

impl Quantizer {
    /// The JPEG luminance quantizer at the given quality (1 = coarsest,
    /// 100 = near-lossless), using the standard IJG scaling formula.
    ///
    /// # Panics
    ///
    /// Panics if `quality` is outside `1..=100`.
    pub fn jpeg_quality(quality: u8) -> Self {
        assert!((1..=100).contains(&quality), "quality must be in 1..=100");
        let scale: i32 = if quality < 50 {
            5000 / i32::from(quality)
        } else {
            200 - 2 * i32::from(quality)
        };
        let mut steps = [1u16; 64];
        for (step, &base) in steps.iter_mut().zip(&JPEG_LUMINANCE) {
            let scaled = (i32::from(base) * scale + 50) / 100;
            *step = scaled.clamp(1, 255) as u16;
        }
        Self { steps, quality }
    }

    /// The configured quality factor.
    pub fn quality(&self) -> u8 {
        self.quality
    }

    /// The quantization step of coefficient `index` (raster order).
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds 63.
    pub fn step(&self, index: usize) -> u16 {
        self.steps[index]
    }

    /// Quantizes a block to integer levels (round to nearest).
    pub fn quantize(&self, block: &[i32; 64]) -> [i32; 64] {
        let mut out = [0i32; 64];
        for ((slot, &coeff), &step) in out.iter_mut().zip(block).zip(&self.steps) {
            let step = i32::from(step);
            let half = step / 2;
            *slot = if coeff >= 0 {
                (coeff + half) / step
            } else {
                -((-coeff + half) / step)
            };
        }
        out
    }

    /// Reconstructs coefficients from quantized levels.
    pub fn dequantize(&self, levels: &[i32; 64]) -> [i32; 64] {
        let mut out = [0i32; 64];
        for ((slot, &level), &step) in out.iter_mut().zip(levels).zip(&self.steps) {
            *slot = level * i32::from(step);
        }
        out
    }

    /// Applies the full lossy round trip (quantize then dequantize) in
    /// place — the codec distortion of the paper's pipeline.
    pub fn apply(&self, block: &mut [i32; 64]) {
        *block = self.dequantize(&self.quantize(block));
    }
}

impl fmt::Display for Quantizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "jpeg-q{}", self.quality)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_orders_step_sizes() {
        let coarse = Quantizer::jpeg_quality(25);
        let fine = Quantizer::jpeg_quality(90);
        for i in 0..64 {
            assert!(coarse.step(i) >= fine.step(i), "coefficient {i}");
        }
    }

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let q = Quantizer::jpeg_quality(50);
        let mut block = [0i32; 64];
        for (i, slot) in block.iter_mut().enumerate() {
            *slot = (i as i32 - 32) * 13;
        }
        let mut lossy = block;
        q.apply(&mut lossy);
        for i in 0..64 {
            let err = (block[i] - lossy[i]).abs();
            assert!(
                err <= (i32::from(q.step(i)) + 1) / 2,
                "coefficient {i}: error {err} vs step {}",
                q.step(i)
            );
        }
    }

    #[test]
    fn negative_values_round_symmetrically() {
        let q = Quantizer::jpeg_quality(50);
        let mut pos = [0i32; 64];
        let mut neg = [0i32; 64];
        pos[0] = 37;
        neg[0] = -37;
        q.apply(&mut pos);
        q.apply(&mut neg);
        assert_eq!(pos[0], -neg[0]);
    }

    #[test]
    fn apply_is_idempotent() {
        let q = Quantizer::jpeg_quality(60);
        let mut block = [0i32; 64];
        for (i, slot) in block.iter_mut().enumerate() {
            *slot = (i as i32).pow(2) - 800;
        }
        q.apply(&mut block);
        let once = block;
        q.apply(&mut block);
        assert_eq!(once, block);
    }

    #[test]
    #[should_panic(expected = "quality")]
    fn rejects_zero_quality() {
        let _ = Quantizer::jpeg_quality(0);
    }
}
