//! Bit-accurate fixed-point RTL model of the 8×8 DCT/IDCT datapath.

use crate::engine;
use crate::DatapathPrecision;

/// Fixed-point row–column 2-D DCT/IDCT with per-component precision
/// reduction.
///
/// Each 1-D transform is a matrix–vector product executed as 64
/// multiply-accumulate steps on a 32-bit datapath with Q12 coefficients.
/// The [`DatapathPrecision`] truncations are applied to every multiplier
/// and adder operand — a bit-accurate model of the approximated RTL, which
/// is what the paper simulates ("a few seconds" per image) instead of
/// gate-level netlists once approximations have replaced timing errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedPointTransform {
    precision: DatapathPrecision,
}

impl FixedPointTransform {
    /// A transform with the given datapath precision.
    pub fn new(precision: DatapathPrecision) -> Self {
        Self { precision }
    }

    /// A full-precision transform.
    pub fn exact() -> Self {
        Self::new(DatapathPrecision::exact())
    }

    /// The configured precision.
    pub fn precision(&self) -> DatapathPrecision {
        self.precision
    }

    /// The truncated multiply-accumulate step as a reusable closure.
    fn mac_unit(&self) -> impl FnMut(i64, i64, i64) -> i64 {
        let precision = self.precision;
        move |acc, coeff, sample| {
            let a = precision.truncate_multiplier_operand(coeff);
            let b = precision.truncate_multiplier_operand(sample);
            precision.truncate_adder_operand(acc) + precision.truncate_adder_operand(a * b)
        }
    }

    /// 2-D forward DCT of one 8×8 pixel block (level-shifted by −128).
    pub fn forward_block(&self, block: &[u8; 64]) -> [i32; 64] {
        engine::forward_block(&mut self.mac_unit(), block)
    }

    /// 2-D inverse DCT of one 8×8 coefficient block back to pixels.
    pub fn inverse_block(&self, coeffs: &[i32; 64]) -> [u8; 64] {
        engine::inverse_block(&mut self.mac_unit(), coeffs)
    }
}

impl Default for FixedPointTransform {
    fn default() -> Self {
        Self::exact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_block(v: u8) -> [u8; 64] {
        [v; 64]
    }

    #[test]
    fn flat_block_has_only_dc() {
        let t = FixedPointTransform::exact();
        let coeffs = t.forward_block(&flat_block(200));
        assert!(coeffs[0] > 500 && coeffs[0] < 650, "DC {}", coeffs[0]);
        for (i, &c) in coeffs.iter().enumerate().skip(1) {
            assert!(c.abs() <= 2, "AC coefficient {i} = {c}");
        }
    }

    #[test]
    fn exact_roundtrip_is_near_lossless() {
        let t = FixedPointTransform::exact();
        let mut block = [0u8; 64];
        for (i, slot) in block.iter_mut().enumerate() {
            *slot = ((i * 37 + 11) % 256) as u8;
        }
        let back = t.inverse_block(&t.forward_block(&block));
        for (i, (&a, &b)) in block.iter().zip(&back).enumerate() {
            assert!(
                (i32::from(a) - i32::from(b)).abs() <= 2,
                "pixel {i}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn truncation_degrades_gracefully() {
        let mut block = [0u8; 64];
        for (i, slot) in block.iter_mut().enumerate() {
            *slot = ((i * 53) % 256) as u8;
        }
        let exact = FixedPointTransform::exact();
        let coeffs = exact.forward_block(&block);
        let err = |mult_trunc: u32| -> f64 {
            let t = FixedPointTransform::new(DatapathPrecision::new(mult_trunc, 0));
            let back = t.inverse_block(&coeffs);
            block
                .iter()
                .zip(&back)
                .map(|(&a, &b)| (f64::from(a) - f64::from(b)).powi(2))
                .sum::<f64>()
                / 64.0
        };
        let e0 = err(0);
        let e9 = err(9);
        let e14 = err(14);
        assert!(e0 <= e9 + 1e-9 && e9 <= e14 + 1e-9, "{e0} {e9} {e14}");
        assert!(e9 < 80.0, "truncation just past the guard bits stays mild: MSE {e9}");
        assert!(e14 > e9, "heavy truncation hurts");
    }

    #[test]
    fn dc_only_block_reconstructs_flat() {
        let t = FixedPointTransform::exact();
        let mut coeffs = [0i32; 64];
        coeffs[0] = 576;
        let back = t.inverse_block(&coeffs);
        for &p in &back {
            assert!((i32::from(p) - 200).abs() <= 2, "pixel {p}");
        }
    }

    #[test]
    fn adder_truncation_also_degrades() {
        let mut block = [0u8; 64];
        for (i, slot) in block.iter_mut().enumerate() {
            *slot = ((i * 29 + 5) % 256) as u8;
        }
        let exact = FixedPointTransform::exact();
        let coeffs = exact.forward_block(&block);
        // The datapath carries OPERAND_SHIFT guard bits, so only truncation
        // beyond them perturbs the result.
        let adder_cut = FixedPointTransform::new(DatapathPrecision::new(0, 16));
        let back = adder_cut.inverse_block(&coeffs);
        assert_ne!(back, exact.inverse_block(&coeffs));
    }

    #[test]
    fn truncation_error_stays_within_deterministic_bound() {
        // The defining property of the paper's approach: approximation
        // errors are bounded, unlike timing errors.
        let precision = DatapathPrecision::new(4, 0);
        let t = FixedPointTransform::new(precision);
        let exact = FixedPointTransform::exact();
        let mut block = [0u8; 64];
        for (i, slot) in block.iter_mut().enumerate() {
            *slot = ((i * 97 + 13) % 256) as u8;
        }
        let coeffs = exact.forward_block(&block);
        let approx = t.inverse_block(&coeffs);
        let reference = exact.inverse_block(&coeffs);
        // 64 MACs per output (two 1-D passes of 8 each, compounded),
        // each bounded; the pixel-domain bound after the Q12 shift.
        let per_mac = precision.mac_error_bound(1 << 12);
        let bound = (16 * per_mac) >> 12;
        for (&a, &r) in approx.iter().zip(&reference) {
            let err = (i64::from(a) - i64::from(r)).abs();
            assert!(err <= bound + 2, "error {err} exceeds bound {bound}");
        }
    }
}
