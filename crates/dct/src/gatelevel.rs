//! Gate-level timed execution of the DCT/IDCT datapath.
//!
//! Every multiply-accumulate of the transform schedule runs on a
//! synthesized 32-bit MAC netlist through the event-driven timed simulator,
//! clocked at the *fresh* maximum frequency while the gates carry *aged*
//! delays — the exact setup of the paper's motivational study (Fig. 2):
//! naive guardband removal turns aging into nondeterministic timing errors
//! that corrupt the image.
//!
//! Two timed engines back the pipeline (selected by
//! [`GateLevelConfig::sim_engine`]): the scalar [`TimedSimulator`] steps
//! every MAC of every block through one simulator, while the packed
//! [`PackedTimedSimulator`] runs up to 64 blocks lane-parallel, each lane a
//! persistent stream through one shared event calendar. Each lane's MAC
//! sequence is exact per-vector timed simulation either way, but the
//! engines see different inter-block stimulus histories (a MAC's timing
//! depends on the *previous* MAC's inputs, and the blocks preceding a
//! given MAC differ between a sequential and a lane-parallel schedule), so
//! aged runs are statistically — not bit- — equivalent across engines.
//! Fresh runs are error-free on both and therefore bit-identical to RTL.

use crate::{engine, CoefficientImage, Quantizer};
use aix_aging::{AgingModel, AgingScenario};
use aix_arith::{add_into, multiply_into, AdderKind, MultiplierKind};
use aix_cells::Library;
use aix_image::Image;
use aix_netlist::{bus_from_u64, bus_to_u64, Netlist, NetlistError};
use aix_sim::{golden_lane_word, PackedTimedSimulator, SimEngine, TimedSimulator, LANES};
use aix_sta::{analyze, ClockConstraint, NetDelays};
use aix_synth::{optimize, recover_area, size_for_performance};
use std::sync::Arc;

/// Datapath operand width in bits.
const WIDTH: usize = 32;
/// Accumulator/output width in bits: wide enough for the guard-shifted
/// products of the transform engine (|coeff·2⁶ × sample·2⁶| < 2⁴¹) plus
/// accumulation headroom.
const ACC_WIDTH: usize = 48;

/// Margin added to the zero-guardband clock derived from the fresh
/// critical path. The timed engines sample edge-exclusively (an arrival
/// exactly at `t_clock` is a violation) on a femtosecond tick grid, so a
/// MAC input that exercises the exact critical path would flag the *fresh*
/// design without this one-picosecond allowance — far below any
/// aging-induced delay shift, so the motivational study is unaffected.
const CLOCK_EDGE_MARGIN_PS: f64 = 1.0;

/// Configuration of a gate-level pipeline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateLevelConfig {
    /// Aging condition applied to every gate delay.
    pub scenario: AgingScenario,
    /// LSBs truncated from the MAC's multiplier operands (the netlist is
    /// re-synthesized accordingly, shortening its critical path).
    pub multiplier_truncation: u32,
    /// Explicit clock period override in ps; `None` clocks at the fresh
    /// full-precision critical path (zero guardband, plus the engine's
    /// one-picosecond edge margin).
    pub clock_ps: Option<f64>,
    /// Timed simulation engine: `Scalar` steps one MAC at a time through
    /// one simulator (blocks chained sequentially); `Packed` runs up to 64
    /// blocks lane-parallel, each lane a persistent independent stream.
    /// Per-MAC timing behaviour is identical, but the engines see
    /// different inter-block stimulus histories, so aged runs are
    /// statistically — not bit- — equivalent.
    pub sim_engine: SimEngine,
}

impl GateLevelConfig {
    /// Fresh circuit, exact datapath, zero-guardband clock. The engine
    /// follows `AIX_SIM_ENGINE` (packed by default).
    pub fn fresh() -> Self {
        Self {
            scenario: AgingScenario::Fresh,
            multiplier_truncation: 0,
            clock_ps: None,
            sim_engine: SimEngine::from_env_or_default(),
        }
    }

    /// Aged circuit at the fresh clock (the naive guardband removal of the
    /// motivational study). The engine follows `AIX_SIM_ENGINE`.
    pub fn aged(scenario: AgingScenario) -> Self {
        Self {
            scenario,
            multiplier_truncation: 0,
            clock_ps: None,
            sim_engine: SimEngine::from_env_or_default(),
        }
    }

    /// The same configuration pinned to an explicit engine.
    pub fn with_engine(mut self, engine: SimEngine) -> Self {
        self.sim_engine = engine;
        self
    }
}

/// Statistics of a gate-level run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GateLevelStats {
    /// MAC operations executed.
    pub mac_ops: u64,
    /// MAC operations whose sampled output differed from the settled one.
    pub timing_errors: u64,
}

impl GateLevelStats {
    /// Fraction of MAC operations that latched a wrong value.
    pub fn error_rate(&self) -> f64 {
        if self.mac_ops == 0 {
            0.0
        } else {
            self.timing_errors as f64 / self.mac_ops as f64
        }
    }
}

/// A DCT/IDCT image pipeline whose every MAC executes on a timed gate-level
/// netlist.
///
/// # Examples
///
/// ```no_run
/// use aix_dct::{encode_image, FixedPointTransform, GateLevelConfig, GateLevelPipeline};
/// use aix_aging::{AgingScenario, Lifetime};
/// use aix_cells::Library;
/// use aix_image::Sequence;
/// use std::sync::Arc;
///
/// let lib = Arc::new(Library::nangate45_like());
/// let frame = Sequence::Akiyo.frame(64, 48, 0);
/// let coeffs = encode_image(&frame, &FixedPointTransform::exact());
/// let aged = GateLevelPipeline::new(
///     &lib,
///     GateLevelConfig::aged(AgingScenario::balanced(Lifetime::YEARS_10)),
/// )?;
/// let (decoded, stats) = aged.decode_image(&coeffs)?;
/// println!("{} MAC timing errors", stats.timing_errors);
/// # let _ = decoded;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct GateLevelPipeline {
    netlist: Netlist,
    delays: NetDelays,
    clock_ps: f64,
    fresh_cp_ps: f64,
    sim_engine: SimEngine,
}

impl GateLevelPipeline {
    /// Synthesizes the 32-bit MAC datapath and prepares aged delays.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction/STA errors; never fails for the
    /// built-in library.
    pub fn new(library: &Arc<Library>, config: GateLevelConfig) -> Result<Self, NetlistError> {
        let netlist = build_mac_netlist(library, config.multiplier_truncation)?;
        let model = AgingModel::calibrated();
        // The clock is fixed at design time from the *full-precision*
        // fresh netlist — the timing constraint the design must keep
        // meeting over its whole lifetime.
        let reference = if config.multiplier_truncation == 0 {
            netlist.clone()
        } else {
            build_mac_netlist(library, 0)?
        };
        let fresh_cp_ps = analyze(&reference, &NetDelays::fresh(&reference))?.max_delay_ps();
        let clock_ps = config
            .clock_ps
            .unwrap_or(fresh_cp_ps + CLOCK_EDGE_MARGIN_PS);
        let delays = NetDelays::aged(&netlist, &model, config.scenario);
        Ok(Self {
            netlist,
            delays,
            clock_ps,
            fresh_cp_ps,
            sim_engine: config.sim_engine,
        })
    }

    /// The clock period in picoseconds the pipeline samples at.
    pub fn clock(&self) -> ClockConstraint {
        ClockConstraint::from_period_ps(self.clock_ps)
    }

    /// Fresh critical-path delay of the full-precision MAC, in ps.
    pub fn fresh_critical_path_ps(&self) -> f64 {
        self.fresh_cp_ps
    }

    /// The synthesized MAC netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Decodes a coefficient image through the timed gate-level IDCT.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors; never fails for pipelines built by
    /// [`GateLevelPipeline::new`].
    pub fn decode_image(
        &self,
        coefficients: &CoefficientImage,
    ) -> Result<(Image, GateLevelStats), NetlistError> {
        match self.sim_engine {
            SimEngine::Scalar => self.decode_image_scalar(coefficients),
            SimEngine::Packed => self.decode_image_packed(coefficients),
        }
    }

    fn decode_image_scalar(
        &self,
        coefficients: &CoefficientImage,
    ) -> Result<(Image, GateLevelStats), NetlistError> {
        let mut sim = TimedSimulator::new(&self.netlist, &self.delays)?;
        let mut stats = GateLevelStats::default();
        let (width, height) = coefficients.dimensions();
        let mut image = Image::filled(width, height, 0);
        let blocks_per_row = width.div_ceil(8);
        {
            let mut mac = self.mac_closure(&mut sim, &mut stats);
            for (index, block) in coefficients.blocks().iter().enumerate() {
                let pixels = engine::inverse_block(&mut mac, block);
                image.set_block8(index % blocks_per_row, index / blocks_per_row, &pixels);
            }
        }
        Ok((image, stats))
    }

    fn decode_image_packed(
        &self,
        coefficients: &CoefficientImage,
    ) -> Result<(Image, GateLevelStats), NetlistError> {
        let mut stats = GateLevelStats::default();
        let (width, height) = coefficients.dimensions();
        let mut image = Image::filled(width, height, 0);
        let blocks_per_row = width.div_ceil(8);
        // One simulator per block group: streams mode pins the lane count
        // at the first step, and the tail group may be narrower.
        for (group_index, group) in coefficients.blocks().chunks(LANES).enumerate() {
            let mut sim = PackedTimedSimulator::new(&self.netlist, &self.delays)?;
            let pixels = {
                let mut mac = self.batch_mac_closure(&mut sim, &mut stats);
                engine::inverse_block_batch(&mut mac, group)
            };
            for (offset, block) in pixels.iter().enumerate() {
                let index = group_index * LANES + offset;
                image.set_block8(index % blocks_per_row, index / blocks_per_row, block);
            }
        }
        Ok((image, stats))
    }

    /// Encodes and then decodes `image` entirely at gate level (both the
    /// DCT and the IDCT age), optionally passing each block through a
    /// codec quantizer between the transforms, and returns the
    /// reconstruction and statistics — the full Fig. 2 setup.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn roundtrip_image(
        &self,
        image: &Image,
        quantizer: Option<&Quantizer>,
    ) -> Result<(Image, GateLevelStats), NetlistError> {
        match self.sim_engine {
            SimEngine::Scalar => self.roundtrip_image_scalar(image, quantizer),
            SimEngine::Packed => self.roundtrip_image_packed(image, quantizer),
        }
    }

    fn roundtrip_image_scalar(
        &self,
        image: &Image,
        quantizer: Option<&Quantizer>,
    ) -> Result<(Image, GateLevelStats), NetlistError> {
        let mut sim = TimedSimulator::new(&self.netlist, &self.delays)?;
        let mut stats = GateLevelStats::default();
        let (bw, bh) = image.block_counts();
        let mut out = Image::filled(image.width(), image.height(), 0);
        {
            let mut mac = self.mac_closure(&mut sim, &mut stats);
            for by in 0..bh {
                for bx in 0..bw {
                    let mut coeffs = engine::forward_block(&mut mac, &image.block8(bx, by));
                    if let Some(q) = quantizer {
                        q.apply(&mut coeffs);
                    }
                    let pixels = engine::inverse_block(&mut mac, &coeffs);
                    out.set_block8(bx, by, &pixels);
                }
            }
        }
        Ok((out, stats))
    }

    fn roundtrip_image_packed(
        &self,
        image: &Image,
        quantizer: Option<&Quantizer>,
    ) -> Result<(Image, GateLevelStats), NetlistError> {
        let mut stats = GateLevelStats::default();
        let (bw, bh) = image.block_counts();
        let mut out = Image::filled(image.width(), image.height(), 0);
        let coords: Vec<(usize, usize)> = (0..bh)
            .flat_map(|by| (0..bw).map(move |bx| (bx, by)))
            .collect();
        for group in coords.chunks(LANES) {
            let blocks: Vec<[u8; 64]> = group.iter().map(|&(bx, by)| image.block8(bx, by)).collect();
            let mut sim = PackedTimedSimulator::new(&self.netlist, &self.delays)?;
            let pixels = {
                let mut mac = self.batch_mac_closure(&mut sim, &mut stats);
                let mut coeffs = engine::forward_block_batch(&mut mac, &blocks);
                if let Some(q) = quantizer {
                    for block in &mut coeffs {
                        q.apply(block);
                    }
                }
                engine::inverse_block_batch(&mut mac, &coeffs)
            };
            for (&(bx, by), block) in group.iter().zip(&pixels) {
                out.set_block8(bx, by, block);
            }
        }
        Ok((out, stats))
    }

    /// Builds the MAC closure driving the timed simulator.
    fn mac_closure<'a, 'nl: 'a>(
        &'a self,
        sim: &'a mut TimedSimulator<'nl>,
        stats: &'a mut GateLevelStats,
    ) -> impl FnMut(i64, i64, i64) -> i64 + use<'a, 'nl> {
        let clock = self.clock_ps;
        move |acc, coeff, sample| {
            let mut inputs = bus_from_u64(to_operand(coeff), WIDTH);
            inputs.extend(bus_from_u64(to_operand(sample), WIDTH));
            inputs.extend(bus_from_u64(to_acc(acc), ACC_WIDTH));
            let outcome = sim
                .step(&inputs, clock)
                .expect("input width matches the synthesized MAC");
            stats.mac_ops += 1;
            if outcome.timing_error {
                stats.timing_errors += 1;
            }
            from_bus(bus_to_u64(&outcome.sampled))
        }
    }

    /// Builds the lane-batched MAC closure driving the packed timed
    /// simulator: one lane per block, all lanes stepped through one shared
    /// event calendar per MAC.
    fn batch_mac_closure<'a, 'nl: 'a>(
        &'a self,
        sim: &'a mut PackedTimedSimulator<'nl>,
        stats: &'a mut GateLevelStats,
    ) -> impl FnMut(&mut [i64], i64, &[i64]) + use<'a, 'nl> {
        let clock = self.clock_ps;
        move |accs: &mut [i64], coeff: i64, samples: &[i64]| {
            let batch: Vec<Vec<bool>> = accs
                .iter()
                .zip(samples)
                .map(|(&acc, &sample)| {
                    let mut inputs = bus_from_u64(to_operand(coeff), WIDTH);
                    inputs.extend(bus_from_u64(to_operand(sample), WIDTH));
                    inputs.extend(bus_from_u64(to_acc(acc), ACC_WIDTH));
                    inputs
                })
                .collect();
            let outcome = sim
                .step_streams(&batch, clock)
                .expect("input width matches the synthesized MAC");
            stats.mac_ops += batch.len() as u64;
            stats.timing_errors += u64::from(outcome.error_lanes().count_ones());
            let sampled = outcome.sampled_words();
            for (lane, acc) in accs.iter_mut().enumerate() {
                *acc = from_bus(golden_lane_word(sampled, lane));
            }
        }
    }
}

/// Two's-complement embedding of an `i64` into the 32-bit operand bus.
fn to_operand(value: i64) -> u64 {
    (value as u64) & 0xFFFF_FFFF
}

/// Two's-complement embedding of an `i64` into the 48-bit accumulator bus.
fn to_acc(value: i64) -> u64 {
    (value as u64) & 0xFFFF_FFFF_FFFF
}

/// Sign extension back from the 48-bit accumulator bus.
fn from_bus(raw: u64) -> i64 {
    let masked = raw & 0xFFFF_FFFF_FFFF;
    if masked & (1 << 47) != 0 {
        (masked | !0xFFFF_FFFF_FFFF) as i64
    } else {
        masked as i64
    }
}

/// Synthesizes the 32-bit MAC: Wallace multiplier core, carry-select
/// accumulate, output truncated to the low 32 bits (the datapath wraps at
/// the register width), then cleanup, timing-driven sizing and area
/// recovery — the "ultra compile" treatment.
fn build_mac_netlist(library: &Arc<Library>, mult_truncation: u32) -> Result<Netlist, NetlistError> {
    let mut nl = Netlist::new(
        format!("idct_mac_t{mult_truncation}"),
        Arc::clone(library),
    );
    let a = nl.add_input_bus("a", WIDTH);
    let b = nl.add_input_bus("b", WIDTH);
    let acc = nl.add_input_bus("acc", ACC_WIDTH);
    let zero = nl.constant(false);
    let mask = |nl: &mut Netlist, bus: &[aix_netlist::NetId]| -> Vec<aix_netlist::NetId> {
        let z = nl.constant(false);
        bus.iter()
            .enumerate()
            .map(|(i, &net)| if (i as u32) < mult_truncation { z } else { net })
            .collect()
    };
    let at = mask(&mut nl, &a);
    let bt = mask(&mut nl, &b);
    // Sign-extend the two's-complement operands to the accumulator width by
    // replicating the sign net (costs wiring, not gates), so the low
    // ACC_WIDTH product bits equal the signed product modulo 2^ACC_WIDTH.
    let extend = |bus: &[aix_netlist::NetId]| -> Vec<aix_netlist::NetId> {
        let mut wide = bus.to_vec();
        let sign = *bus.last().expect("non-empty operand bus");
        wide.extend(std::iter::repeat_n(sign, ACC_WIDTH - WIDTH));
        wide
    };
    let product = multiply_into(&mut nl, MultiplierKind::Wallace, &extend(&at), &extend(&bt))?;
    let _ = zero;
    let (sum, _overflow) =
        add_into(&mut nl, AdderKind::CarrySelect, &product[..ACC_WIDTH], &acc, None)?;
    for (i, &net) in sum.iter().take(ACC_WIDTH).enumerate() {
        nl.mark_output(format!("out[{i}]"), net);
    }
    let mut optimized = optimize(&nl)?;
    let sized = size_for_performance(&mut optimized, NetDelays::fresh, 400)?;
    recover_area(&mut optimized, NetDelays::fresh, sized.final_delay_ps, 25)?;
    optimized.validate()?;
    Ok(optimized)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode_image, roundtrip_psnr, FixedPointTransform};
    use aix_aging::Lifetime;
    use aix_image::{psnr, Sequence};

    fn library() -> Arc<Library> {
        Arc::new(Library::nangate45_like())
    }

    #[test]
    fn bus_embedding_roundtrips() {
        for v in [-4_000_000_000i64, -2_000_000, -1, 0, 1, 2_000_000, 1 << 42] {
            assert_eq!(from_bus(to_acc(v)), v);
        }
    }

    #[test]
    fn mac_netlist_computes_wrapped_mac() {
        let lib = library();
        let nl = build_mac_netlist(&lib, 0).unwrap();
        for (a, b, acc) in [
            (3i64, 5i64, 7i64),
            (-4, 100, -50),
            (4096, -4096, 123_456),
            (-1, -1, 0),
            (131_072, 120_000, -4_000_000_000),
        ] {
            let mut inputs = bus_from_u64(to_operand(a), WIDTH);
            inputs.extend(bus_from_u64(to_operand(b), WIDTH));
            inputs.extend(bus_from_u64(to_acc(acc), ACC_WIDTH));
            let out = nl.eval(&inputs).unwrap();
            let got = from_bus(bus_to_u64(&out));
            let expect = from_bus(to_acc(a.wrapping_mul(b).wrapping_add(acc)));
            assert_eq!(got, expect, "{a}*{b}+{acc}");
        }
    }

    #[test]
    fn fresh_pipeline_matches_rtl_model() {
        let lib = library();
        let frame = Sequence::Akiyo.frame(24, 16, 0);
        let exact = FixedPointTransform::exact();
        let coeffs = encode_image(&frame, &exact);
        let pipeline = GateLevelPipeline::new(&lib, GateLevelConfig::fresh()).unwrap();
        let (decoded, stats) = pipeline.decode_image(&coeffs).unwrap();
        assert_eq!(stats.timing_errors, 0, "fresh circuit at its own clock");
        let rtl = crate::decode_image(&coeffs, &exact);
        assert_eq!(decoded, rtl, "gate level must be bit-identical to RTL");
        assert!(stats.mac_ops > 0);
    }

    #[test]
    fn fresh_engines_agree_bit_for_bit() {
        // Fresh runs are error-free, so sampled == settled == exact MAC on
        // both engines and every path must reproduce RTL exactly.
        let lib = library();
        let frame = Sequence::Akiyo.frame(24, 16, 0);
        let exact = FixedPointTransform::exact();
        let coeffs = encode_image(&frame, &exact);
        let rtl = crate::decode_image(&coeffs, &exact);
        for engine in [aix_sim::SimEngine::Scalar, aix_sim::SimEngine::Packed] {
            let pipeline = GateLevelPipeline::new(
                &lib,
                GateLevelConfig::fresh().with_engine(engine),
            )
            .unwrap();
            let (decoded, stats) = pipeline.decode_image(&coeffs).unwrap();
            assert_eq!(stats.timing_errors, 0, "{engine} engine");
            assert_eq!(decoded, rtl, "{engine} engine must match RTL");
        }
    }

    #[test]
    fn aged_pipeline_corrupts_images() {
        let lib = library();
        let frame = Sequence::Foreman.frame(24, 16, 0);
        let exact = FixedPointTransform::exact();
        let coeffs = encode_image(&frame, &exact);
        let clean = roundtrip_psnr(&frame, &exact, &exact);
        let aged = GateLevelPipeline::new(
            &lib,
            GateLevelConfig::aged(AgingScenario::worst_case(Lifetime::YEARS_10)),
        )
        .unwrap();
        let (decoded, stats) = aged.decode_image(&coeffs).unwrap();
        assert!(stats.timing_errors > 0, "10-year worst-case must err");
        let q = psnr(&frame, &decoded);
        assert!(q < clean - 5.0, "quality must collapse: {q} vs {clean}");
    }

    #[test]
    fn truncated_netlist_is_faster() {
        let lib = library();
        let full = build_mac_netlist(&lib, 0).unwrap();
        let cut = build_mac_netlist(&lib, 6).unwrap();
        let d_full = analyze(&full, &NetDelays::fresh(&full)).unwrap().max_delay_ps();
        let d_cut = analyze(&cut, &NetDelays::fresh(&cut)).unwrap().max_delay_ps();
        assert!(d_cut < d_full, "{d_cut} vs {d_full}");
        assert!(cut.stats().area_um2 < full.stats().area_um2);
    }
}
