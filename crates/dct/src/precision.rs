//! Per-component datapath precision configuration.

use std::fmt;

/// How many least-significant bits each datapath component truncates —
/// the output of the paper's microarchitecture-level flow (Fig. 6), where
/// every RTL component receives its own precision reduction (or none).
///
/// # Examples
///
/// ```
/// use aix_dct::DatapathPrecision;
///
/// let exact = DatapathPrecision::exact();
/// assert!(exact.is_exact());
/// // The paper's headline configuration: 3 bits off the IDCT multiplier.
/// let paper = DatapathPrecision::new(3, 0);
/// assert_eq!(paper.multiplier_truncation, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DatapathPrecision {
    /// LSBs truncated from both multiplier operands.
    pub multiplier_truncation: u32,
    /// LSBs truncated from both accumulator-adder operands.
    pub adder_truncation: u32,
}

impl DatapathPrecision {
    /// Full precision: no truncation anywhere.
    pub fn exact() -> Self {
        Self::default()
    }

    /// Explicit truncation per component.
    ///
    /// # Panics
    ///
    /// Panics if either truncation is 32 bits or more — the datapath is
    /// 32 bits wide.
    pub fn new(multiplier_truncation: u32, adder_truncation: u32) -> Self {
        assert!(
            multiplier_truncation < 32 && adder_truncation < 32,
            "truncation must leave at least one bit of a 32-bit datapath"
        );
        Self {
            multiplier_truncation,
            adder_truncation,
        }
    }

    /// Whether any truncation is configured.
    pub fn is_exact(&self) -> bool {
        self.multiplier_truncation == 0 && self.adder_truncation == 0
    }

    /// Masks the low `bits` of a two's-complement value.
    fn mask(value: i64, bits: u32) -> i64 {
        if bits == 0 {
            value
        } else {
            value & !((1i64 << bits) - 1)
        }
    }

    /// Applies the multiplier-operand truncation to `value`.
    pub fn truncate_multiplier_operand(&self, value: i64) -> i64 {
        Self::mask(value, self.multiplier_truncation)
    }

    /// Applies the adder-operand truncation to `value`.
    pub fn truncate_adder_operand(&self, value: i64) -> i64 {
        Self::mask(value, self.adder_truncation)
    }

    /// Worst-case absolute error of one truncated multiply-accumulate step
    /// with operand magnitudes bounded by `operand_bound`, establishing the
    /// deterministic error bound that distinguishes approximation from
    /// uncontrolled timing errors.
    pub fn mac_error_bound(&self, operand_bound: i64) -> i64 {
        let m = (1i64 << self.multiplier_truncation) - 1;
        let a = (1i64 << self.adder_truncation) - 1;
        // (a+e1)(b+e2) − ab ≤ |a|e2 + |b|e1 + e1e2, plus two adder operands.
        2 * operand_bound * m + m * m + 2 * a
    }
}

impl fmt::Display for DatapathPrecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_exact() {
            write!(f, "exact")
        } else {
            write!(
                f,
                "mult-{}lsb/add-{}lsb",
                self.multiplier_truncation, self.adder_truncation
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_works_on_negatives() {
        let p = DatapathPrecision::new(4, 2);
        assert_eq!(p.truncate_multiplier_operand(0b1_0111), 0b1_0000);
        assert_eq!(p.truncate_multiplier_operand(-1), -16);
        assert_eq!(p.truncate_adder_operand(-1), -4);
        assert_eq!(p.truncate_adder_operand(7), 4);
    }

    #[test]
    fn exact_is_identity() {
        let p = DatapathPrecision::exact();
        for v in [-1000i64, -1, 0, 1, 12345] {
            assert_eq!(p.truncate_multiplier_operand(v), v);
            assert_eq!(p.truncate_adder_operand(v), v);
        }
    }

    #[test]
    fn truncation_error_is_bounded() {
        let p = DatapathPrecision::new(3, 0);
        for v in -100i64..100 {
            let t = p.truncate_multiplier_operand(v);
            assert!(t <= v && v - t < 8, "{v} -> {t}");
        }
    }

    #[test]
    fn error_bound_monotone_in_truncation() {
        let small = DatapathPrecision::new(2, 0).mac_error_bound(1 << 12);
        let large = DatapathPrecision::new(5, 0).mac_error_bound(1 << 12);
        assert!(small < large);
        assert_eq!(DatapathPrecision::exact().mac_error_bound(1 << 12), 0);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn rejects_full_truncation() {
        let _ = DatapathPrecision::new(32, 0);
    }
}
