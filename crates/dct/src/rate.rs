//! Bit-rate estimation: zigzag scan plus a JPEG-flavoured entropy estimate,
//! adding the *rate* axis to the quality studies (an approximated IDCT is
//! only interesting if the encoded stream it decodes is realistic).

use crate::{encode_image_quantized, FixedPointTransform, Quantizer};
use aix_image::Image;

/// The JPEG zigzag scan order over an 8×8 block in raster indexing.
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27,
    20, 13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58,
    59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Bits needed for the magnitude category of a level (JPEG "size").
fn magnitude_bits(level: i32) -> u32 {
    32 - level.unsigned_abs().leading_zeros()
}

/// Estimates the coded size of one *quantized-level* block in bits, using a
/// JPEG-like cost model: per nonzero coefficient, a run/size token (~4
/// bits) plus the magnitude bits; one end-of-block token.
///
/// # Examples
///
/// ```
/// use aix_dct::estimate_block_bits;
///
/// let empty = [0i32; 64];
/// let mut busy = [0i32; 64];
/// for (i, c) in busy.iter_mut().enumerate() {
///     *c = i as i32 - 32;
/// }
/// assert!(estimate_block_bits(&busy) > estimate_block_bits(&empty));
/// ```
pub fn estimate_block_bits(levels: &[i32; 64]) -> f64 {
    const TOKEN_BITS: f64 = 4.0;
    const EOB_BITS: f64 = 4.0;
    let mut bits = EOB_BITS;
    for &index in &ZIGZAG {
        let level = levels[index];
        if level != 0 {
            bits += TOKEN_BITS + f64::from(magnitude_bits(level));
        }
    }
    bits
}

/// Estimates the coded bit rate of `image` through the quantized pipeline,
/// in bits per pixel.
pub fn estimate_bits_per_pixel(
    image: &Image,
    transform: &FixedPointTransform,
    quantizer: &Quantizer,
) -> f64 {
    let encoded = encode_image_quantized(image, transform, quantizer);
    let total: f64 = encoded
        .blocks()
        .iter()
        .map(|block| estimate_block_bits(&quantizer.quantize(block)))
        .sum();
    total / (image.width() * image.height()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use aix_image::Sequence;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &i in &ZIGZAG {
            assert!(!seen[i], "index {i} repeated");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // The scan starts at DC and walks the first anti-diagonal.
        assert_eq!(&ZIGZAG[..4], &[0, 1, 8, 16]);
    }

    #[test]
    fn magnitude_bits_match_jpeg_categories() {
        assert_eq!(magnitude_bits(0), 0);
        assert_eq!(magnitude_bits(1), 1);
        assert_eq!(magnitude_bits(-1), 1);
        assert_eq!(magnitude_bits(2), 2);
        assert_eq!(magnitude_bits(3), 2);
        assert_eq!(magnitude_bits(255), 8);
        assert_eq!(magnitude_bits(-256), 9);
    }

    #[test]
    fn coarser_quantization_costs_fewer_bits() {
        let frame = Sequence::Foreman.frame(64, 48, 0);
        let t = FixedPointTransform::exact();
        let fine = estimate_bits_per_pixel(&frame, &t, &Quantizer::jpeg_quality(90));
        let coarse = estimate_bits_per_pixel(&frame, &t, &Quantizer::jpeg_quality(25));
        assert!(
            coarse < fine,
            "coarse {coarse:.2} bpp must undercut fine {fine:.2} bpp"
        );
        assert!(coarse > 0.0 && fine < 16.0, "sane bpp range");
    }

    #[test]
    fn busy_content_costs_more_bits() {
        let t = FixedPointTransform::exact();
        let q = Quantizer::jpeg_quality(75);
        let smooth =
            estimate_bits_per_pixel(&Sequence::MissAmerica.frame(64, 48, 0), &t, &q);
        let busy = estimate_bits_per_pixel(&Sequence::Mobile.frame(64, 48, 0), &t, &q);
        assert!(busy > smooth, "mobile {busy:.2} vs miss {smooth:.2}");
    }
}
