//! Whole-image encode/decode pipeline and quality evaluation.

use crate::{FixedPointTransform, Quantizer};
use aix_image::{psnr, Image};

/// An image in the DCT coefficient domain, 8×8 blocks in raster order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoefficientImage {
    width: usize,
    height: usize,
    blocks: Vec<[i32; 64]>,
}

impl CoefficientImage {
    /// Original pixel dimensions.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// The coefficient blocks in raster order.
    pub fn blocks(&self) -> &[[i32; 64]] {
        &self.blocks
    }
}

/// Encodes `image` with the forward transform, block by block.
pub fn encode_image(image: &Image, transform: &FixedPointTransform) -> CoefficientImage {
    let (bw, bh) = image.block_counts();
    let mut blocks = Vec::with_capacity(bw * bh);
    for by in 0..bh {
        for bx in 0..bw {
            blocks.push(transform.forward_block(&image.block8(bx, by)));
        }
    }
    CoefficientImage {
        width: image.width(),
        height: image.height(),
        blocks,
    }
}

/// Encodes `image` and applies the lossy quantization round trip to every
/// block — the full codec front end of the paper's evaluation pipeline
/// (its fresh DCT-IDCT chain reports codec-grade ≈45 dB, not a lossless
/// transform).
pub fn encode_image_quantized(
    image: &Image,
    transform: &FixedPointTransform,
    quantizer: &Quantizer,
) -> CoefficientImage {
    let mut encoded = encode_image(image, transform);
    for block in &mut encoded.blocks {
        quantizer.apply(block);
    }
    encoded
}

/// Decodes a coefficient image with the inverse transform.
pub fn decode_image(coefficients: &CoefficientImage, transform: &FixedPointTransform) -> Image {
    let mut image = Image::filled(coefficients.width, coefficients.height, 0);
    let (bw, _) = image.block_counts();
    for (index, block) in coefficients.blocks.iter().enumerate() {
        let pixels = transform.inverse_block(block);
        image.set_block8(index % bw, index / bw, &pixels);
    }
    image
}

/// Encodes with `encoder`, decodes with `decoder`, and returns the PSNR of
/// the reconstruction against the original — the paper's quality metric.
pub fn roundtrip_psnr(
    image: &Image,
    encoder: &FixedPointTransform,
    decoder: &FixedPointTransform,
) -> f64 {
    let encoded = encode_image(image, encoder);
    let decoded = decode_image(&encoded, decoder);
    psnr(image, &decoded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatapathPrecision;
    use aix_image::Sequence;

    #[test]
    fn exact_pipeline_is_transparent() {
        for seq in [Sequence::Akiyo, Sequence::Mobile] {
            let frame = seq.frame(64, 48, 0);
            let exact = FixedPointTransform::exact();
            let q = roundtrip_psnr(&frame, &exact, &exact);
            assert!(q > 40.0, "{seq}: {q}");
        }
    }

    #[test]
    fn psnr_monotone_in_decoder_truncation() {
        let frame = Sequence::Foreman.frame(64, 48, 0);
        let exact = FixedPointTransform::exact();
        let mut last = f64::INFINITY;
        for cut in [0u32, 6, 9, 12, 15] {
            let dec = FixedPointTransform::new(DatapathPrecision::new(cut, 0));
            let q = roundtrip_psnr(&frame, &exact, &dec);
            assert!(q <= last + 0.5, "PSNR should not improve with truncation");
            last = q;
        }
        assert!(last < 35.0, "heavy truncation must be visible: {last}");
    }

    #[test]
    fn harder_content_scores_lower_under_truncation() {
        let exact = FixedPointTransform::exact();
        let dec = FixedPointTransform::new(DatapathPrecision::new(11, 0));
        let smooth = roundtrip_psnr(&Sequence::MissAmerica.frame(96, 80, 0), &exact, &dec);
        let busy = roundtrip_psnr(&Sequence::Mobile.frame(96, 80, 0), &exact, &dec);
        assert!(
            smooth > busy,
            "miss ({smooth:.1} dB) should beat mobile ({busy:.1} dB)"
        );
    }

    #[test]
    fn dimensions_preserved_for_non_multiple_of_eight() {
        let frame = Sequence::Suzie.frame(50, 38, 0);
        let exact = FixedPointTransform::exact();
        let encoded = encode_image(&frame, &exact);
        assert_eq!(encoded.dimensions(), (50, 38));
        let decoded = decode_image(&encoded, &exact);
        assert_eq!((decoded.width(), decoded.height()), (50, 38));
        assert!(psnr(&frame, &decoded) > 35.0);
    }

    #[test]
    fn quantized_pipeline_is_codec_grade() {
        use crate::Quantizer;
        let frame = Sequence::Akiyo.frame(64, 48, 0);
        let exact = FixedPointTransform::exact();
        let q = Quantizer::jpeg_quality(75);
        let encoded = encode_image_quantized(&frame, &exact, &q);
        let decoded = decode_image(&encoded, &exact);
        let quality = psnr(&frame, &decoded);
        assert!(
            (30.0..50.0).contains(&quality),
            "codec-grade quality, got {quality:.1} dB"
        );
        // Lossless pipeline is strictly better.
        assert!(quality < roundtrip_psnr(&frame, &exact, &exact));
    }

    #[test]
    fn quantization_hurts_busy_content_more() {
        use crate::Quantizer;
        let exact = FixedPointTransform::exact();
        let q = Quantizer::jpeg_quality(75);
        let score = |seq: Sequence| {
            let frame = seq.frame(96, 80, 0);
            let encoded = encode_image_quantized(&frame, &exact, &q);
            psnr(&frame, &decode_image(&encoded, &exact))
        };
        assert!(score(Sequence::MissAmerica) > score(Sequence::Mobile));
    }

    #[test]
    fn block_count_matches_geometry() {
        let frame = Sequence::Mother.frame(64, 48, 0);
        let encoded = encode_image(&frame, &FixedPointTransform::exact());
        assert_eq!(encoded.blocks().len(), 8 * 6);
    }
}
