//! Fixed-point 8-point DCT-II basis coefficients.

/// Fractional bits of the Q-format coefficients (Q12, the precision typical
/// of hardware DCT implementations).
pub const COEFF_FRACTION_BITS: u32 = 12;

/// Scale factor `2^COEFF_FRACTION_BITS` as a float, for coefficient
/// quantization.
const SCALE: f64 = (1 << COEFF_FRACTION_BITS) as f64;

/// Normalization `c(u)`: `1/√2` for the DC basis, `1` otherwise.
fn normalization(u: usize) -> f64 {
    if u == 0 {
        std::f64::consts::FRAC_1_SQRT_2
    } else {
        1.0
    }
}

/// Forward-DCT coefficient `C[u][x]` in Q12:
/// `(c(u)/2) · cos((2x+1)uπ/16)`.
///
/// # Panics
///
/// Panics if `u` or `x` exceed 7.
///
/// # Examples
///
/// ```
/// use aix_dct::{dct_coefficient, COEFF_FRACTION_BITS};
///
/// // The DC row is flat: c(0)/2 = 1/(2√2).
/// let dc = dct_coefficient(0, 0);
/// assert_eq!(dc, dct_coefficient(0, 7));
/// let expect = (1.0 / (2.0 * 2f64.sqrt()) * f64::from(1 << COEFF_FRACTION_BITS)).round();
/// assert_eq!(f64::from(dc), expect);
/// ```
pub fn dct_coefficient(u: usize, x: usize) -> i32 {
    assert!(u < 8 && x < 8, "8-point basis indices");
    let angle = (2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0;
    (normalization(u) / 2.0 * angle.cos() * SCALE).round() as i32
}

/// Inverse-DCT coefficient in Q12: the transpose of the forward basis,
/// `(c(u)/2) · cos((2x+1)uπ/16)` read as a function of output sample `x`.
///
/// # Panics
///
/// Panics if `x` or `u` exceed 7.
pub fn idct_coefficient(x: usize, u: usize) -> i32 {
    dct_coefficient(u, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficients_bounded_by_half() {
        // |c(u)/2 · cos| ≤ 1/2 ⇒ |Q12 value| ≤ 2048.
        for u in 0..8 {
            for x in 0..8 {
                assert!(dct_coefficient(u, x).abs() <= (1 << (COEFF_FRACTION_BITS - 1)));
            }
        }
    }

    #[test]
    fn rows_are_orthogonal() {
        // Σx C[u][x]·C[v][x] ≈ 0 for u ≠ v in the exact basis; the Q12
        // version must be near-zero relative to the row norm.
        for u in 0..8 {
            for v in 0..8 {
                let dot: i64 = (0..8)
                    .map(|x| i64::from(dct_coefficient(u, x)) * i64::from(dct_coefficient(v, x)))
                    .sum();
                if u == v {
                    assert!(dot > 0);
                } else {
                    assert!(
                        dot.abs() < 1 << 13,
                        "rows {u},{v} not orthogonal: {dot}"
                    );
                }
            }
        }
    }

    #[test]
    fn row_norms_match_orthonormal_basis() {
        // The (c(u)/2)-scaled 8-point basis is orthonormal: each row has
        // squared norm 1 ⇒ Q12² after scaling.
        let expect = 1i64 << (2 * COEFF_FRACTION_BITS);
        for u in 0..8 {
            let norm: i64 = (0..8)
                .map(|x| i64::from(dct_coefficient(u, x)).pow(2))
                .sum();
            let rel = (norm - expect).abs() as f64 / expect as f64;
            assert!(rel < 0.01, "row {u} norm {norm} vs {expect}");
        }
    }

    #[test]
    fn transpose_relation() {
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(idct_coefficient(a, b), dct_coefficient(b, a));
            }
        }
    }

    #[test]
    #[should_panic(expected = "8-point")]
    fn out_of_range_panics() {
        let _ = dct_coefficient(8, 0);
    }
}
