//! Shared row–column transform engine, generic over the MAC implementation.
//!
//! Both the bit-accurate RTL model ([`crate::FixedPointTransform`]) and the
//! gate-level timed pipeline ([`crate::GateLevelPipeline`]) execute the
//! same 64-MAC-per-1-D-transform schedule; only the multiply-accumulate
//! step differs (pure arithmetic vs event-driven netlist simulation).

use crate::{dct_coefficient, idct_coefficient, COEFF_FRACTION_BITS};

/// Fractional *guard bits* of the datapath: operands are left-shifted by
/// this amount before entering the MAC, so the first `OPERAND_SHIFT`
/// truncated LSBs only consume fixed-point headroom. This is the
/// left-aligned operand convention of wide datapaths — it is why a 32-bit
/// hardware multiplier can lose a few LSBs with only mild quality impact,
/// as the paper's 3-bit headline configuration shows.
pub const OPERAND_SHIFT: u32 = 6;

/// Total fractional bits accumulated over one 1-D pass
/// (Q12 coefficients plus both operand guard shifts).
const PASS_FRACTION_BITS: u32 = COEFF_FRACTION_BITS + 2 * OPERAND_SHIFT;

/// A multiply-accumulate step: `mac(acc, coeff, sample) = acc + coeff × sample`
/// under whatever precision/timing model the implementor provides.
pub(crate) trait MacUnit {
    fn mac(&mut self, acc: i64, coeff: i64, sample: i64) -> i64;
}

impl<F: FnMut(i64, i64, i64) -> i64> MacUnit for F {
    fn mac(&mut self, acc: i64, coeff: i64, sample: i64) -> i64 {
        self(acc, coeff, sample)
    }
}

/// A lane-batched multiply-accumulate: `accs[l] += coeff × samples[l]`
/// for every lane, in place, under the implementor's model. The
/// coefficient is lane-invariant because the transform schedule applies
/// the same tap to every block of a batch — which is exactly what lets a
/// lane-parallel timed netlist run all blocks per evaluation.
pub(crate) trait BatchMacUnit {
    fn mac_batch(&mut self, accs: &mut [i64], coeff: i64, samples: &[i64]);
}

impl<F: FnMut(&mut [i64], i64, &[i64])> BatchMacUnit for F {
    fn mac_batch(&mut self, accs: &mut [i64], coeff: i64, samples: &[i64]) {
        self(accs, coeff, samples)
    }
}

/// Arithmetic shift with round-to-nearest.
pub(crate) fn round_shift(value: i64, bits: u32) -> i64 {
    (value + (1 << (bits - 1))) >> bits
}

/// 1-D 8-point forward DCT (Q0 in, Q0 out).
pub(crate) fn forward8(mac: &mut impl MacUnit, input: &[i64; 8]) -> [i64; 8] {
    let mut out = [0i64; 8];
    for (u, slot) in out.iter_mut().enumerate() {
        let mut acc = 0i64;
        for (x, &sample) in input.iter().enumerate() {
            acc = mac.mac(
                acc,
                i64::from(dct_coefficient(u, x)) << OPERAND_SHIFT,
                sample << OPERAND_SHIFT,
            );
        }
        *slot = round_shift(acc, PASS_FRACTION_BITS);
    }
    out
}

/// 1-D 8-point inverse DCT (Q0 in, Q0 out).
pub(crate) fn inverse8(mac: &mut impl MacUnit, input: &[i64; 8]) -> [i64; 8] {
    let mut out = [0i64; 8];
    for (x, slot) in out.iter_mut().enumerate() {
        let mut acc = 0i64;
        for (u, &coeff_in) in input.iter().enumerate() {
            acc = mac.mac(
                acc,
                i64::from(idct_coefficient(x, u)) << OPERAND_SHIFT,
                coeff_in << OPERAND_SHIFT,
            );
        }
        *slot = round_shift(acc, PASS_FRACTION_BITS);
    }
    out
}

/// Row–column application of the 1-D transform over an 8×8 block.
pub(crate) fn two_d(mac: &mut impl MacUnit, block: &mut [i64; 64], forward: bool) {
    for row in 0..8 {
        let mut line = [0i64; 8];
        line.copy_from_slice(&block[row * 8..row * 8 + 8]);
        let t = if forward {
            forward8(mac, &line)
        } else {
            inverse8(mac, &line)
        };
        block[row * 8..row * 8 + 8].copy_from_slice(&t);
    }
    for col in 0..8 {
        let mut line = [0i64; 8];
        for row in 0..8 {
            line[row] = block[row * 8 + col];
        }
        let t = if forward {
            forward8(mac, &line)
        } else {
            inverse8(mac, &line)
        };
        for row in 0..8 {
            block[row * 8 + col] = t[row];
        }
    }
}

/// Lane-batched 1-D 8-point transform: `lines[l]` is lane *l*'s row or
/// column. Per lane the MAC schedule (tap order, operand shifts, rounding)
/// is identical to [`forward8`]/[`inverse8`], so a batch MAC that models
/// each lane independently reproduces the scalar per-block arithmetic.
pub(crate) fn transform8_batch(
    mac: &mut impl BatchMacUnit,
    lines: &[[i64; 8]],
    forward: bool,
) -> Vec<[i64; 8]> {
    let lanes = lines.len();
    let mut out = vec![[0i64; 8]; lanes];
    let mut accs = vec![0i64; lanes];
    let mut samples = vec![0i64; lanes];
    for u in 0..8 {
        accs.fill(0);
        for x in 0..8 {
            let coeff = if forward {
                dct_coefficient(u, x)
            } else {
                idct_coefficient(u, x)
            };
            for (sample, line) in samples.iter_mut().zip(lines) {
                *sample = line[x] << OPERAND_SHIFT;
            }
            mac.mac_batch(&mut accs, i64::from(coeff) << OPERAND_SHIFT, &samples);
        }
        for (lane_out, &acc) in out.iter_mut().zip(&accs) {
            lane_out[u] = round_shift(acc, PASS_FRACTION_BITS);
        }
    }
    out
}

/// Lane-batched row–column transform over up to 64 independent 8×8 blocks.
pub(crate) fn two_d_batch(mac: &mut impl BatchMacUnit, blocks: &mut [[i64; 64]], forward: bool) {
    let lanes = blocks.len();
    let mut lines = vec![[0i64; 8]; lanes];
    for row in 0..8 {
        for (line, block) in lines.iter_mut().zip(blocks.iter()) {
            line.copy_from_slice(&block[row * 8..row * 8 + 8]);
        }
        let t = transform8_batch(mac, &lines, forward);
        for (block, out) in blocks.iter_mut().zip(&t) {
            block[row * 8..row * 8 + 8].copy_from_slice(out);
        }
    }
    for col in 0..8 {
        for (line, block) in lines.iter_mut().zip(blocks.iter()) {
            for row in 0..8 {
                line[row] = block[row * 8 + col];
            }
        }
        let t = transform8_batch(mac, &lines, forward);
        for (block, out) in blocks.iter_mut().zip(&t) {
            for row in 0..8 {
                block[row * 8 + col] = out[row];
            }
        }
    }
}

/// Lane-batched [`forward_block`]: one pixel block per lane.
pub(crate) fn forward_block_batch(
    mac: &mut impl BatchMacUnit,
    blocks: &[[u8; 64]],
) -> Vec<[i32; 64]> {
    let mut work: Vec<[i64; 64]> = blocks
        .iter()
        .map(|block| {
            let mut w = [0i64; 64];
            for (slot, &p) in w.iter_mut().zip(block) {
                *slot = i64::from(p) - 128;
            }
            w
        })
        .collect();
    two_d_batch(mac, &mut work, true);
    work.iter()
        .map(|w| {
            let mut out = [0i32; 64];
            for (slot, &v) in out.iter_mut().zip(w) {
                *slot = v as i32;
            }
            out
        })
        .collect()
}

/// Lane-batched [`inverse_block`]: one coefficient block per lane.
pub(crate) fn inverse_block_batch(
    mac: &mut impl BatchMacUnit,
    coeff_blocks: &[[i32; 64]],
) -> Vec<[u8; 64]> {
    let mut work: Vec<[i64; 64]> = coeff_blocks
        .iter()
        .map(|coeffs| {
            let mut w = [0i64; 64];
            for (slot, &c) in w.iter_mut().zip(coeffs) {
                *slot = i64::from(c);
            }
            w
        })
        .collect();
    two_d_batch(mac, &mut work, false);
    work.iter()
        .map(|w| {
            let mut out = [0u8; 64];
            for (slot, &v) in out.iter_mut().zip(w) {
                *slot = (v + 128).clamp(0, 255) as u8;
            }
            out
        })
        .collect()
}

/// 2-D forward DCT of one pixel block (level-shifted by −128).
pub(crate) fn forward_block(mac: &mut impl MacUnit, block: &[u8; 64]) -> [i32; 64] {
    let mut work = [0i64; 64];
    for (slot, &p) in work.iter_mut().zip(block) {
        *slot = i64::from(p) - 128;
    }
    two_d(mac, &mut work, true);
    let mut out = [0i32; 64];
    for (slot, &v) in out.iter_mut().zip(&work) {
        *slot = v as i32;
    }
    out
}

/// 2-D inverse DCT of one coefficient block back to clamped pixels.
pub(crate) fn inverse_block(mac: &mut impl MacUnit, coeffs: &[i32; 64]) -> [u8; 64] {
    let mut work = [0i64; 64];
    for (slot, &c) in work.iter_mut().zip(coeffs) {
        *slot = i64::from(c);
    }
    two_d(mac, &mut work, false);
    let mut out = [0u8; 64];
    for (slot, &v) in out.iter_mut().zip(&work) {
        *slot = (v + 128).clamp(0, 255) as u8;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_engine_with_exact_closure_roundtrips() {
        let mut exact = |acc: i64, c: i64, s: i64| acc + c * s;
        let mut block = [0u8; 64];
        for (i, slot) in block.iter_mut().enumerate() {
            *slot = ((i * 41 + 3) % 256) as u8;
        }
        let coeffs = forward_block(&mut exact, &block);
        let back = inverse_block(&mut exact, &coeffs);
        for (&a, &b) in block.iter().zip(&back) {
            assert!((i32::from(a) - i32::from(b)).abs() <= 2);
        }
    }

    #[test]
    fn batch_engine_matches_scalar_per_lane() {
        let mut exact = |acc: i64, c: i64, s: i64| acc + c * s;
        let mut exact_batch = |accs: &mut [i64], c: i64, samples: &[i64]| {
            for (a, &s) in accs.iter_mut().zip(samples) {
                *a += c * s;
            }
        };
        let blocks: Vec<[u8; 64]> = (0..5u64)
            .map(|b| {
                let mut block = [0u8; 64];
                for (i, slot) in block.iter_mut().enumerate() {
                    *slot = ((i as u64 * 37 + b * 91 + 11) % 256) as u8;
                }
                block
            })
            .collect();
        let batch_coeffs = forward_block_batch(&mut exact_batch, &blocks);
        for (lane, block) in blocks.iter().enumerate() {
            assert_eq!(batch_coeffs[lane], forward_block(&mut exact, block), "lane {lane}");
        }
        let batch_pixels = inverse_block_batch(&mut exact_batch, &batch_coeffs);
        for (lane, coeffs) in batch_coeffs.iter().enumerate() {
            assert_eq!(batch_pixels[lane], inverse_block(&mut exact, coeffs), "lane {lane}");
        }
    }

    #[test]
    fn round_shift_rounds_to_nearest() {
        assert_eq!(round_shift(4096, COEFF_FRACTION_BITS), 1);
        assert_eq!(round_shift(2048, COEFF_FRACTION_BITS), 1);
        assert_eq!(round_shift(2047, COEFF_FRACTION_BITS), 0);
        assert_eq!(round_shift(-2048, COEFF_FRACTION_BITS), 0);
        assert_eq!(round_shift(-2049, COEFF_FRACTION_BITS), -1);
    }
}
