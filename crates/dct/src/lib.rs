//! Discrete cosine transform circuits: the error-tolerant multimedia
//! substrate the paper builds its case study on.
//!
//! Three levels of modelling, mirroring the paper's methodology:
//!
//! * [`FixedPointTransform`] — a bit-accurate *RTL model* of the 8×8
//!   row–column DCT/IDCT datapath with per-component precision reduction
//!   ([`DatapathPrecision`]). This is the "functional RTL simulation
//!   taking seconds" that replaces gate-level simulation once
//!   aging-induced errors have been converted into deterministic
//!   approximations.
//! * [`encode_image`] / [`decode_image`] / [`roundtrip_psnr`] — the image
//!   pipeline used for quality evaluation (Fig. 2, Fig. 8b, Fig. 9).
//! * [`GateLevelPipeline`] — the expensive counterpart: every MAC operation
//!   of the IDCT executes on a synthesized gate-level netlist through the
//!   event-driven timed simulator, so *nondeterministic* aging-induced
//!   timing errors corrupt the image exactly as in the paper's
//!   motivational study.
//!
//! # Examples
//!
//! ```
//! use aix_dct::{roundtrip_psnr, DatapathPrecision, FixedPointTransform};
//! use aix_image::Sequence;
//!
//! let frame = Sequence::Akiyo.frame(64, 48, 0);
//! let exact = FixedPointTransform::exact();
//! let q = roundtrip_psnr(&frame, &exact, &exact);
//! assert!(q > 40.0, "exact round trip is near-transparent, got {q}");
//!
//! // Truncation beyond the datapath's guard bits degrades quality.
//! let cut = FixedPointTransform::new(DatapathPrecision::new(12, 0));
//! assert!(roundtrip_psnr(&frame, &exact, &cut) < q);
//! ```

mod coeffs;
mod engine;
mod fixed;
mod gatelevel;
mod pipeline;
mod precision;
mod quant;
mod rate;

pub use coeffs::{dct_coefficient, idct_coefficient, COEFF_FRACTION_BITS};
pub use engine::OPERAND_SHIFT;
pub use fixed::FixedPointTransform;
pub use gatelevel::{GateLevelConfig, GateLevelPipeline};
pub use pipeline::{decode_image, encode_image, encode_image_quantized, roundtrip_psnr, CoefficientImage};
pub use quant::Quantizer;
pub use rate::{estimate_bits_per_pixel, estimate_block_bits, ZIGZAG};
pub use precision::DatapathPrecision;
