//! Deterministic infrastructure fault injection.
//!
//! `aix-verify` injects faults into the *netlist* to measure how observable
//! a guarantee violation would be in silicon. This crate aims the same idea
//! at the *infrastructure*: seeded, reproducible faults inside the
//! synthesis, STA and cache paths of a characterization campaign, so the
//! engine's own failure handling — panic isolation, retry with backoff,
//! quarantine, resume — is itself testable.
//!
//! A [`FaultPlan`] is parsed from the `AIX_FAULT` environment variable (or
//! the `--fault` CLI flag) using a small grammar:
//!
//! ```text
//! AIX_FAULT = spec (";" spec)*
//! spec      = mode [":" param ("," param)*]
//! mode      = "panic" | "io" | "delay" | "shortwrite" | "enospc"
//!           | "stall" | "connrefused"
//! param     = "p=" FLOAT        probability in [0, 1]   (default 1)
//!           | "seed=" INT       decision seed           (default 0)
//!           | "stage=" STAGE    synth | sta | cache | serve | import
//!                               (default: all)
//!           | "ms=" INT         delay duration, ms      (default 10;
//!                               600000 for stall)
//! ```
//!
//! For example `panic:p=0.05,seed=7` panics in roughly 5 % of fault sites,
//! and `io:p=0.5,seed=3,stage=cache;delay:p=0.1,ms=50` combines an I/O
//! fault in the cache path with a scheduling delay everywhere.
//!
//! Whether a fault fires depends **only** on `(seed, stage, site, attempt)`
//! — never on wall-clock, thread scheduling or iteration order — so a run
//! under a given plan is exactly reproducible at any job count, and a retry
//! (which bumps `attempt`) can deterministically succeed where the first
//! attempt was made to fail.

use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;
use std::time::Duration;

/// What an injected fault does at the site it fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Panic, as a buggy or resource-exhausted job would.
    Panic,
    /// Surface an `std::io::Error` (the transient-failure shape: cache I/O,
    /// filesystem hiccups).
    Io,
    /// Sleep for the spec's `ms`, modelling a hung or very slow job; pairs
    /// with the engine's per-job timeout watchdog.
    Delay,
    /// A write that persists only a prefix of its bytes before failing —
    /// the torn-write shape atomic-rename persistence must mask.
    ShortWrite,
    /// A write refused up front, as a full disk (`ENOSPC`) would.
    Enospc,
    /// A peer that accepts the connection (or request) and then never
    /// responds — the wedged-daemon shape hedged requests must mask. At
    /// error-channel sites this parks the thread for the spec's `ms`
    /// (default ten minutes, i.e. "forever" at test timescales).
    Stall,
    /// A connection refused deterministically by seed/probability — the
    /// dead-replica shape failover must mask. Surfaces as an
    /// [`std::io::ErrorKind::ConnectionRefused`] error.
    ConnRefused,
}

impl FaultMode {
    fn token(self) -> &'static str {
        match self {
            FaultMode::Panic => "panic",
            FaultMode::Io => "io",
            FaultMode::Delay => "delay",
            FaultMode::ShortWrite => "shortwrite",
            FaultMode::Enospc => "enospc",
            FaultMode::Stall => "stall",
            FaultMode::ConnRefused => "connrefused",
        }
    }

    /// Whether this mode surfaces as an `std::io::Error` (rather than a
    /// panic or a stall).
    fn is_io(self) -> bool {
        matches!(
            self,
            FaultMode::Io | FaultMode::ShortWrite | FaultMode::Enospc | FaultMode::ConnRefused
        )
    }
}

/// How an injected fault breaks one connection-handling site; returned by
/// [`FaultPlan::connection_fault`] for request paths that can emulate the
/// failure faithfully (park the handler, or drop the connection) instead
/// of merely erroring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionFault {
    /// Accept the connection/request, then never respond: park the handler
    /// for `ms` milliseconds before dropping the connection.
    Stall {
        /// How long the handler parks before the connection is dropped.
        ms: u64,
    },
    /// Refuse the connection outright: drop it without a response.
    Refused,
}

/// How an injected fault corrupts one atomic-write site; returned by
/// [`FaultPlan::write_fault`] for write paths that can emulate the failure
/// faithfully (persist a prefix, then fail) instead of merely erroring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Persist only a prefix of the payload, then fail the write.
    Short,
    /// Fail before writing anything, like a full disk.
    Enospc,
}

/// The infrastructure path a fault site belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStage {
    /// Component synthesis.
    Synth,
    /// Static timing analysis.
    Sta,
    /// The persistent characterization cache (reads and writes).
    Cache,
    /// The `aix serve` daemon's request-handling path.
    Serve,
    /// The netlist import front-end (`aix import` / `--netlist`).
    Import,
}

impl FaultStage {
    /// Stable lower-case token used by the grammar and in site hashes.
    pub fn token(self) -> &'static str {
        match self {
            FaultStage::Synth => "synth",
            FaultStage::Sta => "sta",
            FaultStage::Cache => "cache",
            FaultStage::Serve => "serve",
            FaultStage::Import => "import",
        }
    }
}

impl fmt::Display for FaultStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One parsed fault specification.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// What firing does.
    pub mode: FaultMode,
    /// Probability a site fires, in `[0, 1]`.
    pub probability: f64,
    /// Seed of the per-site decision hash.
    pub seed: u64,
    /// Restrict to one stage; `None` fires on every stage.
    pub stage: Option<FaultStage>,
    /// Sleep duration for [`FaultMode::Delay`], in milliseconds.
    pub delay_ms: u64,
}

impl FaultSpec {
    /// Whether this spec fires at `(stage, site, attempt)`. Pure function
    /// of the spec and its arguments.
    pub fn fires(&self, stage: FaultStage, site: &str, attempt: usize) -> bool {
        if self.stage.is_some_and(|s| s != stage) {
            return false;
        }
        if self.probability <= 0.0 {
            return false;
        }
        if self.probability >= 1.0 {
            return true;
        }
        let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        fnv_eat(&mut hash, self.mode.token().as_bytes());
        fnv_eat(&mut hash, stage.token().as_bytes());
        fnv_eat(&mut hash, site.as_bytes());
        fnv_eat(&mut hash, &(attempt as u64).to_le_bytes());
        // Map the hash to [0, 1) with 20 bits of resolution.
        let unit = (hash >> 44) as f64 / (1u64 << 20) as f64;
        unit < self.probability
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:p={},seed={}", self.mode.token(), self.probability, self.seed)?;
        if let Some(stage) = self.stage {
            write!(f, ",stage={stage}")?;
        }
        if matches!(self.mode, FaultMode::Delay | FaultMode::Stall) {
            write!(f, ",ms={}", self.delay_ms)?;
        }
        Ok(())
    }
}

/// A parsed `AIX_FAULT` value: the fault specs to evaluate at every site.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

/// Error produced by parsing a malformed fault specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFaultError {
    what: String,
}

impl ParseFaultError {
    fn new(what: impl Into<String>) -> Self {
        Self { what: what.into() }
    }
}

impl fmt::Display for ParseFaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: expected `mode[:p=F,seed=N,stage=synth|sta|cache|serve|import,ms=N]` \
             with mode panic|io|delay|shortwrite|enospc|stall|connrefused, `;`-separated",
            self.what
        )
    }
}

impl std::error::Error for ParseFaultError {}

impl FromStr for FaultPlan {
    type Err = ParseFaultError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut specs = Vec::new();
        for part in s.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (mode_token, params) = match part.split_once(':') {
                Some((m, p)) => (m.trim(), Some(p)),
                None => (part, None),
            };
            let mode = match mode_token {
                "panic" => FaultMode::Panic,
                "io" => FaultMode::Io,
                "delay" => FaultMode::Delay,
                "shortwrite" => FaultMode::ShortWrite,
                "enospc" => FaultMode::Enospc,
                "stall" => FaultMode::Stall,
                "connrefused" => FaultMode::ConnRefused,
                other => return Err(ParseFaultError::new(format!("unknown fault mode `{other}`"))),
            };
            let mut spec = FaultSpec {
                mode,
                probability: 1.0,
                seed: 0,
                stage: None,
                // A stall models "never responds": default to ten minutes,
                // effectively forever at test timescales.
                delay_ms: if mode == FaultMode::Stall { 600_000 } else { 10 },
            };
            for param in params.into_iter().flat_map(|p| p.split(',')) {
                let param = param.trim();
                if param.is_empty() {
                    continue;
                }
                let Some((key, value)) = param.split_once('=') else {
                    return Err(ParseFaultError::new(format!("malformed parameter `{param}`")));
                };
                match key.trim() {
                    "p" => {
                        let p: f64 = value.parse().map_err(|_| {
                            ParseFaultError::new(format!("bad probability `{value}`"))
                        })?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(ParseFaultError::new(format!(
                                "probability `{value}` outside [0, 1]"
                            )));
                        }
                        spec.probability = p;
                    }
                    "seed" => {
                        spec.seed = value
                            .parse()
                            .map_err(|_| ParseFaultError::new(format!("bad seed `{value}`")))?;
                    }
                    "stage" => {
                        spec.stage = Some(match value.trim() {
                            "synth" => FaultStage::Synth,
                            "sta" => FaultStage::Sta,
                            "cache" => FaultStage::Cache,
                            "serve" => FaultStage::Serve,
                            "import" => FaultStage::Import,
                            other => {
                                return Err(ParseFaultError::new(format!(
                                    "unknown stage `{other}`"
                                )))
                            }
                        });
                    }
                    "ms" => {
                        spec.delay_ms = value
                            .parse()
                            .map_err(|_| ParseFaultError::new(format!("bad delay `{value}`")))?;
                    }
                    other => {
                        return Err(ParseFaultError::new(format!("unknown parameter `{other}`")))
                    }
                }
            }
            specs.push(spec);
        }
        if specs.is_empty() {
            return Err(ParseFaultError::new("empty fault specification"));
        }
        Ok(FaultPlan { specs })
    }
}

/// Re-renders every spec, `;`-separated, in a form `FromStr` reparses.
impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (index, spec) in self.specs.iter().enumerate() {
            if index > 0 {
                f.write_str(";")?;
            }
            write!(f, "{spec}")?;
        }
        Ok(())
    }
}

impl FaultPlan {
    /// The parsed specs, in declaration order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Evaluates every spec at `(stage, site, attempt)`. Delay faults sleep
    /// and evaluation continues; the first firing panic fault panics with a
    /// message naming the site; the first firing I/O fault returns an
    /// injected [`std::io::Error`].
    ///
    /// # Errors
    ///
    /// Returns the injected error when an `io` spec fires.
    ///
    /// # Panics
    ///
    /// Panics when a `panic` spec fires — by design; callers isolate jobs
    /// with `catch_unwind`.
    pub fn check(
        &self,
        stage: FaultStage,
        site: &str,
        attempt: usize,
    ) -> Result<(), std::io::Error> {
        for spec in &self.specs {
            if !spec.fires(stage, site, attempt) {
                continue;
            }
            match spec.mode {
                FaultMode::Delay | FaultMode::Stall => {
                    std::thread::sleep(Duration::from_millis(spec.delay_ms));
                }
                FaultMode::Panic => panic!(
                    "injected fault: panic at {stage} site `{site}` (attempt {attempt})"
                ),
                FaultMode::Io => {
                    return Err(std::io::Error::other(format!(
                        "injected fault: I/O error at {stage} site `{site}` (attempt {attempt})"
                    )))
                }
                FaultMode::ShortWrite => {
                    return Err(std::io::Error::other(format!(
                        "injected fault: short write at {stage} site `{site}` (attempt {attempt})"
                    )))
                }
                FaultMode::Enospc => {
                    return Err(std::io::Error::other(format!(
                        "injected fault: no space left at {stage} site `{site}` \
                         (attempt {attempt})"
                    )))
                }
                FaultMode::ConnRefused => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::ConnectionRefused,
                        format!(
                            "injected fault: connection refused at {stage} site `{site}` \
                             (attempt {attempt})"
                        ),
                    ))
                }
            }
        }
        Ok(())
    }

    /// Like [`check`](Self::check), for call sites with no error channel
    /// (deep inside synthesis): honours panic and delay specs, ignores
    /// the I/O-flavoured specs.
    pub fn probe(&self, stage: FaultStage, site: &str, attempt: usize) {
        for spec in &self.specs {
            if spec.mode.is_io() || !spec.fires(stage, site, attempt) {
                continue;
            }
            match spec.mode {
                FaultMode::Delay | FaultMode::Stall => {
                    std::thread::sleep(Duration::from_millis(spec.delay_ms));
                }
                FaultMode::Panic => panic!(
                    "injected fault: panic at {stage} site `{site}` (attempt {attempt})"
                ),
                FaultMode::Io
                | FaultMode::ShortWrite
                | FaultMode::Enospc
                | FaultMode::ConnRefused => {
                    unreachable!("filtered above")
                }
            }
        }
    }

    /// The connection breakage, if any, to apply at a request-handling
    /// site: the first firing `stall`/`connrefused` spec decides.
    /// Connection-level paths (the serve daemon's per-request handler) use
    /// this to emulate the failure faithfully — park the handler without
    /// responding, or drop the connection outright — rather than sending a
    /// well-formed error response the client could act on.
    pub fn connection_fault(
        &self,
        stage: FaultStage,
        site: &str,
        attempt: usize,
    ) -> Option<ConnectionFault> {
        self.specs.iter().find_map(|spec| {
            let fault = match spec.mode {
                FaultMode::Stall => ConnectionFault::Stall { ms: spec.delay_ms },
                FaultMode::ConnRefused => ConnectionFault::Refused,
                _ => return None,
            };
            spec.fires(stage, site, attempt).then_some(fault)
        })
    }

    /// The write corruption, if any, to apply at an atomic-write site:
    /// the first firing `shortwrite`/`enospc` spec decides. Write paths
    /// use this to emulate the failure faithfully (persist a prefix of the
    /// temp file, or refuse up front) rather than merely returning an
    /// error after a clean write.
    pub fn write_fault(&self, stage: FaultStage, site: &str, attempt: usize) -> Option<WriteFault> {
        self.specs.iter().find_map(|spec| {
            let fault = match spec.mode {
                FaultMode::ShortWrite => WriteFault::Short,
                FaultMode::Enospc => WriteFault::Enospc,
                _ => return None,
            };
            spec.fires(stage, site, attempt).then_some(fault)
        })
    }
}

/// The process-wide plan parsed from `AIX_FAULT`, if any. Parsed once; a
/// malformed value is reported to stderr once and ignored here — the `aix`
/// CLI additionally validates `AIX_FAULT` strictly at startup and turns the
/// same malformed value into a proper diagnostic.
pub fn env_plan() -> Option<&'static FaultPlan> {
    static PLAN: OnceLock<Option<FaultPlan>> = OnceLock::new();
    PLAN.get_or_init(|| {
        let value = std::env::var("AIX_FAULT").ok()?;
        match value.parse::<FaultPlan>() {
            Ok(plan) => Some(plan),
            Err(e) => {
                aix_obs::warn!("ignoring malformed AIX_FAULT `{value}`: {e}");
                None
            }
        }
    })
    .as_ref()
}

/// Probes the `AIX_FAULT` plan (panic/delay modes only) at a site with no
/// error channel. A no-op when `AIX_FAULT` is unset.
pub fn env_probe(stage: FaultStage, site: &str) {
    if let Some(plan) = env_plan() {
        plan.probe(stage, site, 0);
    }
}

fn fnv_eat(hash: &mut u64, bytes: &[u8]) {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    for &byte in bytes {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_roundtrips_and_rejects_garbage() {
        let plan: FaultPlan = "panic:p=0.05,seed=7".parse().unwrap();
        assert_eq!(plan.specs().len(), 1);
        assert_eq!(plan.specs()[0].mode, FaultMode::Panic);
        assert!((plan.specs()[0].probability - 0.05).abs() < 1e-12);
        assert_eq!(plan.specs()[0].seed, 7);

        let multi: FaultPlan = "io:p=0.5,seed=3,stage=cache;delay:ms=50,stage=sta"
            .parse()
            .unwrap();
        assert_eq!(multi.specs().len(), 2);
        assert_eq!(multi.specs()[0].stage, Some(FaultStage::Cache));
        assert_eq!(multi.specs()[1].mode, FaultMode::Delay);
        assert_eq!(multi.specs()[1].delay_ms, 50);

        // Display re-renders a parseable form.
        let again: FaultPlan = multi.to_string().parse().unwrap();
        assert_eq!(again, multi);

        for bad in [
            "",
            "explode",
            "panic:p=1.5",
            "panic:p=nope",
            "io:stage=everywhere",
            "delay:ms=soon",
            "panic:frequency=1",
            "panic:p",
        ] {
            assert!(bad.parse::<FaultPlan>().is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn decisions_are_deterministic_and_probability_scaled() {
        let spec = FaultSpec {
            mode: FaultMode::Panic,
            probability: 0.3,
            seed: 11,
            stage: None,
            delay_ms: 0,
        };
        let mut fired = 0usize;
        for site in 0..1000 {
            let name = format!("synth adder-w16-p{site}");
            let a = spec.fires(FaultStage::Synth, &name, 1);
            let b = spec.fires(FaultStage::Synth, &name, 1);
            assert_eq!(a, b, "same inputs, same decision");
            fired += usize::from(a);
        }
        // 30 % nominal over 1000 deterministic sites; allow a generous band.
        assert!((200..=400).contains(&fired), "fired {fired}/1000");

        // Different seeds make different decisions somewhere.
        let other = FaultSpec { seed: 12, ..spec };
        assert!((0..1000).any(|site| {
            let name = format!("synth adder-w16-p{site}");
            spec.fires(FaultStage::Synth, &name, 1) != other.fires(FaultStage::Synth, &name, 1)
        }));

        // Attempts decorrelate: a site that fires on attempt 1 does not
        // fire on every retry.
        let firing: Vec<String> = (0..1000)
            .map(|site| format!("synth adder-w16-p{site}"))
            .filter(|name| spec.fires(FaultStage::Synth, name, 1))
            .collect();
        assert!(firing
            .iter()
            .any(|name| !spec.fires(FaultStage::Synth, name, 2)));
    }

    #[test]
    fn stage_filter_and_edge_probabilities() {
        let spec = FaultSpec {
            mode: FaultMode::Io,
            probability: 1.0,
            seed: 0,
            stage: Some(FaultStage::Cache),
            delay_ms: 0,
        };
        assert!(spec.fires(FaultStage::Cache, "x", 1));
        assert!(!spec.fires(FaultStage::Synth, "x", 1));
        let never = FaultSpec {
            probability: 0.0,
            stage: None,
            ..spec
        };
        assert!(!never.fires(FaultStage::Cache, "x", 1));
    }

    #[test]
    fn check_surfaces_io_and_probe_ignores_it() {
        let plan: FaultPlan = "io:p=1".parse().unwrap();
        let err = plan.check(FaultStage::Synth, "site", 1).unwrap_err();
        assert!(err.to_string().contains("injected fault"));
        plan.probe(FaultStage::Synth, "site", 1); // must not panic or error
    }

    #[test]
    fn write_fault_modes_parse_probe_and_fire() {
        let plan: FaultPlan = "shortwrite:p=1,stage=cache;enospc:seed=4,stage=serve"
            .parse()
            .unwrap();
        assert_eq!(plan.specs()[0].mode, FaultMode::ShortWrite);
        assert_eq!(plan.specs()[1].mode, FaultMode::Enospc);
        assert_eq!(plan.specs()[1].stage, Some(FaultStage::Serve));
        let again: FaultPlan = plan.to_string().parse().unwrap();
        assert_eq!(again, plan);

        // write_fault() reports the emulation shape; stage filters apply.
        assert_eq!(
            plan.write_fault(FaultStage::Cache, "lib.txt", 1),
            Some(WriteFault::Short)
        );
        assert_eq!(
            plan.write_fault(FaultStage::Serve, "journal", 1),
            Some(WriteFault::Enospc)
        );
        assert_eq!(plan.write_fault(FaultStage::Synth, "x", 1), None);

        // At guard sites the same specs surface as transient I/O errors,
        // and probe (no error channel) ignores them.
        let err = plan.check(FaultStage::Cache, "lib.txt", 1).unwrap_err();
        assert!(err.to_string().contains("short write"));
        let err = plan.check(FaultStage::Serve, "journal", 1).unwrap_err();
        assert!(err.to_string().contains("no space left"));
        plan.probe(FaultStage::Cache, "lib.txt", 1);
        plan.probe(FaultStage::Serve, "journal", 1);

        // An io-only plan offers no write emulation.
        let io: FaultPlan = "io:p=1".parse().unwrap();
        assert_eq!(io.write_fault(FaultStage::Cache, "x", 1), None);
    }

    #[test]
    fn serve_stage_fires_independently_of_batch_stages() {
        let spec = FaultSpec {
            mode: FaultMode::Panic,
            probability: 1.0,
            seed: 0,
            stage: Some(FaultStage::Serve),
            delay_ms: 0,
        };
        assert!(spec.fires(FaultStage::Serve, "req", 1));
        for stage in [FaultStage::Synth, FaultStage::Sta, FaultStage::Cache] {
            assert!(!spec.fires(stage, "req", 1));
        }
    }

    #[test]
    fn import_stage_parses_and_fires_independently() {
        let plan: FaultPlan = "panic:p=1,stage=import".parse().unwrap();
        assert_eq!(plan.specs()[0].stage, Some(FaultStage::Import));
        let again: FaultPlan = plan.to_string().parse().unwrap();
        assert_eq!(again, plan);
        let spec = &plan.specs()[0];
        assert!(spec.fires(FaultStage::Import, "adder.v", 0));
        for stage in [
            FaultStage::Synth,
            FaultStage::Sta,
            FaultStage::Cache,
            FaultStage::Serve,
        ] {
            assert!(!spec.fires(stage, "adder.v", 0));
        }
    }

    #[test]
    fn connection_fault_modes_parse_and_fire() {
        let plan: FaultPlan = "stall:p=1,stage=serve;connrefused:seed=9,stage=serve"
            .parse()
            .unwrap();
        assert_eq!(plan.specs()[0].mode, FaultMode::Stall);
        // A stall with no explicit ms wedges effectively forever.
        assert_eq!(plan.specs()[0].delay_ms, 600_000);
        assert_eq!(plan.specs()[1].mode, FaultMode::ConnRefused);
        let again: FaultPlan = plan.to_string().parse().unwrap();
        assert_eq!(again, plan);

        // connection_fault() reports the breakage shape; stage filters apply.
        assert_eq!(
            plan.connection_fault(FaultStage::Serve, "req-1", 1),
            Some(ConnectionFault::Stall { ms: 600_000 })
        );
        assert_eq!(plan.connection_fault(FaultStage::Synth, "req-1", 1), None);

        let refuse: FaultPlan = "connrefused:p=1,stage=serve".parse().unwrap();
        assert_eq!(
            refuse.connection_fault(FaultStage::Serve, "conn", 1),
            Some(ConnectionFault::Refused)
        );
        // At guard sites connrefused surfaces as a refused-connection error;
        // probe (no error channel) ignores it like other io-shaped faults.
        let err = refuse.check(FaultStage::Serve, "conn", 1).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
        refuse.probe(FaultStage::Serve, "conn", 1);

        // An io-only plan offers no connection breakage.
        let io: FaultPlan = "io:p=1".parse().unwrap();
        assert_eq!(io.connection_fault(FaultStage::Serve, "x", 1), None);
    }

    #[test]
    fn stall_short_ms_sleeps_then_returns() {
        // A short explicit stall lets check() exercise the sleep path
        // without wedging the test suite.
        let plan: FaultPlan = "stall:p=1,ms=5,stage=serve".parse().unwrap();
        let start = std::time::Instant::now();
        assert!(plan.check(FaultStage::Serve, "req", 1).is_ok());
        assert!(start.elapsed() >= Duration::from_millis(5));
        assert_eq!(
            plan.connection_fault(FaultStage::Serve, "req", 1),
            Some(ConnectionFault::Stall { ms: 5 })
        );
    }

    #[test]
    fn check_panics_on_panic_spec() {
        let plan: FaultPlan = "panic:p=1,stage=sta".parse().unwrap();
        assert!(plan.check(FaultStage::Synth, "site", 1).is_ok());
        let caught = std::panic::catch_unwind(|| {
            let _ = plan.check(FaultStage::Sta, "site", 1);
        });
        assert!(caught.is_err());
    }
}
