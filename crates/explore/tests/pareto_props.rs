//! Property tests for the Pareto front: for *any* set of scores, the front
//! returns no dominated point, and its contents (and order) are invariant
//! under the insertion order. Together with the search's own byte-identity
//! tests (jobs=1 vs N, cold vs warm cache) this pins the determinism
//! contract the CLI and CI rely on.

use aix_core::ComponentKind;
use aix_explore::{Candidate, FrontPoint, ParetoFront, Score};
use proptest::prelude::*;

/// Builds a labelled point from a raw (error, delay, gates) triple; the
/// precision index keeps candidate labels distinct.
fn point(index: usize, err: f64, delay: f64, gates: usize) -> FrontPoint {
    FrontPoint {
        candidate: Candidate::truncated(ComponentKind::Adder, 16, (index % 15) + 1)
            .expect("in-range precision"),
        score: Score {
            mean_abs_error: err,
            max_abs_error: err * 2.0,
            error_rate: 0.1,
            aged_delay_ps: delay,
            slack_ps: 1000.0 - delay,
            gate_count: gates,
        },
    }
}

fn front_labels(points: &[FrontPoint]) -> Vec<(String, u64)> {
    // Pair the label with the error bits so identical labels with different
    // scores (same precision index) stay distinguishable.
    points
        .iter()
        .map(|p| (p.candidate.label(), p.score.mean_abs_error.to_bits()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No returned point is dominated by another returned point.
    #[test]
    fn front_never_returns_a_dominated_point(
        raw in proptest::collection::vec((0.0f64..1e6, 0.0f64..1e4, 1usize..5000), 1..24)
    ) {
        let mut front = ParetoFront::new();
        for (i, &(err, delay, gates)) in raw.iter().enumerate() {
            front.insert(point(i, err, delay, gates));
        }
        for a in front.points() {
            for b in front.points() {
                prop_assert!(
                    !a.score.dominates(&b.score),
                    "front returned a dominated pair"
                );
            }
        }
        prop_assert!(!front.is_empty(), "at least one point always survives");
    }

    /// The front's contents and order are a pure function of the inserted
    /// *set*: any rotation of the insertion order yields the same front.
    #[test]
    fn front_is_insertion_order_invariant(
        raw in proptest::collection::vec((0.0f64..1e6, 0.0f64..1e4, 1usize..5000), 1..16),
        rotation in 0usize..16,
    ) {
        let points: Vec<FrontPoint> = raw
            .iter()
            .enumerate()
            .map(|(i, &(err, delay, gates))| point(i, err, delay, gates))
            .collect();
        let mut in_order = ParetoFront::new();
        for p in &points {
            in_order.insert(p.clone());
        }
        let mut rotated = ParetoFront::new();
        for i in 0..points.len() {
            rotated.insert(points[(i + rotation) % points.len()].clone());
        }
        let mut reversed = ParetoFront::new();
        for p in points.iter().rev() {
            reversed.insert(p.clone());
        }
        prop_assert_eq!(front_labels(in_order.points()), front_labels(rotated.points()));
        prop_assert_eq!(front_labels(in_order.points()), front_labels(reversed.points()));
    }

    /// Every insertion report is honest: `true` means the point is now on
    /// the front, `false` means it is dominated by (or identical to) a
    /// surviving point.
    #[test]
    fn insertion_reports_match_membership(
        raw in proptest::collection::vec((0.0f64..1e3, 0.0f64..1e3, 1usize..100), 1..12)
    ) {
        let mut front = ParetoFront::new();
        for (i, &(err, delay, gates)) in raw.iter().enumerate() {
            let p = point(i, err, delay, gates);
            let joined = front.insert(p.clone());
            let present = front
                .points()
                .iter()
                .any(|q| q.score == p.score && q.candidate.label() == p.candidate.label());
            if joined {
                prop_assert!(present, "accepted point must be on the front");
            } else {
                let covered = front
                    .points()
                    .iter()
                    .any(|q| q.score.dominates(&p.score) || q.score == p.score);
                prop_assert!(covered, "rejected point must be dominated or duplicate");
            }
        }
    }
}
