//! The Pareto front over (error, aged delay, gate count).
//!
//! All three objectives are minimized; aged *slack* (reported alongside) is
//! the clock minus the aged delay, so minimizing delay maximizes slack. The
//! front keeps a canonical sort order, which makes its contents a pure
//! function of the *set* of inserted points — invariant under insertion
//! order, job count and cache state.

use crate::candidate::Candidate;

/// A candidate's full evaluation: error statistics from functional
/// simulation, aged timing, and post-optimization size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Score {
    /// Mean absolute output error against the exact arithmetic reference.
    pub mean_abs_error: f64,
    /// Largest absolute output error observed.
    pub max_abs_error: f64,
    /// Fraction of stimulus vectors with any output error.
    pub error_rate: f64,
    /// Critical-path delay under the scenario's aged gate delays, ps.
    pub aged_delay_ps: f64,
    /// `clock_ps − aged_delay_ps`; the clock is the exact component's own
    /// aged delay, so the exact baseline sits at zero slack.
    pub slack_ps: f64,
    /// Gate count after synthesis optimization.
    pub gate_count: usize,
}

impl Score {
    /// Whether this score dominates `other`: no objective worse, at least
    /// one strictly better.
    pub fn dominates(&self, other: &Score) -> bool {
        let no_worse = self.mean_abs_error <= other.mean_abs_error
            && self.aged_delay_ps <= other.aged_delay_ps
            && self.gate_count <= other.gate_count;
        let strictly_better = self.mean_abs_error < other.mean_abs_error
            || self.aged_delay_ps < other.aged_delay_ps
            || self.gate_count < other.gate_count;
        no_worse && strictly_better
    }
}

/// A non-dominated candidate with its score.
#[derive(Debug, Clone)]
pub struct FrontPoint {
    /// The variant configuration; rebuildable for export.
    pub candidate: Candidate,
    /// Its evaluation.
    pub score: Score,
}

/// The set of non-dominated points, kept in canonical order
/// (error, then delay, then gate count, then label).
#[derive(Debug, Clone, Default)]
pub struct ParetoFront {
    points: Vec<FrontPoint>,
}

impl ParetoFront {
    /// An empty front.
    pub fn new() -> Self {
        ParetoFront::default()
    }

    /// Offers a point. Returns `true` if it joined the front (evicting any
    /// points it dominates); `false` if an existing point dominates it or
    /// scores identically.
    pub fn insert(&mut self, point: FrontPoint) -> bool {
        for existing in &self.points {
            if existing.score.dominates(&point.score) || existing.score == point.score {
                return false;
            }
        }
        self.points.retain(|p| !point.score.dominates(&p.score));
        self.points.push(point);
        self.points.sort_by(|x, y| {
            x.score
                .mean_abs_error
                .total_cmp(&y.score.mean_abs_error)
                .then(x.score.aged_delay_ps.total_cmp(&y.score.aged_delay_ps))
                .then(x.score.gate_count.cmp(&y.score.gate_count))
                .then(x.candidate.label().cmp(&y.candidate.label()))
        });
        true
    }

    /// The non-dominated points in canonical order.
    pub fn points(&self) -> &[FrontPoint] {
        &self.points
    }

    /// Number of points on the front.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aix_core::ComponentKind;

    fn point(err: f64, delay: f64, gates: usize, precision: usize) -> FrontPoint {
        FrontPoint {
            candidate: Candidate::truncated(ComponentKind::Adder, 16, precision).unwrap(),
            score: Score {
                mean_abs_error: err,
                max_abs_error: err * 2.0,
                error_rate: 0.5,
                aged_delay_ps: delay,
                slack_ps: 100.0 - delay,
                gate_count: gates,
            },
        }
    }

    #[test]
    fn dominated_points_are_rejected_and_evicted() {
        let mut front = ParetoFront::new();
        assert!(front.insert(point(1.0, 10.0, 100, 8)));
        // Worse on every axis: rejected.
        assert!(!front.insert(point(2.0, 11.0, 120, 7)));
        // Better on every axis: evicts the original.
        assert!(front.insert(point(0.5, 9.0, 90, 6)));
        assert_eq!(front.len(), 1);
        // Trade-off point: coexists.
        assert!(front.insert(point(0.1, 20.0, 80, 5)));
        assert_eq!(front.len(), 2);
    }

    #[test]
    fn front_is_invariant_under_insertion_order() {
        let points = [
            point(1.0, 10.0, 100, 8),
            point(0.5, 12.0, 110, 9),
            point(2.0, 8.0, 95, 10),
            point(3.0, 30.0, 300, 11),
            point(0.5, 12.0, 105, 12),
        ];
        let mut orders = Vec::new();
        for rotation in 0..points.len() {
            let mut front = ParetoFront::new();
            for i in 0..points.len() {
                front.insert(points[(i + rotation) % points.len()].clone());
            }
            let labels: Vec<String> =
                front.points().iter().map(|p| p.candidate.label()).collect();
            orders.push(labels);
        }
        for order in &orders[1..] {
            assert_eq!(order, &orders[0]);
        }
    }

    #[test]
    fn no_point_dominates_another_on_the_front() {
        let mut front = ParetoFront::new();
        for (i, err) in [5.0, 1.0, 3.0, 0.5, 4.0].iter().enumerate() {
            front.insert(point(*err, 20.0 - *err, 100 + i, (i % 15) + 1));
        }
        for a in front.points() {
            for b in front.points() {
                assert!(!a.score.dominates(&b.score) || std::ptr::eq(a, b));
            }
        }
    }
}
