//! Candidate evaluation: build → optimize → functional error → aged STA.

use crate::candidate::Candidate;
use crate::pareto::Score;
use aix_aging::{AgingModel, AgingScenario};
use aix_cells::Library;
use aix_core::{AixError, ComponentKind};
use aix_netlist::Netlist;
use aix_sim::{reference_outputs, OperandSource, SimEngine, UniformOperands};
use aix_sta::{analyze, NetDelays};
use std::sync::Arc;

/// Everything a candidate evaluation needs besides the candidate itself.
/// Built once per search and shared across the `parallel_map` fan-out.
#[derive(Debug, Clone)]
pub struct ScoreContext {
    /// Cell library candidates are built against.
    pub library: Arc<Library>,
    /// Aging scenario whose delays gate feasibility.
    pub scenario: AgingScenario,
    /// Seeded stimulus vectors, flattened LSB-first per the component's
    /// input order.
    pub stimuli: Arc<Vec<Vec<bool>>>,
    /// Exact arithmetic reference value per stimulus vector.
    pub exact: Arc<Vec<u64>>,
    /// Clock period: the exact component's aged critical-path delay, ps.
    pub clock_ps: f64,
    /// Simulation engine for functional evaluation.
    pub engine: SimEngine,
}

impl ScoreContext {
    /// Generates the seeded stimuli and exact reference values for `kind` at
    /// `width`: `count` uniform operand pairs (a MAC's accumulator is held
    /// at zero, as in the characterization flow).
    pub fn stimuli_for(
        kind: ComponentKind,
        width: usize,
        count: usize,
        seed: u64,
    ) -> (Vec<Vec<bool>>, Vec<u64>) {
        let source = UniformOperands::new(width, seed);
        let stimuli: Vec<Vec<bool>> = match kind {
            ComponentKind::Mac => source.vectors_with_zeros(count, 2 * width).collect(),
            _ => source.vectors(count).collect(),
        };
        let exact = stimuli
            .iter()
            .map(|vector| exact_value(kind, width, vector))
            .collect();
        (stimuli, exact)
    }
}

/// The exact full-precision arithmetic result for one flattened stimulus
/// vector, expressed in the component's output bit order.
fn exact_value(kind: ComponentKind, width: usize, vector: &[bool]) -> u64 {
    let a = bits_to_u64(&vector[..width]);
    let b = bits_to_u64(&vector[width..2 * width]);
    match kind {
        // Outputs are `sum[width]` then `cout`: the full (width+1)-bit sum.
        ComponentKind::Adder => a + b,
        ComponentKind::Multiplier => a.wrapping_mul(b),
        ComponentKind::Mac => {
            let acc = bits_to_u64(&vector[2 * width..]);
            let mask = if width >= 32 { u64::MAX } else { (1u64 << (2 * width)) - 1 };
            a.wrapping_mul(b).wrapping_add(acc) & mask
        }
    }
}

fn bits_to_u64(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &bit)| acc | (u64::from(bit) << i))
}

/// Builds and optimizes a candidate netlist — shared by scoring and the
/// CLI's Verilog export so exported netlists match the scored ones.
///
/// # Errors
///
/// Propagates construction and optimization failures.
pub(crate) fn build_optimized(
    candidate: &Candidate,
    library: &Arc<Library>,
) -> Result<Netlist, AixError> {
    let netlist = candidate.build(library)?;
    Ok(aix_synth::optimize(&netlist)?)
}

/// Evaluates one candidate: functional error on the context's stimuli plus
/// aged critical-path delay and post-optimization gate count.
///
/// Deterministic for a fixed context: errors accumulate in stimulus order,
/// and the packed and scalar engines are bit-identical.
///
/// # Errors
///
/// Propagates build, simulation and STA failures.
pub fn score_candidate(context: &ScoreContext, candidate: &Candidate) -> Result<Score, AixError> {
    let _span = aix_obs::span!(
        aix_obs::names::explore::SPAN_CANDIDATE,
        candidate = candidate.label(),
    );
    let optimized = build_optimized(candidate, &context.library)?;
    let outputs = reference_outputs(&optimized, &context.stimuli, context.engine)?;

    let mut erroneous = 0usize;
    let mut sum_abs = 0.0f64;
    let mut max_abs = 0.0f64;
    for (got_bits, &want) in outputs.iter().zip(context.exact.iter()) {
        let got = bits_to_u64(got_bits);
        if got != want {
            erroneous += 1;
        }
        let abs = got.abs_diff(want) as f64;
        sum_abs += abs;
        if abs > max_abs {
            max_abs = abs;
        }
    }
    let vectors = outputs.len().max(1) as f64;

    let delays = NetDelays::aged(&optimized, &AgingModel::calibrated(), context.scenario);
    let aged_delay_ps = analyze(&optimized, &delays)?.max_delay_ps();

    Ok(Score {
        mean_abs_error: sum_abs / vectors,
        max_abs_error: max_abs,
        error_rate: erroneous as f64 / vectors,
        aged_delay_ps,
        slack_ps: context.clock_ps - aged_delay_ps,
        gate_count: optimized.stats().gate_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aix_aging::Lifetime;

    fn context(kind: ComponentKind, width: usize) -> ScoreContext {
        let library = Arc::new(Library::nangate45_like());
        let (stimuli, exact) = ScoreContext::stimuli_for(kind, width, 256, 42);
        let scenario = AgingScenario::worst_case(Lifetime::YEARS_10);
        let baseline = build_optimized(&Candidate::exact(kind, width), &library).unwrap();
        let delays = NetDelays::aged(&baseline, &AgingModel::calibrated(), scenario);
        let clock_ps = analyze(&baseline, &delays).unwrap().max_delay_ps();
        ScoreContext {
            library,
            scenario,
            stimuli: Arc::new(stimuli),
            exact: Arc::new(exact),
            clock_ps,
            engine: SimEngine::Packed,
        }
    }

    #[test]
    fn exact_candidate_scores_zero_error_and_zero_slack() {
        for kind in ComponentKind::ALL {
            let ctx = context(kind, 8);
            let score = score_candidate(&ctx, &Candidate::exact(kind, 8)).unwrap();
            assert_eq!(score.mean_abs_error, 0.0, "{kind:?}");
            assert_eq!(score.error_rate, 0.0, "{kind:?}");
            assert_eq!(score.slack_ps, 0.0, "{kind:?}");
            assert!(score.gate_count > 0);
        }
    }

    #[test]
    fn truncation_trades_error_for_slack_and_area() {
        let ctx = context(ComponentKind::Adder, 16);
        let truncated = Candidate::truncated(ComponentKind::Adder, 16, 10).unwrap();
        let score = score_candidate(&ctx, &truncated).unwrap();
        assert!(score.mean_abs_error > 0.0);
        assert!(score.slack_ps > 0.0, "truncation should shorten the aged path");
        let exact = score_candidate(&ctx, &Candidate::exact(ComponentKind::Adder, 16)).unwrap();
        assert!(score.gate_count < exact.gate_count);
    }

    #[test]
    fn scoring_is_deterministic() {
        let ctx = context(ComponentKind::Multiplier, 8);
        let candidate = Candidate::truncated(ComponentKind::Multiplier, 8, 6).unwrap();
        let a = score_candidate(&ctx, &candidate).unwrap();
        let b = score_candidate(&ctx, &candidate).unwrap();
        assert_eq!(a, b);
    }
}
