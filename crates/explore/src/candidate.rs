//! Search-space candidates: a tagged union over the `aix-arith` variant
//! generators, with deterministic labels, fingerprints and neighbourhood
//! enumeration for the evolutionary loop.

use aix_arith::{AdderKind, AdderVariant, ComponentSpec, MacVariant, MultiplierKind, MultiplierVariant};
use aix_cells::Library;
use aix_core::ComponentKind;
use aix_netlist::{Netlist, NetlistError};
use std::fmt;
use std::sync::Arc;

/// One point in the approximation design space: a fully parameterized
/// variant of an arithmetic component, buildable as a real netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Candidate {
    /// An [`AdderVariant`].
    Adder(AdderVariant),
    /// A [`MultiplierVariant`].
    Multiplier(MultiplierVariant),
    /// A [`MacVariant`].
    Mac(MacVariant),
}

impl Candidate {
    /// The exact (zero-knob) candidate for `kind` at full `width` —
    /// the origin of the search space, bit-identical to the canonical
    /// generators.
    pub fn exact(kind: ComponentKind, width: usize) -> Candidate {
        let spec = ComponentSpec::full(width);
        match kind {
            ComponentKind::Adder => {
                Candidate::Adder(AdderVariant::exact(AdderKind::CarrySelect, spec))
            }
            ComponentKind::Multiplier => {
                Candidate::Multiplier(MultiplierVariant::exact(MultiplierKind::Wallace, spec))
            }
            ComponentKind::Mac => Candidate::Mac(MacVariant::exact(spec)),
        }
    }

    /// The uniform-truncation candidate at `precision` — the paper's only
    /// approximation, expressed in variant space. Returns `None` for
    /// out-of-range precisions.
    pub fn truncated(kind: ComponentKind, width: usize, precision: usize) -> Option<Candidate> {
        let spec = ComponentSpec::new(width, precision).ok()?;
        Some(match kind {
            ComponentKind::Adder => {
                Candidate::Adder(AdderVariant::exact(AdderKind::CarrySelect, spec))
            }
            ComponentKind::Multiplier => {
                Candidate::Multiplier(MultiplierVariant::exact(MultiplierKind::Wallace, spec))
            }
            ComponentKind::Mac => {
                let mut mac = MacVariant::exact(ComponentSpec::full(width));
                mac.mult.spec = spec;
                Candidate::Mac(mac)
            }
        })
    }

    /// Which component family this candidate approximates.
    pub fn kind(&self) -> ComponentKind {
        match self {
            Candidate::Adder(_) => ComponentKind::Adder,
            Candidate::Multiplier(_) => ComponentKind::Multiplier,
            Candidate::Mac(_) => ComponentKind::Mac,
        }
    }

    /// Operand width.
    pub fn width(&self) -> usize {
        match self {
            Candidate::Adder(v) => v.spec.width(),
            Candidate::Multiplier(v) => v.spec.width(),
            Candidate::Mac(v) => v.mult.spec.width(),
        }
    }

    /// Whether every approximation knob is at its exact setting (a possibly
    /// truncated spec is still "exact" in variant space).
    pub fn is_exact(&self) -> bool {
        match self {
            Candidate::Adder(v) => v.is_exact(),
            Candidate::Multiplier(v) => v.is_exact(),
            Candidate::Mac(v) => v.is_exact(),
        }
    }

    /// A stable human-readable identity; doubles as the cache-key material
    /// and the quarantine site name.
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// Content fingerprint for the score cache and the seen-set: FNV-1a over
    /// the label folded into `context` (library hash, scenario, stimuli).
    pub fn fingerprint(&self, context: u64) -> u64 {
        fnv(context, self.label().as_bytes())
    }

    /// Builds the candidate's netlist.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from construction.
    pub fn build(&self, library: &Arc<Library>) -> Result<Netlist, NetlistError> {
        match self {
            Candidate::Adder(v) => v.build(library),
            Candidate::Multiplier(v) => v.build(library),
            Candidate::Mac(v) => v.build(library),
        }
    }

    /// Deterministic neighbourhood for the evolutionary loop: small steps on
    /// each knob plus architecture swaps, in a fixed enumeration order. The
    /// caller dedupes against its seen-set.
    pub fn neighbors(&self) -> Vec<Candidate> {
        match self {
            Candidate::Adder(v) => adder_neighbors(v).into_iter().map(Candidate::Adder).collect(),
            Candidate::Multiplier(v) => mult_neighbors(v)
                .into_iter()
                .map(Candidate::Multiplier)
                .collect(),
            Candidate::Mac(v) => {
                let mut out = Vec::new();
                for m in mult_neighbors(&v.mult) {
                    out.push(Candidate::Mac(MacVariant { mult: m, adder: v.adder }));
                }
                for a in adder_neighbors(&v.adder) {
                    out.push(Candidate::Mac(MacVariant { mult: v.mult, adder: a }));
                }
                out
            }
        }
    }
}

impl fmt::Display for Candidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Candidate::Adder(v) => write!(f, "add-{v}"),
            Candidate::Multiplier(v) => write!(f, "mul-{v}"),
            Candidate::Mac(v) => write!(f, "mac-{v}"),
        }
    }
}

/// FNV-1a over `bytes`, seeded with `state`.
pub(crate) fn fnv(state: u64, bytes: &[u8]) -> u64 {
    let mut hash = if state == 0 { 0xcbf2_9ce4_8422_2325 } else { state };
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn adder_neighbors(v: &AdderVariant) -> Vec<AdderVariant> {
    let w = v.spec.width();
    let mut out = Vec::new();
    // Lower-OR region steps.
    for lo in knob_steps(v.lower_or_bits, w.saturating_sub(1)) {
        out.push(AdderVariant { lower_or_bits: lo, ..*v });
    }
    // Approximate-FA region steps.
    for afa in knob_steps(v.approx_fa_bits, w.saturating_sub(1)) {
        out.push(AdderVariant { approx_fa_bits: afa, ..*v });
    }
    // Segment lengths: off, and a few chain cuts.
    let mut segments = vec![0, 4, 8, w / 2];
    segments.sort_unstable();
    segments.dedup();
    for seg in segments {
        if seg != v.segment_bits && seg < w {
            out.push(AdderVariant { segment_bits: seg, ..*v });
        }
    }
    // Uniform truncation steps.
    for spec in spec_steps(v.spec) {
        out.push(AdderVariant { spec, ..*v });
    }
    // Architecture swaps at the same knobs.
    for kind in AdderKind::ALL {
        if kind != v.kind {
            out.push(AdderVariant { kind, ..*v });
        }
    }
    out
}

fn mult_neighbors(v: &MultiplierVariant) -> Vec<MultiplierVariant> {
    let w = v.spec.width();
    let max_col = (2 * w).saturating_sub(2);
    let mut out = Vec::new();
    for col in knob_steps(v.pruned_columns, max_col) {
        out.push(MultiplierVariant { pruned_columns: col, ..*v });
    }
    for mlo in knob_steps(v.merge_lower_or, max_col) {
        out.push(MultiplierVariant { merge_lower_or: mlo, ..*v });
    }
    for spec in spec_steps(v.spec) {
        out.push(MultiplierVariant { spec, ..*v });
    }
    for kind in MultiplierKind::ALL {
        if kind != v.kind {
            out.push(MultiplierVariant { kind, ..*v });
        }
    }
    out
}

/// ±1 and ±2 steps of a knob, clamped to `0..=max`, excluding the current
/// value, in ascending order.
fn knob_steps(current: usize, max: usize) -> Vec<usize> {
    let mut steps = Vec::new();
    for delta in [-2i64, -1, 1, 2] {
        let next = current as i64 + delta;
        if next >= 0 && next as usize <= max && next as usize != current {
            steps.push(next as usize);
        }
    }
    steps.sort_unstable();
    steps.dedup();
    steps
}

/// ±1 precision steps of a spec, staying within `1..=width`.
fn spec_steps(spec: ComponentSpec) -> Vec<ComponentSpec> {
    let mut out = Vec::new();
    for delta in [-1i64, 1] {
        let p = spec.precision() as i64 + delta;
        if p >= 1 {
            if let Ok(next) = ComponentSpec::new(spec.width(), p as usize) {
                out.push(next);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_across_neighbors() {
        let base = Candidate::exact(ComponentKind::Adder, 16);
        let mut labels: Vec<String> = base.neighbors().iter().map(Candidate::label).collect();
        labels.push(base.label());
        let count = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), count, "duplicate neighbor labels");
    }

    #[test]
    fn fingerprints_depend_on_context_and_label() {
        let a = Candidate::exact(ComponentKind::Adder, 16);
        let b = Candidate::exact(ComponentKind::Multiplier, 16);
        assert_ne!(a.fingerprint(1), b.fingerprint(1));
        assert_ne!(a.fingerprint(1), a.fingerprint(2));
        assert_eq!(a.fingerprint(7), a.fingerprint(7));
    }

    #[test]
    fn exact_candidates_build_for_all_kinds() {
        let lib = Arc::new(Library::nangate45_like());
        for kind in ComponentKind::ALL {
            let candidate = Candidate::exact(kind, 4);
            assert!(candidate.is_exact());
            let nl = candidate.build(&lib).unwrap();
            assert!(nl.stats().gate_count > 0);
        }
    }

    #[test]
    fn neighbors_stay_in_range() {
        let candidate = Candidate::Multiplier(MultiplierVariant {
            kind: MultiplierKind::Wallace,
            spec: ComponentSpec::full(8),
            pruned_columns: 14,
            merge_lower_or: 0,
        });
        for n in candidate.neighbors() {
            if let Candidate::Multiplier(v) = n {
                assert!(v.pruned_columns <= 14, "pruning must stay below width");
            }
        }
    }
}
