//! The greedy-seeded, deterministic evolutionary search.
//!
//! Generation zero seeds the front with the exact baseline, the
//! uniform-truncation ladder (the paper's knob, so the front always has the
//! baseline it must beat) and single-knob ladders of each variant axis.
//! Each later generation enumerates the deterministic neighbourhoods of the
//! surviving front points, dedupes against everything ever enqueued, and
//! evaluates the batch through [`aix_core::parallel_map`] with an optional
//! content-addressed score cache. The fold back into the front happens in
//! plan order, so the outcome is a pure function of the configuration —
//! independent of job count and cache state.

use crate::candidate::{fnv, Candidate};
use crate::pareto::{FrontPoint, ParetoFront, Score};
use crate::score::{build_optimized, score_candidate, ScoreContext};
use aix_aging::{AgingModel, AgingScenario, Lifetime};
use aix_cells::Library;
use aix_core::fsutil::write_atomic;
use aix_core::{parallel_map, AixError, CampaignStatus, CancelToken, ComponentKind};
use aix_faults::{FaultPlan, FaultStage};
use aix_obs::{parse_object, render_object, Value};
use aix_sim::SimEngine;
use aix_sta::{analyze, NetDelays};
use std::collections::HashSet;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

/// Search configuration. Everything that influences the outcome is in here
/// (plus the library), so equal configs produce byte-identical fronts.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Component family to search.
    pub kind: ComponentKind,
    /// Operand width in bits (at most 32, so exact references fit in `u64`).
    pub width: usize,
    /// Aging scenario whose delays define feasibility and slack.
    pub scenario: AgingScenario,
    /// Stimulus seed.
    pub seed: u64,
    /// Maximum number of candidates to score (cache hits included).
    pub budget: usize,
    /// Stimulus vectors per candidate.
    pub vectors: usize,
    /// Simulation engine for functional evaluation.
    pub engine: SimEngine,
    /// Worker threads for the evaluation fan-out.
    pub jobs: usize,
    /// Content-addressed score cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Fault-injection plan consulted per candidate evaluation.
    pub faults: Option<Arc<FaultPlan>>,
    /// Cooperative cancellation, checked between and inside evaluations.
    pub cancel: Option<CancelToken>,
}

impl ExploreConfig {
    /// A small deterministic default: 10-year worst-case scenario, seed 1,
    /// sequential evaluation, no cache.
    pub fn new(kind: ComponentKind, width: usize) -> Self {
        ExploreConfig {
            kind,
            width,
            scenario: AgingScenario::worst_case(Lifetime::YEARS_10),
            seed: 1,
            budget: 64,
            vectors: 1024,
            engine: SimEngine::Packed,
            jobs: 1,
            cache_dir: None,
            faults: None,
            cancel: None,
        }
    }
}

/// A candidate whose evaluation failed (panic, injected fault, or error);
/// the search continued without it.
#[derive(Debug, Clone)]
pub struct QuarantinedCandidate {
    /// The candidate's label.
    pub label: String,
    /// The failure, as reported by the evaluation.
    pub reason: String,
}

/// The completed (or partial) search result.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Configuration echo: component kind.
    pub kind: ComponentKind,
    /// Configuration echo: operand width.
    pub width: usize,
    /// Configuration echo: scenario.
    pub scenario: AgingScenario,
    /// Configuration echo: stimulus seed.
    pub seed: u64,
    /// The exact component's aged critical-path delay — the clock every
    /// slack is measured against.
    pub clock_ps: f64,
    /// The Pareto front, in canonical order.
    pub front: Vec<FrontPoint>,
    /// Candidates freshly scored.
    pub evaluated: usize,
    /// Candidates served from the score cache.
    pub cache_hits: usize,
    /// Candidates skipped by cancellation.
    pub skipped: usize,
    /// Candidates quarantined after failed evaluations.
    pub quarantined: Vec<QuarantinedCandidate>,
    /// Whether cancellation cut the search short.
    pub cancelled: bool,
}

impl ExploreOutcome {
    /// Campaign-style status for CLI exit codes: `Empty` when the front has
    /// no points, `Partial` when quarantines or cancellation cut coverage,
    /// `Complete` otherwise.
    pub fn status(&self) -> CampaignStatus {
        if self.front.is_empty() {
            CampaignStatus::Empty
        } else if !self.quarantined.is_empty() || self.cancelled {
            CampaignStatus::Partial
        } else {
            CampaignStatus::Complete
        }
    }

    /// The front alone as a JSON array — byte-identical for any job count
    /// and cache state under equal configuration.
    pub fn front_json(&self) -> String {
        let mut out = String::from("[");
        for (index, point) in self.front.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&render_object(&[
                ("label", Value::from(point.candidate.label())),
                ("mean_abs_error", float_value(point.score.mean_abs_error)),
                ("max_abs_error", float_value(point.score.max_abs_error)),
                ("error_rate", float_value(point.score.error_rate)),
                ("aged_delay_ps", float_value(point.score.aged_delay_ps)),
                ("slack_ps", float_value(point.score.slack_ps)),
                ("gate_count", Value::from(point.score.gate_count)),
            ]));
        }
        out.push(']');
        out
    }

    /// The full report as one JSON object: configuration echo, counters,
    /// quarantines and the front.
    pub fn to_json(&self) -> String {
        let mut quarantined = String::from("[");
        for (index, q) in self.quarantined.iter().enumerate() {
            if index > 0 {
                quarantined.push(',');
            }
            quarantined.push_str(&render_object(&[
                ("label", Value::from(&q.label)),
                ("reason", Value::from(&q.reason)),
            ]));
        }
        quarantined.push(']');
        format!(
            "{{\"component\":\"{}\",\"width\":{},\"scenario\":\"{}\",\"seed\":{},\
             \"clock_ps\":{:.6},\"evaluated\":{},\"cache_hits\":{},\"skipped\":{},\
             \"cancelled\":{},\"status\":\"{}\",\"quarantined\":{},\"front\":{}}}",
            self.kind,
            self.width,
            self.scenario,
            self.seed,
            self.clock_ps,
            self.evaluated,
            self.cache_hits,
            self.skipped,
            self.cancelled,
            status_label(self.status()),
            quarantined,
            self.front_json(),
        )
    }

    /// A fixed-width table of the front for terminal reports.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>14} {:>10} {:>12} {:>10} {:>7}",
            "candidate", "mean|err|", "err rate", "aged ps", "slack ps", "gates"
        );
        for point in &self.front {
            let _ = writeln!(
                out,
                "{:<44} {:>14.4} {:>10.4} {:>12.3} {:>10.3} {:>7}",
                point.candidate.label(),
                point.score.mean_abs_error,
                point.score.error_rate,
                point.score.aged_delay_ps,
                point.score.slack_ps,
                point.score.gate_count,
            );
        }
        out
    }
}

fn status_label(status: CampaignStatus) -> &'static str {
    match status {
        CampaignStatus::Complete => "complete",
        CampaignStatus::Partial => "partial",
        CampaignStatus::Empty => "empty",
    }
}

fn float_value(v: f64) -> Value {
    // Fixed six-decimal rendering keeps reports byte-stable; the cache
    // stores exact bits, so cold and warm runs format the same f64.
    Value::from(format!("{v:.6}").parse::<f64>().unwrap_or(0.0))
}

/// Generation-zero candidates: the exact origin, the uniform-truncation
/// ladder, and a single-knob ladder per variant axis. Deterministic order.
fn seed_candidates(kind: ComponentKind, width: usize) -> Vec<Candidate> {
    let mut seeds = vec![Candidate::exact(kind, width)];
    let deepest = width.saturating_sub(width.min(8));
    for precision in (deepest.max(1)..width).rev() {
        seeds.extend(Candidate::truncated(kind, width, precision));
    }
    let exact = Candidate::exact(kind, width);
    match exact {
        Candidate::Adder(base) => {
            for lo in 1..=width.saturating_sub(1).min(8) {
                seeds.push(Candidate::Adder(aix_arith::AdderVariant {
                    lower_or_bits: lo,
                    ..base
                }));
            }
            for afa in 1..=width.saturating_sub(1).min(4) {
                seeds.push(Candidate::Adder(aix_arith::AdderVariant {
                    approx_fa_bits: afa,
                    ..base
                }));
            }
        }
        Candidate::Multiplier(base) => {
            for col in 1..=(2 * width).saturating_sub(2).min(10) {
                seeds.push(Candidate::Multiplier(aix_arith::MultiplierVariant {
                    pruned_columns: col,
                    ..base
                }));
            }
            for mlo in (2..=(2 * width).saturating_sub(2).min(12)).step_by(2) {
                seeds.push(Candidate::Multiplier(aix_arith::MultiplierVariant {
                    merge_lower_or: mlo,
                    ..base
                }));
            }
        }
        Candidate::Mac(base) => {
            for col in 1..=(2 * width).saturating_sub(2).min(8) {
                let mut v = base;
                v.mult.pruned_columns = col;
                seeds.push(Candidate::Mac(v));
            }
            for lo in 1..=(2 * width).saturating_sub(1).min(8) {
                let mut v = base;
                v.adder.lower_or_bits = lo;
                seeds.push(Candidate::Mac(v));
            }
        }
    }
    seeds
}

/// One evaluation's disposition, folded back in plan order.
enum Evaluation {
    Scored { score: Score, from_cache: bool },
    Quarantined(String),
    Skipped,
}

/// Runs the search.
///
/// # Errors
///
/// Fails only on setup (building the exact baseline for the clock);
/// per-candidate failures are quarantined in the outcome instead.
///
/// # Panics
///
/// Panics if `width` is outside `1..=32` or the budget is zero.
pub fn explore(library: &Arc<Library>, config: &ExploreConfig) -> Result<ExploreOutcome, AixError> {
    assert!(
        (1..=32).contains(&config.width),
        "width must be in 1..=32 so exact references fit in u64"
    );
    assert!(config.budget > 0, "budget must be positive");
    let _span = aix_obs::span!(
        aix_obs::names::explore::SPAN_SEARCH,
        component = config.kind.to_string(),
        width = config.width,
        budget = config.budget,
    );

    // The clock is the exact component's own aged delay; derived outside
    // the fault-injected candidate path so a partial search still has a
    // well-defined slack axis.
    let baseline = build_optimized(&Candidate::exact(config.kind, config.width), library)?;
    let delays = NetDelays::aged(&baseline, &AgingModel::calibrated(), config.scenario);
    let clock_ps = analyze(&baseline, &delays)?.max_delay_ps();

    let (stimuli, exact) =
        ScoreContext::stimuli_for(config.kind, config.width, config.vectors, config.seed);
    let context = ScoreContext {
        library: Arc::clone(library),
        scenario: config.scenario,
        stimuli: Arc::new(stimuli),
        exact: Arc::new(exact),
        clock_ps,
        engine: config.engine,
    };

    // Everything that determines a score feeds the cache key context.
    let mut key = fnv(0, &library.content_hash().to_le_bytes());
    key = fnv(key, config.scenario.to_string().as_bytes());
    key = fnv(key, &config.seed.to_le_bytes());
    key = fnv(key, &(config.vectors as u64).to_le_bytes());
    let context_key = key;

    let mut seen: HashSet<u64> = HashSet::new();
    let mut pending: Vec<Candidate> = Vec::new();
    for seed in seed_candidates(config.kind, config.width) {
        if seen.insert(seed.fingerprint(context_key)) {
            pending.push(seed);
        }
    }

    let mut front = ParetoFront::new();
    let mut evaluated = 0usize;
    let mut cache_hits = 0usize;
    let mut skipped = 0usize;
    let mut quarantined: Vec<QuarantinedCandidate> = Vec::new();
    let mut cancelled = false;

    let evaluate = |candidate: Candidate| -> (Candidate, Evaluation) {
        if config.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return (candidate, Evaluation::Skipped);
        }
        let label = candidate.label();
        let fingerprint = candidate.fingerprint(context_key);
        if let Some(score) = cache_load(config, fingerprint, &label, clock_ps) {
            return (candidate, Evaluation::Scored { score, from_cache: true });
        }
        let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<Score, String> {
            if let Some(plan) = &config.faults {
                plan.check(FaultStage::Synth, &label, 0)
                    .map_err(|e| e.to_string())?;
            }
            score_candidate(&context, &candidate).map_err(|e| e.to_string())
        }));
        match attempt {
            Ok(Ok(score)) => {
                cache_store(config, fingerprint, &label, &score);
                (candidate, Evaluation::Scored { score, from_cache: false })
            }
            Ok(Err(reason)) => (candidate, Evaluation::Quarantined(reason)),
            Err(payload) => {
                (candidate, Evaluation::Quarantined(aix_core::panic_message(payload)))
            }
        }
    };

    while !pending.is_empty() {
        let scored = evaluated + cache_hits;
        if scored >= config.budget {
            break;
        }
        if config.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            cancelled = true;
            break;
        }
        let take = (config.budget - scored).min(pending.len());
        let batch: Vec<Candidate> = pending.drain(..take).collect();
        let results = parallel_map(config.jobs, batch, evaluate);
        for (candidate, evaluation) in results {
            match evaluation {
                Evaluation::Scored { score, from_cache } => {
                    if from_cache {
                        cache_hits += 1;
                        aix_obs::count!(aix_obs::names::explore::CACHE_HIT, candidate = candidate.label());
                    } else {
                        evaluated += 1;
                        aix_obs::count!(aix_obs::names::explore::EVALUATED, candidate = candidate.label());
                    }
                    front.insert(FrontPoint { candidate, score });
                }
                Evaluation::Quarantined(reason) => {
                    aix_obs::count!(aix_obs::names::explore::QUARANTINED, candidate = candidate.label());
                    quarantined.push(QuarantinedCandidate {
                        label: candidate.label(),
                        reason,
                    });
                }
                Evaluation::Skipped => {
                    skipped += 1;
                    cancelled = true;
                    aix_obs::count!(aix_obs::names::explore::SKIPPED, candidate = candidate.label());
                }
            }
        }
        aix_obs::gauge!(aix_obs::names::explore::FRONT_SIZE, front.len() as f64);
        if cancelled {
            break;
        }
        if pending.is_empty() {
            // Next generation: neighbourhoods of the surviving front, in
            // canonical front order, deduped against everything ever seen.
            let mut next: Vec<Candidate> = Vec::new();
            for point in front.points() {
                for neighbor in point.candidate.neighbors() {
                    if seen.insert(neighbor.fingerprint(context_key)) {
                        next.push(neighbor);
                    }
                }
            }
            next.sort_by_key(Candidate::label);
            pending = next;
        }
    }

    Ok(ExploreOutcome {
        kind: config.kind,
        width: config.width,
        scenario: config.scenario,
        seed: config.seed,
        clock_ps,
        front: front.points().to_vec(),
        evaluated,
        cache_hits,
        skipped,
        quarantined,
        cancelled,
    })
}

/// Cache file path for a candidate fingerprint.
fn cache_path(dir: &std::path::Path, fingerprint: u64) -> PathBuf {
    dir.join(format!("explore_{fingerprint:016x}.json"))
}

/// Loads a cached score; `None` on any miss, mismatch or parse failure
/// (the entry is then recomputed and rewritten).
fn cache_load(config: &ExploreConfig, fingerprint: u64, label: &str, clock_ps: f64) -> Option<Score> {
    let dir = config.cache_dir.as_deref()?;
    let text = std::fs::read_to_string(cache_path(dir, fingerprint)).ok()?;
    let fields = parse_object(text.trim()).ok()?;
    let mut cached_label = None;
    let mut mean = None;
    let mut max = None;
    let mut rate = None;
    let mut delay = None;
    let mut gates = None;
    for (name, value) in fields {
        match (name.as_str(), value) {
            ("label", Value::Str(s)) => cached_label = Some(s),
            ("mean_bits", Value::Str(s)) => mean = f64_from_hex(&s),
            ("max_bits", Value::Str(s)) => max = f64_from_hex(&s),
            ("rate_bits", Value::Str(s)) => rate = f64_from_hex(&s),
            ("delay_bits", Value::Str(s)) => delay = f64_from_hex(&s),
            ("gates", Value::Int(n)) => gates = usize::try_from(n).ok(),
            _ => {}
        }
    }
    if cached_label.as_deref() != Some(label) {
        return None;
    }
    let aged_delay_ps = delay?;
    Some(Score {
        mean_abs_error: mean?,
        max_abs_error: max?,
        error_rate: rate?,
        aged_delay_ps,
        slack_ps: clock_ps - aged_delay_ps,
        gate_count: gates?,
    })
}

/// Persists a freshly computed score. Float fields are stored as exact bit
/// patterns so warm-cache runs reproduce cold-run reports byte-for-byte.
/// Write failures are ignored — the cache is an accelerator, not a ledger.
fn cache_store(config: &ExploreConfig, fingerprint: u64, label: &str, score: &Score) {
    let Some(dir) = config.cache_dir.as_deref() else {
        return;
    };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let record = render_object(&[
        ("label", Value::from(label)),
        ("mean_bits", Value::from(f64_to_hex(score.mean_abs_error))),
        ("max_bits", Value::from(f64_to_hex(score.max_abs_error))),
        ("rate_bits", Value::from(f64_to_hex(score.error_rate))),
        ("delay_bits", Value::from(f64_to_hex(score.aged_delay_ps))),
        ("gates", Value::from(score.gate_count)),
    ]);
    let _ = write_atomic(&cache_path(dir, fingerprint), &record);
}

fn f64_to_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn f64_from_hex(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn library() -> Arc<Library> {
        Arc::new(Library::nangate45_like())
    }

    fn small_config(kind: ComponentKind, width: usize) -> ExploreConfig {
        let mut config = ExploreConfig::new(kind, width);
        config.budget = 24;
        config.vectors = 256;
        config
    }

    #[test]
    fn search_produces_a_nonempty_undominated_front() {
        let outcome = explore(&library(), &small_config(ComponentKind::Adder, 8)).unwrap();
        assert!(!outcome.front.is_empty());
        assert_eq!(outcome.status(), CampaignStatus::Complete);
        for a in &outcome.front {
            for b in &outcome.front {
                assert!(!a.score.dominates(&b.score), "front contains a dominated point");
            }
        }
        // The exact baseline is never dominated (zero error) and must
        // survive on the front.
        assert!(outcome.front.iter().any(|p| p.candidate.is_exact()
            && p.candidate.width() == 8
            && p.score.mean_abs_error == 0.0));
    }

    #[test]
    fn fronts_are_byte_identical_for_any_job_count() {
        let config1 = small_config(ComponentKind::Adder, 8);
        let mut config4 = small_config(ComponentKind::Adder, 8);
        config4.jobs = 4;
        let a = explore(&library(), &config1).unwrap();
        let b = explore(&library(), &config4).unwrap();
        assert_eq!(a.front_json(), b.front_json());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn fronts_are_byte_identical_cold_vs_warm_cache() {
        let dir = std::env::temp_dir().join(format!("aix-explore-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = small_config(ComponentKind::Multiplier, 6);
        config.cache_dir = Some(dir.clone());
        let cold = explore(&library(), &config).unwrap();
        assert_eq!(cold.cache_hits, 0);
        let warm = explore(&library(), &config).unwrap();
        assert_eq!(warm.evaluated, 0, "warm run must be fully cached");
        assert!(warm.cache_hits > 0);
        assert_eq!(cold.front_json(), warm.front_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_injection_quarantines_candidates_but_reports_partial_front() {
        let mut config = small_config(ComponentKind::Adder, 8);
        config.faults = Some(Arc::new(
            "panic:p=0.3,seed=9,stage=synth".parse::<FaultPlan>().unwrap(),
        ));
        let outcome = explore(&library(), &config).unwrap();
        assert!(!outcome.quarantined.is_empty(), "p=0.3 must hit something");
        assert!(!outcome.front.is_empty(), "survivors must still form a front");
        assert_eq!(outcome.status(), CampaignStatus::Partial);
        for q in &outcome.quarantined {
            assert!(q.reason.contains("injected fault"), "{}", q.reason);
        }
    }

    #[test]
    fn delay_faults_slow_evaluation_but_do_not_change_the_front() {
        let mut config = small_config(ComponentKind::Adder, 6);
        let baseline = explore(&library(), &config).unwrap();
        config.faults = Some(Arc::new(
            "delay:p=0.5,seed=3,ms=1,stage=synth".parse::<FaultPlan>().unwrap(),
        ));
        let delayed = explore(&library(), &config).unwrap();
        assert_eq!(delayed.status(), CampaignStatus::Complete);
        assert_eq!(baseline.front_json(), delayed.front_json());
    }

    #[test]
    fn pre_cancelled_token_yields_empty_outcome() {
        let mut config = small_config(ComponentKind::Adder, 8);
        let token = CancelToken::new();
        token.cancel();
        config.cancel = Some(token);
        let outcome = explore(&library(), &config).unwrap();
        assert!(outcome.front.is_empty());
        assert!(outcome.cancelled);
        assert_eq!(outcome.status(), CampaignStatus::Empty);
        assert_eq!(outcome.evaluated, 0);
    }

    #[test]
    fn mid_search_cancellation_reports_partial_front() {
        let mut config = small_config(ComponentKind::Multiplier, 16);
        config.budget = 500;
        config.vectors = 2048;
        let token = CancelToken::new();
        config.cancel = Some(token.clone());
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(200));
            token.cancel();
        });
        let outcome = explore(&library(), &config).unwrap();
        canceller.join().unwrap();
        assert!(outcome.cancelled, "token must cut the search short");
        assert_ne!(outcome.status(), CampaignStatus::Complete);
    }

    #[test]
    fn cache_round_trips_exact_bits() {
        let dir = std::env::temp_dir().join(format!("aix-explore-bits-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = ExploreConfig::new(ComponentKind::Adder, 4);
        config.cache_dir = Some(dir.clone());
        let score = Score {
            mean_abs_error: 0.1 + 0.2, // deliberately non-representable
            max_abs_error: f64::MAX,
            error_rate: 1.0 / 3.0,
            aged_delay_ps: 123.456789,
            slack_ps: 0.0,
            gate_count: 42,
        };
        cache_store(&config, 7, "probe", &score);
        let loaded = cache_load(&config, 7, "probe", 123.456789).unwrap();
        assert_eq!(loaded.mean_abs_error.to_bits(), score.mean_abs_error.to_bits());
        assert_eq!(loaded.max_abs_error.to_bits(), score.max_abs_error.to_bits());
        assert_eq!(loaded.aged_delay_ps.to_bits(), score.aged_delay_ps.to_bits());
        assert_eq!(loaded.gate_count, 42);
        assert!(cache_load(&config, 7, "other-label", 0.0).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
