//! Aging-aware design-space exploration over approximate arithmetic.
//!
//! The paper approximates by uniform LSB truncation alone; Balaskas et al.
//! (arXiv:2203.07962) show that *searching* gate-level approximations
//! against aging constraints dominates that single knob. This crate is that
//! search: candidates are real [`aix_netlist::Netlist`]s produced by the
//! variant generators in `aix-arith` (lower-OR adders, approximate full
//! adders, speculative segmentation, per-column multiplier pruning,
//! approximate final merges), each scored by
//!
//! * **error** — functional simulation on seeded stimuli against the exact
//!   arithmetic reference (`aix-sim`'s packed evaluator and golden words),
//! * **aged slack** — static timing under the scenario's aged delays
//!   (`aix-sta` + `aix-aging`), measured against the exact component's own
//!   aged delay as the clock, and
//! * **gate count** — after `aix-synth` constant propagation and dead-gate
//!   sweeping, so pruned logic really disappears.
//!
//! A greedy-seeded, deterministic evolutionary loop ([`explore`]) maintains
//! the Pareto front of (error, aged delay, gate count): generation zero is
//! the exact baseline plus uniform-truncation and single-knob ladders, and
//! each later generation mutates the surviving front. Evaluation fans out
//! through `aix-core::parallel_map` with a content-addressed on-disk score
//! cache keyed by the candidate fingerprint, so reports are byte-identical
//! for any `--jobs` count and for cold vs warm caches. Candidate failures
//! (including injected `AIX_FAULT` panics) are quarantined per candidate
//! and the search reports a partial front; a [`aix_core::CancelToken`]
//! deadline stops the search between evaluations.

mod candidate;
mod pareto;
mod score;
mod search;

pub use candidate::Candidate;
pub use pareto::{FrontPoint, ParetoFront, Score};
pub use score::{score_candidate, ScoreContext};
pub use search::{explore, ExploreConfig, ExploreOutcome, QuarantinedCandidate};
