//! Integration tests of the parallel, persistently cached
//! characterization engine: determinism across job counts, warm-cache
//! synthesis skipping, and graceful fallback on corrupted or stale cache
//! entries.

use aix_cells::Library;
use aix_core::{
    ApproxLibrary, CharacterizationConfig, CharacterizationEngine, ComponentKind, EngineOptions,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn cells() -> Arc<Library> {
    Arc::new(Library::nangate45_like())
}

/// A unique, empty cache directory per test.
fn fresh_cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aix-engine-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engine(jobs: usize, cache_dir: Option<&Path>) -> CharacterizationEngine {
    CharacterizationEngine::new(
        cells(),
        EngineOptions {
            jobs,
            cache_dir: cache_dir.map(Path::to_path_buf),
            ..EngineOptions::sequential()
        },
    )
}

fn library_text(library: &ApproxLibrary) -> String {
    library.to_text()
}

#[test]
fn jobs_one_and_many_are_byte_identical() {
    let configs = vec![
        CharacterizationConfig::quick(ComponentKind::Adder, 10),
        CharacterizationConfig::quick(ComponentKind::Multiplier, 6),
    ];
    let (sequential, _) = engine(1, None).characterize_all(&configs).unwrap();
    for jobs in [2, 4, 7] {
        let (parallel, report) = engine(jobs, None).characterize_all(&configs).unwrap();
        assert_eq!(
            library_text(&sequential),
            library_text(&parallel),
            "jobs={jobs} must produce byte-identical library text"
        );
        assert_eq!(report.jobs, jobs);
    }
}

#[test]
fn warm_cache_skips_all_synthesis_and_is_byte_identical() {
    let dir = fresh_cache_dir("warm");
    let config = CharacterizationConfig::quick(ComponentKind::Adder, 10);

    let (cold, cold_report) = engine(1, Some(&dir)).characterize(&config).unwrap();
    assert_eq!(cold_report.synth_executed, config.precisions.len());
    assert_eq!(cold_report.cache_hits, 0);
    assert_eq!(cold_report.cache_misses, config.precisions.len());

    let (warm, warm_report) = engine(1, Some(&dir)).characterize(&config).unwrap();
    assert_eq!(warm_report.synth_executed, 0, "warm run must skip synthesis");
    assert_eq!(warm_report.sta_executed, 0, "warm run must skip STA");
    assert_eq!(warm_report.cache_hits, config.precisions.len());
    assert_eq!(warm_report.cache_misses, 0);
    assert_eq!(cold, warm, "cold and warm characterizations must be equal");

    // Byte-identity of the serialized library, cold vs warm and vs
    // parallel-warm.
    let as_text = |c: &aix_core::ComponentCharacterization| {
        let mut lib = ApproxLibrary::new();
        lib.insert(c.clone());
        lib.to_text()
    };
    assert_eq!(as_text(&cold), as_text(&warm));
    let (warm_parallel, _) = engine(4, Some(&dir)).characterize(&config).unwrap();
    assert_eq!(as_text(&cold), as_text(&warm_parallel));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_and_stale_cache_entries_fall_back_to_resynthesis() {
    let dir = fresh_cache_dir("corrupt");
    let config = CharacterizationConfig::quick(ComponentKind::Adder, 8);
    let (cold, _) = engine(1, Some(&dir)).characterize(&config).unwrap();

    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    assert_eq!(files.len(), config.precisions.len());

    // Corrupt one file by truncation, one with a garbage header, and make
    // one stale by zeroing the fingerprint in its key line.
    let truncated = &files[0];
    let original = std::fs::read_to_string(truncated).unwrap();
    std::fs::write(truncated, &original[..original.len() / 2]).unwrap();

    let garbage = &files[1];
    std::fs::write(garbage, "not a cache file at all\n").unwrap();

    let stale = &files[2];
    let text = std::fs::read_to_string(stale).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let key_fields: Vec<&str> = lines[1].split_whitespace().collect();
    let doctored = format!(
        "{} {} {} {} {} {}",
        key_fields[0], key_fields[1], key_fields[2], key_fields[3], key_fields[4],
        "0000000000000000",
    );
    lines[1] = doctored;
    std::fs::write(stale, lines.join("\n") + "\n").unwrap();

    let (recovered, report) = engine(1, Some(&dir)).characterize(&config).unwrap();
    assert_eq!(
        report.synth_executed, 3,
        "the three damaged entries re-synthesize; the intact ones hit"
    );
    assert_eq!(report.cache_hits, config.precisions.len() - 3);
    assert_eq!(report.cache_misses, 3);
    assert_eq!(cold, recovered, "damaged cache never changes results");

    // The re-synthesis also repaired the cache: a further run is all hits.
    let (_, repaired) = engine(1, Some(&dir)).characterize(&config).unwrap();
    assert_eq!(repaired.synth_executed, 0);
    assert_eq!(repaired.cache_hits, config.precisions.len());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn partial_scenario_coverage_counts_as_miss_and_extends_the_entry() {
    let dir = fresh_cache_dir("partial");
    let mut narrow = CharacterizationConfig::quick(ComponentKind::Adder, 8);
    narrow.scenarios.truncate(1); // fresh only
    let (_, first) = engine(1, Some(&dir)).characterize(&narrow).unwrap();
    assert_eq!(first.cache_misses, narrow.precisions.len());

    // The full quick config needs a scenario the cache does not cover yet:
    // a miss, recomputed, and the union written back.
    let full = CharacterizationConfig::quick(ComponentKind::Adder, 8);
    let (from_extended, second) = engine(1, Some(&dir)).characterize(&full).unwrap();
    assert_eq!(second.cache_hits, 0);
    assert_eq!(second.cache_misses, full.precisions.len());

    let (from_warm, third) = engine(1, Some(&dir)).characterize(&full).unwrap();
    assert_eq!(third.cache_hits, full.precisions.len());
    assert_eq!(from_extended, from_warm);

    // The narrow request is still served from the extended entries.
    let (_, narrow_again) = engine(1, Some(&dir)).characterize(&narrow).unwrap();
    assert_eq!(narrow_again.cache_hits, narrow.precisions.len());

    // And the uncached result matches byte-for-byte: cached delays
    // round-trip through the same 6-decimal format the library serializes.
    let (uncached, _) = engine(1, None).characterize(&full).unwrap();
    let as_text = |c: &aix_core::ComponentCharacterization| {
        let mut lib = ApproxLibrary::new();
        lib.insert(c.clone());
        lib.to_text()
    };
    assert_eq!(as_text(&uncached), as_text(&from_warm));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_is_keyed_by_effort() {
    use aix_synth::Effort;
    let dir = fresh_cache_dir("effort");
    let mut medium = CharacterizationConfig::quick(ComponentKind::Adder, 8);
    medium.effort = Effort::Medium;
    let mut area = medium.clone();
    area.effort = Effort::Area;

    let (_, first) = engine(1, Some(&dir)).characterize(&medium).unwrap();
    assert_eq!(first.cache_hits, 0);
    // A different effort must never be served from the medium entries.
    let (_, other) = engine(1, Some(&dir)).characterize(&area).unwrap();
    assert_eq!(other.cache_hits, 0);
    assert_eq!(other.synth_executed, area.precisions.len());

    let _ = std::fs::remove_dir_all(&dir);
}
