//! Integration tests of campaign fault tolerance: injected panics fail
//! only their job, transient I/O faults retry to success, hung jobs are
//! quarantined by the watchdog, and an interrupted campaign resumes from
//! the write-ahead journal to byte-identical output.

use aix_core::{
    CampaignStatus, CharacterizationConfig, CharacterizationEngine, ComponentKind, EngineOptions,
};
use aix_cells::Library;
use aix_faults::{FaultMode, FaultPlan, FaultSpec, FaultStage};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn cells() -> Arc<Library> {
    Arc::new(Library::nangate45_like())
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aix-faults-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The engine's synthesis fault site for one planned job.
fn synth_site(config: &CharacterizationConfig, precision: usize) -> String {
    format!(
        "{}-w{}-p{}-{}",
        config.kind, config.width, precision, config.effort
    )
}

/// Finds a seed whose panic spec fires on some but not all of the
/// campaign's synthesis sites at attempt 1 — so a run under it is
/// deterministically partial.
fn partial_panic_plan(config: &CharacterizationConfig) -> (Arc<FaultPlan>, Vec<usize>) {
    for seed in 0..10_000u64 {
        let spec = FaultSpec {
            mode: FaultMode::Panic,
            probability: 0.5,
            seed,
            stage: Some(FaultStage::Synth),
            delay_ms: 0,
        };
        let doomed: Vec<usize> = config
            .precisions
            .iter()
            .copied()
            .filter(|&p| spec.fires(FaultStage::Synth, &synth_site(config, p), 1))
            .collect();
        if !doomed.is_empty() && doomed.len() < config.precisions.len() {
            let plan: FaultPlan = format!("panic:p=0.5,seed={seed},stage=synth")
                .parse()
                .unwrap();
            return (Arc::new(plan), doomed);
        }
    }
    unreachable!("some seed under 10000 yields a partial failure set");
}

#[test]
fn injected_panic_fails_only_that_job_at_any_job_count() {
    let config = CharacterizationConfig::quick(ComponentKind::Adder, 10);
    let (plan, doomed) = partial_panic_plan(&config);

    let clean = CharacterizationEngine::new(cells(), EngineOptions::sequential())
        .characterize_campaign(std::slice::from_ref(&config));
    assert_eq!(clean.status(), CampaignStatus::Complete);
    let healthy_reference = clean.library().to_text();

    let mut partial_texts = Vec::new();
    for jobs in [1, 4] {
        let options = EngineOptions {
            jobs,
            faults: Some(Arc::clone(&plan)),
            ..EngineOptions::sequential()
        };
        let campaign = CharacterizationEngine::new(cells(), options)
            .characterize_campaign(std::slice::from_ref(&config));
        assert_eq!(campaign.status(), CampaignStatus::Partial, "jobs={jobs}");
        assert_eq!(campaign.report.job_failures, doomed.len());

        // Exactly the doomed jobs are quarantined, each naming its
        // (kind, width, precision) and carrying the panic message.
        let mut failed_precisions: Vec<usize> =
            campaign.failures.iter().map(|f| f.precision).collect();
        failed_precisions.sort_unstable();
        let mut expected = doomed.clone();
        expected.sort_unstable();
        assert_eq!(failed_precisions, expected, "jobs={jobs}");
        for failure in &campaign.failures {
            assert_eq!(failure.kind, ComponentKind::Adder);
            assert_eq!(failure.width, 10);
            assert_eq!(failure.stage, "synth");
            assert!(failure.reason.contains("injected fault"), "{failure}");
            assert!(failure.to_string().contains("adder w10"));
        }

        // The healthy jobs still produced entries.
        let entries = campaign.characterizations[0].entries().len();
        assert_eq!(
            entries,
            (config.precisions.len() - doomed.len()) * config.scenarios.len()
        );
        partial_texts.push(campaign.library().to_text());
    }
    // Partial output is deterministic across job counts, and a strict
    // subset of the clean library's lines.
    assert_eq!(partial_texts[0], partial_texts[1]);
    for line in partial_texts[0].lines().filter(|l| l.contains("entry")) {
        assert!(healthy_reference.contains(line));
    }
}

#[test]
fn all_or_nothing_entry_points_surface_campaign_incomplete() {
    let config = CharacterizationConfig::quick(ComponentKind::Adder, 10);
    let (plan, doomed) = partial_panic_plan(&config);
    let options = EngineOptions {
        faults: Some(plan),
        ..EngineOptions::sequential()
    };
    let err = CharacterizationEngine::new(cells(), options)
        .characterize(&config)
        .unwrap_err();
    let text = err.to_string();
    assert!(text.contains("campaign incomplete"), "{text}");
    assert!(text.contains(&format!("{} of {}", doomed.len(), config.precisions.len())));
    assert!(text.contains("adder w10"), "first failure names the job: {text}");
}

#[test]
fn transient_injected_io_faults_retry_to_a_complete_campaign() {
    let config = CharacterizationConfig::quick(ComponentKind::Adder, 8);
    // A seed where at least one synthesis site fires at attempt 1 and
    // every firing site clears within two retries.
    let sites: Vec<String> = config
        .precisions
        .iter()
        .map(|&p| synth_site(&config, p))
        .collect();
    let seed = (0..10_000u64)
        .find(|&seed| {
            let spec = FaultSpec {
                mode: FaultMode::Io,
                probability: 0.6,
                seed,
                stage: Some(FaultStage::Synth),
                delay_ms: 0,
            };
            let firing: Vec<&String> = sites
                .iter()
                .filter(|s| spec.fires(FaultStage::Synth, s, 1))
                .collect();
            !firing.is_empty()
                && firing.iter().all(|s| {
                    !spec.fires(FaultStage::Synth, s, 2) || !spec.fires(FaultStage::Synth, s, 3)
                })
        })
        .expect("a recoverable seed exists");
    let plan: Arc<FaultPlan> = Arc::new(
        format!("io:p=0.6,seed={seed},stage=synth")
            .parse()
            .unwrap(),
    );

    let reference = CharacterizationEngine::new(cells(), EngineOptions::sequential())
        .characterize_campaign(std::slice::from_ref(&config));
    let options = EngineOptions {
        retries: 2,
        backoff_ms: 0,
        faults: Some(plan),
        ..EngineOptions::sequential()
    };
    let campaign = CharacterizationEngine::new(cells(), options)
        .characterize_campaign(std::slice::from_ref(&config));
    assert_eq!(campaign.status(), CampaignStatus::Complete);
    assert!(campaign.report.job_retries > 0, "retries were exercised");
    assert_eq!(
        campaign.library().to_text(),
        reference.library().to_text(),
        "retried jobs produce byte-identical output"
    );
}

#[test]
fn watchdog_quarantines_every_hung_sta_job() {
    let config = CharacterizationConfig::quick(ComponentKind::Adder, 4);
    let plan: Arc<FaultPlan> = Arc::new("delay:p=1,ms=300,stage=sta".parse().unwrap());
    let options = EngineOptions {
        job_timeout: Some(Duration::from_millis(40)),
        faults: Some(plan),
        ..EngineOptions::sequential()
    };
    let campaign = CharacterizationEngine::new(cells(), options)
        .characterize_campaign(std::slice::from_ref(&config));
    assert_eq!(campaign.status(), CampaignStatus::Empty);
    assert_eq!(campaign.report.job_failures, config.precisions.len());
    for failure in &campaign.failures {
        assert_eq!(failure.stage, "sta");
        assert!(failure.scenario.is_some(), "STA failures name the scenario");
        assert!(failure.reason.contains("timed out"), "{failure}");
    }
    assert!(campaign.library().to_text().is_empty() || campaign.characterizations[0].entries().is_empty());
}

#[test]
fn interrupted_campaign_resumes_from_journal_to_identical_bytes() {
    let configs = vec![
        CharacterizationConfig::quick(ComponentKind::Adder, 10),
        CharacterizationConfig::quick(ComponentKind::Multiplier, 6),
    ];
    let (plan, _) = partial_panic_plan(&configs[0]);
    let reference = CharacterizationEngine::new(cells(), EngineOptions::sequential())
        .characterize_campaign(&configs)
        .library()
        .to_text();

    for jobs in [1, 4] {
        let dir = fresh_dir(&format!("resume-j{jobs}"));
        // First run: journal on, cache off, panics injected → partial.
        let faulted = EngineOptions {
            jobs,
            journal_dir: Some(dir.clone()),
            faults: Some(Arc::clone(&plan)),
            ..EngineOptions::sequential()
        };
        let first = CharacterizationEngine::new(cells(), faulted).characterize_campaign(&configs);
        assert_eq!(first.status(), CampaignStatus::Partial, "jobs={jobs}");
        let done_jobs =
            first.report.synth_planned - first.failures.len();

        // The journal exists, is write-ahead formatted, and records both
        // completions and failures.
        let journal_files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(journal_files.len(), 1);
        let journal_text = std::fs::read_to_string(&journal_files[0]).unwrap();
        assert!(journal_text.starts_with("aix-journal v1"));
        assert!(journal_text.contains("\nplan "));
        assert!(journal_text.contains("\ndone "));
        assert!(journal_text.contains("\nfailed "));

        // Resume without faults: completed jobs are served from the
        // journal (cache is off), the quarantined ones are retried.
        let resumed_options = EngineOptions {
            jobs,
            journal_dir: Some(dir.clone()),
            resume: true,
            ..EngineOptions::sequential()
        };
        let resumed =
            CharacterizationEngine::new(cells(), resumed_options).characterize_campaign(&configs);
        assert_eq!(resumed.status(), CampaignStatus::Complete, "jobs={jobs}");
        assert_eq!(resumed.report.journal_hits, done_jobs);
        assert_eq!(
            resumed.report.synth_executed,
            first.failures.len(),
            "only the previously failed jobs re-run"
        );
        assert_eq!(
            resumed.library().to_text(),
            reference,
            "jobs={jobs}: resumed output is byte-identical to uninterrupted"
        );

        // A further resume is a no-op: everything journal-hits.
        let again_options = EngineOptions {
            jobs,
            journal_dir: Some(dir.clone()),
            resume: true,
            ..EngineOptions::sequential()
        };
        let again =
            CharacterizationEngine::new(cells(), again_options).characterize_campaign(&configs);
        assert_eq!(again.report.synth_executed, 0);
        assert_eq!(again.report.journal_hits, again.report.synth_planned);
        assert_eq!(again.library().to_text(), reference);

        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn resume_ignores_journals_of_other_campaigns() {
    let dir = fresh_dir("isolation");
    let narrow = CharacterizationConfig::quick(ComponentKind::Adder, 8);
    let wide = CharacterizationConfig::quick(ComponentKind::Adder, 10);
    let options = |resume| EngineOptions {
        journal_dir: Some(dir.clone()),
        resume,
        ..EngineOptions::sequential()
    };
    let first = CharacterizationEngine::new(cells(), options(false))
        .characterize_campaign(std::slice::from_ref(&narrow));
    assert_eq!(first.status(), CampaignStatus::Complete);

    // A different campaign must not be served from the narrow journal,
    // with or without resume.
    let other = CharacterizationEngine::new(cells(), options(true))
        .characterize_campaign(std::slice::from_ref(&wide));
    assert_eq!(other.report.journal_hits, 0);
    assert_eq!(other.report.synth_executed, wide.precisions.len());

    // Without `resume`, even the same campaign starts fresh.
    let no_resume = CharacterizationEngine::new(cells(), options(false))
        .characterize_campaign(std::slice::from_ref(&narrow));
    assert_eq!(no_resume.report.journal_hits, 0);
    assert_eq!(no_resume.report.synth_executed, narrow.precisions.len());

    let _ = std::fs::remove_dir_all(&dir);
}
