//! The microarchitecture-level flow (paper Fig. 6): convert per-block aged
//! slack into per-component precision reductions, then validate.

use crate::{ApproxLibrary, ComponentKind};
use aix_aging::{AgingModel, AgingScenario};
use aix_arith::ComponentSpec;
use aix_cells::Library;
use aix_netlist::{Netlist, NetlistError};
use aix_sta::{analyze, ClockConstraint, NetDelays};
use aix_synth::Effort;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// One register-transfer block of a microarchitecture: a named datapath
/// component with its synthesized netlist.
#[derive(Debug, Clone)]
pub struct MicroarchBlock {
    /// Block name (e.g. `"multiplier"`).
    pub name: String,
    /// The RTL component family inside the block.
    pub kind: ComponentKind,
    /// Full operand width.
    pub width: usize,
    /// The block's synthesized full-precision netlist.
    pub netlist: Netlist,
}

/// A whole microarchitecture: a set of combinational blocks between
/// register stages, all clocked with one period.
#[derive(Debug, Clone)]
pub struct MicroarchDesign {
    name: String,
    effort: Effort,
    blocks: Vec<MicroarchBlock>,
}

impl MicroarchDesign {
    /// Creates an empty design.
    pub fn new(name: impl Into<String>, effort: Effort) -> Self {
        Self {
            name: name.into(),
            effort,
            blocks: Vec::new(),
        }
    }

    /// The design's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Synthesis effort used for the blocks.
    pub fn effort(&self) -> Effort {
        self.effort
    }

    /// The design's blocks.
    pub fn blocks(&self) -> &[MicroarchBlock] {
        &self.blocks
    }

    /// Synthesizes and appends a block.
    ///
    /// # Errors
    ///
    /// Propagates synthesis errors.
    pub fn add_block(
        &mut self,
        library: &Arc<Library>,
        name: impl Into<String>,
        kind: ComponentKind,
        width: usize,
    ) -> Result<(), NetlistError> {
        let netlist = kind.synthesize(library, ComponentSpec::full(width), self.effort)?;
        self.blocks.push(MicroarchBlock {
            name: name.into(),
            kind,
            width,
            netlist,
        });
        Ok(())
    }

    /// The design-time timing constraint `t_CP(noAging)`: the largest fresh
    /// critical-path delay over all blocks — the clock the design must keep
    /// meeting for its whole lifetime once the guardband is removed.
    ///
    /// # Errors
    ///
    /// Propagates STA errors.
    pub fn timing_constraint(&self) -> Result<ClockConstraint, NetlistError> {
        let mut worst = 0.0f64;
        for block in &self.blocks {
            let delay = analyze(&block.netlist, &NetDelays::fresh(&block.netlist))?
                .max_delay_ps();
            worst = worst.max(delay);
        }
        Ok(ClockConstraint::from_period_ps(worst))
    }
}

/// The flow's decision for one block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPlan {
    /// Block name.
    pub name: String,
    /// Component family.
    pub kind: ComponentKind,
    /// Full operand width.
    pub width: usize,
    /// Fresh critical-path delay, in ps.
    pub fresh_delay_ps: f64,
    /// Aged critical-path delay at full precision, in ps.
    pub aged_delay_ps: f64,
    /// Absolute slack against the design constraint, in ps.
    pub slack_ps: f64,
    /// Relative slack (`slack / t_clock`) — the paper's library index.
    pub relative_slack: f64,
    /// The precision the flow selected (equals `width` when no
    /// approximation is needed).
    pub precision: usize,
}

impl BlockPlan {
    /// Number of truncated bits the plan assigns to this block.
    pub fn truncated_bits(&self) -> usize {
        self.width - self.precision
    }
}

/// The complete approximation plan for a design under one aging scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproximationPlan {
    /// Scenario the plan protects against.
    pub scenario: AgingScenario,
    /// The design constraint, in ps.
    pub constraint_ps: f64,
    /// Per-block decisions, in design order.
    pub blocks: Vec<BlockPlan>,
}

impl ApproximationPlan {
    /// The plan entry for a named block.
    pub fn block(&self, name: &str) -> Option<&BlockPlan> {
        self.blocks.iter().find(|b| b.name == name)
    }

    /// Whether any block was approximated at all.
    pub fn has_approximations(&self) -> bool {
        self.blocks.iter().any(|b| b.truncated_bits() > 0)
    }
}

/// Errors produced by the microarchitecture flow.
#[derive(Debug)]
pub enum FlowError {
    /// The approximation library holds no characterization for a block.
    MissingCharacterization {
        /// Component family of the block.
        kind: ComponentKind,
        /// Operand width of the block.
        width: usize,
    },
    /// The library's characterized precisions cannot compensate the slack.
    Uncompensable {
        /// Block name.
        block: String,
        /// The relative slack that could not be absorbed.
        relative_slack: f64,
    },
    /// A netlist-level failure.
    Netlist(NetlistError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::MissingCharacterization { kind, width } => write!(
                f,
                "approximation library lacks a characterization for {width}-bit {kind}"
            ),
            FlowError::Uncompensable {
                block,
                relative_slack,
            } => write!(
                f,
                "block `{block}` slack of {:.1}% cannot be compensated by any characterized precision",
                relative_slack * 100.0
            ),
            FlowError::Netlist(e) => write!(f, "{e}"),
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for FlowError {
    fn from(value: NetlistError) -> Self {
        FlowError::Netlist(value)
    }
}

/// Runs the paper's Fig. 6 flow:
///
/// 1. obtain the timing constraint `t_CP(noAging)`,
/// 2. aging-aware STA per block → slack,
/// 3. for blocks with negative slack, look the required precision up in
///    the pre-built [`ApproxLibrary`] via the relative slack,
/// 4. blocks with non-negative slack keep full precision.
///
/// No gate-level simulation is involved anywhere.
///
/// # Errors
///
/// Returns [`FlowError::MissingCharacterization`] for uncharacterized
/// blocks, [`FlowError::Uncompensable`] when the library cannot absorb a
/// block's slack, and propagates STA failures.
pub fn apply_aging_approximations(
    design: &MicroarchDesign,
    library: &ApproxLibrary,
    model: &AgingModel,
    scenario: AgingScenario,
) -> Result<ApproximationPlan, FlowError> {
    let constraint = design.timing_constraint()?;
    let mut blocks = Vec::with_capacity(design.blocks().len());
    for block in design.blocks() {
        let fresh = analyze(&block.netlist, &NetDelays::fresh(&block.netlist))?;
        let aged = analyze(
            &block.netlist,
            &NetDelays::aged(&block.netlist, model, scenario),
        )?;
        let slack_ps = constraint.slack_ps(&aged);
        let relative_slack = constraint.relative_slack(&aged);
        let precision = if slack_ps >= 0.0 {
            block.width
        } else {
            let characterization = library.get(block.kind, block.width).ok_or(
                FlowError::MissingCharacterization {
                    kind: block.kind,
                    width: block.width,
                },
            )?;
            characterization
                .precision_for_relative_slack(scenario, relative_slack)
                .ok_or_else(|| FlowError::Uncompensable {
                    block: block.name.clone(),
                    relative_slack,
                })?
        };
        blocks.push(BlockPlan {
            name: block.name.clone(),
            kind: block.kind,
            width: block.width,
            fresh_delay_ps: fresh.max_delay_ps(),
            aged_delay_ps: aged.max_delay_ps(),
            slack_ps,
            relative_slack,
            precision,
        });
    }
    Ok(ApproximationPlan {
        scenario,
        constraint_ps: constraint.period_ps(),
        blocks,
    })
}

/// Result of validating an [`ApproximationPlan`] (the final step of
/// Fig. 6): every approximated block is re-synthesized at its selected
/// precision and checked against the constraint under aging.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// The design constraint, in ps.
    pub constraint_ps: f64,
    /// Aged delay of every re-synthesized block, in plan order.
    pub aged_delays_ps: Vec<(String, f64)>,
    /// Whether every block meets the constraint under aging.
    pub timing_met: bool,
}

impl ApproximationPlan {
    /// Re-synthesizes every block at its planned precision and verifies
    /// `∀k: t_Bk(Aging) ≤ t_CP(noAging)`.
    ///
    /// # Errors
    ///
    /// Propagates synthesis/STA failures.
    pub fn validate(
        &self,
        library: &Arc<Library>,
        effort: Effort,
        model: &AgingModel,
    ) -> Result<ValidationReport, FlowError> {
        let mut aged_delays = Vec::with_capacity(self.blocks.len());
        let mut timing_met = true;
        for block in &self.blocks {
            let spec = ComponentSpec::new(block.width, block.precision)
                .expect("plan precisions are valid by construction");
            let netlist = block
                .kind
                .synthesize(library, spec, effort)
                .map_err(FlowError::Netlist)?;
            let aged = analyze(&netlist, &NetDelays::aged(&netlist, model, self.scenario))?;
            if aged.max_delay_ps() > self.constraint_ps + 1e-9 {
                timing_met = false;
            }
            aged_delays.push((block.name.clone(), aged.max_delay_ps()));
        }
        Ok(ValidationReport {
            constraint_ps: self.constraint_ps,
            aged_delays_ps: aged_delays,
            timing_met,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{characterize_component, CharacterizationConfig};
    use aix_aging::Lifetime;

    fn cells() -> Arc<Library> {
        Arc::new(Library::nangate45_like())
    }

    fn full_library(cells: &Arc<Library>, effort: Effort) -> ApproxLibrary {
        let mut lib = ApproxLibrary::new();
        for kind in [ComponentKind::Adder, ComponentKind::Multiplier] {
            let config = CharacterizationConfig {
                kind,
                width: 16,
                precisions: (4..=16).rev().collect(),
                scenarios: vec![
                    AgingScenario::Fresh,
                    AgingScenario::worst_case(Lifetime::YEARS_10),
                ],
                effort,
            };
            lib.insert(characterize_component(cells, &config).unwrap());
        }
        lib
    }

    fn demo_design(cells: &Arc<Library>, effort: Effort) -> MicroarchDesign {
        let mut design = MicroarchDesign::new("demo", effort);
        design
            .add_block(cells, "multiplier", ComponentKind::Multiplier, 16)
            .unwrap();
        design
            .add_block(cells, "accumulator", ComponentKind::Adder, 16)
            .unwrap();
        design
    }

    #[test]
    fn constraint_is_worst_block() {
        let cells = cells();
        let design = demo_design(&cells, Effort::Medium);
        let constraint = design.timing_constraint().unwrap();
        // The multiplier dominates a 16-bit adder by a wide margin.
        let mult_delay = analyze(
            &design.blocks()[0].netlist,
            &NetDelays::fresh(&design.blocks()[0].netlist),
        )
        .unwrap()
        .max_delay_ps();
        assert!((constraint.period_ps() - mult_delay).abs() < 1e-9);
    }

    #[test]
    fn flow_approximates_critical_block_only() {
        let cells = cells();
        let effort = Effort::Medium;
        let design = demo_design(&cells, effort);
        let library = full_library(&cells, effort);
        let model = AgingModel::calibrated();
        let plan = apply_aging_approximations(
            &design,
            &library,
            &model,
            AgingScenario::worst_case(Lifetime::YEARS_10),
        )
        .unwrap();
        let mult = plan.block("multiplier").unwrap();
        let adder = plan.block("accumulator").unwrap();
        assert!(
            mult.truncated_bits() > 0,
            "the critical multiplier must be approximated"
        );
        assert_eq!(
            adder.truncated_bits(),
            0,
            "the adder has ample slack and stays exact"
        );
        assert!(mult.relative_slack < 0.0);
        assert!(adder.relative_slack > 0.0);
        assert!(plan.has_approximations());
    }

    #[test]
    fn validation_confirms_timing() {
        let cells = cells();
        let effort = Effort::Medium;
        let design = demo_design(&cells, effort);
        let library = full_library(&cells, effort);
        let model = AgingModel::calibrated();
        let scenario = AgingScenario::worst_case(Lifetime::YEARS_10);
        let plan = apply_aging_approximations(&design, &library, &model, scenario).unwrap();
        let report = plan.validate(&cells, effort, &model).unwrap();
        assert!(
            report.timing_met,
            "approximated design must meet timing under aging: {report:?}"
        );
        assert_eq!(report.aged_delays_ps.len(), 2);
    }

    #[test]
    fn missing_characterization_is_reported() {
        let cells = cells();
        let design = demo_design(&cells, Effort::Medium);
        let empty = ApproxLibrary::new();
        let model = AgingModel::calibrated();
        let err = apply_aging_approximations(
            &design,
            &empty,
            &model,
            AgingScenario::worst_case(Lifetime::YEARS_10),
        )
        .unwrap_err();
        assert!(matches!(err, FlowError::MissingCharacterization { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn fresh_scenario_needs_no_approximation() {
        let cells = cells();
        let effort = Effort::Medium;
        let design = demo_design(&cells, effort);
        let library = full_library(&cells, effort);
        let model = AgingModel::calibrated();
        let plan =
            apply_aging_approximations(&design, &library, &model, AgingScenario::Fresh).unwrap();
        assert!(!plan.has_approximations());
    }
}
