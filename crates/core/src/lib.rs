//! Aging-induced approximations — the paper's primary contribution.
//!
//! Aging (BTI) slows transistors over a circuit's lifetime; the
//! conventional remedy is a timing guardband, paid in clock frequency.
//! This crate removes the guardband by converting the *nondeterministic
//! timing errors* that would otherwise appear into *deterministic, bounded
//! approximations*: a reduction in arithmetic precision whose delay saving
//! compensates the aging-induced delay increase (Eq. 2 of the paper):
//!
//! ```text
//! t_C(Aging, K) ≤ t_C(noAging, N),   K < N
//! ```
//!
//! Two layers implement the methodology:
//!
//! * **Component characterization** ([`characterize_component`],
//!   [`ComponentCharacterization`]) — sweep an RTL component's precision
//!   under aging-aware STA and relate delay to precision (paper Fig. 3,
//!   Fig. 4, Fig. 7). Characterizations are collected into an
//!   [`ApproxLibrary`], the "library of aging-induced approximations".
//! * **Microarchitecture flow** ([`MicroarchDesign`],
//!   [`apply_aging_approximations`]) — given a whole design's timing
//!   constraint, compute every block's aged slack, look the required
//!   precision up in the library, modify the design and validate
//!   (paper Fig. 6, Fig. 8a) — no gate-level simulation needed.
//!
//! # Examples
//!
//! ```
//! use aix_core::{characterize_component, CharacterizationConfig, ComponentKind};
//! use aix_aging::{AgingScenario, Lifetime};
//! use aix_cells::Library;
//! use std::sync::Arc;
//!
//! let lib = Arc::new(Library::nangate45_like());
//! let config = CharacterizationConfig::quick(ComponentKind::Adder, 16);
//! let characterization = characterize_component(&lib, &config)?;
//! // Eq. 2: some reduced precision absorbs 10 years of worst-case aging.
//! let k = characterization
//!     .required_precision(AgingScenario::worst_case(Lifetime::YEARS_10))
//!     .expect("aging is compensable for this adder");
//! assert!(k < 16);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod actual;
mod characterize;
mod component;
mod engine;
mod cancel;
mod error;
pub mod fsutil;
mod guard;
mod idct;
mod imported;
mod journal;
mod library;
mod microarch;
mod quality;
mod savings;
mod schedule;

pub use actual::{actual_case_delays, idct_operand_trace, ActualCaseStress, StimulusKind};
pub use cancel::CancelToken;
pub use characterize::{
    characterize_component, CharacterizationConfig, CharacterizationEntry,
    CharacterizationScenario, ComponentCharacterization,
};
pub use component::{ComponentKind, ParseComponentKindError};
pub use engine::{
    append_bench_json, append_bench_record, default_bench_json_path, default_cache_dir,
    default_journal_dir, parallel_map, Campaign, CampaignStatus, CharacterizationEngine,
    EngineOptions, EngineReport, JobFailure, NetlistCache, FAULT_GRAMMAR,
};
pub use error::AixError;
pub use guard::{decorrelated_backoff_ms, panic_message};
pub use idct::{idct_design, IDCT_BLOCK_NAMES};
pub use imported::{
    characterize_imported, input_buses, load_imported, truncate_imported, verify_imported,
    ImportedConfig, ImportedReport, ImportedVariant, ImportedVerify, InputBus,
};
pub use library::{ApproxLibrary, ParseLibraryError};
pub use microarch::{
    apply_aging_approximations, ApproximationPlan, BlockPlan, FlowError, MicroarchBlock,
    MicroarchDesign, ValidationReport,
};
pub use quality::{
    average_psnr_db, evaluate_sequences, evaluate_video, SequenceQuality, PIPELINE_JPEG_QUALITY,
};
pub use savings::DesignMetrics;
pub use schedule::{plan_degradation_schedule, DegradationSchedule, ScheduleStep};
pub use savings::{compare_against_aging_aware, SavingsReport};
