//! The workspace error taxonomy.
//!
//! Every fallible path of the characterization library, the
//! microarchitecture flow and the `aix` CLI converges on [`AixError`], so
//! callers match on one structured enum instead of downcasting
//! `Box<dyn Error>` — and user-facing failures name the flag, file or line
//! at fault instead of panicking.

use crate::{FlowError, ParseComponentKindError, ParseLibraryError};
use aix_aging::InvalidLifetimeError;
use aix_arith::InvalidSpecError;
use aix_netlist::{ImportError, NetlistError};
use std::error::Error;
use std::fmt;

/// The unified error type of the `aix` workspace.
#[derive(Debug)]
pub enum AixError {
    /// A netlist-, STA- or simulation-level failure (these layers share
    /// [`NetlistError`]).
    Netlist(NetlistError),
    /// A microarchitecture-flow failure.
    Flow(FlowError),
    /// An inconsistent width/precision component specification.
    Spec(InvalidSpecError),
    /// A negative or non-finite lifetime.
    Lifetime(InvalidLifetimeError),
    /// An unknown component-kind label.
    ComponentKind(ParseComponentKindError),
    /// A malformed approximation-library file. `path` is the file the text
    /// came from, when known; the source names the offending line.
    LibraryFormat {
        /// File the library text was read from, if any.
        path: Option<String>,
        /// The parse failure, which names the line at fault.
        source: ParseLibraryError,
    },
    /// A netlist file failed to import. `path` is the file; the source
    /// carries the structured reason and, when known, the line/column.
    Import {
        /// File the netlist text was read from.
        path: String,
        /// The import failure, which names the offending location.
        source: ImportError,
    },
    /// A filesystem failure, annotated with the path involved.
    Io {
        /// Path of the file or directory being accessed.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A required CLI option was not supplied.
    MissingOption {
        /// The flag, including leading dashes (e.g. `--width`).
        flag: &'static str,
    },
    /// A CLI option carried a value that does not parse or is out of range.
    InvalidOption {
        /// The flag, including leading dashes (e.g. `--width`).
        flag: &'static str,
        /// The value as supplied by the user.
        value: String,
        /// What the flag accepts, phrased for the error message.
        expected: &'static str,
    },
    /// One guarded job of a campaign was quarantined: it panicked, timed
    /// out, or exhausted its retry budget.
    JobFailed {
        /// The job, named as `kind wW pP [@scenario]`.
        job: String,
        /// Attempts spent, including retries.
        attempts: usize,
        /// Human-readable cause (error display, panic message, timeout).
        reason: String,
    },
    /// A characterization campaign finished with quarantined jobs, in a
    /// context that requires every job to succeed.
    CampaignIncomplete {
        /// Number of quarantined jobs.
        failed: usize,
        /// Number of jobs the campaign planned.
        planned: usize,
        /// The first failure, rendered like [`AixError::JobFailed`].
        first: String,
    },
}

impl fmt::Display for AixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AixError::Netlist(e) => write!(f, "{e}"),
            AixError::Flow(e) => write!(f, "{e}"),
            AixError::Spec(e) => write!(f, "{e}"),
            AixError::Lifetime(e) => write!(f, "{e}"),
            AixError::ComponentKind(e) => write!(f, "{e}"),
            AixError::LibraryFormat { path, source } => match path {
                Some(path) => write!(f, "{path}: {source}"),
                None => write!(f, "library text: {source}"),
            },
            // `ImportError` prefixes `line:col: ` itself when a location
            // is known, so this renders as `file.v:3:17: message`.
            AixError::Import { path, source } => write!(f, "{path}:{source}"),
            AixError::Io { path, source } => write!(f, "{path}: {source}"),
            AixError::MissingOption { flag } => write!(f, "{flag} is required"),
            AixError::InvalidOption {
                flag,
                value,
                expected,
            } => write!(f, "bad {flag} `{value}`: expected {expected}"),
            AixError::JobFailed {
                job,
                attempts,
                reason,
            } => write!(f, "job {job} failed after {attempts} attempt(s): {reason}"),
            AixError::CampaignIncomplete {
                failed,
                planned,
                first,
            } => write!(
                f,
                "campaign incomplete: {failed} of {planned} job(s) failed; first: {first}"
            ),
        }
    }
}

impl Error for AixError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AixError::Netlist(e) => Some(e),
            AixError::Flow(e) => Some(e),
            AixError::Spec(e) => Some(e),
            AixError::Lifetime(e) => Some(e),
            AixError::ComponentKind(e) => Some(e),
            AixError::LibraryFormat { source, .. } => Some(source),
            AixError::Import { source, .. } => Some(source),
            AixError::Io { source, .. } => Some(source),
            AixError::MissingOption { .. }
            | AixError::InvalidOption { .. }
            | AixError::JobFailed { .. }
            | AixError::CampaignIncomplete { .. } => None,
        }
    }
}

impl AixError {
    /// Wraps an I/O error with the path being accessed.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        AixError::Io {
            path: path.into(),
            source,
        }
    }

    /// Wraps a netlist import failure with the file it came from.
    pub fn import(path: impl Into<String>, source: ImportError) -> Self {
        AixError::Import {
            path: path.into(),
            source,
        }
    }

    /// Wraps a library parse error with the file it came from.
    pub fn library_file(path: impl Into<String>, source: ParseLibraryError) -> Self {
        AixError::LibraryFormat {
            path: Some(path.into()),
            source,
        }
    }
}

impl From<NetlistError> for AixError {
    fn from(value: NetlistError) -> Self {
        AixError::Netlist(value)
    }
}

impl From<FlowError> for AixError {
    fn from(value: FlowError) -> Self {
        AixError::Flow(value)
    }
}

impl From<InvalidSpecError> for AixError {
    fn from(value: InvalidSpecError) -> Self {
        AixError::Spec(value)
    }
}

impl From<InvalidLifetimeError> for AixError {
    fn from(value: InvalidLifetimeError) -> Self {
        AixError::Lifetime(value)
    }
}

impl From<ParseComponentKindError> for AixError {
    fn from(value: ParseComponentKindError) -> Self {
        AixError::ComponentKind(value)
    }
}

impl From<ParseLibraryError> for AixError {
    fn from(value: ParseLibraryError) -> Self {
        AixError::LibraryFormat {
            path: None,
            source: value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ApproxLibrary;

    #[test]
    fn display_names_the_fault() {
        let missing = AixError::MissingOption { flag: "--width" };
        assert!(missing.to_string().contains("--width"));
        let invalid = AixError::InvalidOption {
            flag: "--samples",
            value: "many".into(),
            expected: "a positive integer",
        };
        let text = invalid.to_string();
        assert!(text.contains("--samples") && text.contains("many"));
    }

    #[test]
    fn library_parse_errors_carry_path_and_line() {
        let parse = ApproxLibrary::from_text("not a library").unwrap_err();
        let err = AixError::library_file("lib.txt", parse);
        let text = err.to_string();
        assert!(text.contains("lib.txt") && text.contains("line 1"), "{text}");
    }

    #[test]
    fn from_impls_preserve_sources() {
        let netlist = NetlistError::NoOutputs;
        let err: AixError = netlist.into();
        assert!(std::error::Error::source(&err).is_some());
        let parse: AixError = ApproxLibrary::from_text("junk").unwrap_err().into();
        assert!(std::error::Error::source(&parse).is_some());
    }
}
