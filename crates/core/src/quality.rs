//! Quality evaluation of an approximated IDCT over the test sequences
//! (paper Fig. 8b / Fig. 9).

use aix_dct::{
    decode_image, encode_image_quantized, DatapathPrecision, FixedPointTransform, Quantizer,
};
use aix_image::{psnr, ssim, Image, Sequence};

/// The codec quality factor of the evaluation pipeline. Chosen so the
/// exact (fresh) chain reports the codec-grade ≈45 dB of the paper's
/// Fig. 2 reference frame.
pub const PIPELINE_JPEG_QUALITY: u8 = 85;

/// PSNR of one sequence decoded by the approximated IDCT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequenceQuality {
    /// The sequence evaluated.
    pub sequence: Sequence,
    /// Reconstruction PSNR in dB.
    pub psnr_db: f64,
    /// PSNR of the exact pipeline on the same frame, for reference.
    pub exact_psnr_db: f64,
    /// Structural similarity of the reconstruction, in `(0, 1]`.
    pub ssim: f64,
}

impl SequenceQuality {
    /// Quality drop versus the exact pipeline, in dB.
    pub fn drop_db(&self) -> f64 {
        self.exact_psnr_db - self.psnr_db
    }
}

/// Decodes one frame of every test sequence with an IDCT whose datapath
/// carries `precision`, via fast RTL simulation (the paper's validation
/// path: seconds per image instead of days of gate-level simulation).
///
/// Frames are rendered at `width × height`; QCIF (176×144) matches the
/// original traces.
pub fn evaluate_sequences(
    precision: DatapathPrecision,
    width: usize,
    height: usize,
) -> Vec<SequenceQuality> {
    let encoder = FixedPointTransform::exact();
    let decoder = FixedPointTransform::new(precision);
    let quantizer = Quantizer::jpeg_quality(PIPELINE_JPEG_QUALITY);
    Sequence::ALL
        .iter()
        .map(|&sequence| {
            let frame: Image = sequence.frame(width, height, 0);
            let encoded = encode_image_quantized(&frame, &encoder, &quantizer);
            let exact = decode_image(&encoded, &encoder);
            let approx = decode_image(&encoded, &decoder);
            SequenceQuality {
                sequence,
                psnr_db: psnr(&frame, &approx),
                exact_psnr_db: psnr(&frame, &exact),
                ssim: ssim(&frame, &approx),
            }
        })
        .collect()
}

/// Per-frame PSNR trajectory of one sequence decoded by the approximated
/// IDCT — the video view of Fig. 8(b): quality must stay stable across
/// frames, not just on a lucky still.
pub fn evaluate_video(
    sequence: Sequence,
    precision: DatapathPrecision,
    width: usize,
    height: usize,
    frames: usize,
) -> Vec<f64> {
    let encoder = FixedPointTransform::exact();
    let decoder = FixedPointTransform::new(precision);
    let quantizer = Quantizer::jpeg_quality(PIPELINE_JPEG_QUALITY);
    (0..frames)
        .map(|index| {
            let frame = sequence.frame(width, height, index);
            let encoded = encode_image_quantized(&frame, &encoder, &quantizer);
            psnr(&frame, &decode_image(&encoded, &decoder))
        })
        .collect()
}

/// Mean PSNR over a set of sequence results, ignoring infinities.
pub fn average_psnr_db(results: &[SequenceQuality]) -> f64 {
    let finite: Vec<f64> = results
        .iter()
        .map(|r| r.psnr_db)
        .filter(|q| q.is_finite())
        .collect();
    if finite.is_empty() {
        f64::INFINITY
    } else {
        finite.iter().sum::<f64>() / finite.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_precision_is_transparent() {
        let results = evaluate_sequences(DatapathPrecision::exact(), 64, 48);
        assert_eq!(results.len(), 9);
        for r in &results {
            assert!(
                r.drop_db().abs() < 1e-9,
                "{}: exact decoder must equal reference",
                r.sequence
            );
        }
    }

    #[test]
    fn truncation_drops_quality_and_mobile_is_worst() {
        let results = evaluate_sequences(DatapathPrecision::new(12, 0), 64, 48);
        let avg = average_psnr_db(&results);
        assert!(avg.is_finite() && avg > 10.0);
        let mobile = results
            .iter()
            .find(|r| r.sequence == Sequence::Mobile)
            .unwrap();
        for r in &results {
            assert!(
                r.psnr_db >= mobile.psnr_db - 1.0,
                "{} should not be much worse than mobile",
                r.sequence
            );
            assert!(r.drop_db() > 0.0, "{} must lose quality", r.sequence);
            assert!(r.ssim > 0.0 && r.ssim < 1.0, "{}: ssim {}", r.sequence, r.ssim);
        }
    }

    #[test]
    fn video_quality_is_stable_across_frames() {
        let trajectory =
            evaluate_video(Sequence::Carphone, DatapathPrecision::new(9, 0), 64, 48, 5);
        assert_eq!(trajectory.len(), 5);
        let min = trajectory.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = trajectory.iter().cloned().fold(0.0f64, f64::max);
        assert!(min > 20.0, "every frame stays usable: {trajectory:?}");
        assert!(
            max - min < 3.0,
            "frame-to-frame quality is stable: {trajectory:?}"
        );
    }

    #[test]
    fn average_ignores_infinite_entries() {
        let results = vec![
            SequenceQuality {
                sequence: Sequence::Akiyo,
                psnr_db: f64::INFINITY,
                exact_psnr_db: f64::INFINITY,
                ssim: 1.0,
            },
            SequenceQuality {
                sequence: Sequence::Mobile,
                psnr_db: 30.0,
                exact_psnr_db: 40.0,
                ssim: 0.9,
            },
        ];
        assert_eq!(average_psnr_db(&results), 30.0);
    }
}
