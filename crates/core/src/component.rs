//! RTL component kinds and their synthesis glue.

use aix_arith::ComponentSpec;
use aix_cells::Library;
use aix_netlist::{Netlist, NetlistError};
use aix_synth::{Effort, Synthesizer};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// The datapath component families the paper characterizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComponentKind {
    /// A two-operand adder.
    Adder,
    /// A two-operand multiplier.
    Multiplier,
    /// A multiply-accumulate unit.
    Mac,
}

impl ComponentKind {
    /// All component kinds.
    pub const ALL: [ComponentKind; 3] = [
        ComponentKind::Adder,
        ComponentKind::Multiplier,
        ComponentKind::Mac,
    ];

    /// Synthesizes this component at the given spec and effort.
    ///
    /// # Errors
    ///
    /// Propagates synthesis errors; well-formed specs never fail.
    pub fn synthesize(
        self,
        library: &Arc<Library>,
        spec: ComponentSpec,
        effort: Effort,
    ) -> Result<Netlist, NetlistError> {
        let synth = Synthesizer::new(Arc::clone(library), effort);
        match self {
            ComponentKind::Adder => synth.adder(spec),
            ComponentKind::Multiplier => synth.multiplier(spec),
            ComponentKind::Mac => synth.mac(spec),
        }
    }

    /// Short lower-case label used in reports and the library text format.
    pub fn label(self) -> &'static str {
        match self {
            ComponentKind::Adder => "adder",
            ComponentKind::Multiplier => "multiplier",
            ComponentKind::Mac => "mac",
        }
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing a [`ComponentKind`] label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseComponentKindError(pub(crate) String);

impl fmt::Display for ParseComponentKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown component kind `{}`", self.0)
    }
}

impl std::error::Error for ParseComponentKindError {}

impl FromStr for ComponentKind {
    type Err = ParseComponentKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "adder" => Ok(ComponentKind::Adder),
            "multiplier" => Ok(ComponentKind::Multiplier),
            "mac" => Ok(ComponentKind::Mac),
            other => Err(ParseComponentKindError(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for kind in ComponentKind::ALL {
            assert_eq!(kind.label().parse::<ComponentKind>().unwrap(), kind);
        }
        assert!("frobnicator".parse::<ComponentKind>().is_err());
    }

    #[test]
    fn synthesis_produces_expected_port_shapes() {
        let lib = Arc::new(Library::nangate45_like());
        let spec = ComponentSpec::full(8);
        let adder = ComponentKind::Adder
            .synthesize(&lib, spec, Effort::Medium)
            .unwrap();
        assert_eq!(adder.inputs().len(), 16);
        assert_eq!(adder.outputs().len(), 9);
        let mult = ComponentKind::Multiplier
            .synthesize(&lib, spec, Effort::Medium)
            .unwrap();
        assert_eq!(mult.outputs().len(), 16);
        let mac = ComponentKind::Mac
            .synthesize(&lib, spec, Effort::Medium)
            .unwrap();
        assert_eq!(mac.inputs().len(), 32);
        assert_eq!(mac.outputs().len(), 16);
    }
}
