//! Efficiency comparison against the aging-aware synthesis baseline
//! (paper Fig. 8c).
//!
//! The baseline [DAC'16] keeps full precision and suppresses aging by
//! re-sizing cells against degradation-aware timing — paying area, leakage
//! and dynamic power, and still clocking at its (residual) aged critical
//! path. Converting the guardband into approximations instead lets the
//! design clock at its fresh critical path with a *smaller* netlist.

use crate::{ApproximationPlan, MicroarchDesign};
use aix_aging::{AgingModel, AgingScenario};
use aix_arith::ComponentSpec;
use aix_cells::Library;
use aix_netlist::Netlist;
use aix_power::{analyze_power, PowerConfig};
use aix_sim::{Activity, NormalOperands, OperandSource};
use aix_sta::{analyze, NetDelays};
use aix_synth::aging_aware_synthesize;
#[cfg(test)]
use aix_synth::Effort;
use std::sync::Arc;

use crate::microarch::FlowError;

/// Area/power/timing metrics of one complete design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignMetrics {
    /// Clock period the design runs at, in ps.
    pub clock_ps: f64,
    /// Total area over all blocks, in µm².
    pub area_um2: f64,
    /// Total leakage, in µW.
    pub leakage_uw: f64,
    /// Total dynamic power at the design's clock, in µW.
    pub dynamic_uw: f64,
}

impl DesignMetrics {
    /// Clock frequency in GHz.
    pub fn frequency_ghz(&self) -> f64 {
        1000.0 / self.clock_ps
    }

    /// Energy per clock cycle, in fJ.
    pub fn energy_per_cycle_fj(&self) -> f64 {
        (self.leakage_uw + self.dynamic_uw) / self.frequency_ghz()
    }
}

/// The Fig. 8c comparison: our aging-induced approximations versus
/// aging-aware synthesis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SavingsReport {
    /// Metrics of the approximated design (ours).
    pub ours: DesignMetrics,
    /// Metrics of the aging-aware-synthesis baseline.
    pub baseline: DesignMetrics,
}

impl SavingsReport {
    /// Relative frequency gain of ours over the baseline (positive = faster).
    pub fn frequency_gain(&self) -> f64 {
        self.ours.frequency_ghz() / self.baseline.frequency_ghz() - 1.0
    }

    /// Relative area saving (positive = smaller).
    pub fn area_saving(&self) -> f64 {
        1.0 - self.ours.area_um2 / self.baseline.area_um2
    }

    /// Relative leakage saving.
    pub fn leakage_saving(&self) -> f64 {
        1.0 - self.ours.leakage_uw / self.baseline.leakage_uw
    }

    /// Relative dynamic-power saving.
    pub fn dynamic_saving(&self) -> f64 {
        1.0 - self.ours.dynamic_uw / self.baseline.dynamic_uw
    }

    /// Relative energy-per-cycle saving.
    pub fn energy_saving(&self) -> f64 {
        1.0 - self.ours.energy_per_cycle_fj() / self.baseline.energy_per_cycle_fj()
    }
}

/// Collects area/leakage/dynamic metrics of a set of block netlists at a
/// given clock, using normally distributed stimuli for activity.
fn design_metrics(
    blocks: &[(usize, Netlist)],
    clock_ps: f64,
    activity_vectors: usize,
) -> Result<DesignMetrics, FlowError> {
    let _span = aix_obs::span!(
        "design_metrics",
        blocks = blocks.len(),
        vectors = activity_vectors,
    );
    let config = PowerConfig::at_period_ps(clock_ps);
    let mut area = 0.0;
    let mut leakage = 0.0;
    let mut dynamic = 0.0;
    for (seed, (operand_width, netlist)) in blocks.iter().enumerate() {
        let padding = netlist.inputs().len() - 2 * operand_width;
        let stimuli = NormalOperands::new(*operand_width, seed as u64 + 1)
            .vectors_with_zeros(activity_vectors, padding);
        let activity = Activity::collect(netlist, stimuli)?;
        let report = analyze_power(netlist, &activity, &config);
        area += report.area_um2;
        leakage += report.leakage_uw;
        dynamic += report.dynamic_uw;
    }
    Ok(DesignMetrics {
        clock_ps,
        area_um2: area,
        leakage_uw: leakage,
        dynamic_uw: dynamic,
    })
}

/// Builds both designs and compares them (Fig. 8c):
///
/// * **ours** — every block re-synthesized at its planned precision,
///   clocked at the fresh constraint (no guardband; aging is absorbed by
///   the approximations).
/// * **baseline** — full-precision blocks re-sized by aging-aware synthesis
///   against `scenario`, clocked at the slowest block's residual aged
///   delay.
///
/// # Errors
///
/// Propagates synthesis/STA failures.
pub fn compare_against_aging_aware(
    design: &MicroarchDesign,
    plan: &ApproximationPlan,
    library: &Arc<Library>,
    model: &AgingModel,
    scenario: AgingScenario,
    activity_vectors: usize,
) -> Result<SavingsReport, FlowError> {
    let _span = aix_obs::span!("savings_compare", blocks = plan.blocks.len());
    // Ours: planned precisions at the fresh constraint.
    let mut ours_blocks = Vec::new();
    for block in &plan.blocks {
        let spec = ComponentSpec::new(block.width, block.precision)
            .expect("plan precisions are valid");
        let netlist = block
            .kind
            .synthesize(library, spec, design.effort())
            .map_err(FlowError::Netlist)?;
        ours_blocks.push((block.width, netlist));
    }
    let ours = design_metrics(&ours_blocks, plan.constraint_ps, activity_vectors)?;

    // Baseline: aging-aware re-sizing of the full-precision blocks.
    let mut baseline_clock = 0.0f64;
    let mut baseline_blocks = Vec::new();
    for block in design.blocks() {
        let mut netlist = block.netlist.clone();
        let iterations = netlist.gate_count().min(400);
        aging_aware_synthesize(&mut netlist, model, scenario, plan.constraint_ps, iterations)?;
        let aged = analyze(&netlist, &NetDelays::aged(&netlist, model, scenario))?;
        baseline_clock = baseline_clock.max(aged.max_delay_ps());
        baseline_blocks.push((block.width, netlist));
    }
    let baseline = design_metrics(&baseline_blocks, baseline_clock, activity_vectors)?;

    Ok(SavingsReport { ours, baseline })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        apply_aging_approximations, characterize_component, ApproxLibrary,
        CharacterizationConfig, ComponentKind,
    };
    use aix_aging::Lifetime;

    #[test]
    fn approximations_beat_the_baseline_on_every_axis() {
        let cells = Arc::new(Library::nangate45_like());
        let effort = Effort::Medium;
        let mut design = MicroarchDesign::new("mini", effort);
        design
            .add_block(&cells, "multiplier", ComponentKind::Multiplier, 12)
            .unwrap();
        design
            .add_block(&cells, "accumulator", ComponentKind::Adder, 12)
            .unwrap();

        let mut library = ApproxLibrary::new();
        let config = CharacterizationConfig {
            kind: ComponentKind::Multiplier,
            width: 12,
            precisions: (3..=12).rev().collect(),
            scenarios: vec![
                AgingScenario::Fresh,
                AgingScenario::worst_case(Lifetime::YEARS_10),
            ],
            effort,
        };
        library.insert(characterize_component(&cells, &config).unwrap());

        let model = AgingModel::calibrated();
        let scenario = AgingScenario::worst_case(Lifetime::YEARS_10);
        let plan = apply_aging_approximations(&design, &library, &model, scenario).unwrap();
        let report =
            compare_against_aging_aware(&design, &plan, &cells, &model, scenario, 100).unwrap();

        assert!(
            report.frequency_gain() > 0.0,
            "removing the guardband must be faster: {:+.1}%",
            report.frequency_gain() * 100.0
        );
        assert!(report.area_saving() > 0.0, "truncation saves area");
        assert!(report.leakage_saving() > 0.0, "fewer gates leak less");
        assert!(report.energy_saving() > 0.0, "net energy saving");
    }
}
