//! The write-ahead run journal: crash-safe campaign resume.
//!
//! A characterization campaign records its identity and per-job progress in
//! a journal file under the journal directory (default `out/journal/`).
//! Every append rewrites the file through the same atomic temp-file + rename
//! discipline as the characterization cache, so a `SIGKILL` at any instant
//! leaves either the previous journal or the new one — never a torn file.
//!
//! Layout (`campaign-<fingerprint>.journal`):
//!
//! ```text
//! aix-journal v1
//! campaign <16-hex campaign fingerprint>
//! plan <job count>
//! done <16-hex job fingerprint> <precision> <scenario token> <delay ps>
//! failed <16-hex job fingerprint> <stage> <attempts> <reason …>
//! ```
//!
//! `done` lines mirror the cache's `entry` records (same 6-decimal delay
//! format), so a resumed run rebuilds byte-identical library text from the
//! journal alone — the journal makes resume independent of the cache, and
//! `--resume --no-cache` works. A journal whose campaign fingerprint does
//! not match the planned campaign is ignored wholesale: stale journals can
//! never leak results across configurations, cell libraries or calibrations.

use crate::fsutil::write_atomic;
use crate::library::parse_scenario;
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};

const JOURNAL_HEADER: &str = "aix-journal v1";

/// One campaign's write-ahead journal.
#[derive(Debug)]
pub(crate) struct RunJournal {
    path: PathBuf,
    /// Record lines after the header/campaign/plan preamble, in append
    /// order.
    lines: Vec<String>,
    campaign: u64,
    planned: usize,
    /// Completed jobs loaded on resume or recorded this run:
    /// job fingerprint → scenario token → quantized delay.
    done: HashMap<u64, BTreeMap<String, f64>>,
}

impl RunJournal {
    /// Opens the journal for `campaign` under `dir`. With `resume`, prior
    /// `done` records of a matching journal file are loaded (and carried
    /// over into the rewritten file); otherwise any existing journal for
    /// this campaign is discarded and the run starts a fresh one. Prior
    /// `failed` records are never carried over — a resumed run retries
    /// quarantined jobs.
    pub fn open(dir: &Path, campaign: u64, resume: bool) -> Self {
        let path = dir.join(format!("campaign-{campaign:016x}.journal"));
        let mut journal = Self {
            path,
            lines: Vec::new(),
            campaign,
            planned: 0,
            done: HashMap::new(),
        };
        if resume {
            journal.load();
        }
        journal
    }

    /// Loads `done` records from an existing, intact journal whose campaign
    /// fingerprint matches. Malformed lines are skipped — a torn line can
    /// only cost re-execution, never correctness.
    fn load(&mut self) {
        let Ok(text) = std::fs::read_to_string(&self.path) else {
            return;
        };
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(JOURNAL_HEADER) {
            return;
        }
        let campaign_ok = lines
            .next()
            .and_then(|line| line.trim().strip_prefix("campaign "))
            .and_then(|fp| u64::from_str_radix(fp.trim(), 16).ok())
            .is_some_and(|fp| fp == self.campaign);
        if !campaign_ok {
            return;
        }
        for line in lines {
            let mut fields = line.split_whitespace();
            if fields.next() != Some("done") {
                continue;
            }
            let Some(job) = fields.next().and_then(|f| u64::from_str_radix(f, 16).ok()) else {
                continue;
            };
            let Some(_precision) = fields.next().and_then(|f| f.parse::<usize>().ok()) else {
                continue;
            };
            let Some(token) = fields.next() else { continue };
            if parse_scenario(token).is_none() {
                continue;
            }
            let Some(delay) = fields.next().and_then(|f| f.parse::<f64>().ok()) else {
                continue;
            };
            if !delay.is_finite() || delay < 0.0 {
                continue;
            }
            self.lines.push(line.trim().to_owned());
            self.done.entry(job).or_default().insert(token.to_owned(), delay);
        }
    }

    /// The delays a prior run completed for `job`, when it covers every
    /// token in `required`.
    pub fn completed(&self, job: u64, required: &[String]) -> Option<&BTreeMap<String, f64>> {
        let entries = self.done.get(&job)?;
        (!required.is_empty() && required.iter().all(|t| entries.contains_key(t)))
            .then_some(entries)
    }

    /// Records the planned job count and persists the journal preamble —
    /// the write-ahead step, before any job runs.
    pub fn record_plan(&mut self, planned: usize) {
        self.planned = planned;
        self.flush();
    }

    /// Records one job as done with its scenario delays and persists.
    /// Idempotent: a job already recorded (e.g. loaded on resume) is not
    /// duplicated.
    pub fn record_done(&mut self, job: u64, precision: usize, entries: &BTreeMap<String, f64>) {
        let known = self.done.entry(job).or_default();
        let mut appended = false;
        for (token, delay) in entries {
            if known.contains_key(token) {
                continue;
            }
            known.insert(token.clone(), *delay);
            self.lines
                .push(format!("done {job:016x} {precision} {token} {delay:.6}"));
            appended = true;
        }
        if appended {
            self.flush();
        }
    }

    /// Records one job failure and persists.
    pub fn record_failed(&mut self, job: u64, stage: &str, attempts: usize, reason: &str) {
        let reason = reason.replace(['\n', '\r'], " ");
        self.lines
            .push(format!("failed {job:016x} {stage} {attempts} {reason}"));
        self.flush();
    }

    /// Rewrites the journal file atomically. Best effort, like cache
    /// writebacks: an unwritable journal directory degrades to
    /// non-resumable runs, never to a failed campaign.
    fn flush(&self) {
        let mut text = format!(
            "{JOURNAL_HEADER}\ncampaign {:016x}\nplan {}\n",
            self.campaign, self.planned
        );
        for line in &self.lines {
            text.push_str(line);
            text.push('\n');
        }
        let _ = write_atomic(&self.path, &text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("aix-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn delays(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(t, d)| ((*t).to_owned(), *d)).collect()
    }

    #[test]
    fn done_records_roundtrip_through_resume() {
        let dir = fresh_dir("roundtrip");
        let mut journal = RunJournal::open(&dir, 0xabcd, false);
        journal.record_plan(3);
        journal.record_done(7, 12, &delays(&[("fresh", 101.5), ("wc:10", 120.25)]));
        journal.record_failed(8, "synth", 2, "panicked: kaput\nwith newline");

        let resumed = RunJournal::open(&dir, 0xabcd, true);
        let tokens = vec!["fresh".to_owned(), "wc:10".to_owned()];
        let entries = resumed.completed(7, &tokens).expect("job 7 is done");
        assert_eq!(entries["fresh"], 101.5);
        assert_eq!(entries["wc:10"], 120.25);
        // Partial coverage does not count as done.
        let more = vec!["fresh".to_owned(), "wc:10".to_owned(), "bal:10".to_owned()];
        assert!(resumed.completed(7, &more).is_none());
        // Failures are not carried over: the failed job is retried.
        assert!(resumed.completed(8, &tokens).is_none());
        let text = std::fs::read_to_string(dir.join("campaign-000000000000abcd.journal")).unwrap();
        assert!(text.contains("failed 0000000000000008 synth 2 panicked: kaput with newline"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_open_discards_prior_records() {
        let dir = fresh_dir("fresh");
        let mut journal = RunJournal::open(&dir, 1, false);
        journal.record_plan(1);
        journal.record_done(7, 12, &delays(&[("fresh", 10.0)]));
        let fresh = RunJournal::open(&dir, 1, false);
        assert!(fresh.completed(7, &["fresh".to_owned()]).is_none());
    }

    #[test]
    fn mismatched_campaign_and_torn_lines_are_ignored() {
        let dir = fresh_dir("mismatch");
        let mut journal = RunJournal::open(&dir, 2, false);
        journal.record_plan(1);
        journal.record_done(9, 8, &delays(&[("fresh", 55.0)]));
        // A different campaign fingerprint never sees these records.
        let other = RunJournal::open(&dir, 3, true);
        assert!(other.completed(9, &["fresh".to_owned()]).is_none());

        // Corrupt the file with torn/garbage lines: loading skips them.
        let path = dir.join("campaign-0000000000000002.journal");
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("done zzzz 8 fresh 1.0\ndone 0000000000000009 8 notascenario 1.0\ndone 0000000000000009 8 wc:10 -4.0\ngarbage\n");
        std::fs::write(&path, text).unwrap();
        let resumed = RunJournal::open(&dir, 2, true);
        assert!(resumed.completed(9, &["fresh".to_owned()]).is_some());
        assert!(resumed.completed(9, &["wc:10".to_owned()]).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
