//! The IDCT microarchitecture of the paper's case study.

use crate::{ComponentKind, MicroarchDesign};
use aix_cells::Library;
use aix_netlist::NetlistError;
use aix_synth::Effort;
use std::sync::Arc;

/// Block names of the IDCT design, in order.
pub const IDCT_BLOCK_NAMES: [&str; 3] = ["multiplier", "accumulator", "rounding"];

/// Builds the IDCT microarchitecture the paper evaluates: a 32-bit
/// coefficient multiplier (the critical-path block), a 32-bit accumulator
/// and a 16-bit rounding/level-shift adder, each a registered combinational
/// block sharing one clock.
///
/// # Errors
///
/// Propagates synthesis errors; never fails for the built-in library.
///
/// # Examples
///
/// ```
/// use aix_core::idct_design;
/// use aix_cells::Library;
/// use aix_synth::Effort;
/// use std::sync::Arc;
///
/// let cells = Arc::new(Library::nangate45_like());
/// let design = idct_design(&cells, Effort::Medium)?;
/// assert_eq!(design.blocks().len(), 3);
/// # Ok::<(), aix_netlist::NetlistError>(())
/// ```
pub fn idct_design(library: &Arc<Library>, effort: Effort) -> Result<MicroarchDesign, NetlistError> {
    let mut design = MicroarchDesign::new("idct", effort);
    design.add_block(library, "multiplier", ComponentKind::Multiplier, 32)?;
    design.add_block(library, "accumulator", ComponentKind::Adder, 32)?;
    design.add_block(library, "rounding", ComponentKind::Adder, 16)?;
    Ok(design)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aix_sta::{analyze, NetDelays};

    #[test]
    fn multiplier_is_the_critical_block() {
        let cells = Arc::new(Library::nangate45_like());
        let design = idct_design(&cells, Effort::Medium).unwrap();
        let constraint = design.timing_constraint().unwrap();
        let delays: Vec<f64> = design
            .blocks()
            .iter()
            .map(|b| {
                analyze(&b.netlist, &NetDelays::fresh(&b.netlist))
                    .unwrap()
                    .max_delay_ps()
            })
            .collect();
        assert_eq!(
            delays[0], constraint.period_ps(),
            "the multiplier sets the clock"
        );
        assert!(delays[1] < delays[0] && delays[2] < delays[1]);
    }

    #[test]
    fn block_names_match_constant() {
        let cells = Arc::new(Library::nangate45_like());
        let design = idct_design(&cells, Effort::Medium).unwrap();
        let names: Vec<&str> = design.blocks().iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, IDCT_BLOCK_NAMES);
    }
}
