//! Graceful-degradation schedules — the future the paper's conclusion
//! envisions: "by applying approximations adaptively we can envision
//! future systems that gradually degrade in quality as they age over
//! time."
//!
//! A [`DegradationSchedule`] plans, for a sequence of lifetime
//! checkpoints, the per-block precision a design needs *at that age*: a
//! young circuit runs at (nearly) full precision and sheds bits only as
//! its transistors actually slow down, instead of paying the end-of-life
//! approximation from day one.

use crate::{apply_aging_approximations, ApproxLibrary, ApproximationPlan, MicroarchDesign};
use crate::microarch::FlowError;
use aix_aging::{AgingModel, AgingScenario, Lifetime, StressCondition};

/// One checkpoint of a degradation schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleStep {
    /// Circuit age this step takes effect at.
    pub lifetime: Lifetime,
    /// The approximation plan protecting operation up to this age.
    pub plan: ApproximationPlan,
}

/// A lifetime-indexed sequence of approximation plans.
///
/// # Examples
///
/// See [`plan_degradation_schedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationSchedule {
    steps: Vec<ScheduleStep>,
}

impl DegradationSchedule {
    /// The checkpoints, youngest first.
    pub fn steps(&self) -> &[ScheduleStep] {
        &self.steps
    }

    /// The precision block `name` runs at when the circuit is `age` old:
    /// the plan of the earliest checkpoint at or beyond `age` (a deployed
    /// schedule must protect until its *next* reconfiguration point).
    pub fn precision_at(&self, name: &str, age: Lifetime) -> Option<usize> {
        self.steps
            .iter()
            .find(|step| step.lifetime.years() >= age.years() - 1e-12)
            .or_else(|| self.steps.last())
            .and_then(|step| step.plan.block(name))
            .map(|block| block.precision)
    }

    /// Whether every block's precision is non-increasing over the
    /// schedule — the defining property of graceful degradation.
    pub fn is_monotone(&self) -> bool {
        let Some(first) = self.steps.first() else {
            return true;
        };
        for block_index in 0..first.plan.blocks.len() {
            let mut last = usize::MAX;
            for step in &self.steps {
                let precision = step.plan.blocks[block_index].precision;
                if precision > last {
                    return false;
                }
                last = precision;
            }
        }
        true
    }
}

/// Plans precision over a whole lifetime: runs the Fig. 6 flow once per
/// checkpoint under the given stress condition and collects the plans.
///
/// # Errors
///
/// Propagates [`FlowError`] from any checkpoint's flow run.
///
/// # Examples
///
/// ```no_run
/// use aix_aging::{AgingModel, Lifetime, StressCondition};
/// use aix_cells::Library;
/// use aix_core::{idct_design, plan_degradation_schedule, ApproxLibrary};
/// use aix_synth::Effort;
/// use std::sync::Arc;
///
/// let cells = Arc::new(Library::nangate45_like());
/// let design = idct_design(&cells, Effort::Ultra)?;
/// let library = ApproxLibrary::new(); // characterized elsewhere
/// let schedule = plan_degradation_schedule(
///     &design,
///     &library,
///     &AgingModel::calibrated(),
///     StressCondition::Worst,
///     &[Lifetime::YEARS_1, Lifetime::from_years(3.0), Lifetime::YEARS_10],
/// )?;
/// assert!(schedule.is_monotone());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn plan_degradation_schedule(
    design: &MicroarchDesign,
    library: &ApproxLibrary,
    model: &AgingModel,
    stress: StressCondition,
    checkpoints: &[Lifetime],
) -> Result<DegradationSchedule, FlowError> {
    let mut steps = Vec::with_capacity(checkpoints.len());
    for &lifetime in checkpoints {
        let scenario = if lifetime.is_fresh() {
            AgingScenario::Fresh
        } else {
            AgingScenario::Aged { stress, lifetime }
        };
        let plan = apply_aging_approximations(design, library, model, scenario)?;
        steps.push(ScheduleStep { lifetime, plan });
    }
    steps.sort_by(|a, b| {
        a.lifetime
            .years()
            .partial_cmp(&b.lifetime.years())
            .expect("lifetimes are finite")
    });
    Ok(DegradationSchedule { steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{characterize_component, CharacterizationConfig, ComponentKind};
    use aix_cells::Library;
    use aix_synth::Effort;
    use std::sync::Arc;

    fn setup() -> (Arc<Library>, MicroarchDesign, ApproxLibrary) {
        let cells = Arc::new(Library::nangate45_like());
        let effort = Effort::Medium;
        let mut design = MicroarchDesign::new("sched", effort);
        design
            .add_block(&cells, "multiplier", ComponentKind::Multiplier, 12)
            .expect("synthesis");
        let mut library = ApproxLibrary::new();
        let config = CharacterizationConfig {
            kind: ComponentKind::Multiplier,
            width: 12,
            precisions: (4..=12).rev().collect(),
            scenarios: [0.5, 1.0, 3.0, 10.0]
                .iter()
                .map(|&y| AgingScenario::worst_case(Lifetime::from_years(y)))
                .chain([AgingScenario::Fresh])
                .collect(),
            effort,
        };
        library.insert(characterize_component(&cells, &config).expect("characterization"));
        (cells, design, library)
    }

    #[test]
    fn schedule_is_monotone_and_ends_truncated() {
        let (_cells, design, library) = setup();
        let model = AgingModel::calibrated();
        let schedule = plan_degradation_schedule(
            &design,
            &library,
            &model,
            StressCondition::Worst,
            &[
                Lifetime::from_years(0.5),
                Lifetime::YEARS_1,
                Lifetime::from_years(3.0),
                Lifetime::YEARS_10,
            ],
        )
        .expect("schedule");
        assert!(schedule.is_monotone(), "{schedule:?}");
        let young = schedule
            .precision_at("multiplier", Lifetime::from_years(0.5))
            .expect("planned block");
        let old = schedule
            .precision_at("multiplier", Lifetime::YEARS_10)
            .expect("planned block");
        assert!(
            young >= old,
            "a young circuit keeps more precision: {young} vs {old}"
        );
        assert!(old < 12, "end of life requires truncation");
    }

    #[test]
    fn precision_lookup_uses_the_protecting_checkpoint() {
        let (_cells, design, library) = setup();
        let model = AgingModel::calibrated();
        let schedule = plan_degradation_schedule(
            &design,
            &library,
            &model,
            StressCondition::Worst,
            &[Lifetime::YEARS_1, Lifetime::YEARS_10],
        )
        .expect("schedule");
        // An age between checkpoints is protected by the later plan.
        let mid = schedule
            .precision_at("multiplier", Lifetime::from_years(5.0))
            .expect("planned block");
        let ten = schedule
            .precision_at("multiplier", Lifetime::YEARS_10)
            .expect("planned block");
        assert_eq!(mid, ten);
        // Unknown blocks yield None.
        assert_eq!(schedule.precision_at("nope", Lifetime::YEARS_1), None);
    }

    #[test]
    fn empty_schedule_is_trivially_monotone() {
        let schedule = DegradationSchedule { steps: Vec::new() };
        assert!(schedule.is_monotone());
        assert_eq!(schedule.precision_at("x", Lifetime::YEARS_1), None);
    }
}
