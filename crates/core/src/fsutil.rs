//! Crash-safe filesystem helpers shared by the characterization cache, the
//! run journal and the benchmark log.

use std::io;
use std::path::Path;

/// Writes `text` to `path` atomically: the bytes land in a temp file in the
/// same directory (created if absent) which is then renamed over the
/// target, so a killed or concurrent run can never leave a truncated file
/// behind — readers observe either the old contents or the new ones.
pub(crate) fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_replaces_contents_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("aix-fsutil-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("file.txt");
        write_atomic(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        write_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        let siblings: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(siblings.len(), 1, "no temp file left: {siblings:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
