//! Crash-safe filesystem helpers shared by the characterization cache, the
//! run journal, the serve request journal and the benchmark log.

use aix_faults::{FaultPlan, FaultStage, WriteFault};
use std::io;
use std::path::Path;

/// Writes `text` to `path` atomically: the bytes land in a temp file in the
/// same directory (created if absent), are fsynced, and the temp is then
/// renamed over the target, so neither a killed run nor a power loss can
/// leave a truncated file behind — readers observe either the old contents
/// or the new ones. (Without the fsync, a crash after the rename could
/// expose a renamed-but-empty file on filesystems that reorder data and
/// metadata writes.)
///
/// Injected `shortwrite`/`enospc` faults from the process-wide `AIX_FAULT`
/// plan (stage `cache`, the persistence path) are emulated faithfully
/// here: a short write persists a prefix of the *temp* file and fails
/// before the rename, an ENOSPC fails before writing anything. Either
/// way the previous contents of `path` stay intact.
///
/// # Errors
///
/// Returns I/O errors from the filesystem, or the injected fault.
pub fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    write_atomic_under(path, text, aix_faults::env_plan(), FaultStage::Cache)
}

/// [`write_atomic`] against an explicit fault plan and stage, for callers
/// that carry their own plan (the engine's `--fault` flag, the serve
/// daemon's `serve`-stage writes) and for tests.
///
/// # Errors
///
/// Returns I/O errors from the filesystem, or the injected fault.
pub fn write_atomic_under(
    path: &Path,
    text: &str,
    plan: Option<&FaultPlan>,
    stage: FaultStage,
) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    if let Some(plan) = plan {
        let site = path.file_name().and_then(|n| n.to_str()).unwrap_or("write");
        match plan.write_fault(stage, site, 1) {
            Some(WriteFault::Enospc) => {
                return Err(io::Error::other(format!(
                    "injected fault: no space left writing `{site}`"
                )));
            }
            Some(WriteFault::Short) => {
                // A torn write: only a prefix of the payload reaches the
                // temp file and the rename never happens — readers of
                // `path` keep seeing the previous complete contents.
                std::fs::write(&tmp, &text.as_bytes()[..text.len() / 2])?;
                return Err(io::Error::other(format!(
                    "injected fault: short write writing `{site}`"
                )));
            }
            None => {}
        }
    }
    {
        use std::io::Write;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_replaces_contents_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("aix-fsutil-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("file.txt");
        write_atomic(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        write_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        let siblings: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(siblings.len(), 1, "no temp file left: {siblings:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_fault_leaves_previous_file_intact() {
        let dir = std::env::temp_dir().join(format!("aix-fsutil-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("library.txt");
        let plan: FaultPlan = "shortwrite:p=1,stage=cache".parse().unwrap();

        // First write under the fault: it fails and nothing readable
        // appears at the target path.
        let payload = "entry 8 fresh 1.234567\nentry 8 wc:10 2.345678\n";
        let err = write_atomic_under(&path, payload, Some(&plan), FaultStage::Cache).unwrap_err();
        assert!(err.to_string().contains("short write"));
        assert!(!path.exists(), "no torn file visible at the target path");

        // Seed good contents without the fault, then tear a rewrite: the
        // reader must still observe the complete old contents, even though
        // the torn temp file holds only a prefix of the new payload.
        write_atomic_under(&path, "old complete contents\n", None, FaultStage::Cache).unwrap();
        let update = "new contents that will be torn mid-write\n";
        let err = write_atomic_under(&path, update, Some(&plan), FaultStage::Cache).unwrap_err();
        assert!(err.to_string().contains("short write"));
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "old complete contents\n"
        );
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let torn = std::fs::read_to_string(&tmp).unwrap();
        assert_eq!(torn, &update[..update.len() / 2], "temp holds a prefix");

        // A fault-free retry recovers cleanly over the torn temp.
        write_atomic_under(&path, update, None, FaultStage::Cache).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), update);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_fault_fails_before_touching_anything() {
        let dir = std::env::temp_dir().join(format!("aix-fsutil-enospc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("journal");
        write_atomic_under(&path, "previous\n", None, FaultStage::Cache).unwrap();

        let plan: FaultPlan = "enospc:p=1".parse().unwrap();
        let err = write_atomic_under(&path, "next\n", Some(&plan), FaultStage::Cache).unwrap_err();
        assert!(err.to_string().contains("no space left"));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "previous\n");
        let siblings: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(siblings.len(), 1, "no temp file written: {siblings:?}");

        // Stage filters apply: a cache-stage-only plan leaves serve writes
        // alone.
        let staged: FaultPlan = "enospc:p=1,stage=cache".parse().unwrap();
        write_atomic_under(&path, "served\n", Some(&staged), FaultStage::Serve).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "served\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
