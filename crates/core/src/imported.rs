//! The aging→approximation pipeline on *imported* netlists.
//!
//! Synthesized components go through [`crate::CharacterizationEngine`],
//! which knows their generator and can rebuild any precision variant from
//! a [`crate::CharacterizationConfig`]. An imported netlist is an opaque
//! gate-level design — there is no generator to re-run — so this module
//! re-derives the same paper quantities directly from the structure:
//!
//! 1. group the primary inputs back into operand buses (`a[0]`, `a[1]`, …
//!    belong to bus `a`; a scalar input is a one-bit bus),
//! 2. form precision variants by tying the lowest `cut` bits of every
//!    multi-bit bus to constant 0 and re-optimizing (the same LSB
//!    truncation the paper applies to RTL components),
//! 3. score each variant: gate count, aged critical path under the chosen
//!    scenario, and functional error against the original on shared
//!    deterministic stimuli,
//! 4. apply Eq. 2 — the deepest truncation whose aged delay still meets
//!    the design's own fresh clock — to pick the compensating precision.
//!
//! `aix characterize|explore|flow --netlist FILE` all print views of the
//! [`ImportedReport`] this produces, and `aix verify --netlist` Monte-Carlo
//! perturbs the aged delays of the selected variant to stress the margin.

use crate::error::AixError;
use aix_aging::{AgingModel, AgingScenario, Lifetime};
use aix_cells::Library;
use aix_netlist::{import_netlist, ImportFormat, NetDriver, NetId, Netlist};
use aix_sta::{analyze, NetDelays};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

/// Reads and imports a structural netlist file, choosing the format from
/// the extension (falling back to content sniffing).
///
/// # Errors
///
/// [`AixError::Io`] when the file cannot be read, [`AixError::Import`]
/// (which renders as `path:line:col: message`) when it does not parse or
/// map onto the cell library.
pub fn load_imported(path: &str, cells: &Arc<Library>) -> Result<Netlist, AixError> {
    let source = std::fs::read_to_string(path).map_err(|e| AixError::io(path, e))?;
    let format =
        ImportFormat::from_path(Path::new(path)).unwrap_or_else(|| ImportFormat::detect(&source));
    let mut netlist =
        import_netlist(&source, format, cells).map_err(|e| AixError::import(path, e))?;
    // An anonymous EDIF/Verilog top keeps its module name; make sure the
    // report has something to print even for pathological inputs.
    if netlist.name().is_empty() {
        netlist.set_name("imported");
    }
    Ok(netlist)
}

/// One operand bus recovered from the primary-input names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputBus {
    /// Bus base name (`a` for inputs `a[0]`, `a[1]`, …).
    pub name: String,
    /// Member nets in bit order, index 0 first (the LSB by convention).
    pub bits: Vec<NetId>,
}

impl InputBus {
    /// Bus width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }
}

/// Splits a port name into its bus base and bit index: `a[3]` (the form
/// EDIF renames preserve) and its Verilog-sanitized twin `a_3_` both map
/// to `("a", 3)`. Anything else is a scalar at index 0.
fn bus_bit(name: &str) -> (String, u32) {
    if let Some((base, index)) = name.strip_suffix(']').and_then(|s| s.rsplit_once('[')) {
        if let Ok(index) = index.parse::<u32>() {
            return (base.to_owned(), index);
        }
    }
    if let Some((base, index)) = name.strip_suffix('_').and_then(|s| s.rsplit_once('_')) {
        if !base.is_empty() && !index.is_empty() && index.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(index) = index.parse::<u32>() {
                return (base.to_owned(), index);
            }
        }
    }
    (name.to_owned(), 0)
}

/// Groups the primary inputs into buses by the `name[index]` convention
/// both exporters and the importer preserve (including its sanitized
/// `name_index_` Verilog spelling). Inputs without an index form one-bit
/// buses. Buses appear in first-occurrence order; members are sorted by
/// index.
pub fn input_buses(netlist: &Netlist) -> Vec<InputBus> {
    let mut buses: Vec<(String, Vec<(u32, NetId)>)> = Vec::new();
    for (position, &net) in netlist.inputs().iter().enumerate() {
        let fallback = format!("in{position}");
        let name = netlist.net(net).name.as_deref().unwrap_or(&fallback);
        let (base, index) = bus_bit(name);
        match buses.iter_mut().find(|(b, _)| *b == base) {
            Some((_, bits)) => bits.push((index, net)),
            None => buses.push((base, vec![(index, net)])),
        }
    }
    buses
        .into_iter()
        .map(|(name, mut bits)| {
            bits.sort_by_key(|&(index, _)| index);
            InputBus {
                name,
                bits: bits.into_iter().map(|(_, net)| net).collect(),
            }
        })
        .collect()
}

/// Builds the precision variant that ties the lowest `cut` bits of every
/// multi-bit input bus to constant 0, then constant-propagates and sweeps
/// dead gates. The primary-input interface is preserved bit for bit (cut
/// inputs stay declared, they just no longer reach any gate), so original
/// and variant accept identical stimulus vectors.
///
/// # Errors
///
/// Propagates netlist-construction errors; a validated import never fails.
pub fn truncate_imported(netlist: &Netlist, cut: u32) -> Result<Netlist, AixError> {
    let mut tied: Vec<bool> = vec![false; netlist.net_count()];
    for bus in input_buses(netlist) {
        if bus.width() < 2 {
            continue;
        }
        let keep = bus.width().saturating_sub(cut as usize).max(1);
        for &net in &bus.bits[..bus.width() - keep] {
            tied[net.index()] = true;
        }
    }

    let mut out = Netlist::new(netlist.name().to_owned(), Arc::clone(netlist.library()));
    let mut net_map: Vec<Option<NetId>> = vec![None; netlist.net_count()];
    for &input in netlist.inputs() {
        let name = netlist
            .net(input)
            .name
            .clone()
            .unwrap_or_else(|| format!("in{}", input.index()));
        let new = out.add_input(name);
        net_map[input.index()] = Some(if tied[input.index()] {
            out.constant(false)
        } else {
            new
        });
    }
    let resolve = |out: &mut Netlist, map: &[Option<NetId>], net: NetId| match netlist
        .net(net)
        .driver
    {
        NetDriver::Constant(value) => out.constant(value),
        _ => map[net.index()].expect("topological order maps fanin first"),
    };
    for gate_id in netlist.topological_order().map_err(AixError::Netlist)? {
        let gate = netlist.gate(gate_id);
        let inputs: Vec<NetId> = gate
            .inputs
            .iter()
            .map(|&net| resolve(&mut out, &net_map, net))
            .collect();
        let outputs = out
            .add_gate(gate.cell, &inputs)
            .map_err(AixError::Netlist)?;
        for (&old, &new) in gate.outputs.iter().zip(&outputs) {
            net_map[old.index()] = Some(new);
        }
    }
    for (name, net) in netlist.outputs() {
        let mapped = resolve(&mut out, &net_map, *net);
        out.mark_output(name.clone(), mapped);
    }
    aix_synth::optimize(&out).map_err(AixError::Netlist)
}

/// Deterministic LCG stimuli covering every primary input.
fn stimuli(inputs: usize, vectors: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut state = seed.wrapping_mul(2) | 1;
    (0..vectors)
        .map(|_| {
            (0..inputs)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 33) & 1 == 1
                })
                .collect()
        })
        .collect()
}

/// Functional (zero-delay) error of `variant` against `original` on shared
/// stimuli: erroneous-vector fraction plus magnitude statistics, weighting
/// output bit `i` by `2^i` (saturated beyond 63 outputs).
fn functional_error(
    original: &Netlist,
    variant: &Netlist,
    vectors: &[Vec<bool>],
) -> Result<(f64, f64, f64), AixError> {
    let mut erroneous = 0usize;
    let mut sum_abs = 0.0f64;
    let mut max_abs = 0.0f64;
    for vector in vectors {
        let golden = original.eval(vector).map_err(AixError::Netlist)?;
        let approx = variant.eval(vector).map_err(AixError::Netlist)?;
        if golden != approx {
            erroneous += 1;
            let mut diff = 0.0f64;
            for (bit, (g, a)) in golden.iter().zip(&approx).enumerate() {
                if g != a {
                    diff += 2.0f64.powi(bit.min(63) as i32);
                }
            }
            sum_abs += diff;
            max_abs = max_abs.max(diff);
        }
    }
    let count = vectors.len().max(1) as f64;
    Ok((
        100.0 * erroneous as f64 / count,
        sum_abs / count,
        max_abs,
    ))
}

/// Parameters of the imported-design pipeline.
#[derive(Debug, Clone)]
pub struct ImportedConfig {
    /// Aging scenario the variants are timed under.
    pub scenario: AgingScenario,
    /// Stimulus vectors for the functional-error comparison.
    pub vectors: usize,
    /// Stimulus seed.
    pub seed: u64,
    /// Deepest truncation to sweep; `None` derives it from the narrowest
    /// multi-bit bus.
    pub max_cut: Option<u32>,
}

impl Default for ImportedConfig {
    fn default() -> Self {
        ImportedConfig {
            scenario: AgingScenario::worst_case(Lifetime::YEARS_10),
            vectors: 512,
            seed: 42,
            max_cut: None,
        }
    }
}

/// One precision variant of an imported design.
#[derive(Debug, Clone)]
pub struct ImportedVariant {
    /// LSBs tied to 0 on every multi-bit input bus.
    pub cut: u32,
    /// Gate count after constant propagation and dead-gate sweeping.
    pub gates: usize,
    /// Critical path under the report's aging scenario, in ps.
    pub aged_ps: f64,
    /// Slack against the design's own fresh clock, in ps (positive meets).
    pub slack_ps: f64,
    /// Fraction of stimulus vectors with any wrong output bit, percent.
    pub error_percent: f64,
    /// Mean absolute output error, weighting bit `i` by `2^i`.
    pub mean_abs_error: f64,
    /// Largest absolute output error observed.
    pub max_abs_error: f64,
}

impl ImportedVariant {
    /// Eq. 2 test: does this variant's aged path meet the fresh clock?
    pub fn meets_clock(&self) -> bool {
        self.slack_ps >= 0.0
    }
}

/// The full truncation sweep of one imported design.
#[derive(Debug, Clone)]
pub struct ImportedReport {
    /// Design (module) name from the imported file.
    pub design: String,
    /// Recovered operand buses as `(name, width)`.
    pub buses: Vec<(String, usize)>,
    /// The design's own fresh critical path — the clock Eq. 2 runs against.
    pub clock_ps: f64,
    /// Aging scenario of the `aged_ps` column.
    pub scenario: AgingScenario,
    /// Variants in increasing truncation order; `variants[0]` is exact.
    pub variants: Vec<ImportedVariant>,
}

impl ImportedReport {
    /// Eq. 2: the *shallowest* truncation whose aged path meets the fresh
    /// clock — the highest precision that still compensates the aging.
    /// `None` when no truncation does.
    pub fn required_cut(&self) -> Option<u32> {
        self.variants.iter().find(|v| v.meets_clock()).map(|v| v.cut)
    }

    /// The variants no other variant dominates on
    /// (error, aged delay, gates) — all three minimized.
    pub fn pareto_front(&self) -> Vec<&ImportedVariant> {
        self.variants
            .iter()
            .filter(|v| {
                !self.variants.iter().any(|other| {
                    (other.error_percent <= v.error_percent
                        && other.aged_ps <= v.aged_ps
                        && other.gates <= v.gates)
                        && (other.error_percent < v.error_percent
                            || other.aged_ps < v.aged_ps
                            || other.gates < v.gates)
                })
            })
            .collect()
    }

    /// Renders the sweep as the same fixed-width table style the other
    /// commands print.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let buses: Vec<String> = self
            .buses
            .iter()
            .map(|(name, width)| format!("{name}[{width}]"))
            .collect();
        let _ = writeln!(
            out,
            "imported design `{}`: buses {}; fresh clock {:.1} ps under {}",
            self.design,
            buses.join(" "),
            self.clock_ps,
            self.scenario
        );
        let _ = writeln!(
            out,
            "{:>4} {:>7} {:>10} {:>9} {:>8} {:>12}  eq2",
            "cut", "gates", "aged [ps]", "slack", "err [%]", "mean |err|"
        );
        for v in &self.variants {
            let _ = writeln!(
                out,
                "{:>4} {:>7} {:>10.1} {:>+9.1} {:>8.2} {:>12.1}  {}",
                v.cut,
                v.gates,
                v.aged_ps,
                v.slack_ps,
                v.error_percent,
                v.mean_abs_error,
                if v.meets_clock() { "meets" } else { "misses" }
            );
        }
        match self.required_cut() {
            Some(cut) => {
                let _ = writeln!(
                    out,
                    "# Eq. 2 under {}: cut {cut} LSB(s) per bus compensates the aged clock",
                    self.scenario
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "# Eq. 2 under {}: not compensable at any truncation",
                    self.scenario
                );
            }
        }
        out
    }
}

/// Runs the truncation sweep on an imported design: exact first, then one
/// variant per additional LSB cut, each timed under `config.scenario` and
/// scored for functional error against the exact design.
///
/// # Errors
///
/// Propagates netlist and STA failures.
pub fn characterize_imported(
    netlist: &Netlist,
    model: &AgingModel,
    config: &ImportedConfig,
) -> Result<ImportedReport, AixError> {
    let buses = input_buses(netlist);
    let widest_cut = buses
        .iter()
        .filter(|bus| bus.width() >= 2)
        .map(|bus| bus.width() as u32 - 1)
        .min()
        .unwrap_or(0);
    let max_cut = config.max_cut.unwrap_or(widest_cut).min(widest_cut);
    let clock_ps = analyze(netlist, &NetDelays::fresh(netlist))
        .map_err(AixError::Netlist)?
        .max_delay_ps();
    let vectors = stimuli(netlist.inputs().len(), config.vectors, config.seed);

    let mut variants = Vec::with_capacity(max_cut as usize + 1);
    for cut in 0..=max_cut {
        let variant = truncate_imported(netlist, cut)?;
        let aged = NetDelays::aged(&variant, model, config.scenario);
        let aged_ps = analyze(&variant, &aged)
            .map_err(AixError::Netlist)?
            .max_delay_ps();
        let (error_percent, mean_abs_error, max_abs_error) =
            functional_error(netlist, &variant, &vectors)?;
        variants.push(ImportedVariant {
            cut,
            gates: variant.gate_count(),
            aged_ps,
            slack_ps: clock_ps - aged_ps,
            error_percent,
            mean_abs_error,
            max_abs_error,
        });
    }
    Ok(ImportedReport {
        design: netlist.name().to_owned(),
        buses: buses
            .into_iter()
            .map(|bus| (bus.name.clone(), bus.width()))
            .collect(),
        clock_ps,
        scenario: config.scenario,
        variants,
    })
}

/// Monte-Carlo margin check of one imported variant: every sampled
/// perturbation multiplies each gate's aged delay by a log-uniform factor
/// in `[1-sigma, 1+sigma]`, and the perturbed critical path must still
/// meet the fresh clock.
#[derive(Debug, Clone)]
pub struct ImportedVerify {
    /// The verified truncation (Eq. 2's pick).
    pub cut: u32,
    /// Samples drawn.
    pub samples: usize,
    /// Samples whose perturbed path missed the clock.
    pub failures: usize,
    /// Worst margin over all samples, in ps (negative = violated).
    pub worst_margin_ps: f64,
}

impl ImportedVerify {
    /// Whether every sample met the clock.
    pub fn passed(&self) -> bool {
        self.failures == 0
    }
}

/// Verifies the Eq. 2 selection of `report` against `samples` perturbed
/// aging outcomes with relative gate-delay spread `sigma`.
///
/// # Errors
///
/// Propagates netlist and STA failures.
pub fn verify_imported(
    netlist: &Netlist,
    model: &AgingModel,
    config: &ImportedConfig,
    samples: usize,
    sigma: f64,
    seed: u64,
) -> Result<Option<ImportedVerify>, AixError> {
    let report = characterize_imported(netlist, model, config)?;
    let Some(cut) = report.required_cut() else {
        return Ok(None);
    };
    let variant = truncate_imported(netlist, cut)?;
    let aged = NetDelays::aged(&variant, model, config.scenario);
    let mut state = seed.wrapping_mul(2) | 1;
    let mut failures = 0usize;
    let mut worst = f64::INFINITY;
    for _ in 0..samples {
        let mut factors = vec![1.0f64; variant.gate_count()];
        for factor in &mut factors {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let uniform = (state >> 11) as f64 / (1u64 << 53) as f64;
            *factor = 1.0 + sigma * (2.0 * uniform - 1.0);
        }
        let perturbed = aged.scaled_by_gate(&variant, |gate| factors[gate]);
        let delay = analyze(&variant, &perturbed)
            .map_err(AixError::Netlist)?
            .max_delay_ps();
        let margin = report.clock_ps - delay;
        worst = worst.min(margin);
        if margin < 0.0 {
            failures += 1;
        }
    }
    Ok(Some(ImportedVerify {
        cut,
        samples,
        failures,
        worst_margin_ps: if samples == 0 { 0.0 } else { worst },
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aix_arith::{build_adder, AdderKind, ComponentSpec};
    use aix_netlist::to_verilog;

    fn lib() -> Arc<Library> {
        Arc::new(Library::nangate45_like())
    }

    fn imported_adder(width: usize) -> (Arc<Library>, Netlist) {
        let cells = lib();
        let adder =
            build_adder(&cells, AdderKind::RippleCarry, ComponentSpec::full(width)).unwrap();
        let text = to_verilog(&adder);
        let imported = aix_netlist::import_verilog(&text, &cells).unwrap();
        (cells, imported)
    }

    #[test]
    fn buses_are_recovered_from_input_names() {
        let (_, netlist) = imported_adder(8);
        let buses = input_buses(&netlist);
        let shape: Vec<(String, usize)> = buses
            .iter()
            .map(|b| (b.name.clone(), b.width()))
            .collect();
        // RCA inputs: a[8], b[8] plus the carry-in scalar.
        assert!(shape.contains(&("a".into(), 8)), "{shape:?}");
        assert!(shape.contains(&("b".into(), 8)), "{shape:?}");
    }

    #[test]
    fn truncation_preserves_the_interface_and_sheds_gates() {
        let (_, netlist) = imported_adder(8);
        let exact = truncate_imported(&netlist, 0).unwrap();
        let cut = truncate_imported(&netlist, 4).unwrap();
        assert_eq!(netlist.inputs().len(), cut.inputs().len());
        assert_eq!(netlist.outputs().len(), cut.outputs().len());
        assert!(
            cut.gate_count() < exact.gate_count(),
            "cutting 4 LSBs must remove logic: {} vs {}",
            cut.gate_count(),
            exact.gate_count()
        );
    }

    #[test]
    fn sweep_is_monotone_and_eq2_consistent() {
        let (_, netlist) = imported_adder(8);
        let model = AgingModel::calibrated();
        let config = ImportedConfig {
            vectors: 128,
            ..ImportedConfig::default()
        };
        let report = characterize_imported(&netlist, &model, &config).unwrap();
        assert_eq!(report.variants[0].cut, 0);
        assert!(
            report.variants[0].error_percent == 0.0,
            "the exact variant must be error-free"
        );
        for pair in report.variants.windows(2) {
            assert!(
                pair[1].error_percent >= pair[0].error_percent,
                "error must not shrink with deeper cuts"
            );
            assert!(
                pair[1].aged_ps <= pair[0].aged_ps + 1e-9,
                "constant propagation must never lengthen the aged path"
            );
        }
        if let Some(cut) = report.required_cut() {
            let chosen = &report.variants[cut as usize];
            assert!(chosen.meets_clock());
        }
        let rendered = report.render();
        assert!(rendered.contains("Eq. 2"), "{rendered}");
    }

    #[test]
    fn verify_samples_report_margins() {
        let (_, netlist) = imported_adder(8);
        let model = AgingModel::calibrated();
        let config = ImportedConfig {
            vectors: 64,
            ..ImportedConfig::default()
        };
        let verify = verify_imported(&netlist, &model, &config, 8, 0.02, 7)
            .unwrap()
            .expect("an 8-bit adder truncation compensates 10y aging");
        assert_eq!(verify.samples, 8);
        assert!(verify.worst_margin_ps.is_finite());
    }
}
