//! Cooperative cancellation with optional deadlines.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between a
//! campaign's owner (a CLI invocation, an `aix serve` request) and the
//! engine's workers. The owner cancels it — explicitly or by attaching a
//! deadline — and the engine observes the token at every job boundary:
//! jobs not yet started are skipped and reported as quarantined failures,
//! the per-attempt watchdog clamps its wall-clock limit to the remaining
//! budget, and retry backoff never sleeps past the deadline. The campaign
//! then returns a *partial* result through the normal
//! [`CampaignStatus`](crate::CampaignStatus) machinery instead of hanging.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle; see the module docs.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token with no deadline; cancels only via [`cancel`](Self::cancel).
    #[must_use]
    pub fn new() -> Self {
        Self::with_deadline(None)
    }

    /// A token that reports cancelled once `deadline` passes.
    #[must_use]
    pub fn with_deadline(deadline: Option<Instant>) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline,
            }),
        }
    }

    /// A token whose deadline is `budget` from now.
    #[must_use]
    pub fn deadline_in(budget: Duration) -> Self {
        Self::with_deadline(Some(Instant::now() + budget))
    }

    /// Cancels every clone of this token, immediately and permanently.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether the token was cancelled or its deadline has passed.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::SeqCst) {
            return true;
        }
        match self.inner.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }

    /// Time left until the deadline: `None` without one, zero when the
    /// deadline has passed or the token was cancelled.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        if self.inner.cancelled.load(Ordering::SeqCst) {
            return Some(Duration::ZERO);
        }
        self.inner
            .deadline
            .map(|deadline| deadline.saturating_duration_since(Instant::now()))
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

/// Tokens compare by identity: two tokens are equal when cancelling one
/// cancels the other. (This keeps `#[derive(PartialEq)]` on option
/// structs meaningful without comparing racing time-dependent state.)
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_reaches_every_clone() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        assert_eq!(token.remaining(), None, "no deadline, no budget");
        token.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(clone.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn deadline_expires_and_budget_shrinks() {
        let token = CancelToken::deadline_in(Duration::from_millis(30));
        assert!(!token.is_cancelled());
        let budget = token.remaining().expect("deadline set");
        assert!(budget <= Duration::from_millis(30));
        std::thread::sleep(Duration::from_millis(40));
        assert!(token.is_cancelled());
        assert_eq!(token.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn equality_is_identity() {
        let a = CancelToken::new();
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, CancelToken::new());
    }
}
