//! Actual-case aging: per-gate stress extracted from switching activity.
//!
//! The paper's Fig. 3(c): a one-time gate-level (functional) simulation of
//! the component under representative stimuli yields per-transistor stress
//! factors, which feed an aging-aware STA that is less conservative than
//! the worst case. Fig. 5 shows that normally distributed stimuli stress
//! the netlist like real application (IDCT) data — both are available here.

use aix_aging::{AgingModel, Lifetime, StressPair};
use aix_dct::{encode_image, FixedPointTransform, OPERAND_SHIFT};
use aix_image::Sequence;
use aix_netlist::{bus_from_u64, Netlist, NetlistError};
use aix_sim::{stress_pairs, Activity, OperandSource, SignedNormalOperands};
use aix_sta::{NetDelays, StressSource};

/// Stimulus source for actual-case characterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StimulusKind {
    /// Normally distributed operand pairs — application-independent.
    NormalDistribution,
    /// Operand pairs traced from an IDCT decoding a test sequence frame.
    IdctTrace(Sequence),
}

/// Per-gate stress factors extracted for one netlist under one stimulus.
#[derive(Debug, Clone, PartialEq)]
pub struct ActualCaseStress {
    pairs: Vec<StressPair>,
}

impl ActualCaseStress {
    /// Extracts per-gate stress by functionally simulating `vectors`
    /// stimuli of the given kind on `netlist`.
    ///
    /// The netlist is expected to expose two `operand_width`-bit operand
    /// buses first (as every `aix-arith` component does); any remaining
    /// inputs (e.g. a MAC's accumulator) are driven with zero.
    ///
    /// # Errors
    ///
    /// Propagates evaluator errors.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has fewer than `2 × operand_width` inputs.
    pub fn extract(
        netlist: &Netlist,
        kind: StimulusKind,
        operand_width: usize,
        vectors: usize,
        seed: u64,
    ) -> Result<Self, NetlistError> {
        let total_inputs = netlist.inputs().len();
        assert!(
            2 * operand_width <= total_inputs,
            "netlist exposes {total_inputs} inputs, need two {operand_width}-bit operands"
        );
        let padding = total_inputs - 2 * operand_width;
        let stimuli: Vec<Vec<bool>> = match kind {
            StimulusKind::NormalDistribution => {
                SignedNormalOperands::for_width(operand_width, seed)
                    .vectors_with_zeros(vectors, padding)
                    .collect()
            }
            StimulusKind::IdctTrace(sequence) => idct_operand_trace(sequence, vectors)
                .into_iter()
                .map(|(a, b)| {
                    let mut v = bus_from_u64(a, operand_width);
                    v.extend(bus_from_u64(b, operand_width));
                    v.extend(std::iter::repeat_n(false, padding));
                    v
                })
                .collect(),
        };
        let activity = Activity::collect(netlist, stimuli)?;
        Ok(Self {
            pairs: stress_pairs(netlist, &activity),
        })
    }

    /// The per-gate stress pairs, indexed by gate id.
    pub fn pairs(&self) -> &[StressPair] {
        &self.pairs
    }

    /// Converts into an STA stress source.
    pub fn to_stress_source(&self) -> StressSource {
        StressSource::PerGate(self.pairs.clone())
    }
}

/// Per-net delays of `netlist` under actual-case aging with the given
/// extracted stress.
pub fn actual_case_delays(
    netlist: &Netlist,
    stress: &ActualCaseStress,
    model: &AgingModel,
    lifetime: Lifetime,
) -> NetDelays {
    NetDelays::aged_with_stress(netlist, model, &stress.to_stress_source(), lifetime)
}

/// Records the multiplier operand pairs an IDCT applies while decoding one
/// frame of `sequence`, embedded as 32-bit two's-complement bus values.
///
/// These are the "inputs extracted from a running application" of the
/// paper's Fig. 4/Fig. 5 comparison.
pub fn idct_operand_trace(sequence: Sequence, max_pairs: usize) -> Vec<(u64, u64)> {
    let frame = sequence.frame(64, 48, 0);
    let coefficients = encode_image(&frame, &FixedPointTransform::exact());
    let mut trace = Vec::with_capacity(max_pairs);
    for block in coefficients.blocks() {
        if trace.len() >= max_pairs {
            break;
        }
        // Replay the inverse transform's MAC schedule, recording operands.
        for x in 0..8 {
            for u in 0..8 {
                if trace.len() >= max_pairs {
                    break;
                }
                let coeff =
                    i64::from(aix_dct::idct_coefficient(x, u)) << OPERAND_SHIFT;
                let sample = i64::from(block[u * 8 + x]) << OPERAND_SHIFT;
                trace.push((embed32(coeff), embed32(sample)));
            }
        }
    }
    trace
}

/// Two's-complement embedding into 32 bits.
fn embed32(value: i64) -> u64 {
    (value as u64) & 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;
    use aix_aging::AgingScenario;
    use aix_arith::{build_multiplier, ComponentSpec, MultiplierKind};
    use aix_cells::Library;
    use aix_sim::stress_histogram;
    use aix_sta::analyze;
    use std::sync::Arc;

    fn multiplier() -> Netlist {
        let lib = Arc::new(Library::nangate45_like());
        build_multiplier(&lib, MultiplierKind::Array, ComponentSpec::full(16)).unwrap()
    }

    fn multiplier32() -> Netlist {
        let lib = Arc::new(Library::nangate45_like());
        build_multiplier(&lib, MultiplierKind::Array, ComponentSpec::full(32)).unwrap()
    }

    #[test]
    fn actual_case_is_less_conservative_than_worst_case() {
        let nl = multiplier();
        let model = AgingModel::calibrated();
        let stress =
            ActualCaseStress::extract(&nl, StimulusKind::NormalDistribution, 16, 300, 1)
                .unwrap();
        let actual = analyze(
            &nl,
            &actual_case_delays(&nl, &stress, &model, Lifetime::YEARS_10),
        )
        .unwrap()
        .max_delay_ps();
        let worst = analyze(
            &nl,
            &NetDelays::aged(&nl, &model, AgingScenario::worst_case(Lifetime::YEARS_10)),
        )
        .unwrap()
        .max_delay_ps();
        let fresh = analyze(&nl, &NetDelays::fresh(&nl)).unwrap().max_delay_ps();
        assert!(fresh < actual && actual < worst, "{fresh} < {actual} < {worst}");
    }

    #[test]
    fn normal_and_idct_stress_distributions_are_similar() {
        // The paper's Fig. 5 claim: artificial stimuli suffice for
        // characterization because the stress histograms nearly coincide.
        // The comparison is made on the 32-bit component the IDCT trace
        // values are embedded for.
        let nl = multiplier32();
        let normal =
            ActualCaseStress::extract(&nl, StimulusKind::NormalDistribution, 32, 400, 2)
                .unwrap();
        let idct = ActualCaseStress::extract(
            &nl,
            StimulusKind::IdctTrace(Sequence::Foreman),
            32,
            400,
            2,
        )
        .unwrap();
        let h_normal = stress_histogram(normal.pairs());
        let h_idct = stress_histogram(idct.pairs());
        let distance = h_normal.distance(&h_idct);
        // What ultimately matters (and what the paper concludes from the
        // histograms) is that both stimuli imply nearly the same
        // aging-induced delay, so characterization can use artificial data.
        let model = AgingModel::calibrated();
        let d_normal = analyze(
            &nl,
            &actual_case_delays(&nl, &normal, &model, Lifetime::YEARS_10),
        )
        .unwrap()
        .max_delay_ps();
        let d_idct = analyze(
            &nl,
            &actual_case_delays(&nl, &idct, &model, Lifetime::YEARS_10),
        )
        .unwrap()
        .max_delay_ps();
        let rel = (d_normal - d_idct).abs() / d_idct;
        println!("histogram L1 {distance:.3}, delays {d_normal:.1} vs {d_idct:.1} ({rel:.4})");
        assert!(
            rel < 0.02,
            "actual-case delays should nearly coincide: {d_normal} vs {d_idct}"
        );
        assert!(
            distance < 1.2,
            "stress histograms should be broadly similar, L1 distance {distance}"
        );
    }

    #[test]
    fn trace_is_nonempty_and_bounded() {
        let trace = idct_operand_trace(Sequence::Akiyo, 500);
        assert_eq!(trace.len(), 500);
        for &(a, b) in &trace {
            assert!(a <= u64::from(u32::MAX) && b <= u64::from(u32::MAX));
        }
    }

    #[test]
    fn mac_accumulator_inputs_are_padded() {
        let lib = Arc::new(Library::nangate45_like());
        let mac = aix_arith::build_mac(&lib, ComponentSpec::full(8)).unwrap();
        let stress =
            ActualCaseStress::extract(&mac, StimulusKind::NormalDistribution, 8, 100, 3)
                .unwrap();
        assert_eq!(stress.pairs().len(), mac.gate_count());
    }
}
