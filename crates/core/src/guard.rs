//! Per-job fault containment: panic isolation, a wall-clock watchdog,
//! seeded retry with decorrelated-jitter backoff, and cooperative
//! deadline cancellation.
//!
//! Every synthesis and STA job of a campaign runs through [`JobGuard::run`]
//! so that one misbehaving job — a panic, a hang, a transient I/O failure —
//! is converted into a structured per-job outcome instead of taking the
//! whole process (or, through mutex poisoning, every sibling worker) down.

use crate::cancel::CancelToken;
use crate::AixError;
use aix_faults::{FaultPlan, FaultStage};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Renders a caught panic payload (`&str` or `String`, the payloads
/// `panic!` produces) as a message for failure reports.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// How one job is allowed to fail.
#[derive(Debug, Clone, Default)]
pub(crate) struct JobGuard {
    /// Wall-clock bound per attempt; `None` disables the watchdog (the job
    /// runs inline on the worker thread).
    pub timeout: Option<Duration>,
    /// Extra attempts granted to *transient* failures (I/O errors and
    /// timeouts). Panics and structural errors never retry.
    pub retries: usize,
    /// Base of the decorrelated-jitter backoff between attempts, in
    /// milliseconds; `0` retries immediately.
    pub backoff_ms: u64,
    /// Upper bound on any single backoff sleep, in milliseconds; `0`
    /// leaves the backoff uncapped.
    pub backoff_cap_ms: u64,
    /// Fault plan injected at this guard's sites, for testing the guard
    /// itself.
    pub faults: Option<Arc<FaultPlan>>,
    /// Cooperative cancellation: a cancelled or past-deadline token makes
    /// pending attempts fail fast, clamps the watchdog to the remaining
    /// budget and cuts backoff sleeps short.
    pub cancel: Option<CancelToken>,
}

/// Why a guarded job ultimately failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct JobError {
    /// Human-readable cause: the error display, panic message, or timeout.
    pub reason: String,
    /// Attempts spent, including the failing one.
    pub attempts: usize,
    /// Whether the last attempt was killed by the watchdog.
    pub timed_out: bool,
    /// Whether the last attempt panicked.
    pub panicked: bool,
}

enum Attempt<T> {
    Finished(Result<T, AixError>),
    Panicked(String),
    TimedOut,
}

impl JobGuard {
    /// Runs one job to completion under this guard. `make` is called once
    /// per attempt and must return a fresh closure performing the work;
    /// attempts are numbered from 1 and fed to the fault plan, so injected
    /// transient faults can deterministically clear on retry.
    ///
    /// Returns the job's value and the attempts spent, or a [`JobError`]
    /// describing the exhausted failure.
    pub fn run<T, W, F>(
        &self,
        stage: FaultStage,
        site: &str,
        mut make: F,
    ) -> Result<(T, usize), JobError>
    where
        T: Send + 'static,
        W: FnOnce() -> Result<T, AixError> + Send + 'static,
        F: FnMut() -> W,
    {
        let mut attempt = 0usize;
        let mut prev_backoff = self.backoff_ms;
        loop {
            if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                return Err(JobError {
                    reason: format!("cancelled after {attempt} attempts: deadline exceeded"),
                    attempts: attempt.max(1),
                    timed_out: false,
                    panicked: false,
                });
            }
            attempt += 1;
            let work = make();
            let faults = self.faults.clone();
            let site_owned = site.to_owned();
            let guarded = move || -> Result<T, AixError> {
                if let Some(plan) = &faults {
                    plan.check(stage, &site_owned, attempt).map_err(|e| {
                        AixError::io(format!("{stage} site `{site_owned}`"), e)
                    })?;
                }
                work()
            };
            // The watchdog limit is the per-attempt timeout clamped to the
            // cancellation token's remaining deadline budget, so a request
            // deadline bounds even its very first attempt.
            let remaining = self.cancel.as_ref().and_then(CancelToken::remaining);
            let limit = match (self.timeout, remaining) {
                (Some(t), Some(r)) => Some(t.min(r)),
                (Some(t), None) => Some(t),
                (None, Some(r)) => Some(r),
                (None, None) => None,
            };
            let outcome = match limit {
                None => match catch_unwind(AssertUnwindSafe(guarded)) {
                    Ok(result) => Attempt::Finished(result),
                    Err(payload) => Attempt::Panicked(panic_message(payload)),
                },
                Some(limit) => {
                    // The attempt runs on its own (unscoped) thread so the
                    // watchdog can abandon it: a hung attempt is left
                    // detached and its eventual result discarded.
                    let (tx, rx) = mpsc::channel();
                    let handle = std::thread::Builder::new()
                        .name(format!("aix-job {site}"))
                        .spawn(move || {
                            let _ = tx.send(catch_unwind(AssertUnwindSafe(guarded)));
                        })
                        .expect("spawn job watchdog thread");
                    match rx.recv_timeout(limit) {
                        Ok(Ok(result)) => {
                            let _ = handle.join();
                            Attempt::Finished(result)
                        }
                        Ok(Err(payload)) => {
                            let _ = handle.join();
                            Attempt::Panicked(panic_message(payload))
                        }
                        Err(_) => Attempt::TimedOut,
                    }
                }
            };
            match outcome {
                Attempt::Finished(Ok(value)) => return Ok((value, attempt)),
                Attempt::Finished(Err(error)) => {
                    // I/O failures (real or injected) are transient; any
                    // other error is structural and retrying cannot help.
                    let transient = matches!(error, AixError::Io { .. });
                    if transient && attempt <= self.retries {
                        aix_obs::count!("job_retry", site = site, attempt = attempt, cause = "io");
                        self.backoff(site, attempt, &mut prev_backoff);
                        continue;
                    }
                    return Err(JobError {
                        reason: error.to_string(),
                        attempts: attempt,
                        timed_out: false,
                        panicked: false,
                    });
                }
                Attempt::TimedOut => {
                    if attempt <= self.retries {
                        aix_obs::count!(
                            "job_retry",
                            site = site,
                            attempt = attempt,
                            cause = "timeout"
                        );
                        self.backoff(site, attempt, &mut prev_backoff);
                        continue;
                    }
                    aix_obs::count!("job_timeout", site = site, attempts = attempt);
                    return Err(JobError {
                        reason: format!(
                            "timed out after {:.3} s",
                            limit.unwrap_or_default().as_secs_f64()
                        ),
                        attempts: attempt,
                        timed_out: true,
                        panicked: false,
                    });
                }
                Attempt::Panicked(message) => {
                    return Err(JobError {
                        reason: format!("panicked: {message}"),
                        attempts: attempt,
                        timed_out: false,
                        panicked: true,
                    });
                }
            }
        }
    }

    /// Sleeps before retry `attempt + 1` using decorrelated jitter (see
    /// [`decorrelated_backoff_ms`]), threading the previous delay through
    /// `prev`. The sleep never overruns the cancellation deadline.
    fn backoff(&self, site: &str, attempt: usize, prev: &mut u64) {
        if self.backoff_ms == 0 {
            return;
        }
        let mut sleep_ms =
            decorrelated_backoff_ms(self.backoff_ms, self.backoff_cap_ms, *prev, site, attempt);
        *prev = sleep_ms;
        if let Some(remaining) = self.cancel.as_ref().and_then(CancelToken::remaining) {
            sleep_ms = sleep_ms.min(u64::try_from(remaining.as_millis()).unwrap_or(u64::MAX));
        }
        std::thread::sleep(Duration::from_millis(sleep_ms));
    }
}

/// The delay before the next retry, in milliseconds: *decorrelated jitter*
/// (`sleep = min(cap, base + unit · (3·prev − base))`, unit ∈ [0, 1)
/// drawn deterministically from the site hash), so the expected delay
/// still doubles per attempt but simultaneous retries from coalesced or
/// colliding clients spread over the whole `[base, 3·prev)` band instead
/// of stampeding in lockstep at the same exponential instants. A `cap` of
/// `0` leaves the growth uncapped. Pure: the same
/// `(base, cap, prev, site, attempt)` always yields the same delay.
pub fn decorrelated_backoff_ms(
    base: u64,
    cap: u64,
    prev: u64,
    site: &str,
    attempt: usize,
) -> u64 {
    if base == 0 {
        return 0;
    }
    let cap = if cap == 0 { u64::MAX } else { cap };
    let span = prev.saturating_mul(3).saturating_sub(base);
    // 53 high bits of the FNV hash map to [0, 1) at f64 resolution.
    let unit = (site_hash(site, attempt) >> 11) as f64 / (1u64 << 53) as f64;
    let jittered = base.saturating_add((span as f64 * unit) as u64);
    jittered.min(cap)
}

fn site_hash(site: &str, attempt: usize) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in site.bytes().chain((attempt as u64).to_le_bytes()) {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn guard(retries: usize) -> JobGuard {
        JobGuard {
            retries,
            ..JobGuard::default()
        }
    }

    #[test]
    fn success_passes_through_with_one_attempt() {
        let (value, attempts) = guard(3)
            .run(FaultStage::Synth, "ok", || || Ok(41 + 1))
            .unwrap();
        assert_eq!(value, 42);
        assert_eq!(attempts, 1);
    }

    #[test]
    fn panic_is_contained_and_never_retried() {
        let calls = AtomicUsize::new(0);
        let err = guard(5)
            .run(FaultStage::Synth, "boom", || {
                calls.fetch_add(1, Ordering::SeqCst);
                || -> Result<(), AixError> { panic!("kaput") }
            })
            .unwrap_err();
        assert!(err.panicked);
        assert!(err.reason.contains("kaput"));
        assert_eq!(err.attempts, 1);
        assert_eq!(calls.load(Ordering::SeqCst), 1, "panics must not retry");
    }

    #[test]
    fn transient_io_retries_until_budget_then_fails() {
        let calls = AtomicUsize::new(0);
        let (value, attempts) = guard(2)
            .run(FaultStage::Cache, "flaky", || {
                let n = calls.fetch_add(1, Ordering::SeqCst);
                move || -> Result<&'static str, AixError> {
                    if n < 2 {
                        Err(AixError::io(
                            "flaky",
                            std::io::Error::other("transient"),
                        ))
                    } else {
                        Ok("recovered")
                    }
                }
            })
            .unwrap();
        assert_eq!(value, "recovered");
        assert_eq!(attempts, 3);

        let err = guard(1)
            .run(FaultStage::Cache, "hopeless", || {
                || -> Result<(), AixError> {
                    Err(AixError::io("always", std::io::Error::other("down")))
                }
            })
            .unwrap_err();
        assert_eq!(err.attempts, 2, "1 retry = 2 attempts");
        assert!(!err.panicked && !err.timed_out);
    }

    #[test]
    fn structural_errors_never_retry() {
        let calls = AtomicUsize::new(0);
        let err = guard(5)
            .run(FaultStage::Synth, "bad-spec", || {
                calls.fetch_add(1, Ordering::SeqCst);
                || -> Result<(), AixError> {
                    Err(AixError::MissingOption { flag: "--width" })
                }
            })
            .unwrap_err();
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(err.attempts, 1);
    }

    #[test]
    fn watchdog_quarantines_hung_jobs() {
        let slow = JobGuard {
            timeout: Some(Duration::from_millis(25)),
            ..JobGuard::default()
        };
        let err = slow
            .run(FaultStage::Sta, "hang", || {
                || -> Result<(), AixError> {
                    std::thread::sleep(Duration::from_millis(400));
                    Ok(())
                }
            })
            .unwrap_err();
        assert!(err.timed_out);
        assert!(err.reason.contains("timed out"));

        // A fast job under the same watchdog succeeds normally.
        let (value, _) = slow
            .run(FaultStage::Sta, "fast", || || Ok(7))
            .unwrap();
        assert_eq!(value, 7);
    }

    /// The delay sequence a guard would sleep through for a site, with the
    /// previous delay threaded exactly as `run` does.
    fn backoff_sequence(base: u64, cap: u64, site: &str, attempts: usize) -> Vec<u64> {
        let mut prev = base;
        (1..=attempts)
            .map(|attempt| {
                let delay = decorrelated_backoff_ms(base, cap, prev, site, attempt);
                prev = delay;
                delay
            })
            .collect()
    }

    #[test]
    fn backoff_is_decorrelated_jittered_and_capped() {
        // Deterministic: the same (site, attempt) history replays the same
        // delay sequence, so retry timing is pinned by the seedable hash.
        let first = backoff_sequence(25, 1_000, "synth adder-w16-p7", 8);
        let second = backoff_sequence(25, 1_000, "synth adder-w16-p7", 8);
        assert_eq!(first, second);

        // Every delay stays inside [base, cap].
        assert!(first.iter().all(|&ms| (25..=1_000).contains(&ms)), "{first:?}");

        // The cap actually binds: with unbounded growth the 8th delay of a
        // tripling-span sequence would exceed 1000 ms for some site.
        let uncapped = backoff_sequence(25, 0, "synth adder-w16-p7", 8);
        assert!(uncapped.last().copied().unwrap() >= first.last().copied().unwrap());
        assert!(
            (0..50)
                .any(|i| *backoff_sequence(25, 0, &format!("site-{i}"), 8).last().unwrap() > 1_000),
            "uncapped sequences must be able to outgrow the cap"
        );

        // Decorrelation: different sites draw different delay sequences —
        // coalesced clients retrying the same campaign do not stampede.
        let other = backoff_sequence(25, 1_000, "synth mult-w8-p3", 8);
        assert_ne!(first, other);

        // A zero base disables backoff entirely.
        assert_eq!(decorrelated_backoff_ms(0, 1_000, 0, "x", 1), 0);
    }

    #[test]
    fn cancelled_token_fails_jobs_fast_without_running_them() {
        let token = CancelToken::new();
        token.cancel();
        let cancelled = JobGuard {
            cancel: Some(token),
            retries: 3,
            ..JobGuard::default()
        };
        let calls = AtomicUsize::new(0);
        let err = cancelled
            .run(FaultStage::Synth, "doomed", || {
                calls.fetch_add(1, Ordering::SeqCst);
                || Ok(())
            })
            .unwrap_err();
        assert!(err.reason.contains("cancelled"), "{}", err.reason);
        assert_eq!(err.attempts, 1);
        assert_eq!(calls.load(Ordering::SeqCst), 0, "work never starts");
    }

    #[test]
    fn deadline_clamps_the_watchdog() {
        // No per-attempt timeout, but a 30 ms deadline: the watchdog picks
        // up the deadline budget and kills the hung attempt.
        let deadline = JobGuard {
            cancel: Some(CancelToken::deadline_in(Duration::from_millis(30))),
            ..JobGuard::default()
        };
        let start = std::time::Instant::now();
        let err = deadline
            .run(FaultStage::Sta, "hang", || {
                || -> Result<(), AixError> {
                    std::thread::sleep(Duration::from_millis(5_000));
                    Ok(())
                }
            })
            .unwrap_err();
        assert!(err.timed_out, "{}", err.reason);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "deadline bounds the attempt"
        );
    }

    #[test]
    fn injected_io_fault_clears_on_retry() {
        // p=1 on attempt 1 only is impossible; instead pick a seeded
        // probability and find a site where attempt 1 fires but a later
        // attempt does not — then assert the guard recovers exactly there.
        let plan: Arc<FaultPlan> = Arc::new("io:p=0.5,seed=9".parse().unwrap());
        let site = (0..200)
            .map(|i| format!("synth probe-{i}"))
            .find(|s| {
                plan.specs()[0].fires(FaultStage::Synth, s, 1)
                    && !plan.specs()[0].fires(FaultStage::Synth, s, 2)
            })
            .expect("some site recovers on attempt 2");
        let flaky = JobGuard {
            retries: 1,
            faults: Some(plan),
            ..JobGuard::default()
        };
        let (value, attempts) = flaky
            .run(FaultStage::Synth, &site, || || Ok("made it"))
            .unwrap();
        assert_eq!(value, "made it");
        assert_eq!(attempts, 2);
    }
}
