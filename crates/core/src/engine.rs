//! Parallel, persistently cached, fault-tolerant characterization engine.
//!
//! The paper's key economic argument is that the library of aging-induced
//! approximations is built *once* per component family and then reused at
//! the microarchitecture level with no further gate-level work (Fig. 3,
//! Fig. 6). This module makes that pre-characterization loop cheap,
//! measurable and robust:
//!
//! * **Job planner** — a [`CharacterizationConfig`] batch expands into
//!   independent `(kind, width, precision)` *synthesis jobs* and
//!   `(kind, width, precision, scenario)` *STA jobs*.
//! * **Work pool** — jobs self-schedule over [`std::thread::scope`] worker
//!   threads ([`parallel_map`]), with the thread count taken from an
//!   explicit option, the `AIX_JOBS` environment variable, or the machine's
//!   available parallelism.
//! * **Content-addressed cache** — per-synthesis-job results persist under
//!   a cache directory (default `out/cache/`), keyed by a fingerprint of
//!   (cell-library content hash, aging-model calibration, kind, width,
//!   precision, effort). A warm run skips synthesis and STA entirely.
//!   Corrupted, truncated or stale files are detected and fall back to
//!   re-synthesis — they can never poison results.
//! * **Fault containment** — every synthesis and STA job runs under a
//!   guard (panic isolation, an optional wall-clock watchdog, seeded
//!   retry with exponential backoff for transient I/O failures). A job
//!   that panics, hangs or exhausts its retries becomes a [`JobFailure`]
//!   in the campaign's report; the other jobs complete normally.
//! * **Crash-safe resume** — with a journal directory configured, the
//!   campaign appends a write-ahead journal (atomic temp-file + rename,
//!   like the cache) recording planned, done and failed jobs. A rerun
//!   with `resume` set skips completed work — even with caching off —
//!   and produces byte-identical library text.
//! * **Fault injection** — an [`aix_faults::FaultPlan`] (the `AIX_FAULT` /
//!   `--fault` grammar) deterministically injects panics, I/O errors and
//!   delays at synthesis, STA and cache sites, so all of the above is
//!   testable end to end.
//! * **Observability** — [`EngineReport`] carries per-stage wall-clock and
//!   cache/journal/retry counters; [`append_bench_record`] persists them as
//!   machine-readable `BENCH_characterize.json` so the perf trajectory of
//!   repeated runs is measurable. When a global `aix-obs` recorder is
//!   installed the campaign additionally emits a structured trace:
//!   `campaign`/`plan`/`synth_stage`/`sta_stage`/`merge` spans, per-job
//!   `synth`/`sta` spans, `cache_hit`/`cache_miss`/`journal_hit` counter
//!   events (in plan order, from sequential code — so warm-run traces are
//!   byte-identical for any worker count) and one `quarantine` event per
//!   [`JobFailure`], in merge order.
//!
//! The engine is deterministic: characterization output is byte-identical
//! for any job count, for cold versus warm caches, and for interrupted
//! runs resumed from the journal. Jobs never share mutable state; results
//! merge in planned order, and cached delays round-trip through the same
//! 6-decimal text format the [`ApproxLibrary`] serializes, which reformats
//! to identical bytes.
//!
//! # Examples
//!
//! ```
//! use aix_core::{CharacterizationConfig, CharacterizationEngine, ComponentKind, EngineOptions};
//! use aix_cells::Library;
//! use std::sync::Arc;
//!
//! let cells = Arc::new(Library::nangate45_like());
//! let engine = CharacterizationEngine::new(cells, EngineOptions::sequential());
//! let config = CharacterizationConfig::quick(ComponentKind::Adder, 8);
//! let (characterization, report) = engine.characterize(&config)?;
//! assert!(characterization.fresh_full_delay_ps() > 0.0);
//! assert_eq!(report.synth_executed, config.precisions.len());
//! # Ok::<(), aix_core::AixError>(())
//! ```

use crate::fsutil::write_atomic;
use crate::cancel::CancelToken;
use crate::guard::{JobError, JobGuard};
use crate::journal::RunJournal;
use crate::library::{parse_scenario, scenario_token};
use crate::{
    AixError, ApproxLibrary, CharacterizationConfig, CharacterizationEntry,
    ComponentCharacterization, ComponentKind,
};
use aix_aging::{AgingModel, Calibration};
use aix_arith::ComponentSpec;
use aix_cells::Library;
use aix_faults::{FaultPlan, FaultStage};
use aix_netlist::Netlist;
use aix_sta::{analyze, NetDelays};
use aix_synth::Effort;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How the engine schedules, caches and fault-guards its jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineOptions {
    /// Worker threads; `0` resolves to `AIX_JOBS` or, failing that, the
    /// machine's available parallelism.
    pub jobs: usize,
    /// Directory of the persistent characterization cache; `None` disables
    /// on-disk caching.
    pub cache_dir: Option<PathBuf>,
    /// Directory of the write-ahead run journal; `None` disables
    /// journaling (and therefore resume).
    pub journal_dir: Option<PathBuf>,
    /// Whether to load a prior journal for the same campaign and skip jobs
    /// it records as done.
    pub resume: bool,
    /// Wall-clock watchdog per job attempt; `None` lets jobs run
    /// unbounded.
    pub job_timeout: Option<Duration>,
    /// Retry budget for *transient* job failures (I/O errors, timeouts).
    /// Panics and structural errors never retry.
    pub retries: usize,
    /// Base of the decorrelated-jitter retry backoff, in milliseconds.
    pub backoff_ms: u64,
    /// Upper bound on any single backoff sleep, in milliseconds; `0`
    /// leaves the backoff uncapped.
    pub backoff_cap_ms: u64,
    /// Deterministic fault-injection plan evaluated at synthesis, STA and
    /// cache sites; `None` injects nothing.
    pub faults: Option<Arc<FaultPlan>>,
    /// Cooperative cancellation observed at every job boundary: a
    /// cancelled or past-deadline token quarantines the remaining jobs and
    /// the campaign returns partial results instead of running on.
    pub cancel: Option<CancelToken>,
}

impl EngineOptions {
    /// One worker, no cache, no journal, no watchdog: the configuration
    /// that reproduces the historical sequential [`characterize_component`]
    /// behaviour exactly (it is also what that function now uses
    /// internally).
    ///
    /// [`characterize_component`]: crate::characterize_component
    pub fn sequential() -> Self {
        Self {
            jobs: 1,
            cache_dir: None,
            journal_dir: None,
            resume: false,
            job_timeout: None,
            retries: 0,
            backoff_ms: 0,
            backoff_cap_ms: 0,
            faults: None,
            cancel: None,
        }
    }

    /// The defaults the environment-driven constructors start from: jobs
    /// auto-resolved, cache and journal at their default locations, no
    /// watchdog, no retries (25 ms backoff base if retries are enabled),
    /// no fault injection.
    fn env_defaults() -> Self {
        Self {
            jobs: 0,
            cache_dir: Some(default_cache_dir()),
            journal_dir: Some(default_journal_dir()),
            resume: false,
            job_timeout: None,
            retries: 0,
            backoff_ms: 25,
            backoff_cap_ms: 10_000,
            faults: None,
            cancel: None,
        }
    }

    /// Honours the environment leniently: `AIX_JOBS`, `AIX_CACHE`,
    /// `AIX_JOURNAL`, `AIX_JOB_TIMEOUT`, `AIX_RETRIES`, `AIX_BACKOFF_MS`
    /// and `AIX_FAULT`, with unparseable values silently ignored. Prefer
    /// [`EngineOptions::from_env_strict`] anywhere a diagnostic can be
    /// surfaced.
    pub fn from_env() -> Self {
        let mut options = Self::env_defaults();
        if let Ok(value) = std::env::var("AIX_JOBS") {
            if let Ok(jobs) = parse_env_jobs(&value) {
                options.jobs = jobs;
            }
        }
        options.cache_dir = env_dir("AIX_CACHE", default_cache_dir);
        options.journal_dir = env_dir("AIX_JOURNAL", default_journal_dir);
        if let Ok(value) = std::env::var("AIX_JOB_TIMEOUT") {
            if let Ok(timeout) = parse_env_timeout("AIX_JOB_TIMEOUT", &value) {
                options.job_timeout = timeout;
            }
        }
        if let Ok(value) = std::env::var("AIX_RETRIES") {
            if let Ok(retries) = parse_env_count("AIX_RETRIES", &value) {
                options.retries = retries;
            }
        }
        if let Ok(value) = std::env::var("AIX_BACKOFF_MS") {
            if let Ok(backoff) = parse_env_count("AIX_BACKOFF_MS", &value) {
                options.backoff_ms = backoff as u64;
            }
        }
        if let Ok(value) = std::env::var("AIX_BACKOFF_CAP_MS") {
            if let Ok(cap) = parse_env_count("AIX_BACKOFF_CAP_MS", &value) {
                options.backoff_cap_ms = cap as u64;
            }
        }
        if let Ok(value) = std::env::var("AIX_FAULT") {
            if let Ok(plan) = parse_env_faults("AIX_FAULT", &value) {
                options.faults = Some(plan);
            }
        }
        options
    }

    /// Honours the same environment variables as
    /// [`EngineOptions::from_env`], but a malformed or out-of-range value
    /// is an error naming the variable — the same diagnostic shape the
    /// equivalent CLI flag produces — instead of being silently ignored.
    ///
    /// # Errors
    ///
    /// Returns [`AixError::InvalidOption`] naming the offending variable.
    pub fn from_env_strict() -> Result<Self, AixError> {
        let mut options = Self::env_defaults();
        if let Ok(value) = std::env::var("AIX_JOBS") {
            options.jobs = parse_env_jobs(&value)?;
        }
        options.cache_dir = env_dir("AIX_CACHE", default_cache_dir);
        options.journal_dir = env_dir("AIX_JOURNAL", default_journal_dir);
        if let Ok(value) = std::env::var("AIX_JOB_TIMEOUT") {
            options.job_timeout = parse_env_timeout("AIX_JOB_TIMEOUT", &value)?;
        }
        if let Ok(value) = std::env::var("AIX_RETRIES") {
            options.retries = parse_env_count("AIX_RETRIES", &value)?;
        }
        if let Ok(value) = std::env::var("AIX_BACKOFF_MS") {
            options.backoff_ms = parse_env_count("AIX_BACKOFF_MS", &value)? as u64;
        }
        if let Ok(value) = std::env::var("AIX_BACKOFF_CAP_MS") {
            options.backoff_cap_ms = parse_env_count("AIX_BACKOFF_CAP_MS", &value)? as u64;
        }
        if let Ok(value) = std::env::var("AIX_FAULT") {
            options.faults = Some(parse_env_faults("AIX_FAULT", &value)?);
        }
        Ok(options)
    }

    /// The effective worker count: an explicit `jobs`, else `AIX_JOBS`,
    /// else the machine's available parallelism.
    pub fn resolved_jobs(&self) -> usize {
        if self.jobs > 0 {
            return self.jobs;
        }
        if let Some(jobs) = std::env::var("AIX_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&j| j > 0)
        {
            return jobs;
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }
}

/// What [`FaultPlan`] values are expected to look like, for diagnostics.
pub const FAULT_GRAMMAR: &str = "`mode[:p=F,seed=N,stage=synth|sta|cache|serve|import,ms=N]` specs \
     (mode panic|io|delay|shortwrite|enospc|stall|connrefused), `;`-separated";

/// Parses a worker-count value (`AIX_JOBS` / `--jobs`): a positive
/// integer.
pub(crate) fn parse_env_jobs(value: &str) -> Result<usize, AixError> {
    value
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&jobs| jobs > 0)
        .ok_or_else(|| AixError::InvalidOption {
            flag: "AIX_JOBS",
            value: value.to_owned(),
            expected: "a positive integer",
        })
}

/// Parses a non-negative count (`AIX_RETRIES`, `AIX_BACKOFF_MS`).
pub(crate) fn parse_env_count(flag: &'static str, value: &str) -> Result<usize, AixError> {
    value
        .trim()
        .parse::<usize>()
        .map_err(|_| AixError::InvalidOption {
            flag,
            value: value.to_owned(),
            expected: "a non-negative integer",
        })
}

/// Parses a per-job timeout in (possibly fractional) seconds; `0`, `off`
/// and `none` disable the watchdog.
pub(crate) fn parse_env_timeout(
    flag: &'static str,
    value: &str,
) -> Result<Option<Duration>, AixError> {
    let trimmed = value.trim();
    if matches!(trimmed, "0" | "off" | "none") {
        return Ok(None);
    }
    trimmed
        .parse::<f64>()
        .ok()
        .filter(|secs| secs.is_finite() && *secs > 0.0)
        .map(|secs| Some(Duration::from_secs_f64(secs)))
        .ok_or_else(|| AixError::InvalidOption {
            flag,
            value: value.to_owned(),
            expected: "a positive number of seconds, or `off`",
        })
}

/// Parses a fault-injection plan (`AIX_FAULT` / `--fault`).
pub(crate) fn parse_env_faults(
    flag: &'static str,
    value: &str,
) -> Result<Arc<FaultPlan>, AixError> {
    value
        .parse::<FaultPlan>()
        .map(Arc::new)
        .map_err(|_| AixError::InvalidOption {
            flag,
            value: value.to_owned(),
            expected: FAULT_GRAMMAR,
        })
}

/// Resolves a directory-valued variable: `off`, `none` or `0` disable it,
/// any other value is the directory, unset falls back to `default`.
fn env_dir(name: &str, default: fn() -> PathBuf) -> Option<PathBuf> {
    match std::env::var(name) {
        Ok(value) if matches!(value.as_str(), "off" | "none" | "0") => None,
        Ok(value) => Some(PathBuf::from(value)),
        Err(_) => Some(default()),
    }
}

/// The default persistent cache location.
pub fn default_cache_dir() -> PathBuf {
    PathBuf::from("out/cache")
}

/// The default write-ahead journal location.
pub fn default_journal_dir() -> PathBuf {
    PathBuf::from("out/journal")
}

/// The default path of the machine-readable characterization benchmark log.
pub fn default_bench_json_path() -> PathBuf {
    PathBuf::from("out/BENCH_characterize.json")
}

/// Runs `run` over `items` on up to `jobs` scoped worker threads and
/// returns the results *in item order*, regardless of which worker finished
/// first. Workers self-schedule from a shared index (work stealing over a
/// common queue), so an expensive item does not serialize the rest.
///
/// With `jobs <= 1` (or a single item) everything runs inline on the
/// calling thread — no spawn overhead for the sequential case.
///
/// A worker that observes a poisoned slot mutex recovers the value: slot
/// contents are plain `Option` moves, valid regardless of where a sibling
/// worker panicked, so one crashing job must not cascade into the others.
///
/// # Panics
///
/// Propagates panics from `run` once all workers have stopped.
pub fn parallel_map<T, R, F>(jobs: usize, items: Vec<T>, run: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = jobs.max(1).min(items.len());
    if workers <= 1 {
        return items.into_iter().map(run).collect();
    }
    let queue: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = queue.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= queue.len() {
                    break;
                }
                let item = queue[index]
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .take()
                    .expect("each item is claimed exactly once");
                *slots[index]
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(run(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .expect("every item was processed")
        })
        .collect()
}

/// Thread-safe memoization of synthesized netlists, keyed by
/// `(kind, width, precision, effort)`. Synthesis is deterministic, so
/// concurrent duplicate synthesis is merely wasted work — the first result
/// stored wins and all callers observe identical netlists.
///
/// The engine shares one cache across a whole batch; re-verification
/// ([`aix-verify`]) reuses the same type so the full-width constraint
/// netlist is synthesized once per component rather than once per scenario.
///
/// A poisoned inner mutex is recovered, not propagated: the map holds only
/// complete `Arc<Netlist>` values (insertion is a single move), so a
/// panicking synthesis job on a sibling thread cannot leave it in an
/// inconsistent state — and must not take down every other worker.
///
/// [`aix-verify`]: crate#
#[derive(Debug, Default)]
pub struct NetlistCache {
    inner: Mutex<HashMap<SynthKey, Arc<Netlist>>>,
}

/// Memoization key of one synthesis job: `(kind, width, precision, effort)`.
type SynthKey = (ComponentKind, usize, usize, Effort);

impl NetlistCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct netlists held.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }

    /// Whether no netlist has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Synthesizes `(kind, width, precision)` at `effort`, or returns the
    /// memoized netlist.
    ///
    /// # Errors
    ///
    /// Propagates invalid specs and synthesis failures as [`AixError`].
    pub fn synthesize(
        &self,
        cells: &Arc<Library>,
        kind: ComponentKind,
        width: usize,
        precision: usize,
        effort: Effort,
    ) -> Result<Arc<Netlist>, AixError> {
        let key = (kind, width, precision, effort);
        if let Some(hit) = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(&key)
        {
            return Ok(Arc::clone(hit));
        }
        let spec = ComponentSpec::new(width, precision)?;
        let netlist = Arc::new(kind.synthesize(cells, spec, effort)?);
        let mut lock = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        Ok(Arc::clone(lock.entry(key).or_insert(netlist)))
    }
}

/// Per-stage wall-clock and cache/fault counters of one engine run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineReport {
    /// Worker threads the run resolved to.
    pub jobs: usize,
    /// Synthesis jobs the planner expanded (one per precision per config).
    pub synth_planned: usize,
    /// Synthesis jobs actually executed (planned minus cache/journal hits).
    pub synth_executed: usize,
    /// STA passes executed (scenarios × executed synthesis jobs).
    pub sta_executed: usize,
    /// Synthesis jobs satisfied from the on-disk cache.
    pub cache_hits: usize,
    /// Synthesis jobs that consulted the cache and missed.
    pub cache_misses: usize,
    /// Synthesis jobs satisfied from a resumed run journal.
    pub journal_hits: usize,
    /// Extra job attempts spent on transient-failure retries.
    pub job_retries: usize,
    /// Jobs that exhausted their guard and were quarantined.
    pub job_failures: usize,
    /// Planning stage wall-clock, in milliseconds (includes cache probes).
    pub plan_ms: f64,
    /// Synthesis stage wall-clock, in milliseconds.
    pub synth_ms: f64,
    /// STA stage wall-clock, in milliseconds.
    pub sta_ms: f64,
    /// Merge/cache-writeback stage wall-clock, in milliseconds.
    pub merge_ms: f64,
    /// End-to-end wall-clock, in milliseconds.
    pub wall_ms: f64,
}

impl EngineReport {
    /// One human-readable summary line for CLI output.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{} job(s) · {:.0} ms wall: {} synth planned, {} executed \
             ({} cache hit / {} miss), {} STA passes \
             [plan {:.0} · synth {:.0} · sta {:.0} · merge {:.0} ms]",
            self.jobs,
            self.wall_ms,
            self.synth_planned,
            self.synth_executed,
            self.cache_hits,
            self.cache_misses,
            self.sta_executed,
            self.plan_ms,
            self.synth_ms,
            self.sta_ms,
            self.merge_ms,
        );
        if self.journal_hits > 0 {
            let _ = write!(line, ", {} journal hit(s)", self.journal_hits);
        }
        if self.job_retries > 0 {
            let _ = write!(line, ", {} retry(ies)", self.job_retries);
        }
        if self.job_failures > 0 {
            let _ = write!(line, ", {} job(s) FAILED", self.job_failures);
        }
        line
    }

    /// The run as one machine-readable JSON object (a single line).
    pub fn to_json_record(&self, label: &str) -> String {
        format!(
            "{{\"label\":\"{}\",\"jobs\":{},\"wall_ms\":{:.3},\"plan_ms\":{:.3},\
             \"synth_ms\":{:.3},\"sta_ms\":{:.3},\"merge_ms\":{:.3},\
             \"synth_planned\":{},\"synth_executed\":{},\"sta_executed\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"journal_hits\":{},\
             \"job_retries\":{},\"job_failures\":{}}}",
            label.replace('\\', "\\\\").replace('"', "\\\""),
            self.jobs,
            self.wall_ms,
            self.plan_ms,
            self.synth_ms,
            self.sta_ms,
            self.merge_ms,
            self.synth_planned,
            self.synth_executed,
            self.sta_executed,
            self.cache_hits,
            self.cache_misses,
            self.journal_hits,
            self.job_retries,
            self.job_failures,
        )
    }

    /// Folds another report into this one (used when several engine runs
    /// make up one logical build, e.g. the bench library covering four
    /// components).
    pub fn absorb(&mut self, other: &EngineReport) {
        self.jobs = self.jobs.max(other.jobs);
        self.synth_planned += other.synth_planned;
        self.synth_executed += other.synth_executed;
        self.sta_executed += other.sta_executed;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.journal_hits += other.journal_hits;
        self.job_retries += other.job_retries;
        self.job_failures += other.job_failures;
        self.plan_ms += other.plan_ms;
        self.synth_ms += other.synth_ms;
        self.sta_ms += other.sta_ms;
        self.merge_ms += other.merge_ms;
        self.wall_ms += other.wall_ms;
    }
}

/// One quarantined job of a campaign: which job, where it died, why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Component kind of the failed synthesis job.
    pub kind: ComponentKind,
    /// Operand width of the failed job.
    pub width: usize,
    /// Precision of the failed job.
    pub precision: usize,
    /// Scenario token (e.g. `wc:10`) for STA-stage failures; `None` when
    /// synthesis itself failed.
    pub scenario: Option<String>,
    /// Stage the failure occurred in: `synth` or `sta`.
    pub stage: &'static str,
    /// Attempts spent before quarantining, including retries.
    pub attempts: usize,
    /// Human-readable cause (error display, panic message, or timeout).
    pub reason: String,
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} w{} p{}", self.kind, self.width, self.precision)?;
        if let Some(token) = &self.scenario {
            write!(f, " @{token}")?;
        }
        write!(
            f,
            " [{}]: {} ({} attempt(s))",
            self.stage, self.reason, self.attempts
        )
    }
}

/// How completely a campaign ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignStatus {
    /// Every planned job produced its entries.
    Complete,
    /// Some jobs failed; the healthy ones produced a usable partial
    /// library.
    Partial,
    /// Every planned job failed — nothing usable came out.
    Empty,
}

/// The outcome of a fault-tolerant characterization campaign: whatever
/// completed, plus a machine-readable account of whatever did not.
#[derive(Debug)]
pub struct Campaign {
    /// One characterization per config, in config order. A config whose
    /// jobs all failed yields an empty characterization (no entries).
    pub characterizations: Vec<ComponentCharacterization>,
    /// Stage timings and cache/journal/retry counters.
    pub report: EngineReport,
    /// Quarantined jobs, in planned order; empty for a clean run.
    pub failures: Vec<JobFailure>,
}

impl Campaign {
    /// Whether the campaign is complete, usable-but-partial, or empty.
    pub fn status(&self) -> CampaignStatus {
        if self.failures.is_empty() {
            CampaignStatus::Complete
        } else if self.failures.len() >= self.report.synth_planned {
            CampaignStatus::Empty
        } else {
            CampaignStatus::Partial
        }
    }

    /// Collects the healthy characterizations (those with at least one
    /// entry) into an [`ApproxLibrary`].
    pub fn library(&self) -> ApproxLibrary {
        let mut library = ApproxLibrary::new();
        for characterization in &self.characterizations {
            if !characterization.entries().is_empty() {
                library.insert(characterization.clone());
            }
        }
        library
    }
}

/// Appends one run record to the machine-readable benchmark log at `path`
/// (created if absent). The file is a JSON object with a `runs` array, one
/// record per engine run — comparing the wall-clock of consecutive records
/// shows the cold-versus-warm cache trajectory. The rewrite is atomic
/// (temp file + rename), so concurrent or killed runs cannot tear the log.
///
/// # Errors
///
/// Returns I/O errors from reading or writing the log.
pub fn append_bench_record(
    path: &Path,
    label: &str,
    report: &EngineReport,
) -> std::io::Result<()> {
    append_bench_json(path, report.to_json_record(label))
}

/// Appends one pre-rendered single-line JSON record (which must start with
/// `{"label"` to survive future rewrites) to the benchmark log at `path`.
/// This is the record-agnostic half of [`append_bench_record`], shared with
/// trace summaries and other non-engine records.
///
/// # Errors
///
/// Returns I/O errors from reading or writing the log.
pub fn append_bench_json(path: &Path, record: String) -> std::io::Result<()> {
    // Existing records are one per line; carry them over verbatim.
    let mut records: Vec<String> = match std::fs::read_to_string(path) {
        Ok(text) => text
            .lines()
            .map(str::trim)
            .filter(|line| line.starts_with("{\"label\""))
            .map(|line| line.trim_end_matches(',').to_owned())
            .collect(),
        Err(_) => Vec::new(),
    };
    records.push(record);
    let mut out = String::from("{\n  \"schema\": \"aix-bench-characterize/v1\",\n  \"runs\": [\n");
    for (index, record) in records.iter().enumerate() {
        let comma = if index + 1 < records.len() { "," } else { "" };
        let _ = writeln!(out, "    {record}{comma}");
    }
    out.push_str("  ]\n}\n");
    write_atomic(path, &out)
}

/// The parallel, persistently cached characterization engine.
///
/// Construction snapshots the content fingerprint of the cell library and
/// the aging-model calibration; every cache probe and write is keyed
/// against it, so a retuned cell or recalibrated model can never serve
/// stale delays.
#[derive(Debug)]
pub struct CharacterizationEngine {
    cells: Arc<Library>,
    options: EngineOptions,
    netlists: Arc<NetlistCache>,
    fingerprint_base: u64,
}

/// Where and why one planned job failed, keyed by plan index until the
/// merge stage turns it into a [`JobFailure`].
struct FailureInfo {
    stage: &'static str,
    scenario: Option<String>,
    attempts: usize,
    reason: String,
}

impl From<(&'static str, Option<String>, JobError)> for FailureInfo {
    fn from((stage, scenario, error): (&'static str, Option<String>, JobError)) -> Self {
        Self {
            stage,
            scenario,
            attempts: error.attempts,
            reason: error.reason,
        }
    }
}

impl CharacterizationEngine {
    /// Creates an engine over `cells` with the given scheduling options.
    pub fn new(cells: Arc<Library>, options: EngineOptions) -> Self {
        let fingerprint_base = fingerprint_base(&cells, &Calibration::default());
        Self {
            cells,
            options,
            netlists: Arc::new(NetlistCache::new()),
            fingerprint_base,
        }
    }

    /// The engine's scheduling options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// The in-process netlist memoization this engine populates.
    pub fn netlists(&self) -> &NetlistCache {
        &self.netlists
    }

    /// Characterizes one component, treating any job failure as an error.
    ///
    /// # Errors
    ///
    /// Propagates synthesis/STA errors and invalid precision specs; a
    /// quarantined job surfaces as [`AixError::CampaignIncomplete`]. Use
    /// [`CharacterizationEngine::characterize_campaign`] to keep partial
    /// results instead.
    pub fn characterize(
        &self,
        config: &CharacterizationConfig,
    ) -> Result<(ComponentCharacterization, EngineReport), AixError> {
        let campaign = self.characterize_campaign(std::slice::from_ref(config));
        require_complete(&campaign)?;
        let mut characterizations = campaign.characterizations;
        Ok((
            characterizations.pop().expect("one config yields one result"),
            campaign.report,
        ))
    }

    /// Characterizes a batch of components into an [`ApproxLibrary`],
    /// scheduling every synthesis and STA job of the whole batch over one
    /// shared pool and treating any job failure as an error.
    ///
    /// # Errors
    ///
    /// Propagates synthesis/STA errors and invalid precision specs; a
    /// quarantined job surfaces as [`AixError::CampaignIncomplete`]. Use
    /// [`CharacterizationEngine::characterize_campaign`] to keep partial
    /// results instead.
    pub fn characterize_all(
        &self,
        configs: &[CharacterizationConfig],
    ) -> Result<(ApproxLibrary, EngineReport), AixError> {
        let campaign = self.characterize_campaign(configs);
        require_complete(&campaign)?;
        Ok((campaign.library(), campaign.report))
    }

    /// The cache fingerprint of one synthesis job.
    fn fingerprint(
        &self,
        kind: ComponentKind,
        width: usize,
        precision: usize,
        effort: Effort,
    ) -> u64 {
        let mut hash = self.fingerprint_base;
        fnv_eat(&mut hash, kind.label().as_bytes());
        fnv_eat(&mut hash, &(width as u64).to_le_bytes());
        fnv_eat(&mut hash, &(precision as u64).to_le_bytes());
        fnv_eat(&mut hash, effort.token().as_bytes());
        hash
    }

    /// The per-job guard assembled from the engine options.
    fn guard(&self) -> JobGuard {
        JobGuard {
            timeout: self.options.job_timeout,
            retries: self.options.retries,
            backoff_ms: self.options.backoff_ms,
            backoff_cap_ms: self.options.backoff_cap_ms,
            faults: self.options.faults.clone(),
            cancel: self.options.cancel.clone(),
        }
    }

    /// Evaluates cache-stage fault injection at `site`. An injected I/O
    /// error or panic here degrades the probe/writeback to a miss/skip —
    /// exactly how a real unreadable cache behaves — and never fails the
    /// job.
    fn cache_fault_ok(&self, site: &str) -> bool {
        let Some(plan) = &self.options.faults else {
            return true;
        };
        catch_unwind(AssertUnwindSafe(|| {
            plan.check(FaultStage::Cache, site, 1).is_ok()
        }))
        .unwrap_or(false)
    }

    /// Runs the whole batch as a fault-tolerant campaign: every synthesis
    /// and STA job is panic-isolated, watchdog-bounded and retried per the
    /// engine options; completed jobs land in the write-ahead journal (when
    /// configured) so an interrupted campaign resumes without recomputing;
    /// quarantined jobs are reported, not fatal.
    pub fn characterize_campaign(&self, configs: &[CharacterizationConfig]) -> Campaign {
        let wall = Instant::now();
        let jobs = self.options.resolved_jobs();
        let model = Arc::new(AgingModel::calibrated());
        let mut report = EngineReport {
            jobs,
            ..EngineReport::default()
        };
        // The resolved worker count is deliberately absent from every trace
        // event: all events outside the worker pools are emitted from
        // sequential code, so a warm (all-hit) run's trace is byte-identical
        // for any `--jobs` value.
        let campaign_span = aix_obs::span!("campaign", configs = configs.len());

        // Plan: one synthesis job per (config, precision), probing the
        // on-disk cache. A hit must cover every requested scenario.
        let plan_start = Instant::now();
        let plan_span = aix_obs::span!("plan");
        let config_tokens: Vec<Vec<String>> = configs
            .iter()
            .map(|config| {
                config
                    .scenarios
                    .iter()
                    .map(|&s| scenario_token(s.into()))
                    .collect()
            })
            .collect();
        struct SynthJob {
            config_index: usize,
            precision: usize,
            fingerprint: u64,
            cache_path: Option<PathBuf>,
            key_line: String,
            site: String,
            /// Valid prior entries found on disk or in the journal
            /// (token → delay). Used as the result on a full hit and
            /// merged into the writeback on a partial one.
            prior: BTreeMap<String, f64>,
            /// Whether `prior` covers every requested scenario.
            hit: bool,
            /// Whether the hit came from the resumed journal rather than
            /// the cache.
            journal_hit: bool,
        }
        let mut plan: Vec<SynthJob> = Vec::new();
        let mut campaign_fp = self.fingerprint_base;
        for (config_index, config) in configs.iter().enumerate() {
            let tokens = &config_tokens[config_index];
            for &precision in &config.precisions {
                let fingerprint =
                    self.fingerprint(config.kind, config.width, precision, config.effort);
                fnv_eat(&mut campaign_fp, &fingerprint.to_le_bytes());
                for token in tokens {
                    fnv_eat(&mut campaign_fp, token.as_bytes());
                }
                let site = format!(
                    "{}-w{}-p{}-{}",
                    config.kind, config.width, precision, config.effort,
                );
                let key_line = format!(
                    "key {} {} {} {} {fingerprint:016x}",
                    config.kind, config.width, precision, config.effort,
                );
                let cache_path = self
                    .options
                    .cache_dir
                    .as_ref()
                    .map(|dir| dir.join(format!("{site}-{fingerprint:016x}.lib")));
                let prior = cache_path
                    .as_ref()
                    .filter(|_| self.cache_fault_ok(&format!("read {site}")))
                    .and_then(|path| read_cache_entries(path, &key_line, precision))
                    .unwrap_or_default();
                let hit = !tokens.is_empty() && tokens.iter().all(|t| prior.contains_key(t));
                if cache_path.is_some() {
                    if hit {
                        report.cache_hits += 1;
                        aix_obs::count!("cache_hit", job = &site);
                    } else {
                        report.cache_misses += 1;
                        aix_obs::count!("cache_miss", job = &site);
                    }
                }
                plan.push(SynthJob {
                    config_index,
                    precision,
                    fingerprint,
                    cache_path,
                    key_line,
                    site,
                    prior,
                    hit,
                    journal_hit: false,
                });
            }
        }
        report.synth_planned = plan.len();

        // Write-ahead journal: open (loading prior progress on resume) and
        // record the plan before any job runs. Jobs a prior run completed
        // are hits served from the journal — independent of the cache.
        let mut journal = self
            .options
            .journal_dir
            .as_ref()
            .map(|dir| RunJournal::open(dir, campaign_fp, self.options.resume));
        if let Some(journal) = &mut journal {
            for job in &mut plan {
                if job.hit {
                    continue;
                }
                let tokens = &config_tokens[job.config_index];
                if let Some(entries) = journal.completed(job.fingerprint, tokens) {
                    job.prior = entries.clone();
                    job.hit = true;
                    job.journal_hit = true;
                    report.journal_hits += 1;
                    aix_obs::count!("journal_hit", job = &job.site);
                }
            }
            journal.record_plan(plan.len());
        }
        report.plan_ms = elapsed_ms(plan_start);
        plan_span.close();
        aix_obs::gauge!("synth_planned", report.synth_planned as f64);

        // Synthesis stage: pool over the misses, each job under the guard.
        // Results keep plan order, so failures are deterministic under any
        // job count.
        let synth_start = Instant::now();
        let to_synthesize: Vec<usize> = plan
            .iter()
            .enumerate()
            .filter(|(_, job)| !job.hit)
            .map(|(index, _)| index)
            .collect();
        report.synth_executed = to_synthesize.len();
        let synth_span = aix_obs::span!("synth_stage", executed = report.synth_executed);
        let guard = self.guard();
        let synthesized_list = parallel_map(jobs, to_synthesize, |index| {
            let job = &plan[index];
            let config = &configs[job.config_index];
            let (kind, width, precision, effort) =
                (config.kind, config.width, job.precision, config.effort);
            let _job_span = aix_obs::span!(
                "synth",
                job = &job.site,
                kind = config.kind.label(),
                width = width,
                precision = precision,
            );
            let outcome = guard.run(FaultStage::Synth, &job.site, || {
                let cells = Arc::clone(&self.cells);
                let netlists = Arc::clone(&self.netlists);
                move || netlists.synthesize(&cells, kind, width, precision, effort)
            });
            (index, outcome)
        });
        let mut netlists: HashMap<usize, Arc<Netlist>> = HashMap::new();
        let mut failed: HashMap<usize, FailureInfo> = HashMap::new();
        for (index, outcome) in synthesized_list {
            match outcome {
                Ok((netlist, attempts)) => {
                    report.job_retries += attempts - 1;
                    netlists.insert(index, netlist);
                }
                Err(error) => {
                    report.job_retries += error.attempts - 1;
                    failed.insert(index, ("synth", None, error).into());
                }
            }
        }
        report.synth_ms = elapsed_ms(synth_start);
        synth_span.close();

        // STA stage: one guarded job per (synthesized precision, scenario).
        // Jobs whose synthesis was quarantined are skipped outright.
        let sta_start = Instant::now();
        let sta_plan: Vec<(usize, usize)> = plan
            .iter()
            .enumerate()
            .filter(|(index, job)| !job.hit && netlists.contains_key(index))
            .flat_map(|(index, job)| {
                (0..configs[job.config_index].scenarios.len()).map(move |s| (index, s))
            })
            .collect();
        report.sta_executed = sta_plan.len();
        let sta_span = aix_obs::span!("sta_stage", executed = report.sta_executed);
        let delays_list = parallel_map(jobs, sta_plan, |(index, scenario_index)| {
            let job = &plan[index];
            let config = &configs[job.config_index];
            let scenario = config.scenarios[scenario_index];
            let site = format!("{}@{}", job.site, config_tokens[job.config_index][scenario_index]);
            let _job_span = aix_obs::span!(
                "sta",
                job = &site,
                kind = config.kind.label(),
                width = config.width,
                precision = job.precision,
            );
            let outcome = guard.run(FaultStage::Sta, &site, || {
                let netlist = Arc::clone(&netlists[&index]);
                let model = Arc::clone(&model);
                move || {
                    let delays = NetDelays::aged(&netlist, &model, scenario);
                    analyze(&netlist, &delays)
                        .map(|r| quantize_ps(r.max_delay_ps()))
                        .map_err(AixError::from)
                }
            });
            ((index, scenario_index), outcome)
        });
        let mut delays: HashMap<(usize, usize), f64> = HashMap::new();
        for ((index, scenario_index), outcome) in delays_list {
            match outcome {
                Ok((delay, attempts)) => {
                    report.job_retries += attempts - 1;
                    delays.insert((index, scenario_index), delay);
                }
                Err(error) => {
                    report.job_retries += error.attempts - 1;
                    // The first failing scenario (in scenario order) names
                    // the job's quarantine; later failures add nothing.
                    let token = config_tokens[plan[index].config_index][scenario_index].clone();
                    let entry = failed.entry(index);
                    use std::collections::hash_map::Entry;
                    match entry {
                        Entry::Vacant(slot) => {
                            slot.insert(("sta", Some(token), error).into());
                        }
                        Entry::Occupied(mut slot) => {
                            // Deterministic pick: the smallest scenario
                            // token index wins regardless of worker order.
                            let tokens = &config_tokens[plan[index].config_index];
                            let existing = slot
                                .get()
                                .scenario
                                .as_ref()
                                .and_then(|t| tokens.iter().position(|x| x == t))
                                .unwrap_or(0);
                            if slot.get().stage == "sta" && scenario_index < existing {
                                slot.insert(("sta", Some(token), error).into());
                            }
                        }
                    }
                }
            }
        }
        report.sta_ms = elapsed_ms(sta_start);
        sta_span.close();

        // Merge in planned order — deterministic for any job count — and
        // write misses back to the cache and journal (best effort; a
        // read-only directory degrades to cold runs, never to an error).
        let merge_start = Instant::now();
        let merge_span = aix_obs::span!("merge");
        let mut out: Vec<ComponentCharacterization> = configs
            .iter()
            .map(|c| ComponentCharacterization::new(c.kind, c.width, c.effort))
            .collect();
        let mut failures: Vec<JobFailure> = Vec::new();
        for (index, job) in plan.iter().enumerate() {
            let config = &configs[job.config_index];
            if let Some(info) = failed.remove(&index) {
                if let Some(journal) = &mut journal {
                    journal.record_failed(
                        job.fingerprint,
                        info.stage,
                        info.attempts,
                        &info.reason,
                    );
                }
                // Quarantine events mirror `JobFailure` records one-to-one,
                // in the same (planned) order, so the trace and the
                // campaign report can be cross-checked.
                aix_obs::quarantine!(
                    "job",
                    job = &job.site,
                    stage = info.stage,
                    attempts = info.attempts,
                );
                failures.push(JobFailure {
                    kind: config.kind,
                    width: config.width,
                    precision: job.precision,
                    scenario: info.scenario,
                    stage: info.stage,
                    attempts: info.attempts,
                    reason: info.reason,
                });
                continue;
            }
            if job.hit {
                for &scenario in &config.scenarios {
                    let token = scenario_token(scenario.into());
                    out[job.config_index].add_entry(CharacterizationEntry {
                        precision: job.precision,
                        scenario: scenario.into(),
                        delay_ps: job.prior[&token],
                    });
                }
                if let Some(journal) = &mut journal {
                    journal.record_done(job.fingerprint, job.precision, &job.prior);
                }
                // A journal hit still warms the cache for future runs.
                if job.journal_hit {
                    if let Some(path) = &job.cache_path {
                        if self.cache_fault_ok(&format!("write {}", job.site)) {
                            let _ = write_cache_entries(
                                path,
                                &job.key_line,
                                job.precision,
                                &job.prior,
                            );
                        }
                    }
                }
                continue;
            }
            let mut writeback = job.prior.clone();
            for (scenario_index, &scenario) in config.scenarios.iter().enumerate() {
                let delay_ps = delays[&(index, scenario_index)];
                out[job.config_index].add_entry(CharacterizationEntry {
                    precision: job.precision,
                    scenario: scenario.into(),
                    delay_ps,
                });
                writeback.insert(scenario_token(scenario.into()), delay_ps);
            }
            if let Some(path) = &job.cache_path {
                if self.cache_fault_ok(&format!("write {}", job.site)) {
                    let _ = write_cache_entries(path, &job.key_line, job.precision, &writeback);
                }
            }
            if let Some(journal) = &mut journal {
                journal.record_done(job.fingerprint, job.precision, &writeback);
            }
        }
        for characterization in &mut out {
            characterization.enforce_synthesis_monotonicity();
        }
        report.job_failures = failures.len();
        report.merge_ms = elapsed_ms(merge_start);
        merge_span.close();
        report.wall_ms = elapsed_ms(wall);
        campaign_span.close();
        Campaign {
            characterizations: out,
            report,
            failures,
        }
    }
}

/// Maps a campaign with failures to [`AixError::CampaignIncomplete`] for
/// the all-or-nothing entry points.
fn require_complete(campaign: &Campaign) -> Result<(), AixError> {
    match campaign.failures.first() {
        None => Ok(()),
        Some(first) => Err(AixError::CampaignIncomplete {
            failed: campaign.failures.len(),
            planned: campaign.report.synth_planned,
            first: first.to_string(),
        }),
    }
}

/// FNV-1a over the cell library's content hash and the aging calibration
/// token: the part of every cache fingerprint shared by all jobs.
fn fingerprint_base(cells: &Library, calibration: &Calibration) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    fnv_eat(&mut hash, &cells.content_hash().to_le_bytes());
    fnv_eat(&mut hash, calibration.fingerprint_token().as_bytes());
    hash
}

fn fnv_eat(hash: &mut u64, bytes: &[u8]) {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    for &byte in bytes {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

fn elapsed_ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// Quantizes a delay to the 6-decimal (sub-femtosecond) resolution of the
/// library text format. Computed delays pass through the same rounding as
/// delays reloaded from the cache, so characterizations are bit-identical
/// in memory — not merely in serialized form — whether a run was cold,
/// warm or mixed. The running minimum of the monotonicity pass commutes
/// with this monotone rounding, so enforcement order cannot reintroduce a
/// difference.
fn quantize_ps(delay: f64) -> f64 {
    format!("{delay:.6}")
        .parse()
        .expect("fixed-decimal formatting always reparses")
}

const CACHE_HEADER: &str = "aix-charcache v1";

/// Reads and validates one cache file. Returns the entries (scenario token
/// → delay) only when the file is intact *and* its key line matches
/// `expected_key` — a stale fingerprint, wrong component, truncated file or
/// any malformed line yields `None`, which the planner treats as a miss.
fn read_cache_entries(
    path: &Path,
    expected_key: &str,
    precision: usize,
) -> Option<BTreeMap<String, f64>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    if lines.next()?.trim() != CACHE_HEADER {
        return None;
    }
    if lines.next()?.trim() != expected_key {
        return None;
    }
    let mut entries = BTreeMap::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        if fields.next() != Some("entry") {
            return None;
        }
        let entry_precision: usize = fields.next()?.parse().ok()?;
        if entry_precision != precision {
            return None;
        }
        let token = fields.next()?;
        parse_scenario(token)?;
        let delay: f64 = fields.next()?.parse().ok()?;
        if !delay.is_finite() || delay < 0.0 {
            return None;
        }
        entries.insert(token.to_owned(), delay);
    }
    Some(entries)
}

/// Writes one cache file atomically (temp file + rename), using the same
/// 6-decimal delay format as [`ApproxLibrary::to_text`] so cached delays
/// reformat to byte-identical library text.
fn write_cache_entries(
    path: &Path,
    key_line: &str,
    precision: usize,
    entries: &BTreeMap<String, f64>,
) -> std::io::Result<()> {
    let mut text = format!("{CACHE_HEADER}\n{key_line}\n");
    for (token, delay) in entries {
        let _ = writeln!(text, "entry {precision} {token} {delay:.6}");
    }
    write_atomic(path, &text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CharacterizationScenario;
    use aix_aging::{AgingScenario, Lifetime};

    fn cells() -> Arc<Library> {
        Arc::new(Library::nangate45_like())
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        for jobs in [1, 2, 4, 9] {
            let doubled = parallel_map(jobs, (0..50).collect(), |x: i32| x * 2);
            assert_eq!(doubled, (0..50).map(|x| x * 2).collect::<Vec<_>>());
        }
        let empty: Vec<i32> = parallel_map(4, Vec::new(), |x: i32| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn fingerprints_separate_every_key_dimension() {
        let engine = CharacterizationEngine::new(cells(), EngineOptions::sequential());
        let base = engine.fingerprint(ComponentKind::Adder, 16, 12, Effort::Ultra);
        for other in [
            engine.fingerprint(ComponentKind::Mac, 16, 12, Effort::Ultra),
            engine.fingerprint(ComponentKind::Adder, 32, 12, Effort::Ultra),
            engine.fingerprint(ComponentKind::Adder, 16, 11, Effort::Ultra),
            engine.fingerprint(ComponentKind::Adder, 16, 12, Effort::Medium),
        ] {
            assert_ne!(base, other);
        }
        // Stable across engines over the same cells and calibration.
        let again = CharacterizationEngine::new(cells(), EngineOptions::sequential());
        assert_eq!(
            base,
            again.fingerprint(ComponentKind::Adder, 16, 12, Effort::Ultra)
        );
    }

    #[test]
    fn netlist_cache_memoizes() {
        let cells = cells();
        let cache = NetlistCache::new();
        let a = cache
            .synthesize(&cells, ComponentKind::Adder, 8, 8, Effort::Medium)
            .unwrap();
        let b = cache
            .synthesize(&cells, ComponentKind::Adder, 8, 8, Effort::Medium)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup is memoized");
        assert_eq!(cache.len(), 1);
        cache
            .synthesize(&cells, ComponentKind::Adder, 8, 6, Effort::Medium)
            .unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn engine_matches_sequential_characterization() {
        let cells = cells();
        let config = CharacterizationConfig::quick(ComponentKind::Adder, 12);
        let engine = CharacterizationEngine::new(Arc::clone(&cells), EngineOptions::sequential());
        let (c, report) = engine.characterize(&config).unwrap();
        assert_eq!(report.synth_planned, config.precisions.len());
        assert_eq!(report.synth_executed, config.precisions.len());
        assert_eq!(
            report.sta_executed,
            config.precisions.len() * config.scenarios.len()
        );
        assert_eq!(report.cache_hits + report.cache_misses, 0, "no cache dir");
        assert_eq!(report.journal_hits, 0, "no journal dir");
        assert_eq!(report.job_failures, 0);
        let aged = c
            .delay_ps(
                12,
                CharacterizationScenario::Uniform(AgingScenario::worst_case(Lifetime::YEARS_10)),
            )
            .unwrap();
        assert!(aged > c.fresh_full_delay_ps());
    }

    #[test]
    fn bench_record_json_accumulates_runs() {
        let dir = std::env::temp_dir().join(format!("aix-bench-json-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("BENCH_characterize.json");
        let report = EngineReport {
            jobs: 2,
            wall_ms: 12.5,
            ..EngineReport::default()
        };
        append_bench_record(&path, "cold", &report).unwrap();
        append_bench_record(&path, "warm \"quoted\"", &report).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"schema\": \"aix-bench-characterize/v1\""));
        assert_eq!(text.matches("{\"label\"").count(), 2);
        assert!(text.contains("\"label\":\"cold\""));
        assert!(text.contains("warm \\\"quoted\\\""));
        assert!(text.contains("\"wall_ms\":12.500"));
        assert!(text.contains("\"job_failures\":0"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn env_value_parsers_accept_and_reject() {
        assert_eq!(parse_env_jobs("4").unwrap(), 4);
        for bad in ["0", "-1", "lots", ""] {
            let err = parse_env_jobs(bad).unwrap_err();
            assert!(
                matches!(err, AixError::InvalidOption { flag: "AIX_JOBS", .. }),
                "`{bad}` must name AIX_JOBS"
            );
        }
        assert_eq!(parse_env_count("AIX_RETRIES", "0").unwrap(), 0);
        assert_eq!(parse_env_count("AIX_RETRIES", "3").unwrap(), 3);
        assert!(parse_env_count("AIX_RETRIES", "never").is_err());
        assert_eq!(parse_env_timeout("AIX_JOB_TIMEOUT", "off").unwrap(), None);
        assert_eq!(parse_env_timeout("AIX_JOB_TIMEOUT", "0").unwrap(), None);
        assert_eq!(
            parse_env_timeout("AIX_JOB_TIMEOUT", "1.5").unwrap(),
            Some(Duration::from_millis(1500))
        );
        assert!(parse_env_timeout("AIX_JOB_TIMEOUT", "-2").is_err());
        assert!(parse_env_timeout("AIX_JOB_TIMEOUT", "soon").is_err());
        assert!(parse_env_faults("AIX_FAULT", "panic:p=0.1,seed=3").is_ok());
        let err = parse_env_faults("AIX_FAULT", "explode").unwrap_err();
        assert!(err.to_string().contains("AIX_FAULT"));
    }
}
