//! Parallel, persistently cached characterization engine.
//!
//! The paper's key economic argument is that the library of aging-induced
//! approximations is built *once* per component family and then reused at
//! the microarchitecture level with no further gate-level work (Fig. 3,
//! Fig. 6). This module makes that pre-characterization loop cheap and
//! measurable:
//!
//! * **Job planner** — a [`CharacterizationConfig`] batch expands into
//!   independent `(kind, width, precision)` *synthesis jobs* and
//!   `(kind, width, precision, scenario)` *STA jobs*.
//! * **Work pool** — jobs self-schedule over [`std::thread::scope`] worker
//!   threads ([`parallel_map`]), with the thread count taken from an
//!   explicit option, the `AIX_JOBS` environment variable, or the machine's
//!   available parallelism.
//! * **Content-addressed cache** — per-synthesis-job results persist under
//!   a cache directory (default `out/cache/`), keyed by a fingerprint of
//!   (cell-library content hash, aging-model calibration, kind, width,
//!   precision, effort). A warm run skips synthesis and STA entirely.
//!   Corrupted, truncated or stale files are detected and fall back to
//!   re-synthesis — they can never poison results.
//! * **Observability** — [`EngineReport`] carries per-stage wall-clock and
//!   cache hit/miss counters; [`append_bench_record`] persists them as
//!   machine-readable `BENCH_characterize.json` so the perf trajectory of
//!   repeated runs is measurable.
//!
//! The engine is deterministic: characterization output is byte-identical
//! for any job count and for cold versus warm caches. Jobs never share
//! mutable state; results merge in planned order, and cached delays
//! round-trip through the same 6-decimal text format the
//! [`ApproxLibrary`] serializes, which reformats to identical bytes.
//!
//! # Examples
//!
//! ```
//! use aix_core::{CharacterizationConfig, CharacterizationEngine, ComponentKind, EngineOptions};
//! use aix_cells::Library;
//! use std::sync::Arc;
//!
//! let cells = Arc::new(Library::nangate45_like());
//! let engine = CharacterizationEngine::new(cells, EngineOptions::sequential());
//! let config = CharacterizationConfig::quick(ComponentKind::Adder, 8);
//! let (characterization, report) = engine.characterize(&config)?;
//! assert!(characterization.fresh_full_delay_ps() > 0.0);
//! assert_eq!(report.synth_executed, config.precisions.len());
//! # Ok::<(), aix_core::AixError>(())
//! ```

use crate::library::{parse_scenario, scenario_token};
use crate::{
    AixError, ApproxLibrary, CharacterizationConfig, CharacterizationEntry,
    ComponentCharacterization, ComponentKind,
};
use aix_aging::{AgingModel, Calibration};
use aix_arith::ComponentSpec;
use aix_cells::Library;
use aix_netlist::Netlist;
use aix_sta::{analyze, NetDelays};
use aix_synth::Effort;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How the engine schedules and caches its jobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineOptions {
    /// Worker threads; `0` resolves to `AIX_JOBS` or, failing that, the
    /// machine's available parallelism.
    pub jobs: usize,
    /// Directory of the persistent characterization cache; `None` disables
    /// on-disk caching.
    pub cache_dir: Option<PathBuf>,
}

impl EngineOptions {
    /// One worker, no on-disk cache: the configuration that reproduces the
    /// historical sequential [`characterize_component`] behaviour exactly
    /// (it is also what that function now uses internally).
    ///
    /// [`characterize_component`]: crate::characterize_component
    pub fn sequential() -> Self {
        Self {
            jobs: 1,
            cache_dir: None,
        }
    }

    /// Honours the environment: `AIX_JOBS` for the worker count and
    /// `AIX_CACHE` for the cache directory (`off`, `none` or `0` disable
    /// caching; unset uses [`default_cache_dir`]).
    pub fn from_env() -> Self {
        let jobs = std::env::var("AIX_JOBS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let cache_dir = match std::env::var("AIX_CACHE") {
            Ok(value) if matches!(value.as_str(), "off" | "none" | "0") => None,
            Ok(value) => Some(PathBuf::from(value)),
            Err(_) => Some(default_cache_dir()),
        };
        Self { jobs, cache_dir }
    }

    /// The effective worker count: an explicit `jobs`, else `AIX_JOBS`,
    /// else the machine's available parallelism.
    pub fn resolved_jobs(&self) -> usize {
        if self.jobs > 0 {
            return self.jobs;
        }
        if let Some(jobs) = std::env::var("AIX_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&j| j > 0)
        {
            return jobs;
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }
}

/// The default persistent cache location.
pub fn default_cache_dir() -> PathBuf {
    PathBuf::from("out/cache")
}

/// The default path of the machine-readable characterization benchmark log.
pub fn default_bench_json_path() -> PathBuf {
    PathBuf::from("out/BENCH_characterize.json")
}

/// Runs `run` over `items` on up to `jobs` scoped worker threads and
/// returns the results *in item order*, regardless of which worker finished
/// first. Workers self-schedule from a shared index (work stealing over a
/// common queue), so an expensive item does not serialize the rest.
///
/// With `jobs <= 1` (or a single item) everything runs inline on the
/// calling thread — no spawn overhead for the sequential case.
///
/// # Panics
///
/// Propagates panics from `run` once all workers have stopped.
pub fn parallel_map<T, R, F>(jobs: usize, items: Vec<T>, run: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = jobs.max(1).min(items.len());
    if workers <= 1 {
        return items.into_iter().map(run).collect();
    }
    let queue: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = queue.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= queue.len() {
                    break;
                }
                let item = queue[index]
                    .lock()
                    .expect("queue slot poisoned")
                    .take()
                    .expect("each item is claimed exactly once");
                *slots[index].lock().expect("result slot poisoned") = Some(run(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every item was processed")
        })
        .collect()
}

/// Thread-safe memoization of synthesized netlists, keyed by
/// `(kind, width, precision, effort)`. Synthesis is deterministic, so
/// concurrent duplicate synthesis is merely wasted work — the first result
/// stored wins and all callers observe identical netlists.
///
/// The engine shares one cache across a whole batch; re-verification
/// ([`aix-verify`]) reuses the same type so the full-width constraint
/// netlist is synthesized once per component rather than once per scenario.
///
/// [`aix-verify`]: crate#
#[derive(Debug, Default)]
pub struct NetlistCache {
    inner: Mutex<HashMap<SynthKey, Arc<Netlist>>>,
}

/// Memoization key of one synthesis job: `(kind, width, precision, effort)`.
type SynthKey = (ComponentKind, usize, usize, Effort);

impl NetlistCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct netlists held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("netlist cache poisoned").len()
    }

    /// Whether no netlist has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Synthesizes `(kind, width, precision)` at `effort`, or returns the
    /// memoized netlist.
    ///
    /// # Errors
    ///
    /// Propagates invalid specs and synthesis failures as [`AixError`].
    pub fn synthesize(
        &self,
        cells: &Arc<Library>,
        kind: ComponentKind,
        width: usize,
        precision: usize,
        effort: Effort,
    ) -> Result<Arc<Netlist>, AixError> {
        let key = (kind, width, precision, effort);
        if let Some(hit) = self.inner.lock().expect("netlist cache poisoned").get(&key) {
            return Ok(Arc::clone(hit));
        }
        let spec = ComponentSpec::new(width, precision)?;
        let netlist = Arc::new(kind.synthesize(cells, spec, effort)?);
        let mut lock = self.inner.lock().expect("netlist cache poisoned");
        Ok(Arc::clone(lock.entry(key).or_insert(netlist)))
    }
}

/// Per-stage wall-clock and cache counters of one engine run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineReport {
    /// Worker threads the run resolved to.
    pub jobs: usize,
    /// Synthesis jobs the planner expanded (one per precision per config).
    pub synth_planned: usize,
    /// Synthesis jobs actually executed (planned minus cache hits).
    pub synth_executed: usize,
    /// STA passes executed (scenarios × executed synthesis jobs).
    pub sta_executed: usize,
    /// Synthesis jobs satisfied from the on-disk cache.
    pub cache_hits: usize,
    /// Synthesis jobs that consulted the cache and missed.
    pub cache_misses: usize,
    /// Planning stage wall-clock, in milliseconds (includes cache probes).
    pub plan_ms: f64,
    /// Synthesis stage wall-clock, in milliseconds.
    pub synth_ms: f64,
    /// STA stage wall-clock, in milliseconds.
    pub sta_ms: f64,
    /// Merge/cache-writeback stage wall-clock, in milliseconds.
    pub merge_ms: f64,
    /// End-to-end wall-clock, in milliseconds.
    pub wall_ms: f64,
}

impl EngineReport {
    /// One human-readable summary line for CLI output.
    pub fn summary(&self) -> String {
        format!(
            "{} job(s) · {:.0} ms wall: {} synth planned, {} executed \
             ({} cache hit / {} miss), {} STA passes \
             [plan {:.0} · synth {:.0} · sta {:.0} · merge {:.0} ms]",
            self.jobs,
            self.wall_ms,
            self.synth_planned,
            self.synth_executed,
            self.cache_hits,
            self.cache_misses,
            self.sta_executed,
            self.plan_ms,
            self.synth_ms,
            self.sta_ms,
            self.merge_ms,
        )
    }

    /// The run as one machine-readable JSON object (a single line).
    pub fn to_json_record(&self, label: &str) -> String {
        format!(
            "{{\"label\":\"{}\",\"jobs\":{},\"wall_ms\":{:.3},\"plan_ms\":{:.3},\
             \"synth_ms\":{:.3},\"sta_ms\":{:.3},\"merge_ms\":{:.3},\
             \"synth_planned\":{},\"synth_executed\":{},\"sta_executed\":{},\
             \"cache_hits\":{},\"cache_misses\":{}}}",
            label.replace('\\', "\\\\").replace('"', "\\\""),
            self.jobs,
            self.wall_ms,
            self.plan_ms,
            self.synth_ms,
            self.sta_ms,
            self.merge_ms,
            self.synth_planned,
            self.synth_executed,
            self.sta_executed,
            self.cache_hits,
            self.cache_misses,
        )
    }

    /// Folds another report into this one (used when several engine runs
    /// make up one logical build, e.g. the bench library covering four
    /// components).
    pub fn absorb(&mut self, other: &EngineReport) {
        self.jobs = self.jobs.max(other.jobs);
        self.synth_planned += other.synth_planned;
        self.synth_executed += other.synth_executed;
        self.sta_executed += other.sta_executed;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.plan_ms += other.plan_ms;
        self.synth_ms += other.synth_ms;
        self.sta_ms += other.sta_ms;
        self.merge_ms += other.merge_ms;
        self.wall_ms += other.wall_ms;
    }
}

/// Appends one run record to the machine-readable benchmark log at `path`
/// (created if absent). The file is a JSON object with a `runs` array, one
/// record per engine run — comparing the wall-clock of consecutive records
/// shows the cold-versus-warm cache trajectory.
///
/// # Errors
///
/// Returns I/O errors from reading or writing the log.
pub fn append_bench_record(
    path: &Path,
    label: &str,
    report: &EngineReport,
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    // Existing records are one per line; carry them over verbatim.
    let mut records: Vec<String> = match std::fs::read_to_string(path) {
        Ok(text) => text
            .lines()
            .map(str::trim)
            .filter(|line| line.starts_with("{\"label\""))
            .map(|line| line.trim_end_matches(',').to_owned())
            .collect(),
        Err(_) => Vec::new(),
    };
    records.push(report.to_json_record(label));
    let mut out = String::from("{\n  \"schema\": \"aix-bench-characterize/v1\",\n  \"runs\": [\n");
    for (index, record) in records.iter().enumerate() {
        let comma = if index + 1 < records.len() { "," } else { "" };
        let _ = writeln!(out, "    {record}{comma}");
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// The parallel, persistently cached characterization engine.
///
/// Construction snapshots the content fingerprint of the cell library and
/// the aging-model calibration; every cache probe and write is keyed
/// against it, so a retuned cell or recalibrated model can never serve
/// stale delays.
#[derive(Debug)]
pub struct CharacterizationEngine {
    cells: Arc<Library>,
    options: EngineOptions,
    netlists: NetlistCache,
    fingerprint_base: u64,
}

impl CharacterizationEngine {
    /// Creates an engine over `cells` with the given scheduling options.
    pub fn new(cells: Arc<Library>, options: EngineOptions) -> Self {
        let fingerprint_base = fingerprint_base(&cells, &Calibration::default());
        Self {
            cells,
            options,
            netlists: NetlistCache::new(),
            fingerprint_base,
        }
    }

    /// The engine's scheduling options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// The in-process netlist memoization this engine populates.
    pub fn netlists(&self) -> &NetlistCache {
        &self.netlists
    }

    /// Characterizes one component.
    ///
    /// # Errors
    ///
    /// Propagates synthesis/STA errors and invalid precision specs.
    pub fn characterize(
        &self,
        config: &CharacterizationConfig,
    ) -> Result<(ComponentCharacterization, EngineReport), AixError> {
        let (mut characterizations, report) = self.run(std::slice::from_ref(config))?;
        Ok((
            characterizations.pop().expect("one config yields one result"),
            report,
        ))
    }

    /// Characterizes a batch of components into an [`ApproxLibrary`],
    /// scheduling every synthesis and STA job of the whole batch over one
    /// shared pool.
    ///
    /// # Errors
    ///
    /// Propagates synthesis/STA errors and invalid precision specs.
    pub fn characterize_all(
        &self,
        configs: &[CharacterizationConfig],
    ) -> Result<(ApproxLibrary, EngineReport), AixError> {
        let (characterizations, report) = self.run(configs)?;
        let mut library = ApproxLibrary::new();
        for characterization in characterizations {
            library.insert(characterization);
        }
        Ok((library, report))
    }

    /// The cache fingerprint of one synthesis job.
    fn fingerprint(
        &self,
        kind: ComponentKind,
        width: usize,
        precision: usize,
        effort: Effort,
    ) -> u64 {
        let mut hash = self.fingerprint_base;
        fnv_eat(&mut hash, kind.label().as_bytes());
        fnv_eat(&mut hash, &(width as u64).to_le_bytes());
        fnv_eat(&mut hash, &(precision as u64).to_le_bytes());
        fnv_eat(&mut hash, effort.token().as_bytes());
        hash
    }

    fn run(
        &self,
        configs: &[CharacterizationConfig],
    ) -> Result<(Vec<ComponentCharacterization>, EngineReport), AixError> {
        let wall = Instant::now();
        let jobs = self.options.resolved_jobs();
        let model = AgingModel::calibrated();
        let mut report = EngineReport {
            jobs,
            ..EngineReport::default()
        };

        // Plan: one synthesis job per (config, precision), probing the
        // on-disk cache. A hit must cover every requested scenario.
        let plan_start = Instant::now();
        struct SynthJob {
            config_index: usize,
            precision: usize,
            cache_path: Option<PathBuf>,
            key_line: String,
            /// Valid prior entries found on disk (token → delay). Used as
            /// the result on a full hit and merged into the writeback on a
            /// partial one.
            prior: BTreeMap<String, f64>,
            /// Whether `prior` covers every requested scenario.
            hit: bool,
        }
        let mut plan: Vec<SynthJob> = Vec::new();
        for (config_index, config) in configs.iter().enumerate() {
            let tokens: Vec<String> = config
                .scenarios
                .iter()
                .map(|&s| scenario_token(s.into()))
                .collect();
            for &precision in &config.precisions {
                let fingerprint =
                    self.fingerprint(config.kind, config.width, precision, config.effort);
                let key_line = format!(
                    "key {} {} {} {} {fingerprint:016x}",
                    config.kind, config.width, precision, config.effort,
                );
                let cache_path = self.options.cache_dir.as_ref().map(|dir| {
                    dir.join(format!(
                        "{}-w{}-p{}-{}-{fingerprint:016x}.lib",
                        config.kind, config.width, precision, config.effort,
                    ))
                });
                let prior = cache_path
                    .as_ref()
                    .and_then(|path| read_cache_entries(path, &key_line, precision))
                    .unwrap_or_default();
                let hit = !tokens.is_empty() && tokens.iter().all(|t| prior.contains_key(t));
                if cache_path.is_some() {
                    if hit {
                        report.cache_hits += 1;
                    } else {
                        report.cache_misses += 1;
                    }
                }
                plan.push(SynthJob {
                    config_index,
                    precision,
                    cache_path,
                    key_line,
                    prior,
                    hit,
                });
            }
        }
        report.synth_planned = plan.len();
        report.plan_ms = elapsed_ms(plan_start);

        // Synthesis stage: pool over the cache misses. Results keep plan
        // order, so the first error is deterministic under any job count.
        let synth_start = Instant::now();
        let to_synthesize: Vec<usize> = plan
            .iter()
            .enumerate()
            .filter(|(_, job)| !job.hit)
            .map(|(index, _)| index)
            .collect();
        report.synth_executed = to_synthesize.len();
        let synthesized_list = parallel_map(jobs, to_synthesize, |index| {
            let job = &plan[index];
            let config = &configs[job.config_index];
            let netlist = self.netlists.synthesize(
                &self.cells,
                config.kind,
                config.width,
                job.precision,
                config.effort,
            );
            (index, netlist)
        });
        let mut netlists: HashMap<usize, Arc<Netlist>> = HashMap::new();
        for (index, result) in synthesized_list {
            netlists.insert(index, result?);
        }
        report.synth_ms = elapsed_ms(synth_start);

        // STA stage: one job per (synthesized precision, scenario).
        let sta_start = Instant::now();
        let sta_plan: Vec<(usize, usize)> = plan
            .iter()
            .enumerate()
            .filter(|(_, job)| !job.hit)
            .flat_map(|(index, job)| {
                (0..configs[job.config_index].scenarios.len()).map(move |s| (index, s))
            })
            .collect();
        report.sta_executed = sta_plan.len();
        let delays_list = parallel_map(jobs, sta_plan, |(index, scenario_index)| {
            let job = &plan[index];
            let config = &configs[job.config_index];
            let netlist = &netlists[&index];
            let scenario = config.scenarios[scenario_index];
            let delays = NetDelays::aged(netlist, &model, scenario);
            let delay = analyze(netlist, &delays).map(|r| quantize_ps(r.max_delay_ps()));
            ((index, scenario_index), delay)
        });
        let mut delays: HashMap<(usize, usize), f64> = HashMap::new();
        for (key, result) in delays_list {
            delays.insert(key, result?);
        }
        report.sta_ms = elapsed_ms(sta_start);

        // Merge in planned order — deterministic for any job count — and
        // write misses back to the cache (best effort; a read-only cache
        // directory degrades to cold runs, never to an error).
        let merge_start = Instant::now();
        let mut out: Vec<ComponentCharacterization> = configs
            .iter()
            .map(|c| ComponentCharacterization::new(c.kind, c.width, c.effort))
            .collect();
        for (index, job) in plan.iter().enumerate() {
            let config = &configs[job.config_index];
            if job.hit {
                for &scenario in &config.scenarios {
                    let token = scenario_token(scenario.into());
                    out[job.config_index].add_entry(CharacterizationEntry {
                        precision: job.precision,
                        scenario: scenario.into(),
                        delay_ps: job.prior[&token],
                    });
                }
                continue;
            }
            let mut writeback = job.prior.clone();
            for (scenario_index, &scenario) in config.scenarios.iter().enumerate() {
                let delay_ps = delays[&(index, scenario_index)];
                out[job.config_index].add_entry(CharacterizationEntry {
                    precision: job.precision,
                    scenario: scenario.into(),
                    delay_ps,
                });
                writeback.insert(scenario_token(scenario.into()), delay_ps);
            }
            if let Some(path) = &job.cache_path {
                let _ = write_cache_entries(path, &job.key_line, job.precision, &writeback);
            }
        }
        for characterization in &mut out {
            characterization.enforce_synthesis_monotonicity();
        }
        report.merge_ms = elapsed_ms(merge_start);
        report.wall_ms = elapsed_ms(wall);
        Ok((out, report))
    }
}

/// FNV-1a over the cell library's content hash and the aging calibration
/// token: the part of every cache fingerprint shared by all jobs.
fn fingerprint_base(cells: &Library, calibration: &Calibration) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    fnv_eat(&mut hash, &cells.content_hash().to_le_bytes());
    fnv_eat(&mut hash, calibration.fingerprint_token().as_bytes());
    hash
}

fn fnv_eat(hash: &mut u64, bytes: &[u8]) {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    for &byte in bytes {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

fn elapsed_ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// Quantizes a delay to the 6-decimal (sub-femtosecond) resolution of the
/// library text format. Computed delays pass through the same rounding as
/// delays reloaded from the cache, so characterizations are bit-identical
/// in memory — not merely in serialized form — whether a run was cold,
/// warm or mixed. The running minimum of the monotonicity pass commutes
/// with this monotone rounding, so enforcement order cannot reintroduce a
/// difference.
fn quantize_ps(delay: f64) -> f64 {
    format!("{delay:.6}")
        .parse()
        .expect("fixed-decimal formatting always reparses")
}

const CACHE_HEADER: &str = "aix-charcache v1";

/// Reads and validates one cache file. Returns the entries (scenario token
/// → delay) only when the file is intact *and* its key line matches
/// `expected_key` — a stale fingerprint, wrong component, truncated file or
/// any malformed line yields `None`, which the planner treats as a miss.
fn read_cache_entries(
    path: &Path,
    expected_key: &str,
    precision: usize,
) -> Option<BTreeMap<String, f64>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    if lines.next()?.trim() != CACHE_HEADER {
        return None;
    }
    if lines.next()?.trim() != expected_key {
        return None;
    }
    let mut entries = BTreeMap::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        if fields.next() != Some("entry") {
            return None;
        }
        let entry_precision: usize = fields.next()?.parse().ok()?;
        if entry_precision != precision {
            return None;
        }
        let token = fields.next()?;
        parse_scenario(token)?;
        let delay: f64 = fields.next()?.parse().ok()?;
        if !delay.is_finite() || delay < 0.0 {
            return None;
        }
        entries.insert(token.to_owned(), delay);
    }
    Some(entries)
}

/// Writes one cache file atomically (temp file + rename), using the same
/// 6-decimal delay format as [`ApproxLibrary::to_text`] so cached delays
/// reformat to byte-identical library text.
fn write_cache_entries(
    path: &Path,
    key_line: &str,
    precision: usize,
    entries: &BTreeMap<String, f64>,
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut text = format!("{CACHE_HEADER}\n{key_line}\n");
    for (token, delay) in entries {
        let _ = writeln!(text, "entry {precision} {token} {delay:.6}");
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CharacterizationScenario;
    use aix_aging::{AgingScenario, Lifetime};

    fn cells() -> Arc<Library> {
        Arc::new(Library::nangate45_like())
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        for jobs in [1, 2, 4, 9] {
            let doubled = parallel_map(jobs, (0..50).collect(), |x: i32| x * 2);
            assert_eq!(doubled, (0..50).map(|x| x * 2).collect::<Vec<_>>());
        }
        let empty: Vec<i32> = parallel_map(4, Vec::new(), |x: i32| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn fingerprints_separate_every_key_dimension() {
        let engine = CharacterizationEngine::new(cells(), EngineOptions::sequential());
        let base = engine.fingerprint(ComponentKind::Adder, 16, 12, Effort::Ultra);
        for other in [
            engine.fingerprint(ComponentKind::Mac, 16, 12, Effort::Ultra),
            engine.fingerprint(ComponentKind::Adder, 32, 12, Effort::Ultra),
            engine.fingerprint(ComponentKind::Adder, 16, 11, Effort::Ultra),
            engine.fingerprint(ComponentKind::Adder, 16, 12, Effort::Medium),
        ] {
            assert_ne!(base, other);
        }
        // Stable across engines over the same cells and calibration.
        let again = CharacterizationEngine::new(cells(), EngineOptions::sequential());
        assert_eq!(
            base,
            again.fingerprint(ComponentKind::Adder, 16, 12, Effort::Ultra)
        );
    }

    #[test]
    fn netlist_cache_memoizes() {
        let cells = cells();
        let cache = NetlistCache::new();
        let a = cache
            .synthesize(&cells, ComponentKind::Adder, 8, 8, Effort::Medium)
            .unwrap();
        let b = cache
            .synthesize(&cells, ComponentKind::Adder, 8, 8, Effort::Medium)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup is memoized");
        assert_eq!(cache.len(), 1);
        cache
            .synthesize(&cells, ComponentKind::Adder, 8, 6, Effort::Medium)
            .unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn engine_matches_sequential_characterization() {
        let cells = cells();
        let config = CharacterizationConfig::quick(ComponentKind::Adder, 12);
        let engine = CharacterizationEngine::new(Arc::clone(&cells), EngineOptions::sequential());
        let (c, report) = engine.characterize(&config).unwrap();
        assert_eq!(report.synth_planned, config.precisions.len());
        assert_eq!(report.synth_executed, config.precisions.len());
        assert_eq!(
            report.sta_executed,
            config.precisions.len() * config.scenarios.len()
        );
        assert_eq!(report.cache_hits + report.cache_misses, 0, "no cache dir");
        let aged = c
            .delay_ps(
                12,
                CharacterizationScenario::Uniform(AgingScenario::worst_case(Lifetime::YEARS_10)),
            )
            .unwrap();
        assert!(aged > c.fresh_full_delay_ps());
    }

    #[test]
    fn bench_record_json_accumulates_runs() {
        let dir = std::env::temp_dir().join(format!("aix-bench-json-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("BENCH_characterize.json");
        let report = EngineReport {
            jobs: 2,
            wall_ms: 12.5,
            ..EngineReport::default()
        };
        append_bench_record(&path, "cold", &report).unwrap();
        append_bench_record(&path, "warm \"quoted\"", &report).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"schema\": \"aix-bench-characterize/v1\""));
        assert_eq!(text.matches("{\"label\"").count(), 2);
        assert!(text.contains("\"label\":\"cold\""));
        assert!(text.contains("warm \\\"quoted\\\""));
        assert!(text.contains("\"wall_ms\":12.500"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
