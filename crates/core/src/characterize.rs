//! Component characterization: relating precision to delay under aging
//! (paper Fig. 3, Fig. 4 and Fig. 7).

use crate::engine::{CharacterizationEngine, EngineOptions};
use crate::{AixError, ComponentKind};
use aix_aging::{AgingScenario, Lifetime};
use aix_cells::Library;
use aix_synth::Effort;
use std::fmt;
use std::sync::Arc;

/// The aging condition a characterization entry was evaluated under.
///
/// Uniform conditions (worst case, balanced) need no stimuli; the *actual
/// case* derives per-gate stress from switching activity under either
/// normally distributed operands or operands traced from a running IDCT —
/// the two stimulus sources the paper compares in Fig. 4/Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub enum CharacterizationScenario {
    /// A uniform condition ([`AgingScenario::Fresh`], worst case, balanced…).
    Uniform(AgingScenario),
    /// Actual-case aging under normally distributed operands.
    ActualNormal(Lifetime),
    /// Actual-case aging under operands traced from an IDCT decoding run.
    ActualIdct(Lifetime),
}

impl CharacterizationScenario {
    /// The design-time reference (no aging).
    pub const FRESH: CharacterizationScenario =
        CharacterizationScenario::Uniform(AgingScenario::Fresh);

    /// Worst-case aging for `lifetime`.
    pub fn worst_case(lifetime: Lifetime) -> Self {
        CharacterizationScenario::Uniform(AgingScenario::worst_case(lifetime))
    }
}

impl fmt::Display for CharacterizationScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CharacterizationScenario::Uniform(s) => write!(f, "{s}"),
            CharacterizationScenario::ActualNormal(lt) => write!(f, "{lt}(AC,ND)"),
            CharacterizationScenario::ActualIdct(lt) => write!(f, "{lt}(AC,IDCT)"),
        }
    }
}

impl From<AgingScenario> for CharacterizationScenario {
    fn from(value: AgingScenario) -> Self {
        CharacterizationScenario::Uniform(value)
    }
}

/// What to characterize and under which conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizationConfig {
    /// Component family.
    pub kind: ComponentKind,
    /// Full operand width in bits.
    pub width: usize,
    /// Precisions to synthesize, normally descending from `width`.
    pub precisions: Vec<usize>,
    /// Uniform aging scenarios to analyze each precision under.
    pub scenarios: Vec<AgingScenario>,
    /// Synthesis effort.
    pub effort: Effort,
}

impl CharacterizationConfig {
    /// The paper's setup: full width down to `width − 10`, fresh plus
    /// worst-case aging at every year of the 10-year projected lifetime
    /// and balanced aging at 1 and 10 years, highest synthesis effort.
    /// (Each extra scenario only costs one STA pass per precision; the
    /// synthesis runs are shared.)
    pub fn paper_default(kind: ComponentKind, width: usize) -> Self {
        let mut scenarios = vec![AgingScenario::Fresh];
        scenarios.extend(
            (1..=10).map(|y| AgingScenario::worst_case(Lifetime::from_years(f64::from(y)))),
        );
        scenarios.push(AgingScenario::balanced(Lifetime::YEARS_1));
        scenarios.push(AgingScenario::balanced(Lifetime::YEARS_10));
        Self {
            kind,
            width,
            precisions: (width.saturating_sub(10).max(1)..=width).rev().collect(),
            scenarios,
            effort: Effort::Ultra,
        }
    }

    /// A cheap configuration for tests and doctests: up to four precisions,
    /// two scenarios, medium effort. Precisions are clamped to at least one
    /// bit (like [`paper_default`](Self::paper_default)), so narrow widths
    /// simply characterize fewer points instead of underflowing.
    pub fn quick(kind: ComponentKind, width: usize) -> Self {
        let mut precisions: Vec<usize> = [0usize, 2, 4, 8]
            .iter()
            .map(|&cut| width.saturating_sub(cut).max(1))
            .collect();
        precisions.dedup();
        Self {
            kind,
            width,
            precisions,
            scenarios: vec![
                AgingScenario::Fresh,
                AgingScenario::worst_case(Lifetime::YEARS_10),
            ],
            effort: Effort::Medium,
        }
    }
}

/// One characterized operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CharacterizationEntry {
    /// Effective precision in bits.
    pub precision: usize,
    /// Aging condition.
    pub scenario: CharacterizationScenario,
    /// Critical-path delay of the synthesized component, in ps.
    pub delay_ps: f64,
}

/// The characterization of one RTL component: its delay at every
/// (precision, aging condition) pair, anchored by the fresh full-precision
/// delay that defines the timing constraint of Eq. 2.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentCharacterization {
    kind: ComponentKind,
    width: usize,
    effort: Effort,
    entries: Vec<CharacterizationEntry>,
}

impl ComponentCharacterization {
    /// Creates an empty characterization (entries added incrementally).
    pub fn new(kind: ComponentKind, width: usize, effort: Effort) -> Self {
        Self {
            kind,
            width,
            effort,
            entries: Vec::new(),
        }
    }

    /// Component family.
    pub fn kind(&self) -> ComponentKind {
        self.kind
    }

    /// Full operand width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Synthesis effort the netlists were produced at.
    pub fn effort(&self) -> Effort {
        self.effort
    }

    /// All entries.
    pub fn entries(&self) -> &[CharacterizationEntry] {
        &self.entries
    }

    /// Appends an entry (used by the actual-case flow, which computes
    /// delays from extracted stress).
    pub fn add_entry(&mut self, entry: CharacterizationEntry) {
        self.entries.push(entry);
    }

    /// Delay at an exact (precision, scenario) point.
    pub fn delay_ps(
        &self,
        precision: usize,
        scenario: CharacterizationScenario,
    ) -> Option<f64> {
        self.entries
            .iter()
            .find(|e| e.precision == precision && scenario_eq(e.scenario, scenario))
            .map(|e| e.delay_ps)
    }

    /// The timing constraint of Eq. 2: the fresh, full-precision delay.
    ///
    /// # Panics
    ///
    /// Panics if the characterization lacks the fresh full-precision entry.
    pub fn fresh_full_delay_ps(&self) -> f64 {
        self.delay_ps(self.width, CharacterizationScenario::FRESH)
            .expect("characterization must include the fresh full-precision point")
    }

    /// Eq. 2: the *largest* precision `K < N` whose aged delay meets the
    /// fresh full-precision constraint, or `None` if even the smallest
    /// characterized precision cannot compensate.
    pub fn required_precision(
        &self,
        scenario: impl Into<CharacterizationScenario>,
    ) -> Option<usize> {
        self.precision_for_target(scenario.into(), self.fresh_full_delay_ps())
    }

    /// The precision required to absorb a block's *relative slack*
    /// (`slack / t_clock`, negative when timing is violated), per the
    /// paper's microarchitecture flow. Non-negative slack needs no
    /// approximation and returns the full width.
    pub fn precision_for_relative_slack(
        &self,
        scenario: impl Into<CharacterizationScenario>,
        relative_slack: f64,
    ) -> Option<usize> {
        if relative_slack >= 0.0 {
            return Some(self.width);
        }
        let scenario = scenario.into();
        // tB(aged, N) = t_clock · (1 − relSlack)  ⇒  the component meets the
        // clock when its aged delay shrinks by the factor 1/(1 − relSlack).
        let aged_full = self.delay_ps(self.width, scenario)?;
        let target = aged_full / (1.0 - relative_slack);
        self.precision_for_target(scenario, target)
    }

    fn precision_for_target(
        &self,
        scenario: CharacterizationScenario,
        target_ps: f64,
    ) -> Option<usize> {
        self.entries
            .iter()
            .filter(|e| scenario_eq(e.scenario, scenario) && e.delay_ps <= target_ps + 1e-9)
            .map(|e| e.precision)
            .max()
    }

    /// Remaining guardband at a precision: how much the aged delay still
    /// exceeds the fresh full-precision constraint (ps, clamped at zero).
    pub fn guardband_ps(
        &self,
        precision: usize,
        scenario: impl Into<CharacterizationScenario>,
    ) -> Option<f64> {
        let aged = self.delay_ps(precision, scenario.into())?;
        Some((aged - self.fresh_full_delay_ps()).max(0.0))
    }

    /// Enforces that delay never increases as precision drops, per
    /// scenario: a synthesis tool given a looser (lower-precision) spec can
    /// always reuse the higher-precision netlist with extra inputs tied
    /// off, so its reported delay is a running minimum over descending
    /// precision. This removes the noise of independent greedy sizing runs.
    pub fn enforce_synthesis_monotonicity(&mut self) {
        // Sort entry indices so entries of the same scenario become
        // adjacent (shape tag, then numeric stress/lifetime — the IEEE bit
        // pattern of a non-negative float sorts like its value) and ordered
        // by descending precision; a single linear pass then applies the
        // running minimum per group. Near-equal lifetimes land adjacent, so
        // seeding each group with its first scenario and extending it while
        // `scenario_eq` holds finds the same groups the old quadratic
        // membership scan did, in O(n log n).
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by(|&a, &b| {
            let (ea, eb) = (&self.entries[a], &self.entries[b]);
            scenario_sort_key(ea.scenario)
                .cmp(&scenario_sort_key(eb.scenario))
                .then(eb.precision.cmp(&ea.precision))
                .then(a.cmp(&b))
        });
        let mut group_seed: Option<CharacterizationScenario> = None;
        let mut best = f64::INFINITY;
        for &index in &order {
            let scenario = self.entries[index].scenario;
            if !group_seed.is_some_and(|seed| scenario_eq(seed, scenario)) {
                group_seed = Some(scenario);
                best = f64::INFINITY;
            }
            best = best.min(self.entries[index].delay_ps);
            self.entries[index].delay_ps = best;
        }
    }

    /// Fractional guardband narrowing achieved by reducing precision from
    /// full width to `precision` (the paper reports e.g. "2 bits narrow
    /// the guardband by 31 %").
    pub fn guardband_narrowing(
        &self,
        precision: usize,
        scenario: impl Into<CharacterizationScenario>,
    ) -> Option<f64> {
        let scenario = scenario.into();
        let full = self.guardband_ps(self.width, scenario)?;
        let cut = self.guardband_ps(precision, scenario)?;
        if full <= 0.0 {
            return Some(0.0);
        }
        Some(1.0 - cut / full)
    }
}

/// Tolerance under which two floating-point lifetimes denote the same
/// aging condition, in hours. One hour is far below any lifetime step the
/// characterization sweeps (full years) yet far above accumulated
/// round-off from serializing lifetimes through the library text format.
pub const SCENARIO_LIFETIME_TOLERANCE_HOURS: f64 = 1.0;

/// Hours per (365.25-day) year, matching [`Lifetime::seconds`].
const HOURS_PER_YEAR: f64 = 365.25 * 24.0;

/// A totally ordered key that clusters scenarios of the same shape and
/// sorts them by numeric stress/lifetime, used to group entries in
/// [`ComponentCharacterization::enforce_synthesis_monotonicity`]. Non-
/// negative floats order the same as their IEEE-754 bit patterns.
fn scenario_sort_key(scenario: CharacterizationScenario) -> (u8, u64, u64) {
    use aix_aging::StressCondition;
    use CharacterizationScenario as C;
    match scenario {
        C::Uniform(AgingScenario::Fresh) => (0, 0, 0),
        C::Uniform(AgingScenario::Aged { stress, lifetime }) => match stress {
            StressCondition::Worst => (1, 0, lifetime.years().to_bits()),
            StressCondition::Balanced => (2, 0, lifetime.years().to_bits()),
            StressCondition::Uniform(s) => (3, s.value().to_bits(), lifetime.years().to_bits()),
        },
        C::ActualNormal(lt) => (4, 0, lt.years().to_bits()),
        C::ActualIdct(lt) => (5, 0, lt.years().to_bits()),
    }
}

/// Whether two scenarios denote the same condition (floating-point
/// lifetimes compare within [`SCENARIO_LIFETIME_TOLERANCE_HOURS`]).
fn scenario_eq(a: CharacterizationScenario, b: CharacterizationScenario) -> bool {
    use CharacterizationScenario as C;
    let close = |x: Lifetime, y: Lifetime| {
        (x.years() - y.years()).abs() * HOURS_PER_YEAR < SCENARIO_LIFETIME_TOLERANCE_HOURS
    };
    match (a, b) {
        (C::Uniform(x), C::Uniform(y)) => match (x, y) {
            (AgingScenario::Fresh, AgingScenario::Fresh) => true,
            (
                AgingScenario::Aged {
                    stress: sx,
                    lifetime: lx,
                },
                AgingScenario::Aged {
                    stress: sy,
                    lifetime: ly,
                },
            ) => sx == sy && close(lx, ly),
            _ => false,
        },
        (C::ActualNormal(x), C::ActualNormal(y)) | (C::ActualIdct(x), C::ActualIdct(y)) => {
            close(x, y)
        }
        _ => false,
    }
}

/// Characterizes a component under every configured (precision, uniform
/// scenario) pair: synthesize once per precision, then run aging-aware STA
/// per scenario — no gate-level simulation required (the heart of Fig. 3).
///
/// This is a convenience wrapper around [`CharacterizationEngine`] running
/// single-threaded and without the persistent cache; use the engine
/// directly for parallel or cached characterization.
///
/// # Errors
///
/// Propagates synthesis/STA errors and invalid precision specs as
/// [`AixError`].
pub fn characterize_component(
    library: &Arc<Library>,
    config: &CharacterizationConfig,
) -> Result<ComponentCharacterization, AixError> {
    let engine = CharacterizationEngine::new(Arc::clone(library), EngineOptions::sequential());
    engine
        .characterize(config)
        .map(|(characterization, _)| characterization)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> Arc<Library> {
        Arc::new(Library::nangate45_like())
    }

    fn quick_adder() -> ComponentCharacterization {
        characterize_component(
            &lib(),
            &CharacterizationConfig::quick(ComponentKind::Adder, 16),
        )
        .unwrap()
    }

    #[test]
    fn fresh_full_anchor_exists_and_delays_are_ordered() {
        let c = quick_adder();
        let fresh = c.fresh_full_delay_ps();
        assert!(fresh > 0.0);
        let aged = c
            .delay_ps(
                16,
                CharacterizationScenario::worst_case(Lifetime::YEARS_10),
            )
            .unwrap();
        assert!(aged > fresh * 1.1, "aged {aged} vs fresh {fresh}");
    }

    #[test]
    fn delay_decreases_with_precision() {
        let c = quick_adder();
        let wc = CharacterizationScenario::worst_case(Lifetime::YEARS_10);
        let mut last = f64::INFINITY;
        for p in [16usize, 14, 12, 8] {
            let d = c.delay_ps(p, wc).unwrap();
            assert!(d <= last + 1e-9, "delay must not grow as precision drops");
            last = d;
        }
    }

    #[test]
    fn eq2_finds_a_compensating_precision() {
        let c = quick_adder();
        let k = c
            .required_precision(AgingScenario::worst_case(Lifetime::YEARS_10))
            .expect("ripple-style delay scaling compensates 16 % aging");
        assert!(k < 16, "full precision cannot meet Eq. 2 under aging");
        // The selected precision really meets the constraint.
        let aged = c
            .delay_ps(k, CharacterizationScenario::worst_case(Lifetime::YEARS_10))
            .unwrap();
        assert!(aged <= c.fresh_full_delay_ps() + 1e-9);
    }

    #[test]
    fn nonnegative_slack_keeps_full_precision() {
        let c = quick_adder();
        assert_eq!(
            c.precision_for_relative_slack(
                AgingScenario::worst_case(Lifetime::YEARS_10),
                0.05
            ),
            Some(16)
        );
    }

    #[test]
    fn negative_slack_requires_less_precision_than_eq2_when_mild() {
        let c = quick_adder();
        let scenario = AgingScenario::worst_case(Lifetime::YEARS_10);
        let eq2 = c.required_precision(scenario).unwrap();
        // A mild violation needs the same or fewer truncated bits.
        let mild = c.precision_for_relative_slack(scenario, -0.02).unwrap();
        assert!(mild >= eq2, "mild slack {mild} vs full compensation {eq2}");
    }

    #[test]
    fn guardband_narrowing_monotone() {
        let c = quick_adder();
        let scenario = AgingScenario::worst_case(Lifetime::YEARS_10);
        let n2 = c.guardband_narrowing(14, scenario).unwrap();
        let n8 = c.guardband_narrowing(8, scenario).unwrap();
        assert!((0.0..=1.0 + 1e-9).contains(&n2));
        assert!(n8 >= n2, "more truncation narrows the guardband more");
    }

    #[test]
    fn paper_default_never_generates_zero_precision() {
        for width in [1usize, 4, 8, 10, 11, 32] {
            let config = CharacterizationConfig::paper_default(ComponentKind::Adder, width);
            assert!(config.precisions.iter().all(|&p| p >= 1 && p <= width));
            assert_eq!(config.precisions[0], width, "sweep starts at full width");
        }
    }

    #[test]
    fn quick_clamps_narrow_widths() {
        // Regression: `quick(Adder, 4)` used to underflow `width - 8`.
        let config = CharacterizationConfig::quick(ComponentKind::Adder, 4);
        assert_eq!(config.precisions, vec![4, 2, 1]);
        let c = characterize_component(&lib(), &config).expect("narrow widths characterize");
        assert!(c.fresh_full_delay_ps() > 0.0);
        for width in 1..=9 {
            let config = CharacterizationConfig::quick(ComponentKind::Adder, width);
            assert!(
                config.precisions.iter().all(|&p| (1..=width).contains(&p)),
                "width {width} produced {:?}",
                config.precisions
            );
            assert_eq!(config.precisions[0], width, "sweep starts at full width");
        }
    }

    #[test]
    fn monotonicity_enforcement_scales_to_large_characterizations() {
        // 10k entries (100 scenarios × 100 precisions) must normalize in
        // well under a second — the old per-group membership scan was
        // quadratic and took tens of seconds at this size.
        let mut c = ComponentCharacterization::new(ComponentKind::Adder, 128, Effort::Medium);
        for s in 0..100u64 {
            let scenario = CharacterizationScenario::worst_case(Lifetime::from_years(
                1.0 + s as f64,
            ));
            for p in 0..100usize {
                c.add_entry(CharacterizationEntry {
                    precision: 128 - p,
                    scenario,
                    delay_ps: 1000.0 - (p as f64 * 7.0) % 90.0,
                });
            }
        }
        let start = std::time::Instant::now();
        c.enforce_synthesis_monotonicity();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(1),
            "monotonicity took {:?} for 10k entries",
            start.elapsed()
        );
        // Still a per-scenario running minimum.
        let wc = CharacterizationScenario::worst_case(Lifetime::from_years(1.0));
        let mut last = f64::INFINITY;
        for p in (29..=128).rev() {
            let d = c.delay_ps(p, wc).unwrap();
            assert!(d <= last + 1e-12);
            last = d;
        }
    }

    #[test]
    fn monotonicity_enforcement_is_a_running_min() {
        let mut c = ComponentCharacterization::new(ComponentKind::Adder, 8, Effort::Medium);
        let wc = CharacterizationScenario::worst_case(Lifetime::YEARS_10);
        for (precision, delay) in [(8, 100.0), (7, 110.0), (6, 90.0), (5, 95.0)] {
            c.add_entry(CharacterizationEntry {
                precision,
                scenario: wc,
                delay_ps: delay,
            });
        }
        c.enforce_synthesis_monotonicity();
        assert_eq!(c.delay_ps(8, wc), Some(100.0));
        assert_eq!(c.delay_ps(7, wc), Some(100.0), "reuses the 8b netlist");
        assert_eq!(c.delay_ps(6, wc), Some(90.0));
        assert_eq!(c.delay_ps(5, wc), Some(90.0), "reuses the 6b netlist");
    }

    #[test]
    fn scenario_display_matches_paper_labels() {
        assert_eq!(
            CharacterizationScenario::worst_case(Lifetime::YEARS_10).to_string(),
            "10y(WC)"
        );
        assert_eq!(
            CharacterizationScenario::ActualNormal(Lifetime::YEARS_10).to_string(),
            "10y(AC,ND)"
        );
        assert_eq!(
            CharacterizationScenario::ActualIdct(Lifetime::YEARS_1).to_string(),
            "1y(AC,IDCT)"
        );
    }
}
