//! The library of aging-induced approximations (paper Fig. 3a).
//!
//! Collects [`ComponentCharacterization`]s so that a microarchitecture flow
//! can later look up, for every RTL component, the precision reduction that
//! compensates its aging — without any further gate-level work. A simple
//! line-oriented text format makes the library a persistent artifact, like
//! the degradation-aware cell library the paper builds on.

use crate::{
    CharacterizationEntry, CharacterizationScenario, ComponentCharacterization, ComponentKind,
};
use aix_aging::{AgingScenario, Lifetime, StressCondition, StressFactor};
use aix_synth::Effort;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// A persistent collection of component characterizations, keyed by
/// `(kind, width)`.
///
/// # Examples
///
/// ```
/// use aix_core::{characterize_component, ApproxLibrary, CharacterizationConfig, ComponentKind};
/// use aix_cells::Library;
/// use std::sync::Arc;
///
/// let cells = Arc::new(Library::nangate45_like());
/// let mut lib = ApproxLibrary::new();
/// lib.insert(characterize_component(
///     &cells,
///     &CharacterizationConfig::quick(ComponentKind::Adder, 16),
/// )?);
/// let text = lib.to_text();
/// let back = ApproxLibrary::from_text(&text)?;
/// assert_eq!(back.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ApproxLibrary {
    components: BTreeMap<(ComponentKind, usize), ComponentCharacterization>,
}

/// Error produced while parsing the library text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLibraryError {
    line: usize,
    message: String,
}

impl fmt::Display for ParseLibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseLibraryError {}

impl ApproxLibrary {
    /// An empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of characterizations held.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Inserts (or replaces) a characterization. Synthesis monotonicity
    /// (delay never increases as precision drops) is enforced on insertion,
    /// so every consumer sees a well-formed delay-vs-precision curve.
    pub fn insert(&mut self, mut characterization: ComponentCharacterization) {
        characterization.enforce_synthesis_monotonicity();
        self.components.insert(
            (characterization.kind(), characterization.width()),
            characterization,
        );
    }

    /// Looks a characterization up by component kind and width.
    pub fn get(&self, kind: ComponentKind, width: usize) -> Option<&ComponentCharacterization> {
        self.components.get(&(kind, width))
    }

    /// Iterates over the held characterizations.
    pub fn iter(&self) -> impl Iterator<Item = &ComponentCharacterization> {
        self.components.values()
    }

    /// Serializes the library to its line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("aix-approx-library v1\n");
        for c in self.components.values() {
            let _ = writeln!(
                out,
                "component {} {} {}",
                c.kind(),
                c.width(),
                c.effort()
            );
            for e in c.entries() {
                let _ = writeln!(
                    out,
                    "entry {} {} {:.6}",
                    e.precision,
                    scenario_token(e.scenario),
                    e.delay_ps
                );
            }
        }
        out
    }

    /// Parses the text format produced by [`to_text`](Self::to_text).
    ///
    /// # Errors
    ///
    /// Returns [`ParseLibraryError`] with the offending line on any syntax
    /// or semantic problem.
    pub fn from_text(text: &str) -> Result<Self, ParseLibraryError> {
        let err = |line: usize, message: &str| ParseLibraryError {
            line,
            message: message.to_owned(),
        };
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, header)) if header.trim() == "aix-approx-library v1" => {}
            _ => return Err(err(1, "missing `aix-approx-library v1` header")),
        }
        let mut library = ApproxLibrary::new();
        let mut current: Option<ComponentCharacterization> = None;
        let mut declared: BTreeMap<(ComponentKind, usize), usize> = BTreeMap::new();
        for (index, raw) in lines {
            let line_no = index + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split_whitespace();
            match fields.next() {
                Some("component") => {
                    if let Some(done) = current.take() {
                        library.insert(done);
                    }
                    let kind: ComponentKind = fields
                        .next()
                        .ok_or_else(|| err(line_no, "component kind missing"))?
                        .parse()
                        .map_err(|_| err(line_no, "unknown component kind"))?;
                    let width: usize = fields
                        .next()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| err(line_no, "bad component width"))?;
                    let effort: Effort = fields
                        .next()
                        .ok_or_else(|| err(line_no, "component effort missing"))?
                        .parse()
                        .map_err(|_| err(line_no, "unknown effort"))?;
                    if let Some(first_line) = declared.insert((kind, width), line_no) {
                        return Err(err(
                            line_no,
                            &format!(
                                "duplicate `component {kind} {width}` record \
                                 (first declared at line {first_line}); merging would \
                                 silently overwrite the earlier characterization"
                            ),
                        ));
                    }
                    current = Some(ComponentCharacterization::new(kind, width, effort));
                }
                Some("entry") => {
                    let c = current
                        .as_mut()
                        .ok_or_else(|| err(line_no, "entry before any component"))?;
                    let precision: usize = fields
                        .next()
                        .and_then(|p| p.parse().ok())
                        .ok_or_else(|| err(line_no, "bad precision"))?;
                    let scenario = parse_scenario(
                        fields
                            .next()
                            .ok_or_else(|| err(line_no, "scenario missing"))?,
                    )
                    .ok_or_else(|| err(line_no, "unknown scenario token"))?;
                    let delay_ps: f64 = fields
                        .next()
                        .and_then(|d| d.parse().ok())
                        .ok_or_else(|| err(line_no, "bad delay"))?;
                    c.add_entry(CharacterizationEntry {
                        precision,
                        scenario,
                        delay_ps,
                    });
                }
                Some(other) => {
                    return Err(err(line_no, &format!("unknown record `{other}`")));
                }
                None => {}
            }
        }
        if let Some(done) = current.take() {
            library.insert(done);
        }
        Ok(library)
    }
}

pub(crate) fn scenario_token(scenario: CharacterizationScenario) -> String {
    match scenario {
        CharacterizationScenario::Uniform(AgingScenario::Fresh) => "fresh".to_owned(),
        CharacterizationScenario::Uniform(AgingScenario::Aged { stress, lifetime }) => {
            match stress {
                StressCondition::Worst => format!("wc:{}", lifetime.years()),
                StressCondition::Balanced => format!("bal:{}", lifetime.years()),
                StressCondition::Uniform(s) => {
                    format!("uniform:{}:{}", s.value(), lifetime.years())
                }
            }
        }
        CharacterizationScenario::ActualNormal(lt) => format!("acnd:{}", lt.years()),
        CharacterizationScenario::ActualIdct(lt) => format!("acidct:{}", lt.years()),
    }
}

pub(crate) fn parse_scenario(token: &str) -> Option<CharacterizationScenario> {
    if token == "fresh" {
        return Some(CharacterizationScenario::Uniform(AgingScenario::Fresh));
    }
    let mut parts = token.split(':');
    let tag = parts.next()?;
    match tag {
        "wc" | "bal" | "acnd" | "acidct" => {
            let lifetime = Lifetime::try_from_years(parts.next()?.parse().ok()?).ok()?;
            Some(match tag {
                "wc" => CharacterizationScenario::Uniform(AgingScenario::worst_case(lifetime)),
                "bal" => CharacterizationScenario::Uniform(AgingScenario::balanced(lifetime)),
                "acnd" => CharacterizationScenario::ActualNormal(lifetime),
                _ => CharacterizationScenario::ActualIdct(lifetime),
            })
        }
        "uniform" => {
            let stress = StressFactor::new(parts.next()?.parse().ok()?).ok()?;
            let lifetime = Lifetime::try_from_years(parts.next()?.parse().ok()?).ok()?;
            Some(CharacterizationScenario::Uniform(AgingScenario::Aged {
                stress: StressCondition::Uniform(stress),
                lifetime,
            }))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_characterization() -> ComponentCharacterization {
        let mut c = ComponentCharacterization::new(ComponentKind::Adder, 16, Effort::Ultra);
        for (precision, scenario, delay) in [
            (16, CharacterizationScenario::FRESH, 300.0),
            (
                16,
                CharacterizationScenario::worst_case(Lifetime::YEARS_10),
                348.0,
            ),
            (
                12,
                CharacterizationScenario::worst_case(Lifetime::YEARS_10),
                295.0,
            ),
            (12, CharacterizationScenario::ActualNormal(Lifetime::YEARS_10), 280.0),
        ] {
            c.add_entry(CharacterizationEntry {
                precision,
                scenario,
                delay_ps: delay,
            });
        }
        c
    }

    #[test]
    fn insert_and_lookup() {
        let mut lib = ApproxLibrary::new();
        assert!(lib.is_empty());
        lib.insert(sample_characterization());
        assert_eq!(lib.len(), 1);
        assert!(lib.get(ComponentKind::Adder, 16).is_some());
        assert!(lib.get(ComponentKind::Adder, 32).is_none());
        assert!(lib.get(ComponentKind::Mac, 16).is_none());
    }

    #[test]
    fn text_roundtrip_preserves_everything() {
        let mut lib = ApproxLibrary::new();
        lib.insert(sample_characterization());
        let text = lib.to_text();
        let back = ApproxLibrary::from_text(&text).unwrap();
        let original = lib.get(ComponentKind::Adder, 16).unwrap();
        let parsed = back.get(ComponentKind::Adder, 16).unwrap();
        assert_eq!(original.entries().len(), parsed.entries().len());
        for (a, b) in original.entries().iter().zip(parsed.entries()) {
            assert_eq!(a.precision, b.precision);
            assert!((a.delay_ps - b.delay_ps).abs() < 1e-6);
            assert_eq!(
                scenario_token(a.scenario),
                scenario_token(b.scenario)
            );
        }
        assert_eq!(parsed.effort(), Effort::Ultra);
    }

    #[test]
    fn duplicate_component_records_are_rejected_naming_both_lines() {
        let text = "aix-approx-library v1\n\
                    component adder 16 ultra\n\
                    entry 16 fresh 300.0\n\
                    component mac 8 medium\n\
                    entry 8 fresh 120.0\n\
                    component adder 16 ultra\n\
                    entry 16 fresh 999.0\n";
        let error = ApproxLibrary::from_text(text).unwrap_err();
        let message = error.to_string();
        assert!(message.contains("line 6"), "{message}");
        assert!(message.contains("line 2"), "{message}");
        assert!(message.contains("duplicate"), "{message}");
        assert!(message.contains("adder 16"), "{message}");
        // Distinct (kind, width) pairs still coexist.
        let ok = "aix-approx-library v1\n\
                  component adder 16 ultra\nentry 16 fresh 300.0\n\
                  component adder 32 ultra\nentry 32 fresh 600.0\n";
        assert_eq!(ApproxLibrary::from_text(ok).unwrap().len(), 2);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ApproxLibrary::from_text("not a library").is_err());
        assert!(
            ApproxLibrary::from_text("aix-approx-library v1\nentry 3 fresh 1.0").is_err(),
            "entry before component"
        );
        assert!(
            ApproxLibrary::from_text("aix-approx-library v1\nbogus record").is_err()
        );
        assert!(ApproxLibrary::from_text(
            "aix-approx-library v1\ncomponent adder 16 ultra\nentry x fresh 1.0"
        )
        .is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "aix-approx-library v1\n\n# comment\ncomponent mac 8 medium\nentry 8 fresh 100.0\n";
        let lib = ApproxLibrary::from_text(text).unwrap();
        assert_eq!(lib.len(), 1);
        let c = lib.get(ComponentKind::Mac, 8).unwrap();
        assert_eq!(c.entries().len(), 1);
    }

    #[test]
    fn scenario_tokens_roundtrip() {
        for scenario in [
            CharacterizationScenario::FRESH,
            CharacterizationScenario::worst_case(Lifetime::YEARS_1),
            CharacterizationScenario::Uniform(AgingScenario::balanced(Lifetime::YEARS_10)),
            CharacterizationScenario::Uniform(AgingScenario::Aged {
                stress: StressCondition::Uniform(StressFactor::new(0.3).unwrap()),
                lifetime: Lifetime::from_years(5.0),
            }),
            CharacterizationScenario::ActualNormal(Lifetime::YEARS_10),
            CharacterizationScenario::ActualIdct(Lifetime::YEARS_1),
        ] {
            let token = scenario_token(scenario);
            let parsed = parse_scenario(&token).unwrap();
            assert_eq!(scenario_token(parsed), token);
        }
    }
}
