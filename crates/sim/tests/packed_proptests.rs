//! Property-based differential tests: on arbitrary small random netlists
//! with arbitrary stimuli, every lane of the packed evaluator must equal
//! the scalar evaluator, and the packed popcount activity accounting must
//! match the scalar per-vector accounting.

use aix_cells::{CellFunction, DriveStrength, Library};
use aix_netlist::{Evaluator, Netlist};
use aix_sim::{Activity, PackedEvaluator, SimEngine, LANES};
use proptest::prelude::*;
use std::sync::Arc;

/// Combinational functions only — the evaluators reject sequential cells.
const COMB: [CellFunction; 15] = [
    CellFunction::Inv,
    CellFunction::Buf,
    CellFunction::Nand2,
    CellFunction::Nand3,
    CellFunction::Nor2,
    CellFunction::Nor3,
    CellFunction::And2,
    CellFunction::Or2,
    CellFunction::Xor2,
    CellFunction::Xnor2,
    CellFunction::Aoi21,
    CellFunction::Oai21,
    CellFunction::Mux2,
    CellFunction::HalfAdder,
    CellFunction::FullAdder,
];

/// A reproducible netlist recipe: each gate picks a function and draws its
/// operands (by index, modulo the growing net pool) from everything built
/// so far, so any recipe yields a valid acyclic netlist.
#[derive(Debug, Clone)]
struct Recipe {
    inputs: usize,
    constants: bool,
    gates: Vec<(usize, [usize; 3])>,
}

fn build(recipe: &Recipe, library: &Arc<Library>) -> Netlist {
    let mut nl = Netlist::new("random", library.clone());
    let mut pool = Vec::new();
    for i in 0..recipe.inputs {
        pool.push(nl.add_input(format!("in{i}")));
    }
    if recipe.constants {
        pool.push(nl.constant(false));
        pool.push(nl.constant(true));
    }
    for (index, (function_pick, operand_picks)) in recipe.gates.iter().enumerate() {
        let function = COMB[function_pick % COMB.len()];
        let cell = library
            .find(function, DriveStrength::X1)
            .expect("library covers every combinational function");
        let operands: Vec<_> = operand_picks[..function.input_count()]
            .iter()
            .map(|pick| pool[pick % pool.len()])
            .collect();
        let outputs = nl.add_gate(cell, &operands).expect("arity matches");
        for (pin, net) in outputs.iter().enumerate() {
            nl.mark_output(format!("g{index}_{pin}"), *net);
            pool.push(*net);
        }
    }
    nl.validate().expect("recipe builds a valid netlist");
    nl
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    (1usize..=4, any::<bool>(), 1usize..=12).prop_flat_map(|(inputs, constants, gate_count)| {
        proptest::collection::vec(
            (0usize..64, [0usize..64, 0usize..64, 0usize..64]),
            gate_count,
        )
        .prop_map(move |gates| Recipe {
            inputs,
            constants,
            gates,
        })
    })
}

fn stimuli_strategy(inputs: usize) -> impl Strategy<Value = Vec<Vec<bool>>> {
    proptest::collection::vec(
        proptest::collection::vec(any::<bool>(), inputs),
        1..(2 * LANES + 3),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every packed lane reproduces the scalar evaluation of its vector.
    #[test]
    fn packed_lanes_equal_scalar_eval(
        case in recipe_strategy()
            .prop_flat_map(|r| {
                let inputs = r.inputs;
                (Just(r), stimuli_strategy(inputs))
            })
    ) {
        let (recipe, stimuli) = case;
        let library = Arc::new(Library::nangate45_like());
        let netlist = build(&recipe, &library);
        let mut scalar = Evaluator::new(&netlist).unwrap();
        let mut packed = PackedEvaluator::new(&netlist).unwrap();
        for batch in stimuli.chunks(LANES) {
            packed.eval_batch(batch).unwrap();
            for (lane, vector) in batch.iter().enumerate() {
                let expected = scalar.eval(vector).unwrap().to_vec();
                prop_assert_eq!(
                    packed.output_lane_values(lane),
                    expected,
                    "lane {} of a {}-vector batch diverges",
                    lane,
                    batch.len()
                );
            }
        }
    }

    /// Packed popcount ones/toggle accounting equals the scalar walk.
    #[test]
    fn packed_activity_equals_scalar(
        case in recipe_strategy()
            .prop_flat_map(|r| {
                let inputs = r.inputs;
                (Just(r), stimuli_strategy(inputs))
            })
    ) {
        let (recipe, stimuli) = case;
        let library = Arc::new(Library::nangate45_like());
        let netlist = build(&recipe, &library);
        let scalar =
            Activity::collect_with(&netlist, stimuli.iter().cloned(), SimEngine::Scalar).unwrap();
        let packed =
            Activity::collect_with(&netlist, stimuli.iter().cloned(), SimEngine::Packed).unwrap();
        prop_assert_eq!(scalar, packed);
    }
}
