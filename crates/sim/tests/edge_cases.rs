//! Edge cases of the error-measurement and fault-simulation campaigns:
//! empty stimulus sets, empty fault lists, and fully detectable faults.

use aix_arith::{build_adder, AdderKind, ComponentSpec};
use aix_cells::Library;
use aix_netlist::Netlist;
use aix_sim::{
    full_fault_list, measure_errors, simulate_faults, OperandSource, StuckAtFault,
    UniformOperands,
};
use aix_sta::NetDelays;
use std::sync::Arc;

fn adder(width: usize) -> Netlist {
    let lib = Arc::new(Library::nangate45_like());
    build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(width)).unwrap()
}

#[test]
fn zero_vectors_yield_zero_error_rate_not_nan() {
    let nl = adder(8);
    let stats = measure_errors(
        &nl,
        &NetDelays::fresh(&nl),
        1.0, // absurdly tight clock: every vector would err, but none run
        std::iter::empty(),
    )
    .unwrap();
    assert_eq!(stats.vectors, 0);
    assert_eq!(stats.erroneous, 0);
    assert_eq!(stats.error_rate(), 0.0, "no division by zero");
    assert_eq!(stats.error_percent(), 0.0);
    assert_eq!(stats.mean_abs_error, 0.0);
}

#[test]
fn zero_fault_sites_count_as_full_coverage() {
    let nl = adder(4);
    let stimuli: Vec<Vec<bool>> = UniformOperands::new(4, 1).vectors(8).collect();
    let coverage = simulate_faults(&nl, &[], &stimuli).unwrap();
    assert_eq!(coverage.detected().len(), 0);
    assert_eq!(coverage.undetected().len(), 0);
    assert_eq!(coverage.coverage(), 1.0, "vacuous truth, not NaN");
    assert_eq!(coverage.vector_count(), 8);
}

#[test]
fn zero_vectors_detect_no_faults() {
    let nl = adder(4);
    let faults = full_fault_list(&nl);
    let coverage = simulate_faults(&nl, &faults, &[]).unwrap();
    assert_eq!(coverage.detected().len(), 0);
    assert_eq!(coverage.undetected().len(), faults.len());
    assert_eq!(coverage.coverage(), 0.0);
    assert_eq!(coverage.vector_count(), 0);
}

#[test]
fn all_detected_reports_exactly_one() {
    // Faults on output nets flip an output directly, so a handful of
    // uniform vectors detects every one of them.
    let nl = adder(4);
    let faults: Vec<StuckAtFault> = nl
        .output_nets()
        .into_iter()
        .flat_map(|net| [false, true].map(|value| StuckAtFault { net, value }))
        .collect();
    let stimuli: Vec<Vec<bool>> = UniformOperands::new(4, 2).vectors(64).collect();
    let coverage = simulate_faults(&nl, &faults, &stimuli).unwrap();
    assert_eq!(coverage.coverage(), 1.0);
    assert_eq!(coverage.detected().len(), faults.len());
    assert!(coverage.undetected().is_empty());
}
