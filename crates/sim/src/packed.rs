//! Bit-parallel (parallel-pattern) gate-level simulation.
//!
//! Classic parallel-pattern simulation packs up to [`LANES`] = 64 stimulus
//! vectors into one `u64` per net — lane *l* of a word is the net's value
//! under the batch's *l*-th vector — and evaluates every gate once per word
//! as pure bitwise ops ([`CellFunction::eval_words`]). For the untimed
//! value-mode consumers in this crate ([`measure_errors`], [`Activity`],
//! [`simulate_faults`]) this turns 64 full netlist walks into one.
//!
//! Timed simulation is packed too:
//! [`PackedTimedSimulator`](crate::PackedTimedSimulator) lane-parallelizes
//! the event-driven engine itself — one shared event calendar batched per
//! femtosecond tick, 64 vectors per word, per-lane sample-at-clock and
//! settle state — and is bit-identical to the scalar
//! [`TimedSimulator`](crate::TimedSimulator) per lane. DESIGN.md records
//! the suppression-invariant argument for why that holds.
//!
//! [`measure_errors`]: crate::measure_errors
//! [`Activity`]: crate::Activity
//! [`simulate_faults`]: crate::simulate_faults

use aix_cells::{CellFunction, MAX_INPUTS, MAX_OUTPUTS};
use aix_netlist::{GateId, NetDriver, NetId, Netlist, NetlistError, Schedule};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Number of stimulus vectors packed per machine word.
pub const LANES: usize = 64;

/// Which engine drives simulation — functional (value-mode) and timed
/// (event-driven) consumers both dispatch on it.
///
/// Both engines produce byte-identical results (the differential suite in
/// `tests/sim_equivalence.rs` pins this for functional and timed runs
/// alike); `Packed` is the default because it evaluates 64 vectors per
/// netlist walk or shared event calendar. Select explicitly with
/// `--sim-engine scalar|packed` on the CLI or the `AIX_SIM_ENGINE`
/// environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimEngine {
    /// One vector per netlist walk ([`aix_netlist::Evaluator`]).
    Scalar,
    /// 64 vectors per word ([`PackedEvaluator`]), scalar tail for partial
    /// batches.
    #[default]
    Packed,
}

impl SimEngine {
    /// Environment variable consulted by [`SimEngine::from_env`].
    pub const ENV_VAR: &'static str = "AIX_SIM_ENGINE";

    /// Reads the engine from `AIX_SIM_ENGINE`, defaulting to [`Packed`]
    /// when unset.
    ///
    /// # Errors
    ///
    /// Returns a message naming the invalid value if the variable is set
    /// to anything other than `scalar` or `packed`.
    ///
    /// [`Packed`]: SimEngine::Packed
    pub fn from_env() -> Result<Self, String> {
        match std::env::var(Self::ENV_VAR) {
            Ok(value) => value
                .parse()
                .map_err(|()| format!("{}: invalid engine {value:?} (expected scalar|packed)", Self::ENV_VAR)),
            Err(_) => Ok(Self::default()),
        }
    }

    /// Like [`from_env`](Self::from_env), but an invalid value only warns
    /// and falls back to the default — for library entry points that have
    /// no error channel for configuration. The CLI validates strictly.
    pub fn from_env_or_default() -> Self {
        Self::from_env().unwrap_or_else(|message| {
            aix_obs::warn!("{message}; using {}", Self::default());
            Self::default()
        })
    }
}

impl FromStr for SimEngine {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(Self::Scalar),
            "packed" => Ok(Self::Packed),
            _ => Err(()),
        }
    }
}

impl fmt::Display for SimEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Scalar => "scalar",
            Self::Packed => "packed",
        })
    }
}

/// Reusable bit-parallel evaluator: one `u64` word per net, up to
/// [`LANES`] stimulus vectors per batch.
///
/// Lane 0 is the *earliest* vector of the batch, so iterating lanes in
/// order replays the batch in stimulus order — this is what lets packed
/// consumers accumulate floating-point statistics in exactly the scalar
/// order and stay byte-identical.
///
/// # Examples
///
/// ```
/// use aix_cells::{CellFunction, DriveStrength, Library};
/// use aix_netlist::Netlist;
/// use aix_sim::PackedEvaluator;
/// use std::sync::Arc;
///
/// let lib = Arc::new(Library::nangate45_like());
/// let mut nl = Netlist::new("xor", lib.clone());
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let xor = lib.find(CellFunction::Xor2, DriveStrength::X1).unwrap();
/// let y = nl.add_gate(xor, &[a, b])?;
/// nl.mark_output("y", y[0]);
///
/// let mut packed = PackedEvaluator::new(&nl)?;
/// packed.eval_batch(&[vec![true, false], vec![true, true]])?;
/// assert_eq!(packed.output_lane_values(0), vec![true]);  // 1 ^ 0
/// assert_eq!(packed.output_lane_values(1), vec![false]); // 1 ^ 1
/// # Ok::<(), aix_netlist::NetlistError>(())
/// ```
#[derive(Debug)]
pub struct PackedEvaluator<'nl> {
    netlist: &'nl Netlist,
    /// The netlist's shared levelized schedule.
    schedule: Arc<Schedule>,
    /// Per-gate function, flattened for cache-friendly dispatch.
    functions: Vec<CellFunction>,
    /// Current lane word of every net.
    words: Vec<u64>,
    /// Lane words of the latest batch's outputs, in port order.
    output_words: Vec<u64>,
    /// Constant nets and their (all-lane) words, re-asserted per batch so
    /// a fault forced onto a tie net cannot leak into later batches.
    const_words: Vec<(NetId, u64)>,
    /// Vector count of the latest batch (1..=64).
    lanes: usize,
}

impl<'nl> PackedEvaluator<'nl> {
    /// Prepares a packed evaluator for `netlist`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the netlist is
    /// cyclic.
    pub fn new(netlist: &'nl Netlist) -> Result<Self, NetlistError> {
        let schedule = netlist.schedule()?;
        let functions = netlist
            .gates()
            .map(|(_, g)| netlist.library().cell(g.cell).function)
            .collect();
        let mut words = vec![0u64; netlist.net_count()];
        let mut const_words = Vec::new();
        for (id, net) in netlist.nets() {
            if let NetDriver::Constant(v) = net.driver {
                let word = if v { !0 } else { 0 };
                words[id.index()] = word;
                const_words.push((id, word));
            }
        }
        Ok(Self {
            netlist,
            schedule,
            functions,
            words,
            output_words: vec![0; netlist.outputs().len()],
            const_words,
            lanes: 0,
        })
    }

    /// Evaluates a batch of 1..=[`LANES`] input vectors in one netlist
    /// walk. Vector *l* of the batch lands in lane *l* of every word.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if any vector does not
    /// match the number of primary inputs.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or holds more than [`LANES`] vectors.
    pub fn eval_batch(&mut self, batch: &[Vec<bool>]) -> Result<(), NetlistError> {
        self.eval_batch_forced(batch, None)
    }

    /// [`eval_batch`](Self::eval_batch) with an optional stuck-at fault:
    /// `force = Some((net, value))` pins `net` to `value` in every lane,
    /// overriding both its initial value and anything its driver writes —
    /// the packed twin of the scalar fault simulator's forcing rule.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if any vector does not
    /// match the number of primary inputs.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or holds more than [`LANES`] vectors.
    pub fn eval_batch_forced(
        &mut self,
        batch: &[Vec<bool>],
        force: Option<(NetId, bool)>,
    ) -> Result<(), NetlistError> {
        let lanes = batch.len();
        assert!(
            (1..=LANES).contains(&lanes),
            "batch of {lanes} vectors (expected 1..={LANES})"
        );
        let expected = self.netlist.inputs().len();
        for vector in batch {
            if vector.len() != expected {
                return Err(NetlistError::InputWidthMismatch {
                    expected,
                    provided: vector.len(),
                });
            }
        }
        for &(net, word) in &self.const_words {
            self.words[net.index()] = word;
        }
        for (pos, &net) in self.netlist.inputs().iter().enumerate() {
            let mut word = 0u64;
            for (lane, vector) in batch.iter().enumerate() {
                word |= u64::from(vector[pos]) << lane;
            }
            self.words[net.index()] = word;
        }
        if let Some((net, value)) = force {
            self.words[net.index()] = if value { !0 } else { 0 };
        }
        let mut in_buf = [0u64; MAX_INPUTS];
        let mut out_buf = [0u64; MAX_OUTPUTS];
        for &g in self.schedule.order() {
            let gate = self.netlist.gate(GateId::from_raw(g));
            let function = self.functions[g as usize];
            for (slot, &net) in in_buf.iter_mut().zip(&gate.inputs) {
                *slot = self.words[net.index()];
            }
            function.eval_words(&in_buf[..gate.inputs.len()], &mut out_buf);
            for (pin, &net) in gate.outputs.iter().enumerate() {
                self.words[net.index()] = out_buf[pin];
            }
            if let Some((net, value)) = force {
                if gate.outputs.contains(&net) {
                    self.words[net.index()] = if value { !0 } else { 0 };
                }
            }
        }
        for (slot, (_, net)) in self.output_words.iter_mut().zip(self.netlist.outputs()) {
            *slot = self.words[net.index()];
        }
        self.lanes = lanes;
        aix_obs::count!(
            "packed_words",
            words = self.netlist.gate_count(),
            lanes = lanes
        );
        Ok(())
    }

    /// Vector count of the latest batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Mask selecting the valid lanes of the latest batch.
    pub fn lane_mask(&self) -> u64 {
        lane_mask(self.lanes)
    }

    /// Lane word of every net after the latest batch. Lanes above
    /// [`lanes`](Self::lanes) are unspecified — mask before counting.
    pub fn net_words(&self) -> &[u64] {
        &self.words
    }

    /// Lane words of the primary outputs in port order.
    pub fn output_words(&self) -> &[u64] {
        &self.output_words
    }

    /// The output vector (port order) seen by lane `lane` of the latest
    /// batch — the packed counterpart of a scalar `eval` result.
    pub fn output_lane_values(&self, lane: usize) -> Vec<bool> {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        self.output_words
            .iter()
            .map(|&word| (word >> lane) & 1 == 1)
            .collect()
    }

    /// The numeric value of the first `bits` output ports (LSB first) in
    /// lane `lane` — the packed counterpart of `bus_to_u64` on a scalar
    /// result. `bits` is clamped to 64.
    pub fn output_lane_value_u64(&self, lane: usize, bits: usize) -> u64 {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        let bits = bits.min(64).min(self.output_words.len());
        let mut value = 0u64;
        for (bit, &word) in self.output_words.iter().take(bits).enumerate() {
            value |= ((word >> lane) & 1) << bit;
        }
        value
    }

    /// The netlist this evaluator is bound to.
    pub fn netlist(&self) -> &'nl Netlist {
        self.netlist
    }
}

/// Mask selecting the low `lanes` bits of a lane word.
///
/// # Panics
///
/// Panics if `lanes` exceeds [`LANES`].
pub fn lane_mask(lanes: usize) -> u64 {
    assert!(lanes <= LANES, "{lanes} lanes exceed the word width");
    if lanes == LANES {
        !0
    } else {
        (1u64 << lanes) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aix_cells::{DriveStrength, Library};
    use aix_netlist::Evaluator;

    fn lib() -> Arc<Library> {
        Arc::new(Library::nangate45_like())
    }

    #[test]
    fn engine_parsing_and_default() {
        assert_eq!(SimEngine::default(), SimEngine::Packed);
        assert_eq!("scalar".parse(), Ok(SimEngine::Scalar));
        assert_eq!("packed".parse(), Ok(SimEngine::Packed));
        assert!("fast".parse::<SimEngine>().is_err());
        assert_eq!(SimEngine::Scalar.to_string(), "scalar");
        assert_eq!(SimEngine::Packed.to_string(), "packed");
    }

    #[test]
    fn lane_masks() {
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(63), (1u64 << 63) - 1);
        assert_eq!(lane_mask(64), !0);
    }

    /// A small mixed netlist: y0 = (a NAND b) XOR c, y1 = MUX(a, b, c),
    /// with a tied-1 AND thrown in to exercise constants.
    fn mixed_netlist(lib: &Arc<Library>) -> Netlist {
        let nand = lib.find(CellFunction::Nand2, DriveStrength::X1).unwrap();
        let xor = lib.find(CellFunction::Xor2, DriveStrength::X1).unwrap();
        let mux = lib.find(CellFunction::Mux2, DriveStrength::X1).unwrap();
        let and = lib.find(CellFunction::And2, DriveStrength::X1).unwrap();
        let mut nl = Netlist::new("mixed", lib.clone());
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let one = nl.constant(true);
        let n = nl.add_gate(nand, &[a, b]).unwrap()[0];
        let y0 = nl.add_gate(xor, &[n, c]).unwrap()[0];
        let m = nl.add_gate(mux, &[a, b, c]).unwrap()[0];
        let y1 = nl.add_gate(and, &[m, one]).unwrap()[0];
        nl.mark_output("y0", y0);
        nl.mark_output("y1", y1);
        nl.validate().unwrap();
        nl
    }

    #[test]
    fn packed_lanes_match_scalar_eval() {
        let lib = lib();
        let nl = mixed_netlist(&lib);
        let mut scalar = Evaluator::new(&nl).unwrap();
        let mut packed = PackedEvaluator::new(&nl).unwrap();
        // Exhaustive over the 8 input combinations, batched as one batch.
        let batch: Vec<Vec<bool>> = (0u8..8)
            .map(|bits| vec![bits & 1 != 0, bits & 2 != 0, bits & 4 != 0])
            .collect();
        packed.eval_batch(&batch).unwrap();
        assert_eq!(packed.lanes(), 8);
        for (lane, vector) in batch.iter().enumerate() {
            let expect = scalar.eval(vector).unwrap().to_vec();
            assert_eq!(packed.output_lane_values(lane), expect, "lane {lane}");
        }
    }

    #[test]
    fn partial_and_full_batches() {
        let lib = lib();
        let nl = mixed_netlist(&lib);
        let mut scalar = Evaluator::new(&nl).unwrap();
        let mut packed = PackedEvaluator::new(&nl).unwrap();
        for lanes in [1usize, 63, 64] {
            let batch: Vec<Vec<bool>> = (0..lanes)
                .map(|i| vec![i % 2 == 0, i % 3 == 0, i % 5 == 0])
                .collect();
            packed.eval_batch(&batch).unwrap();
            for (lane, vector) in batch.iter().enumerate() {
                let expect = scalar.eval(vector).unwrap().to_vec();
                assert_eq!(
                    packed.output_lane_values(lane),
                    expect,
                    "{lanes}-lane batch, lane {lane}"
                );
            }
        }
    }

    #[test]
    fn forced_net_matches_stuck_at_semantics() {
        let lib = lib();
        let nl = mixed_netlist(&lib);
        let mut packed = PackedEvaluator::new(&nl).unwrap();
        // Force the NAND output low: y0 becomes 0 XOR c = c.
        let nand_out = nl.gate(GateId::from_raw(0)).outputs[0];
        let batch: Vec<Vec<bool>> = (0u8..8)
            .map(|bits| vec![bits & 1 != 0, bits & 2 != 0, bits & 4 != 0])
            .collect();
        packed.eval_batch_forced(&batch, Some((nand_out, false))).unwrap();
        for (lane, vector) in batch.iter().enumerate() {
            assert_eq!(packed.output_lane_values(lane)[0], vector[2], "lane {lane}");
        }
        // A fault on a constant net must not leak into the next clean batch.
        let tie1 = nl
            .nets()
            .find_map(|(id, net)| {
                matches!(net.driver, NetDriver::Constant(true)).then_some(id)
            })
            .unwrap();
        packed.eval_batch_forced(&batch, Some((tie1, false))).unwrap();
        for lane in 0..batch.len() {
            assert!(!packed.output_lane_values(lane)[1], "faulted tie1 kills y1");
        }
        packed.eval_batch(&batch).unwrap();
        let mut scalar = Evaluator::new(&nl).unwrap();
        for (lane, vector) in batch.iter().enumerate() {
            let expect = scalar.eval(vector).unwrap().to_vec();
            assert_eq!(packed.output_lane_values(lane), expect, "clean lane {lane}");
        }
    }

    #[test]
    fn numeric_output_extraction() {
        let lib = lib();
        let ha = lib.find(CellFunction::HalfAdder, DriveStrength::X1).unwrap();
        let mut nl = Netlist::new("ha", lib.clone());
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let out = nl.add_gate(ha, &[a, b]).unwrap();
        nl.mark_output_bus("s", &out);
        let mut packed = PackedEvaluator::new(&nl).unwrap();
        let batch = vec![
            vec![false, false],
            vec![true, false],
            vec![false, true],
            vec![true, true],
        ];
        packed.eval_batch(&batch).unwrap();
        let sums: Vec<u64> = (0..4).map(|l| packed.output_lane_value_u64(l, 2)).collect();
        assert_eq!(sums, vec![0, 1, 1, 2]);
    }
}
