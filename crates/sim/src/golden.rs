//! Shared golden-reference helpers.
//!
//! Every error/fault measurement in this crate compares a circuit response
//! against a *golden* functional reference — the settled zero-delay
//! outputs, numerically interpreted as one unsigned word where that makes
//! sense. Historically each consumer re-derived that reference inline;
//! centralizing it here means the scalar and packed engines share one
//! reference implementation and cannot drift apart on the reference side.

use crate::packed::{PackedEvaluator, SimEngine, LANES};
use aix_netlist::{Evaluator, Netlist, NetlistError};

/// Numeric value of an output bit vector (port order, LSB first),
/// truncated to the low 64 bits — the golden word the paper's error
/// magnitudes are measured against. Unlike [`aix_netlist::bus_to_u64`]
/// this accepts arbitrary widths, so callers need no pre-truncation.
pub fn golden_word(bits: &[bool]) -> u64 {
    bits.iter()
        .take(64)
        .enumerate()
        .fold(0u64, |word, (i, &b)| word | (u64::from(b) << i))
}

/// The same golden word extracted from packed lane words (one `u64` per
/// output port): the numeric value seen by lane `lane`.
pub fn golden_lane_word(words: &[u64], lane: usize) -> u64 {
    assert!(lane < LANES, "lane {lane} out of range");
    words
        .iter()
        .take(64)
        .enumerate()
        .fold(0u64, |word, (i, &w)| word | (((w >> lane) & 1) << i))
}

/// Fault-free functional reference responses for a stimulus set under the
/// chosen engine. Both engines produce identical vectors (the scalar and
/// packed evaluators implement the same zero-delay semantics); exposing
/// the engine keeps the differential harness honest about which path
/// computed the reference.
///
/// # Errors
///
/// Propagates evaluator errors (cyclic netlist, width mismatch).
pub fn reference_outputs(
    netlist: &Netlist,
    stimuli: &[Vec<bool>],
    engine: SimEngine,
) -> Result<Vec<Vec<bool>>, NetlistError> {
    let mut references = Vec::with_capacity(stimuli.len());
    match engine {
        SimEngine::Scalar => {
            let mut evaluator = Evaluator::new(netlist)?;
            for vector in stimuli {
                references.push(evaluator.eval(vector)?.to_vec());
            }
        }
        SimEngine::Packed => {
            let mut packed = PackedEvaluator::new(netlist)?;
            for batch in stimuli.chunks(LANES) {
                packed.eval_batch(batch)?;
                for lane in 0..batch.len() {
                    references.push(packed.output_lane_values(lane));
                }
            }
        }
    }
    Ok(references)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OperandSource, UniformOperands};
    use aix_arith::{build_adder, AdderKind, ComponentSpec};
    use aix_cells::Library;
    use aix_netlist::bus_to_u64;
    use std::sync::Arc;

    #[test]
    fn golden_word_matches_bus_to_u64_and_truncates() {
        let bits = [true, false, true, true];
        assert_eq!(golden_word(&bits), bus_to_u64(&bits));
        assert_eq!(golden_word(&bits), 0b1101);
        // 70 bits: only the low 64 land in the word.
        let mut wide = vec![false; 70];
        wide[0] = true;
        wide[69] = true;
        assert_eq!(golden_word(&wide), 1);
    }

    #[test]
    fn golden_lane_word_extracts_per_lane_values() {
        // Two ports, three lanes: port0 = 1,0,1; port1 = 0,1,1.
        let words = [0b101u64, 0b110u64];
        assert_eq!(golden_lane_word(&words, 0), 0b01);
        assert_eq!(golden_lane_word(&words, 1), 0b10);
        assert_eq!(golden_lane_word(&words, 2), 0b11);
    }

    /// The golden reference *is* the arithmetic model: an adder's reference
    /// outputs must equal `a + b` exactly, under both engines.
    #[test]
    fn reference_outputs_match_arith_model_under_both_engines() {
        let lib = Arc::new(Library::nangate45_like());
        let width = 8;
        let nl = build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(width)).unwrap();
        let stimuli: Vec<Vec<bool>> = UniformOperands::new(width, 7).vectors(200).collect();
        for engine in [SimEngine::Scalar, SimEngine::Packed] {
            let refs = reference_outputs(&nl, &stimuli, engine).unwrap();
            for (vector, outputs) in stimuli.iter().zip(&refs) {
                let a = bus_to_u64(&vector[..width]);
                let b = bus_to_u64(&vector[width..]);
                assert_eq!(golden_word(outputs), a + b, "{engine}: {a}+{b}");
            }
        }
    }

    #[test]
    fn engines_agree_on_references() {
        let lib = Arc::new(Library::nangate45_like());
        let nl = build_adder(&lib, AdderKind::KoggeStone, ComponentSpec::full(6)).unwrap();
        let stimuli: Vec<Vec<bool>> = UniformOperands::new(6, 3).vectors(130).collect();
        let scalar = reference_outputs(&nl, &stimuli, SimEngine::Scalar).unwrap();
        let packed = reference_outputs(&nl, &stimuli, SimEngine::Packed).unwrap();
        assert_eq!(scalar, packed);
    }
}
