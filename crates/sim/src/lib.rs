//! Gate-level simulation: timed (event-driven) and functional, plus the
//! switching-activity and stress-factor extraction the paper's actual-case
//! aging analysis is built on.
//!
//! Three capabilities live here:
//!
//! * [`TimedSimulator`] / [`PackedTimedSimulator`] — event-driven
//!   simulators with per-net transport delays on an integer femtosecond
//!   tick grid ([`TICKS_PER_PS`]) — the Rust counterpart of gate-level
//!   simulation with an aged `.sdf`. Outputs are sampled at the clock
//!   edge (an arrival exactly on the edge is a setup violation); paths
//!   that have not settled yet produce exactly the timing errors the
//!   paper's motivational study demonstrates. The packed variant runs 64
//!   stimulus vectors per `u64` word with per-lane sample/settle state,
//!   bit-identical to the scalar engine.
//! * [`ErrorStats`] / [`measure_errors`] — error-probability measurement of
//!   a component clocked at its fresh frequency while its gates age
//!   (reproduces Fig. 1).
//! * [`Activity`] / [`stress_pairs`] — signal-probability extraction and
//!   its conversion to per-gate (pMOS, nMOS) stress factors and stress
//!   histograms (reproduces Fig. 5 and feeds actual-case STA).
//! * [`PackedEvaluator`] / [`SimEngine`] — bit-parallel (64 vectors per
//!   `u64` word) functional simulation backing the untimed value-mode
//!   consumers above; select per call with `*_with` variants or globally
//!   via the `AIX_SIM_ENGINE` environment variable. The same dispatch
//!   now also selects the timed engine for [`measure_errors`] and
//!   [`collect_timed_activity`].
//!
//! # Examples
//!
//! ```
//! use aix_arith::{build_adder, AdderKind, ComponentSpec};
//! use aix_cells::Library;
//! use aix_netlist::bus_from_u64;
//! use aix_sim::TimedSimulator;
//! use aix_sta::NetDelays;
//! use std::sync::Arc;
//!
//! let lib = Arc::new(Library::nangate45_like());
//! let adder = build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(8))?;
//! let delays = NetDelays::fresh(&adder);
//! let mut sim = TimedSimulator::new(&adder, &delays)?;
//! let mut inputs = bus_from_u64(3, 8);
//! inputs.extend(bus_from_u64(4, 8));
//! // With a generous clock the sampled outputs equal the settled outputs.
//! let out = sim.step(&inputs, 1e6)?;
//! assert_eq!(out.sampled, out.settled);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod activity;
mod errors;
mod faults;
mod golden;
mod packed;
mod stimuli;
mod timed;
mod timed_packed;

pub use activity::{
    collect_timed_activity, collect_timed_activity_with, stress_histogram, stress_pairs, Activity,
    StressHistogram,
};
pub use errors::{measure_errors, measure_errors_with, ErrorStats};
pub use faults::{full_fault_list, simulate_faults, simulate_faults_with, FaultCoverage, StuckAtFault};
pub use golden::{golden_lane_word, golden_word, reference_outputs};
pub use packed::{lane_mask, PackedEvaluator, SimEngine, LANES};
pub use stimuli::{NormalOperands, OperandSource, SignedNormalOperands, UniformOperands, VectorStream};
pub use timed::{ps_to_ticks, ticks_to_ps, StepOutcome, TimedSimulator, TICKS_PER_PS};
pub use timed_packed::{PackedStepOutcome, PackedTimedSimulator};
