//! Stuck-at fault simulation: the classic structural-reliability view that
//! complements aging-induced *timing* errors.
//!
//! Aging, latent defects and wear-out ultimately manifest as nets stuck at
//! a logic level. Fault simulation answers how observable such defects are
//! under a stimulus set — which doubles as a measure of how thoroughly a
//! characterization stimulus actually exercises a netlist.

use crate::golden::reference_outputs;
use crate::packed::{lane_mask, PackedEvaluator, SimEngine, LANES};
use aix_netlist::{NetDriver, NetId, Netlist, NetlistError};
use std::fmt;

/// One stuck-at fault site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StuckAtFault {
    /// The faulty net.
    pub net: NetId,
    /// The level the net is stuck at.
    pub value: bool,
}

impl fmt::Display for StuckAtFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/SA{}", self.net, u8::from(self.value))
    }
}

/// Result of a fault-simulation campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCoverage {
    detected: Vec<StuckAtFault>,
    undetected: Vec<StuckAtFault>,
    vectors: usize,
}

impl FaultCoverage {
    /// Faults whose effect reached an output for at least one vector.
    pub fn detected(&self) -> &[StuckAtFault] {
        &self.detected
    }

    /// Faults never observed at any output.
    pub fn undetected(&self) -> &[StuckAtFault] {
        &self.undetected
    }

    /// Number of stimulus vectors applied.
    pub fn vector_count(&self) -> usize {
        self.vectors
    }

    /// Fraction of simulated faults detected, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        let total = self.detected.len() + self.undetected.len();
        if total == 0 {
            return 1.0;
        }
        self.detected.len() as f64 / total as f64
    }
}

/// Enumerates the full single-stuck-at fault list of a netlist: every
/// gate-driven or primary-input net, stuck at 0 and at 1.
pub fn full_fault_list(netlist: &Netlist) -> Vec<StuckAtFault> {
    let mut faults = Vec::with_capacity(2 * netlist.net_count());
    for (id, net) in netlist.nets() {
        if matches!(net.driver, NetDriver::Constant(_)) {
            continue;
        }
        faults.push(StuckAtFault {
            net: id,
            value: false,
        });
        faults.push(StuckAtFault {
            net: id,
            value: true,
        });
    }
    faults
}

/// Simulates every fault in `faults` against every vector in `stimuli`
/// (single-fault simulation with fault-free reference), reporting coverage.
/// Uses the engine selected by `AIX_SIM_ENGINE` (packed by default).
///
/// # Errors
///
/// Propagates evaluator errors (cyclic netlist, width mismatch).
pub fn simulate_faults(
    netlist: &Netlist,
    faults: &[StuckAtFault],
    stimuli: &[Vec<bool>],
) -> Result<FaultCoverage, NetlistError> {
    simulate_faults_with(netlist, faults, stimuli, SimEngine::from_env_or_default())
}

/// [`simulate_faults`] with an explicit engine choice.
///
/// The packed engine runs classic parallel-pattern single-fault
/// simulation: 64 vectors per fault per netlist walk, detection decided by
/// XORing the faulty output words against the fault-free reference words.
/// Detection is a boolean per fault, so both engines report identical
/// `FaultCoverage` (the differential suite pins this).
///
/// # Errors
///
/// Propagates evaluator errors (cyclic netlist, width mismatch).
pub fn simulate_faults_with(
    netlist: &Netlist,
    faults: &[StuckAtFault],
    stimuli: &[Vec<bool>],
    engine: SimEngine,
) -> Result<FaultCoverage, NetlistError> {
    match engine {
        SimEngine::Scalar => simulate_faults_scalar(netlist, faults, stimuli),
        SimEngine::Packed => simulate_faults_packed(netlist, faults, stimuli),
    }
}

fn simulate_faults_scalar(
    netlist: &Netlist,
    faults: &[StuckAtFault],
    stimuli: &[Vec<bool>],
) -> Result<FaultCoverage, NetlistError> {
    // Fault-free reference responses from the shared golden helper.
    let references = reference_outputs(netlist, stimuli, SimEngine::Scalar)?;
    let order = netlist.topological_order()?;
    let mut detected = Vec::new();
    let mut undetected = Vec::new();
    for &fault in faults {
        let mut caught = false;
        for (vector, reference) in stimuli.iter().zip(&references) {
            let response = eval_with_fault(netlist, &order, vector, fault);
            if &response != reference {
                caught = true;
                break;
            }
        }
        if caught {
            detected.push(fault);
        } else {
            undetected.push(fault);
        }
    }
    Ok(FaultCoverage {
        detected,
        undetected,
        vectors: stimuli.len(),
    })
}

fn simulate_faults_packed(
    netlist: &Netlist,
    faults: &[StuckAtFault],
    stimuli: &[Vec<bool>],
) -> Result<FaultCoverage, NetlistError> {
    let _span = aix_obs::span!(
        "sim_packed",
        consumer = "simulate_faults",
        faults = faults.len()
    );
    let mut packed = PackedEvaluator::new(netlist)?;
    // Fault-free reference output words, one word set per 64-vector batch.
    let mut reference_words: Vec<Vec<u64>> = Vec::new();
    for batch in stimuli.chunks(LANES) {
        packed.eval_batch(batch)?;
        reference_words.push(packed.output_words().to_vec());
    }
    let mut detected = Vec::new();
    let mut undetected = Vec::new();
    for &fault in faults {
        let mut caught = false;
        for (batch, reference) in stimuli.chunks(LANES).zip(&reference_words) {
            packed.eval_batch_forced(batch, Some((fault.net, fault.value)))?;
            let mask = lane_mask(batch.len());
            let mut diff = 0u64;
            for (&good, &bad) in reference.iter().zip(packed.output_words()) {
                diff |= (good ^ bad) & mask;
            }
            if diff != 0 {
                caught = true;
                break;
            }
        }
        if caught {
            detected.push(fault);
        } else {
            undetected.push(fault);
        }
    }
    Ok(FaultCoverage {
        detected,
        undetected,
        vectors: stimuli.len(),
    })
}

/// Evaluates one vector with the fault folded in: a serial fault
/// simulation pass over the precomputed topological order, forcing the
/// faulty net's value wherever it would be driven.
fn eval_with_fault(
    netlist: &Netlist,
    order: &[aix_netlist::GateId],
    vector: &[bool],
    fault: StuckAtFault,
) -> Vec<bool> {
    let mut values = vec![false; netlist.net_count()];
    for (id, net) in netlist.nets() {
        if let NetDriver::Constant(v) = net.driver {
            values[id.index()] = v;
        }
    }
    for (&input, &value) in netlist.inputs().iter().zip(vector) {
        values[input.index()] = value;
    }
    values[fault.net.index()] = fault.value;
    let mut in_buf = [false; aix_cells::MAX_INPUTS];
    let mut out_buf = [false; aix_cells::MAX_OUTPUTS];
    for &gate_id in order {
        let gate = netlist.gate(gate_id);
        let function = netlist.library().cell(gate.cell).function;
        for (slot, &net) in in_buf.iter_mut().zip(&gate.inputs) {
            *slot = values[net.index()];
        }
        function.eval(&in_buf[..gate.inputs.len()], &mut out_buf);
        for (pin, &net) in gate.outputs.iter().enumerate() {
            values[net.index()] = if net == fault.net {
                fault.value
            } else {
                out_buf[pin]
            };
        }
    }
    netlist
        .outputs()
        .iter()
        .map(|(_, n)| values[n.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OperandSource, UniformOperands};
    use aix_arith::{build_adder, AdderKind, ComponentSpec};
    use aix_cells::Library;
    use std::sync::Arc;

    fn adder(width: usize) -> Netlist {
        let lib = Arc::new(Library::nangate45_like());
        build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(width)).unwrap()
    }

    #[test]
    fn fault_list_covers_every_non_constant_net_twice() {
        let nl = adder(4);
        let faults = full_fault_list(&nl);
        let const_nets = nl
            .nets()
            .filter(|(_, n)| matches!(n.driver, NetDriver::Constant(_)))
            .count();
        assert_eq!(faults.len(), 2 * (nl.net_count() - const_nets));
    }

    #[test]
    fn output_faults_are_trivially_detectable() {
        let nl = adder(4);
        // Faults directly on output nets flip an output for some vector.
        let faults: Vec<StuckAtFault> = nl
            .output_nets()
            .into_iter()
            .flat_map(|net| [false, true].map(|value| StuckAtFault { net, value }))
            .collect();
        let stimuli: Vec<Vec<bool>> = UniformOperands::new(4, 1).vectors(64).collect();
        let coverage = simulate_faults(&nl, &faults, &stimuli).unwrap();
        assert_eq!(
            coverage.coverage(),
            1.0,
            "undetected: {:?}",
            coverage.undetected()
        );
    }

    #[test]
    fn exhaustive_stimuli_detect_nearly_everything() {
        let nl = adder(3);
        let faults = full_fault_list(&nl);
        // All 64 operand combinations.
        let stimuli: Vec<Vec<bool>> = (0..64u64)
            .map(|bits| (0..6).map(|i| bits >> i & 1 == 1).collect())
            .collect();
        let coverage = simulate_faults(&nl, &faults, &stimuli).unwrap();
        assert!(
            coverage.coverage() > 0.95,
            "ripple adders are almost fully testable: {:.2} ({} undetected)",
            coverage.coverage(),
            coverage.undetected().len()
        );
    }

    #[test]
    fn single_vector_detects_less_than_many() {
        let nl = adder(4);
        let faults = full_fault_list(&nl);
        let many: Vec<Vec<bool>> = UniformOperands::new(4, 2).vectors(50).collect();
        let one = vec![many[0].clone()];
        let c_one = simulate_faults(&nl, &faults, &one).unwrap();
        let c_many = simulate_faults(&nl, &faults, &many).unwrap();
        assert!(c_many.coverage() >= c_one.coverage());
        assert!(c_one.coverage() < 1.0, "one vector cannot test everything");
    }

    #[test]
    fn fault_display_is_informative() {
        let nl = adder(2);
        let fault = full_fault_list(&nl)[1];
        assert!(fault.to_string().contains("/SA"));
    }
}
