//! Timing-error statistics: the paper's motivational measurement (Fig. 1).

use crate::golden::{golden_lane_word, golden_word};
use crate::packed::{SimEngine, LANES};
use crate::timed_packed::PackedTimedSimulator;
use crate::TimedSimulator;
use aix_netlist::{Netlist, NetlistError};
use aix_sta::NetDelays;

/// Error statistics of a component clocked at a fixed period while its
/// gates carry (possibly aged) delays.
///
/// The paper reports the *percentage of erroneous outputs*: the fraction of
/// applied input vectors for which at least one output bit is latched
/// before it settles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Vectors simulated.
    pub vectors: u64,
    /// Vectors whose sampled output differed from the settled output.
    pub erroneous: u64,
    /// Total output bits that were wrong, across all vectors.
    pub wrong_bits: u64,
    /// Mean absolute numeric error of the sampled output word, interpreting
    /// outputs as unsigned integers (capped at 64 bits).
    pub mean_abs_error: f64,
    /// Maximum absolute numeric error observed.
    pub max_abs_error: u64,
}

impl ErrorStats {
    /// Fraction of vectors with at least one wrong output bit, in `[0, 1]`.
    pub fn error_rate(&self) -> f64 {
        if self.vectors == 0 {
            0.0
        } else {
            self.erroneous as f64 / self.vectors as f64
        }
    }

    /// Error rate as a percentage, as reported in the paper's figures.
    pub fn error_percent(&self) -> f64 {
        self.error_rate() * 100.0
    }
}

/// Clocks `netlist` at `clock_ps` with the given delay annotation and
/// measures how often sampled outputs are wrong over `stimuli`, using the
/// engine selected by `AIX_SIM_ENGINE` (packed by default).
///
/// Numeric error statistics are only meaningful for netlists whose outputs
/// form one unsigned word (ports in LSB-first order), which holds for every
/// generator in `aix-arith`; for wider outputs the word is truncated to the
/// low 64 bits.
///
/// # Errors
///
/// Propagates simulator construction and width errors.
pub fn measure_errors<I>(
    netlist: &Netlist,
    delays: &NetDelays,
    clock_ps: f64,
    stimuli: I,
) -> Result<ErrorStats, NetlistError>
where
    I: IntoIterator<Item = Vec<bool>>,
{
    measure_errors_with(netlist, delays, clock_ps, stimuli, SimEngine::from_env_or_default())
}

/// [`measure_errors`] with an explicit engine choice.
///
/// `Packed` runs the lane-parallel timed engine
/// ([`PackedTimedSimulator`]): 64 vectors advance through one shared event
/// calendar per batch, with per-lane sample-at-clock and settle state. The
/// two paths are byte-identical — every per-lane outcome equals the scalar
/// engine's, and floating-point accumulation happens in stimulus order on
/// both.
///
/// # Errors
///
/// Propagates simulator construction and width errors.
pub fn measure_errors_with<I>(
    netlist: &Netlist,
    delays: &NetDelays,
    clock_ps: f64,
    stimuli: I,
    engine: SimEngine,
) -> Result<ErrorStats, NetlistError>
where
    I: IntoIterator<Item = Vec<bool>>,
{
    match engine {
        SimEngine::Scalar => measure_errors_scalar(netlist, delays, clock_ps, stimuli),
        SimEngine::Packed => measure_errors_packed(netlist, delays, clock_ps, stimuli),
    }
}

fn new_stats() -> (ErrorStats, f64) {
    (
        ErrorStats {
            vectors: 0,
            erroneous: 0,
            wrong_bits: 0,
            mean_abs_error: 0.0,
            max_abs_error: 0,
        },
        0.0f64,
    )
}

fn measure_errors_scalar<I>(
    netlist: &Netlist,
    delays: &NetDelays,
    clock_ps: f64,
    stimuli: I,
) -> Result<ErrorStats, NetlistError>
where
    I: IntoIterator<Item = Vec<bool>>,
{
    let mut sim = TimedSimulator::new(netlist, delays)?;
    let (mut stats, mut total_abs_error) = new_stats();
    for vector in stimuli {
        let outcome = sim.step(&vector, clock_ps)?;
        stats.vectors += 1;
        if outcome.timing_error {
            stats.erroneous += 1;
            stats.wrong_bits += outcome
                .sampled
                .iter()
                .zip(&outcome.settled)
                .filter(|(s, g)| s != g)
                .count() as u64;
            let err = golden_word(&outcome.sampled).abs_diff(golden_word(&outcome.settled));
            total_abs_error += err as f64;
            stats.max_abs_error = stats.max_abs_error.max(err);
        }
    }
    if stats.vectors > 0 {
        stats.mean_abs_error = total_abs_error / stats.vectors as f64;
    }
    Ok(stats)
}

fn measure_errors_packed<I>(
    netlist: &Netlist,
    delays: &NetDelays,
    clock_ps: f64,
    stimuli: I,
) -> Result<ErrorStats, NetlistError>
where
    I: IntoIterator<Item = Vec<bool>>,
{
    let _span = aix_obs::span!(
        aix_obs::names::sim::SPAN_TIMED_PACKED,
        consumer = "measure_errors",
        nets = netlist.net_count()
    );
    let mut sim = PackedTimedSimulator::new(netlist, delays)?;
    let (mut stats, mut total_abs_error) = new_stats();
    let mut batch: Vec<Vec<bool>> = Vec::with_capacity(LANES);
    let mut flush = |batch: &[Vec<bool>],
                     stats: &mut ErrorStats,
                     total_abs_error: &mut f64|
     -> Result<(), NetlistError> {
        // The packed timed engine advances all lanes through one shared
        // event calendar; sampled and settled words come out together.
        let outcome = sim.step_stream_batch(batch, clock_ps)?;
        let sampled_words = outcome.sampled_words();
        let settled_words = outcome.settled_words();
        let erroneous_lanes = outcome.error_lanes();
        for (&sampled, &settled) in sampled_words.iter().zip(settled_words) {
            let diff = (sampled ^ settled) & crate::lane_mask(batch.len());
            stats.wrong_bits += u64::from(diff.count_ones());
        }
        stats.vectors += batch.len() as u64;
        stats.erroneous += u64::from(erroneous_lanes.count_ones());
        // Numeric error per erroneous lane, in stimulus order so the f64
        // accumulation matches the scalar engine bit for bit.
        let mut remaining = erroneous_lanes;
        while remaining != 0 {
            let lane = remaining.trailing_zeros() as usize;
            remaining &= remaining - 1;
            let err = golden_lane_word(sampled_words, lane)
                .abs_diff(golden_lane_word(settled_words, lane));
            *total_abs_error += err as f64;
            stats.max_abs_error = stats.max_abs_error.max(err);
        }
        Ok(())
    };
    for vector in stimuli {
        batch.push(vector);
        if batch.len() == LANES {
            flush(&batch, &mut stats, &mut total_abs_error)?;
            batch.clear();
        }
    }
    if !batch.is_empty() {
        flush(&batch, &mut stats, &mut total_abs_error)?;
    }
    if stats.vectors > 0 {
        stats.mean_abs_error = total_abs_error / stats.vectors as f64;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NormalOperands, OperandSource};
    use aix_aging::{AgingModel, AgingScenario, Lifetime};
    use aix_arith::{build_adder, AdderKind, ComponentSpec};
    use aix_cells::Library;
    use aix_sta::analyze;
    use std::sync::Arc;

    fn setup(width: usize) -> (Netlist, f64) {
        // Kogge-Stone: a balanced tree whose paths sit near the critical
        // path, so aging-induced violations are actually exercised.
        let lib = Arc::new(Library::nangate45_like());
        let nl = build_adder(&lib, AdderKind::KoggeStone, ComponentSpec::full(width)).unwrap();
        let clock = analyze(&nl, &NetDelays::fresh(&nl)).unwrap().max_delay_ps();
        (nl, clock)
    }

    #[test]
    fn fresh_circuit_at_fresh_clock_is_error_free() {
        let (nl, clock) = setup(12);
        // 1 ps of margin over the STA critical path absorbs both the
        // edge-exclusive sampling rule and per-arc tick rounding.
        let stats = measure_errors(
            &nl,
            &NetDelays::fresh(&nl),
            clock + 1.0,
            NormalOperands::new(12, 1).vectors(300),
        )
        .unwrap();
        assert_eq!(stats.erroneous, 0);
        assert_eq!(stats.error_rate(), 0.0);
        assert_eq!(stats.vectors, 300);
    }

    #[test]
    fn aged_circuit_at_fresh_clock_errs_and_grows_with_lifetime() {
        let (nl, clock) = setup(32);
        let model = AgingModel::calibrated();
        let rate = |years: f64| {
            let delays = NetDelays::aged(
                &nl,
                &model,
                AgingScenario::worst_case(Lifetime::from_years(years)),
            );
            measure_errors(
                &nl,
                &delays,
                clock,
                NormalOperands::new(32, 2).vectors(2000),
            )
            .unwrap()
            .error_rate()
        };
        let y1 = rate(1.0);
        let y10 = rate(10.0);
        assert!(y10 > 0.0, "10-year worst-case aging must produce errors");
        assert!(y10 >= y1, "errors must not shrink with lifetime: {y1} vs {y10}");
    }

    #[test]
    fn balanced_stress_errs_no_more_than_worst() {
        let (nl, clock) = setup(16);
        let model = AgingModel::calibrated();
        let rate = |scenario| {
            let delays = NetDelays::aged(&nl, &model, scenario);
            measure_errors(
                &nl,
                &delays,
                clock,
                NormalOperands::new(16, 3).vectors(400),
            )
            .unwrap()
            .error_rate()
        };
        let balanced = rate(AgingScenario::balanced(Lifetime::YEARS_10));
        let worst = rate(AgingScenario::worst_case(Lifetime::YEARS_10));
        assert!(balanced <= worst, "balanced {balanced} vs worst {worst}");
    }

    #[test]
    fn error_magnitude_tracked() {
        let (nl, clock) = setup(16);
        let model = AgingModel::calibrated();
        let delays = NetDelays::aged(
            &nl,
            &model,
            AgingScenario::worst_case(Lifetime::YEARS_10),
        );
        let stats = measure_errors(
            &nl,
            &delays,
            clock,
            NormalOperands::new(16, 4).vectors(400),
        )
        .unwrap();
        if stats.erroneous > 0 {
            assert!(stats.wrong_bits >= stats.erroneous);
            assert!(stats.max_abs_error > 0);
            assert!(stats.mean_abs_error > 0.0);
        }
    }
}
