//! Stimulus generators: operand streams for characterization and error
//! measurement.

use aix_netlist::bus_from_u64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A source of operand pairs `(a, b)` for two-input arithmetic components.
pub trait OperandSource {
    /// Operand bit width.
    fn width(&self) -> usize;

    /// The next operand pair.
    fn next_pair(&mut self) -> (u64, u64);

    /// Adapts the source into a stream of flattened input vectors
    /// (`a` bits then `b` bits, LSB first) of length `count`.
    fn vectors(self, count: usize) -> VectorStream<Self>
    where
        Self: Sized,
    {
        VectorStream {
            source: self,
            remaining: count,
            extra_bits: 0,
        }
    }

    /// Like [`vectors`](Self::vectors) but appends `extra_bits` constant-zero
    /// bits to each vector (e.g. a MAC's accumulator input).
    fn vectors_with_zeros(self, count: usize, extra_bits: usize) -> VectorStream<Self>
    where
        Self: Sized,
    {
        VectorStream {
            source: self,
            remaining: count,
            extra_bits,
        }
    }
}

/// Iterator adapter produced by [`OperandSource::vectors`].
#[derive(Debug)]
pub struct VectorStream<S> {
    source: S,
    remaining: usize,
    extra_bits: usize,
}

impl<S: OperandSource> Iterator for VectorStream<S> {
    type Item = Vec<bool>;

    fn next(&mut self) -> Option<Vec<bool>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let (a, b) = self.source.next_pair();
        let width = self.source.width();
        let mut v = bus_from_u64(a, width);
        v.extend(bus_from_u64(b, width));
        v.extend(std::iter::repeat_n(false, self.extra_bits));
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Normally distributed operands — the paper's application-independent
/// stimulus ("10⁶ values following a normal distribution"), representative
/// of typical image-processing data.
///
/// Values are drawn from `N(mean, std_dev)` via the Box-Muller transform
/// and clamped into the operand range.
///
/// # Examples
///
/// ```
/// use aix_sim::{NormalOperands, OperandSource};
///
/// let mut src = NormalOperands::new(16, 7);
/// let (a, b) = src.next_pair();
/// assert!(a < 1 << 16 && b < 1 << 16);
/// ```
#[derive(Debug, Clone)]
pub struct NormalOperands {
    width: usize,
    mean: f64,
    std_dev: f64,
    rng: StdRng,
    cached: Option<f64>,
}

impl NormalOperands {
    /// A source centred at half range with a quarter-range spread.
    pub fn new(width: usize, seed: u64) -> Self {
        let half = (1u64 << (width - 1)) as f64;
        Self::with_parameters(width, half, half / 2.0, seed)
    }

    /// A source with explicit mean and standard deviation (in operand
    /// value units).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds 63, or `std_dev` is negative.
    pub fn with_parameters(width: usize, mean: f64, std_dev: f64, seed: u64) -> Self {
        assert!((1..=63).contains(&width), "width must be in 1..=63");
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        Self {
            width,
            mean,
            std_dev,
            rng: StdRng::seed_from_u64(seed),
            cached: None,
        }
    }

    fn sample(&mut self) -> u64 {
        // Box-Muller: generate two normals per trip, cache one.
        let z = match self.cached.take() {
            Some(z) => z,
            None => {
                let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = self.rng.gen::<f64>();
                let r = (-2.0 * u1.ln()).sqrt();
                let theta = 2.0 * std::f64::consts::PI * u2;
                self.cached = Some(r * theta.sin());
                r * theta.cos()
            }
        };
        let max = ((1u64 << self.width) - 1) as f64;
        (self.mean + self.std_dev * z).clamp(0.0, max) as u64
    }
}

impl OperandSource for NormalOperands {
    fn width(&self) -> usize {
        self.width
    }

    fn next_pair(&mut self) -> (u64, u64) {
        (self.sample(), self.sample())
    }
}

/// Zero-centred normally distributed *signed* operands, embedded in
/// two's complement — representative of image-processing data (DCT
/// coefficients and level-shifted samples are signed and concentrated
/// around zero).
///
/// # Examples
///
/// ```
/// use aix_sim::{OperandSource, SignedNormalOperands};
///
/// let mut src = SignedNormalOperands::new(16, 1024.0, 7);
/// let (a, b) = src.next_pair();
/// assert!(a < 1 << 16 && b < 1 << 16, "two's-complement embedding");
/// ```
#[derive(Debug, Clone)]
pub struct SignedNormalOperands {
    width: usize,
    std_dev: f64,
    rng: StdRng,
    cached: Option<f64>,
}

impl SignedNormalOperands {
    /// A zero-mean source with the given standard deviation (in value
    /// units) over `width`-bit two's complement.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds 63, or `std_dev` is negative.
    pub fn new(width: usize, std_dev: f64, seed: u64) -> Self {
        assert!((1..=63).contains(&width), "width must be in 1..=63");
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        Self {
            width,
            std_dev,
            rng: StdRng::seed_from_u64(seed),
            cached: None,
        }
    }

    /// A source whose spread matches typical image-pipeline magnitudes for
    /// the width (σ = 2^(width/2 + 2)).
    pub fn for_width(width: usize, seed: u64) -> Self {
        let std_dev = 2f64.powi(width as i32 / 2 + 2);
        Self::new(width, std_dev, seed)
    }

    fn sample(&mut self) -> u64 {
        let z = match self.cached.take() {
            Some(z) => z,
            None => {
                let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = self.rng.gen::<f64>();
                let r = (-2.0 * u1.ln()).sqrt();
                let theta = 2.0 * std::f64::consts::PI * u2;
                self.cached = Some(r * theta.sin());
                r * theta.cos()
            }
        };
        let limit = (1i64 << (self.width - 1)) - 1;
        let value = ((self.std_dev * z) as i64).clamp(-limit - 1, limit);
        (value as u64) & ((1u64 << self.width) - 1)
    }
}

impl OperandSource for SignedNormalOperands {
    fn width(&self) -> usize {
        self.width
    }

    fn next_pair(&mut self) -> (u64, u64) {
        (self.sample(), self.sample())
    }
}

/// Uniformly distributed operands over the full range.
#[derive(Debug, Clone)]
pub struct UniformOperands {
    width: usize,
    rng: StdRng,
}

impl UniformOperands {
    /// A uniform source over `[0, 2^width)`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds 64.
    pub fn new(width: usize, seed: u64) -> Self {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        Self {
            width,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl OperandSource for UniformOperands {
    fn width(&self) -> usize {
        self.width
    }

    fn next_pair(&mut self) -> (u64, u64) {
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        (self.rng.gen::<u64>() & mask, self.rng.gen::<u64>() & mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_operands_stay_in_range() {
        let mut src = NormalOperands::new(8, 1);
        for _ in 0..1000 {
            let (a, b) = src.next_pair();
            assert!(a < 256 && b < 256);
        }
    }

    #[test]
    fn normal_operands_cluster_at_mean() {
        let mut src = NormalOperands::new(8, 2);
        let n = 4000;
        let sum: f64 = (0..n).map(|_| src.next_pair().0 as f64).sum();
        let mean = sum / n as f64;
        assert!((mean - 128.0).abs() < 6.0, "sample mean {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = NormalOperands::new(16, 9).vectors(5).collect();
        let b: Vec<_> = NormalOperands::new(16, 9).vectors(5).collect();
        let c: Vec<_> = NormalOperands::new(16, 10).vectors(5).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn vector_stream_shapes() {
        let vectors: Vec<_> = UniformOperands::new(8, 3).vectors(7).collect();
        assert_eq!(vectors.len(), 7);
        assert!(vectors.iter().all(|v| v.len() == 16));
        let with_acc: Vec<_> = UniformOperands::new(8, 3).vectors_with_zeros(2, 16).collect();
        assert!(with_acc.iter().all(|v| v.len() == 32));
        assert!(with_acc.iter().all(|v| v[16..].iter().all(|&b| !b)));
    }

    #[test]
    fn signed_normal_centres_on_zero() {
        let mut src = SignedNormalOperands::new(16, 500.0, 3);
        let n = 2000;
        let mut sum = 0i64;
        let mut signs = 0usize;
        for _ in 0..n {
            let (a, _) = src.next_pair();
            let v = ((a as u16) as i16) as i64;
            sum += v;
            if v < 0 {
                signs += 1;
            }
        }
        let mean = sum as f64 / n as f64;
        assert!(mean.abs() < 50.0, "sample mean {mean}");
        let frac = signs as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.06, "negative fraction {frac}");
    }

    #[test]
    fn uniform_covers_range() {
        let mut src = UniformOperands::new(4, 5);
        let mut seen = [false; 16];
        for _ in 0..500 {
            let (a, b) = src.next_pair();
            seen[a as usize] = true;
            seen[b as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 4-bit values should appear");
    }
}
