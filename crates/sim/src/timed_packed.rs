//! Lane-parallel (packed) event-driven timed simulation.
//!
//! [`PackedTimedSimulator`] simulates up to [`LANES`] = 64 independent
//! stimulus vectors per `u64` word through *timed* gate-level evaluation:
//! the same per-net transport delays, clock-edge sampling, settle times and
//! glitch counts as the scalar [`TimedSimulator`](crate::TimedSimulator),
//! but with every gate evaluation ([`CellFunction::eval_words`]) and every
//! net transition shared across all lanes.
//!
//! Two properties make the engine exact rather than approximate:
//!
//! * **Integer tick grid.** All event times are femtosecond ticks
//!   ([`crate::TICKS_PER_PS`]), shared with the scalar engine, so
//!   "simultaneous" is decidable and both engines batch the same instants.
//! * **Event groups.** The calendar maps ticks to `Vec<EventGroup>` (a
//!   flat hash map plus a min-heap of distinct ticks): one group carries a
//!   net's new lane word plus the mask of lanes that actually change.
//!   Lanes whose delays drive a transition to the same (net, tick) share
//!   one group, one calendar operation, and one gate re-evaluation — on
//!   balanced adders most lanes do, which is where the speedup over 64
//!   scalar event queues comes from.
//!
//! Per lane, the sequence of transitions on every net is identical to what
//! a scalar simulator stepping that lane's stimulus stream would apply
//! (single driver per net, suppression against the last scheduled value,
//! sampling before any event at `t >= t_clock`), so per-lane outcomes are
//! bit-identical — `tests/sim_equivalence.rs` pins this differentially.

use crate::packed::{lane_mask, PackedEvaluator, LANES};
use crate::timed::{ps_to_ticks, quantize_delays, ticks_to_ps};
use crate::StepOutcome;
use aix_cells::{CellFunction, MAX_INPUTS, MAX_OUTPUTS};
use aix_netlist::{Netlist, NetlistError};
use aix_sta::NetDelays;
use std::cmp::Reverse;
use std::collections::{hash_map, BinaryHeap, HashMap};
use std::hash::{BuildHasher, Hasher};

/// Multiplicative mixing hasher for tick keys: ticks are already
/// well-spread integers, so one multiply-rotate replaces SipHash on the
/// calendar's hottest path (one lookup per scheduled event group).
#[derive(Default)]
struct TickHasher(u64);

impl Hasher for TickHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("tick keys hash through write_u64");
    }

    fn write_u64(&mut self, value: u64) {
        self.0 = value.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_right(29);
    }
}

#[derive(Default, Clone)]
struct TickHasherBuilder;

impl BuildHasher for TickHasherBuilder {
    type Hasher = TickHasher;

    fn build_hasher(&self) -> TickHasher {
        TickHasher::default()
    }
}

/// One batch of lane transitions on a single net at a single tick.
#[derive(Debug, Clone, Copy)]
struct EventGroup {
    net: u32,
    /// New lane word of the net (only bits under `mask` are meaningful).
    values: u64,
    /// Lanes this group transitions, as scheduled. Application re-masks
    /// against the current word, mirroring the scalar engine's "skip if
    /// already at that value" rule per lane.
    mask: u64,
}

/// How the lanes of a [`PackedTimedSimulator`] are being fed. The two
/// modes imply different lane-state chaining and must not be mixed on one
/// simulator instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// One logical stimulus stream chunked 64 vectors at a time
    /// ([`PackedTimedSimulator::step_stream_batch`]): lane *l* starts from
    /// the settled state of vector *l − 1*.
    StreamBatch,
    /// 64 persistent independent streams
    /// ([`PackedTimedSimulator::step_streams`]): lane *l* carries its own
    /// settled state across calls.
    Streams,
}

/// Per-lane results of one packed timed step: the lane-parallel twin of
/// [`StepOutcome`]. Use [`outcome_for_lane`](Self::outcome_for_lane) for an
/// exact scalar-shaped view of one lane.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedStepOutcome {
    lanes: usize,
    /// Output lane words captured at the sampling instant, port order.
    sampled_words: Vec<u64>,
    /// Output lane words after all events settled, port order.
    settled_words: Vec<u64>,
    /// Mask of lanes whose sampled word differs from their settled word.
    error_lanes: u64,
    /// Per-lane settle instant in ticks (0 when the lane saw no event).
    settle_ticks: Vec<u64>,
    /// Per-lane transition counts, glitches included.
    transitions: Vec<u64>,
}

impl PackedStepOutcome {
    /// Number of active lanes in this step.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Output lane words at the sampling instant, in port order. A
    /// transition arriving exactly at the clock edge is *not* latched —
    /// the same edge-exclusive semantics as the scalar engine.
    pub fn sampled_words(&self) -> &[u64] {
        &self.sampled_words
    }

    /// Output lane words after the circuit settled, in port order.
    pub fn settled_words(&self) -> &[u64] {
        &self.settled_words
    }

    /// Mask of lanes that latched at least one wrong output bit.
    pub fn error_lanes(&self) -> u64 {
        self.error_lanes
    }

    /// Whether lane `lane` suffered a timing error this step.
    pub fn timing_error(&self, lane: usize) -> bool {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        (self.error_lanes >> lane) & 1 == 1
    }

    /// Settle time of lane `lane` in picoseconds.
    pub fn settle_ps(&self, lane: usize) -> f64 {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        ticks_to_ps(self.settle_ticks[lane])
    }

    /// Net transitions applied in lane `lane`, glitches included.
    pub fn transitions(&self, lane: usize) -> u64 {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        self.transitions[lane]
    }

    /// The scalar [`StepOutcome`] lane `lane` would have produced —
    /// bit-identical to stepping a [`crate::TimedSimulator`] through the
    /// same stimulus stream.
    pub fn outcome_for_lane(&self, lane: usize) -> StepOutcome {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        let pick = |words: &[u64]| -> Vec<bool> {
            words.iter().map(|&w| (w >> lane) & 1 == 1).collect()
        };
        StepOutcome {
            sampled: pick(&self.sampled_words),
            settled: pick(&self.settled_words),
            timing_error: self.timing_error(lane),
            settle_ps: ticks_to_ps(self.settle_ticks[lane]),
            transitions: self.transitions[lane],
        }
    }
}

/// Lane-parallel event-driven simulator with per-net transport delays on
/// the femtosecond tick grid.
///
/// Feed it either one logical stream in 64-vector chunks
/// ([`step_stream_batch`](Self::step_stream_batch) — what
/// [`measure_errors`](crate::measure_errors) and timed activity extraction
/// use) or 64 persistent independent streams
/// ([`step_streams`](Self::step_streams) — what the DCT pipeline's block
/// batching uses). The first call picks the mode; mixing modes on one
/// instance panics.
#[derive(Debug)]
pub struct PackedTimedSimulator<'nl> {
    netlist: &'nl Netlist,
    /// Per-gate function, flattened for cache-friendly dispatch.
    functions: Vec<CellFunction>,
    /// Per-gate topological level, flattened from the [`Schedule`].
    gate_level: Vec<u32>,
    /// Flattened gate connectivity: gate *g* reads the nets
    /// `gate_inputs[input_offsets[g]..input_offsets[g + 1]]` and drives
    /// `gate_outputs[output_offsets[g]..output_offsets[g + 1]]`.
    gate_inputs: Vec<u32>,
    input_offsets: Vec<u32>,
    gate_outputs: Vec<u32>,
    output_offsets: Vec<u32>,
    /// Per-net transport delay in ticks.
    delays_ticks: Vec<u64>,
    /// Per-net fanout gate ids.
    fanout: Vec<Vec<u32>>,
    /// Current lane word of every net.
    values: Vec<u64>,
    /// Most recently scheduled lane word per net, for per-lane event
    /// suppression.
    scheduled: Vec<u64>,
    /// Event calendar: tick → groups scheduled for that instant. A flat
    /// hash map (O(1) scheduling) paired with `tick_heap` for ordered
    /// draining — measurably faster than a `BTreeMap` calendar, whose
    /// node traffic dominated the profile.
    queue: HashMap<u64, Vec<EventGroup>, TickHasherBuilder>,
    /// Min-heap of the distinct ticks present in `queue` (each exactly
    /// once: pushed only when its map entry is created).
    tick_heap: BinaryHeap<Reverse<u64>>,
    /// Recycled per-tick group buffers: the calendar would otherwise
    /// allocate and free one `Vec` per distinct event instant.
    free_groups: Vec<Vec<EventGroup>>,
    /// Functional reference for stream initialization.
    golden: PackedEvaluator<'nl>,
    /// Scratch: settled lane words of the latest golden evaluation.
    settled_net: Vec<u64>,
    /// Last-lane settled bit per net from the previous batch (stream-batch
    /// mode): lane 0 of the next batch starts from this state.
    prev_bits: Vec<u64>,
    mode: Option<Mode>,
    /// Lane count pinned by the first `step_streams` call.
    stream_lanes: usize,
    started: bool,
    /// Dirty gates of the current tick, bucketed by topological level:
    /// draining the buckets in order yields levelized evaluation without
    /// a per-tick sort (which dominated the profile on small components).
    level_buckets: Vec<Vec<u32>>,
    dirty_stamp: Vec<u64>,
    dirty_epoch: u64,
    /// Cumulative per-net transition counts across all lanes.
    transition_counts: Vec<u64>,
    /// Per-lane scratch for the current step.
    settle_ticks: [u64; LANES],
    step_transitions: [u64; LANES],
    /// Event groups applied since construction (observability).
    groups_applied: u64,
}

impl<'nl> PackedTimedSimulator<'nl> {
    /// Prepares a packed timed simulator; delays are validated and
    /// quantized exactly like [`crate::TimedSimulator::new`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists and
    /// [`NetlistError::InvalidDelay`] for NaN/negative/non-finite delays.
    pub fn new(netlist: &'nl Netlist, delays: &NetDelays) -> Result<Self, NetlistError> {
        let delays_ticks = quantize_delays(delays)?;
        let golden = PackedEvaluator::new(netlist)?;
        let schedule = netlist.schedule()?;
        let functions: Vec<CellFunction> = netlist
            .gates()
            .map(|(_, g)| netlist.library().cell(g.cell).function)
            .collect();
        let mut gate_level = Vec::with_capacity(netlist.gate_count());
        let mut gate_inputs = Vec::new();
        let mut input_offsets = Vec::with_capacity(netlist.gate_count() + 1);
        let mut gate_outputs = Vec::new();
        let mut output_offsets = Vec::with_capacity(netlist.gate_count() + 1);
        input_offsets.push(0);
        output_offsets.push(0);
        for (id, g) in netlist.gates() {
            gate_level.push(schedule.level(id));
            gate_inputs.extend(g.inputs.iter().map(|n| n.raw()));
            input_offsets.push(gate_inputs.len() as u32);
            gate_outputs.extend(g.outputs.iter().map(|n| n.raw()));
            output_offsets.push(gate_outputs.len() as u32);
        }
        let fanout = netlist
            .fanout()
            .into_iter()
            .map(|sinks| sinks.into_iter().map(|(g, _)| g.raw()).collect())
            .collect();
        Ok(Self {
            netlist,
            functions,
            gate_level,
            gate_inputs,
            input_offsets,
            gate_outputs,
            output_offsets,
            delays_ticks,
            fanout,
            values: vec![0; netlist.net_count()],
            scheduled: vec![0; netlist.net_count()],
            queue: HashMap::default(),
            tick_heap: BinaryHeap::new(),
            free_groups: Vec::new(),
            golden,
            settled_net: vec![0; netlist.net_count()],
            prev_bits: vec![0; netlist.net_count()],
            mode: None,
            stream_lanes: 0,
            started: false,
            level_buckets: vec![Vec::new(); schedule.level_count() as usize],
            dirty_stamp: vec![0; netlist.gate_count()],
            dirty_epoch: 0,
            transition_counts: vec![0; netlist.net_count()],
            settle_ticks: [0; LANES],
            step_transitions: [0; LANES],
            groups_applied: 0,
        })
    }

    /// Number of primary inputs expected per stimulus vector.
    pub fn input_count(&self) -> usize {
        self.netlist.inputs().len()
    }

    /// Cumulative per-net transition counts summed over all lanes —
    /// indexed by net id, glitches included, the packed twin of
    /// [`crate::TimedSimulator::transition_counts`].
    pub fn transition_counts(&self) -> &[u64] {
        &self.transition_counts
    }

    /// Current lane word of every net (settled after a completed step).
    pub fn net_words(&self) -> &[u64] {
        &self.values
    }

    /// Simulates the next chunk of one logical stimulus stream: vector *l*
    /// of `batch` lands in lane *l*, and lane *l* starts from the settled
    /// state of the stream's previous vector (lane *l − 1*, or the last
    /// lane of the previous batch). Per lane this is bit-identical to
    /// stepping a scalar [`crate::TimedSimulator`] through the same stream
    /// — including the scalar engine's untimed first step.
    ///
    /// # Errors
    ///
    /// Propagates width mismatches.
    ///
    /// # Panics
    ///
    /// Panics on an empty or oversized batch, or if this simulator already
    /// ran in [`step_streams`](Self::step_streams) mode.
    pub fn step_stream_batch(
        &mut self,
        batch: &[Vec<bool>],
        clock_ps: f64,
    ) -> Result<PackedStepOutcome, NetlistError> {
        assert_ne!(
            self.mode,
            Some(Mode::Streams),
            "one PackedTimedSimulator cannot mix stream-batch and streams modes"
        );
        self.mode = Some(Mode::StreamBatch);
        let lanes = batch.len();
        assert!(
            (1..=LANES).contains(&lanes),
            "batch of {lanes} vectors (expected 1..={LANES})"
        );
        let mask = lane_mask(lanes);
        // One functional walk gives the settled state of every lane; the
        // per-lane *previous* state is the settled state one lane earlier.
        self.golden.eval_batch(batch)?;
        self.settled_net.copy_from_slice(self.golden.net_words());
        if !self.started {
            // Lane 0 of the very first batch starts from its own settled
            // state: zero input transitions, reproducing the scalar
            // engine's untimed first step.
            for (prev, &w) in self.prev_bits.iter_mut().zip(&self.settled_net) {
                *prev = w & 1;
            }
            self.started = true;
        }
        for i in 0..self.values.len() {
            let shifted = (self.settled_net[i] << 1) | self.prev_bits[i];
            self.values[i] = shifted;
            self.scheduled[i] = shifted;
        }
        // Input transitions at t = 0 (per-lane suppressed against the
        // shifted previous state).
        for &net in self.netlist.inputs() {
            let target = self.settled_net[net.index()];
            self.schedule_event(net.raw(), target, mask, 0);
        }
        let outcome = self.run(ps_to_ticks(clock_ps), mask, lanes);
        // Chain the stream: the next batch's lane 0 follows this batch's
        // last lane.
        for (prev, &w) in self.prev_bits.iter_mut().zip(&self.settled_net) {
            *prev = (w >> (lanes - 1)) & 1;
        }
        Ok(outcome)
    }

    /// Simulates one clock cycle of up to 64 *independent* streams: lane
    /// *l* keeps its own settled state across calls, so each lane is
    /// bit-identical to a dedicated scalar simulator stepping that lane's
    /// own stimulus sequence. The first call fixes the lane count and, like
    /// the scalar engine, settles functionally without timing.
    ///
    /// # Errors
    ///
    /// Propagates width mismatches.
    ///
    /// # Panics
    ///
    /// Panics on an empty or oversized batch, a lane count differing from
    /// the first call's, or if this simulator already ran in
    /// [`step_stream_batch`](Self::step_stream_batch) mode.
    pub fn step_streams(
        &mut self,
        batch: &[Vec<bool>],
        clock_ps: f64,
    ) -> Result<PackedStepOutcome, NetlistError> {
        assert_ne!(
            self.mode,
            Some(Mode::StreamBatch),
            "one PackedTimedSimulator cannot mix stream-batch and streams modes"
        );
        self.mode = Some(Mode::Streams);
        let lanes = batch.len();
        assert!(
            (1..=LANES).contains(&lanes),
            "batch of {lanes} vectors (expected 1..={LANES})"
        );
        let mask = lane_mask(lanes);
        if !self.started {
            self.stream_lanes = lanes;
            self.golden.eval_batch(batch)?;
            self.values.copy_from_slice(self.golden.net_words());
            self.scheduled.copy_from_slice(&self.values);
            self.started = true;
            let settled = self.snapshot_output_words();
            return Ok(PackedStepOutcome {
                lanes,
                sampled_words: settled.clone(),
                settled_words: settled,
                error_lanes: 0,
                settle_ticks: vec![0; lanes],
                transitions: vec![0; lanes],
            });
        }
        assert_eq!(
            lanes, self.stream_lanes,
            "streams mode pins the lane count at the first call"
        );
        let expected = self.input_count();
        for vector in batch {
            if vector.len() != expected {
                return Err(NetlistError::InputWidthMismatch {
                    expected,
                    provided: vector.len(),
                });
            }
        }
        for (pos, &net) in self.netlist.inputs().iter().enumerate() {
            let mut word = 0u64;
            for (lane, vector) in batch.iter().enumerate() {
                word |= u64::from(vector[pos]) << lane;
            }
            self.schedule_event(net.raw(), word, mask, 0);
        }
        Ok(self.run(ps_to_ticks(clock_ps), mask, lanes))
    }

    /// Resets to the uninitialized state (either mode may follow),
    /// clearing transition counters.
    pub fn reset(&mut self) {
        self.queue.clear();
        self.tick_heap.clear();
        self.mode = None;
        self.started = false;
        self.stream_lanes = 0;
        for count in &mut self.transition_counts {
            *count = 0;
        }
    }

    fn schedule_event(&mut self, net: u32, values: u64, mask: u64, time: u64) {
        let slot = &mut self.scheduled[net as usize];
        let changed = (*slot ^ values) & mask;
        if changed == 0 {
            return;
        }
        *slot = (*slot & !changed) | (values & changed);
        let group = EventGroup {
            net,
            values: *slot,
            mask: changed,
        };
        match self.queue.entry(time) {
            hash_map::Entry::Occupied(mut entry) => entry.get_mut().push(group),
            hash_map::Entry::Vacant(entry) => {
                let mut groups = self.free_groups.pop().unwrap_or_default();
                groups.push(group);
                entry.insert(groups);
                self.tick_heap.push(Reverse(time));
            }
        }
    }

    /// Re-evaluates `gate` for all lanes and schedules per-lane output
    /// changes one per-net delay later. Lanes whose inputs did not change
    /// recompute their already-scheduled value and are suppressed, so extra
    /// lane evaluations are no-ops — the key to scalar equivalence.
    fn evaluate_gate(&mut self, gate: u32, now: u64, active_mask: u64) {
        let g = gate as usize;
        let function = self.functions[g];
        let in_range = self.input_offsets[g] as usize..self.input_offsets[g + 1] as usize;
        let inputs = &self.gate_inputs[in_range];
        let mut in_buf = [0u64; MAX_INPUTS];
        for (slot, &net) in in_buf.iter_mut().zip(inputs) {
            *slot = self.values[net as usize];
        }
        let mut out_buf = [0u64; MAX_OUTPUTS];
        function.eval_words(&in_buf[..inputs.len()], &mut out_buf);
        let out_range = self.output_offsets[g] as usize..self.output_offsets[g + 1] as usize;
        for (pin, out_idx) in out_range.enumerate() {
            let out_net = self.gate_outputs[out_idx];
            let delay = self.delays_ticks[out_net as usize];
            self.schedule_event(out_net, out_buf[pin], active_mask, now.saturating_add(delay));
        }
    }

    /// Drains the event calendar, sampling outputs at `clock_ticks` with
    /// the same edge-exclusive rule as the scalar engine.
    fn run(&mut self, clock_ticks: u64, active_mask: u64, lanes: usize) -> PackedStepOutcome {
        self.settle_ticks[..lanes].fill(0);
        let mut sampled: Option<Vec<u64>> = None;
        // Per-lane transition totals as bit-sliced vertical counters:
        // plane *i* holds bit *i* of every lane's count, so accumulating
        // one group is a short ripple-carry over whole words instead of a
        // loop over its set lanes.
        let mut trans_planes = [0u64; 24];
        while let Some(Reverse(now)) = self.tick_heap.pop() {
            // Sample *before* applying this instant's batch: an arrival
            // exactly on the clock edge has zero setup margin.
            if sampled.is_none() && now >= clock_ticks {
                sampled = Some(self.snapshot_output_words());
            }
            let mut groups = self.queue.remove(&now).expect("popped tick has groups");
            self.dirty_epoch += 1;
            let epoch = self.dirty_epoch;
            let mut tick_changed = 0u64;
            for group in &groups {
                let net = group.net as usize;
                let changed = (self.values[net] ^ group.values) & group.mask;
                if changed == 0 {
                    continue;
                }
                self.values[net] = (self.values[net] & !changed) | (group.values & changed);
                self.transition_counts[net] += u64::from(changed.count_ones());
                self.groups_applied += 1;
                tick_changed |= changed;
                let mut carry = changed;
                for plane in &mut trans_planes {
                    if carry == 0 {
                        break;
                    }
                    let next = *plane & carry;
                    *plane ^= carry;
                    carry = next;
                }
                debug_assert_eq!(carry, 0, "per-lane transition count overflow");
                for &gate in &self.fanout[net] {
                    if self.dirty_stamp[gate as usize] != epoch {
                        self.dirty_stamp[gate as usize] = epoch;
                        self.level_buckets[self.gate_level[gate as usize] as usize].push(gate);
                    }
                }
            }
            // Ticks are processed in order, so `now` is each lane's
            // settle-time maximum.
            let mut bits = tick_changed;
            while bits != 0 {
                let lane = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.settle_ticks[lane] = now;
            }
            groups.clear();
            self.free_groups.push(groups);
            // Evaluate one instant's gates in levelized order: within a
            // tick the order cannot change results (evaluations only read
            // this tick's fully-applied `values` and schedule future
            // events), and draining per-level buckets gives that order
            // deterministically without a per-tick sort.
            let mut buckets = std::mem::take(&mut self.level_buckets);
            for bucket in &mut buckets {
                for &gate in bucket.iter() {
                    self.evaluate_gate(gate, now, active_mask);
                }
                bucket.clear();
            }
            self.level_buckets = buckets;
        }
        for (lane, count) in self.step_transitions[..lanes].iter_mut().enumerate() {
            let mut total = 0u64;
            for (i, &plane) in trans_planes.iter().enumerate() {
                total |= ((plane >> lane) & 1) << i;
            }
            *count = total;
        }
        let settled = self.snapshot_output_words();
        let sampled = sampled.unwrap_or_else(|| settled.clone());
        let mut error_lanes = 0u64;
        for (&s, &g) in sampled.iter().zip(&settled) {
            error_lanes |= (s ^ g) & active_mask;
        }
        aix_obs::count!(
            aix_obs::names::sim::TIMED_EVENT_GROUPS,
            groups = self.groups_applied,
            lanes = lanes
        );
        PackedStepOutcome {
            lanes,
            sampled_words: sampled,
            settled_words: settled,
            error_lanes,
            settle_ticks: self.settle_ticks[..lanes].to_vec(),
            transitions: self.step_transitions[..lanes].to_vec(),
        }
    }

    fn snapshot_output_words(&self) -> Vec<u64> {
        self.netlist
            .outputs()
            .iter()
            .map(|(_, n)| self.values[n.index()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TimedSimulator, UniformOperands};
    use aix_arith::{build_adder, AdderKind, ComponentSpec};
    use aix_cells::Library;
    use aix_sta::{analyze, NetDelays};
    use crate::OperandSource;

    fn adder(kind: AdderKind, width: usize) -> Netlist {
        let lib = std::sync::Arc::new(Library::nangate45_like());
        build_adder(&lib, kind, ComponentSpec::full(width)).unwrap()
    }

    fn assert_stream_matches_scalar(
        nl: &Netlist,
        delays: &NetDelays,
        clock_ps: f64,
        vectors: Vec<Vec<bool>>,
    ) {
        let mut scalar = TimedSimulator::new(nl, delays).unwrap();
        let mut packed = PackedTimedSimulator::new(nl, delays).unwrap();
        let mut scalar_outcomes = Vec::new();
        for v in &vectors {
            scalar_outcomes.push(scalar.step(v, clock_ps).unwrap());
        }
        let mut lane = 0;
        for chunk in vectors.chunks(LANES) {
            let out = packed.step_stream_batch(chunk, clock_ps).unwrap();
            for l in 0..chunk.len() {
                assert_eq!(
                    out.outcome_for_lane(l),
                    scalar_outcomes[lane],
                    "vector {lane} diverged"
                );
                lane += 1;
            }
        }
        assert_eq!(
            packed.transition_counts(),
            scalar.transition_counts(),
            "per-net transition totals diverged"
        );
    }

    #[test]
    fn stream_batches_match_scalar_fresh() {
        let nl = adder(AdderKind::RippleCarry, 8);
        let delays = NetDelays::fresh(&nl);
        let clock = analyze(&nl, &delays).unwrap().max_delay_ps() * 0.4;
        let vectors: Vec<Vec<bool>> = UniformOperands::new(8, 11).vectors(200).collect();
        assert_stream_matches_scalar(&nl, &delays, clock, vectors);
    }

    #[test]
    fn stream_batches_match_scalar_aged() {
        use aix_aging::{AgingModel, AgingScenario, Lifetime};
        let nl = adder(AdderKind::KoggeStone, 16);
        let fresh = NetDelays::fresh(&nl);
        let clock = analyze(&nl, &fresh).unwrap().max_delay_ps();
        let aged = NetDelays::aged(
            &nl,
            &AgingModel::calibrated(),
            AgingScenario::worst_case(Lifetime::from_years(20.0)),
        );
        let vectors: Vec<Vec<bool>> = UniformOperands::new(16, 13).vectors(320).collect();
        assert_stream_matches_scalar(&nl, &aged, clock, vectors);
    }

    #[test]
    fn lane_tail_counts_match_scalar() {
        let nl = adder(AdderKind::CarrySelect, 8);
        let delays = NetDelays::fresh(&nl);
        let clock = analyze(&nl, &delays).unwrap().max_delay_ps() * 0.3;
        for count in [1usize, 63, 64, 65] {
            let vectors: Vec<Vec<bool>> =
                UniformOperands::new(8, count as u64).vectors(count).collect();
            assert_stream_matches_scalar(&nl, &delays, clock, vectors);
        }
    }

    #[test]
    fn streams_mode_matches_per_lane_scalars() {
        // Three independent streams, one scalar simulator each.
        let nl = adder(AdderKind::RippleCarry, 4);
        let delays = NetDelays::fresh(&nl);
        let clock = analyze(&nl, &delays).unwrap().max_delay_ps() * 0.5;
        let streams: Vec<Vec<Vec<bool>>> = (0..3u64)
            .map(|s| UniformOperands::new(4, 100 + s).vectors(40).collect())
            .collect();
        let mut scalars: Vec<TimedSimulator> = (0..3)
            .map(|_| TimedSimulator::new(&nl, &delays).unwrap())
            .collect();
        let mut packed = PackedTimedSimulator::new(&nl, &delays).unwrap();
        for step in 0..40 {
            let batch: Vec<Vec<bool>> = streams.iter().map(|s| s[step].clone()).collect();
            let out = packed.step_streams(&batch, clock).unwrap();
            for (lane, scalar) in scalars.iter_mut().enumerate() {
                let expect = scalar.step(&streams[lane][step], clock).unwrap();
                assert_eq!(out.outcome_for_lane(lane), expect, "step {step} lane {lane}");
            }
        }
    }

    #[test]
    fn mode_mixing_panics() {
        let nl = adder(AdderKind::RippleCarry, 4);
        let delays = NetDelays::fresh(&nl);
        let mut sim = PackedTimedSimulator::new(&nl, &delays).unwrap();
        let batch: Vec<Vec<bool>> = UniformOperands::new(4, 1).vectors(2).collect();
        sim.step_streams(&batch, 100.0).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = sim.step_stream_batch(&batch, 100.0);
        }));
        assert!(result.is_err(), "mixing modes must panic");
    }

    #[test]
    fn invalid_delays_rejected_like_scalar() {
        let nl = adder(AdderKind::RippleCarry, 4);
        let mut raw = NetDelays::fresh(&nl).as_slice().to_vec();
        raw[2] = f64::NAN;
        assert!(matches!(
            PackedTimedSimulator::new(&nl, &NetDelays::from_raw(raw)),
            Err(NetlistError::InvalidDelay { .. })
        ));
    }

    #[test]
    fn reset_allows_mode_switch() {
        let nl = adder(AdderKind::RippleCarry, 4);
        let delays = NetDelays::fresh(&nl);
        let mut sim = PackedTimedSimulator::new(&nl, &delays).unwrap();
        let batch: Vec<Vec<bool>> = UniformOperands::new(4, 2).vectors(3).collect();
        sim.step_streams(&batch, 100.0).unwrap();
        sim.reset();
        assert!(sim.transition_counts().iter().all(|&c| c == 0));
        sim.step_stream_batch(&batch, 100.0).unwrap();
    }
}
