//! Event-driven timed simulation with per-net transport delays.
//!
//! Time is discrete: every event lives on an integer **femtosecond tick
//! grid** ([`TICKS_PER_PS`] ticks per picosecond). Delay annotations and the
//! clock period are rounded to the nearest tick on entry, so two events that
//! are arithmetically simultaneous always compare equal — accumulated `f64`
//! sums reached via different gate paths can no longer fragment one instant
//! into several evaluation batches. The packed engine
//! ([`crate::PackedTimedSimulator`]) shares the same grid, which is what
//! makes lane-exact differential testing possible.

use aix_netlist::{Evaluator, NetDriver, NetId, Netlist, NetlistError};
use aix_sta::NetDelays;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Number of simulation ticks per picosecond: the tick quantum is one
/// femtosecond. Sub-femtosecond structure in a delay annotation is rounded
/// away when a simulator is constructed.
pub const TICKS_PER_PS: u64 = 1000;

/// Quantizes a picosecond instant to the integer tick grid (nearest tick).
///
/// The conversion is total: `NaN` and negative values map to tick 0 and
/// values beyond the grid saturate to `u64::MAX` (Rust float→int casts
/// saturate), so an "effectively infinite" clock like `f64::MAX / 4.0`
/// simply never samples. Delay *annotations* are still validated up front
/// by [`TimedSimulator::new`] — this leniency only applies to the clock.
pub fn ps_to_ticks(ps: f64) -> u64 {
    (ps * TICKS_PER_PS as f64).round() as u64
}

/// Converts a tick count back to picoseconds.
pub fn ticks_to_ps(ticks: u64) -> f64 {
    ticks as f64 / TICKS_PER_PS as f64
}

/// Validates a delay annotation and quantizes it to ticks, one entry per
/// net. Shared by the scalar and packed timed engines so both reject the
/// same inputs and agree on every event time.
///
/// # Errors
///
/// Returns [`NetlistError::InvalidDelay`] for NaN, negative, or non-finite
/// entries.
pub(crate) fn quantize_delays(delays: &NetDelays) -> Result<Vec<u64>, NetlistError> {
    let slice = delays.as_slice();
    let mut ticks = Vec::with_capacity(slice.len());
    for (index, &ps) in slice.iter().enumerate() {
        if !ps.is_finite() || ps < 0.0 {
            return Err(NetlistError::InvalidDelay {
                net: NetId::from_raw(u32::try_from(index).unwrap_or(u32::MAX)),
                delay: format!("{ps:?}"),
            });
        }
        ticks.push(ps_to_ticks(ps));
    }
    Ok(ticks)
}

/// One scheduled net transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    /// Instant in ticks (see [`TICKS_PER_PS`]).
    time: u64,
    seq: u64,
    net: u32,
    value: bool,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap; we want earliest-first. Break
        // ties by insertion order for determinism.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of simulating one clock cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome {
    /// Output values captured at the sampling instant (`t = t_clock`).
    /// These are what the downstream register latches — possibly wrong.
    ///
    /// A transition arriving *exactly* at the sampling instant is a setup
    /// violation: the snapshot is taken before any event at `t >= t_clock`
    /// is applied, so an edge landing on the clock edge is **not** latched.
    pub sampled: Vec<bool>,
    /// Output values after all events settled (the correct result).
    pub settled: Vec<bool>,
    /// Whether any output bit was latched before its final transition —
    /// i.e. whether an aging-induced timing error occurred this cycle.
    pub timing_error: bool,
    /// Time of the last net transition this cycle, in picoseconds — the
    /// *dynamic* (exercised) path delay, as opposed to the structural
    /// critical path STA reports. Always a whole number of ticks.
    pub settle_ps: f64,
    /// Net transitions applied this cycle, *including glitches* — the
    /// quantity a zero-delay functional simulation underestimates and the
    /// honest input to dynamic-power analysis.
    pub transitions: u64,
}

/// Event-driven gate-level simulator with per-**net** transport delays:
/// each driven net carries a single delay from its driving gate's inputs to
/// its own transition (the same annotation STA consumes), not a distinct
/// delay per input→output arc.
///
/// The simulator keeps the settled state between [`step`](Self::step)
/// calls: each step models one clock cycle in which the primary inputs
/// switch at `t = 0` and the outputs are latched at `t = t_clock`, exactly
/// like gate-level simulation of a pipeline stage under an aged `.sdf`
/// annotation. All event times live on the femtosecond tick grid
/// ([`TICKS_PER_PS`]).
#[derive(Debug)]
pub struct TimedSimulator<'nl> {
    netlist: &'nl Netlist,
    /// Per-net transport delay in ticks, validated and quantized once.
    delays_ticks: Vec<u64>,
    fanout: Vec<Vec<(u32, u8)>>,
    values: Vec<bool>,
    /// Most recently scheduled (future) value per net, to suppress
    /// redundant events.
    scheduled: Vec<bool>,
    queue: BinaryHeap<Event>,
    seq: u64,
    oracle: Evaluator<'nl>,
    initialized: bool,
    /// Scratch: gates touched by the events of the current timestamp.
    dirty_gates: Vec<u32>,
    /// Scratch: de-duplication stamps for `dirty_gates`.
    dirty_stamp: Vec<u64>,
    dirty_epoch: u64,
    /// Cumulative per-net transition counts (glitches included) since
    /// construction or the last [`reset`](Self::reset).
    transition_counts: Vec<u64>,
}

impl<'nl> TimedSimulator<'nl> {
    /// Prepares a simulator for `netlist` with the given per-net delays
    /// (fresh or aged — the same annotation STA consumes). Delays are
    /// quantized to the femtosecond tick grid.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists and
    /// [`NetlistError::InvalidDelay`] if any delay entry is NaN, negative,
    /// or non-finite.
    pub fn new(netlist: &'nl Netlist, delays: &NetDelays) -> Result<Self, NetlistError> {
        let delays_ticks = quantize_delays(delays)?;
        let oracle = Evaluator::new(netlist)?;
        let mut values = vec![false; netlist.net_count()];
        for (id, net) in netlist.nets() {
            if let NetDriver::Constant(v) = net.driver {
                values[id.index()] = v;
            }
        }
        Ok(Self {
            netlist,
            delays_ticks,
            fanout: netlist
                .fanout()
                .into_iter()
                .map(|sinks| sinks.into_iter().map(|(g, p)| (g.raw(), p)).collect())
                .collect(),
            scheduled: values.clone(),
            values,
            queue: BinaryHeap::new(),
            seq: 0,
            oracle,
            initialized: false,
            dirty_gates: Vec::new(),
            dirty_stamp: vec![0; netlist.gate_count()],
            dirty_epoch: 0,
            transition_counts: vec![0; netlist.net_count()],
        })
    }

    /// Number of primary inputs expected by [`step`](Self::step).
    pub fn input_count(&self) -> usize {
        self.netlist.inputs().len()
    }

    fn schedule(&mut self, net: u32, value: bool, time: u64) {
        if self.scheduled[net as usize] == value {
            return;
        }
        self.scheduled[net as usize] = value;
        self.seq += 1;
        self.queue.push(Event {
            time,
            seq: self.seq,
            net,
            value,
        });
    }

    /// Re-evaluates `gate` from current net values and schedules any output
    /// changes one per-net delay later.
    fn evaluate_gate(&mut self, gate: u32, now: u64) {
        let g = self.netlist.gate(aix_netlist::GateId::from_raw(gate));
        let function = self.netlist.library().cell(g.cell).function;
        let mut in_buf = [false; aix_cells::MAX_INPUTS];
        for (slot, net) in in_buf.iter_mut().zip(&g.inputs) {
            *slot = self.values[net.index()];
        }
        let mut out_buf = [false; aix_cells::MAX_OUTPUTS];
        function.eval(&in_buf[..g.inputs.len()], &mut out_buf);
        for (pin, &out_net) in g.outputs.iter().enumerate() {
            let new = out_buf[pin];
            let delay = self.delays_ticks[out_net.index()];
            self.schedule(out_net.raw(), new, now.saturating_add(delay));
        }
    }

    /// Simulates one clock cycle: applies `inputs` at `t = 0`, samples the
    /// outputs at `t = clock_ps` (rounded to the nearest tick), then lets
    /// the circuit settle completely.
    ///
    /// The first call initializes every internal net from a functional
    /// evaluation (as if the previous cycle had infinite settling time).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if `inputs` has the
    /// wrong width.
    pub fn step(&mut self, inputs: &[bool], clock_ps: f64) -> Result<StepOutcome, NetlistError> {
        if inputs.len() != self.input_count() {
            return Err(NetlistError::InputWidthMismatch {
                expected: self.input_count(),
                provided: inputs.len(),
            });
        }
        if !self.initialized {
            // Settle the circuit on the first vector without timing.
            self.oracle.eval(inputs)?;
            self.values.copy_from_slice(self.oracle.net_values());
            self.scheduled.copy_from_slice(&self.values);
            self.initialized = true;
            let settled: Vec<bool> = self
                .netlist
                .outputs()
                .iter()
                .map(|(_, n)| self.values[n.index()])
                .collect();
            return Ok(StepOutcome {
                sampled: settled.clone(),
                settled,
                timing_error: false,
                settle_ps: 0.0,
                transitions: 0,
            });
        }
        let clock_ticks = ps_to_ticks(clock_ps);
        // Apply input transitions at t = 0.
        for (&net, &value) in self.netlist.inputs().iter().zip(inputs) {
            self.schedule(net.raw(), value, 0);
        }
        let mut sampled: Option<Vec<bool>> = None;
        let mut settle_ticks = 0u64;
        let mut transitions = 0u64;
        // Process events in timestamp batches: apply every transition of
        // the current instant first, then evaluate each affected gate once.
        while let Some(first) = self.queue.peek() {
            let now = first.time;
            // Sample *before* applying this batch: an arrival exactly at
            // the clock edge has zero setup margin and must not be latched.
            if sampled.is_none() && now >= clock_ticks {
                sampled = Some(self.snapshot_outputs());
            }
            self.dirty_epoch += 1;
            let epoch = self.dirty_epoch;
            self.dirty_gates.clear();
            while let Some(event) = self.queue.peek() {
                if event.time != now {
                    break;
                }
                let event = self.queue.pop().expect("peeked");
                if self.values[event.net as usize] == event.value {
                    continue;
                }
                settle_ticks = settle_ticks.max(now);
                transitions += 1;
                self.transition_counts[event.net as usize] += 1;
                self.values[event.net as usize] = event.value;
                for &(gate, _pin) in &self.fanout[event.net as usize] {
                    if self.dirty_stamp[gate as usize] != epoch {
                        self.dirty_stamp[gate as usize] = epoch;
                        self.dirty_gates.push(gate);
                    }
                }
            }
            let dirty = std::mem::take(&mut self.dirty_gates);
            for &gate in &dirty {
                self.evaluate_gate(gate, now);
            }
            self.dirty_gates = dirty;
        }
        let settled = self.snapshot_outputs();
        let sampled = sampled.unwrap_or_else(|| settled.clone());
        let timing_error = sampled != settled;
        Ok(StepOutcome {
            sampled,
            settled,
            timing_error,
            settle_ps: ticks_to_ps(settle_ticks),
            transitions,
        })
    }

    /// Cumulative per-net transition counts (glitches included) since
    /// construction or the last [`reset`](Self::reset), indexed by net id.
    pub fn transition_counts(&self) -> &[u64] {
        &self.transition_counts
    }

    fn snapshot_outputs(&self) -> Vec<bool> {
        self.netlist
            .outputs()
            .iter()
            .map(|(_, n)| self.values[n.index()])
            .collect()
    }

    /// Resets the simulator to its uninitialized state, clearing the
    /// transition counters.
    pub fn reset(&mut self) {
        self.queue.clear();
        self.initialized = false;
        for count in &mut self.transition_counts {
            *count = 0;
        }
        for v in &mut self.values {
            *v = false;
        }
        for (id, net) in self.netlist.nets() {
            if let NetDriver::Constant(v) = net.driver {
                self.values[id.index()] = v;
            }
        }
        self.scheduled.copy_from_slice(&self.values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aix_aging::{AgingModel, AgingScenario, Lifetime};
    use aix_arith::{build_adder, AdderKind, ComponentSpec};
    use aix_cells::{CellFunction, DriveStrength, Library};
    use aix_netlist::{bus_from_u64, bus_to_u64};
    use aix_sta::{analyze, NetDelays};
    use std::sync::Arc;

    fn adder(kind: AdderKind, width: usize) -> Netlist {
        let lib = Arc::new(Library::nangate45_like());
        build_adder(&lib, kind, ComponentSpec::full(width)).unwrap()
    }

    fn operands(width: usize, a: u64, b: u64) -> Vec<bool> {
        let mut v = bus_from_u64(a, width);
        v.extend(bus_from_u64(b, width));
        v
    }

    #[test]
    fn generous_clock_never_errs() {
        let nl = adder(AdderKind::RippleCarry, 8);
        let delays = NetDelays::fresh(&nl);
        let mut sim = TimedSimulator::new(&nl, &delays).unwrap();
        for (a, b) in [(0, 0), (255, 1), (100, 155), (37, 201), (255, 255)] {
            let out = sim.step(&operands(8, a, b), 1e9).unwrap();
            assert!(!out.timing_error);
            assert_eq!(bus_to_u64(&out.settled), a + b);
            assert_eq!(out.sampled, out.settled);
        }
    }

    #[test]
    fn settled_matches_functional_oracle_over_random_vectors() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let nl = adder(AdderKind::CarrySelect, 16);
        let delays = NetDelays::fresh(&nl);
        let mut sim = TimedSimulator::new(&nl, &delays).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let a = u64::from(rng.gen::<u16>());
            let b = u64::from(rng.gen::<u16>());
            let out = sim.step(&operands(16, a, b), 5.0).unwrap();
            assert_eq!(bus_to_u64(&out.settled), a + b, "{a}+{b}");
        }
    }

    #[test]
    fn tight_clock_truncates_carry_propagation() {
        // Clock shorter than the carry chain: switching from 0+0 to
        // 255+1 cannot settle; a timing error must be detected.
        let nl = adder(AdderKind::RippleCarry, 8);
        let delays = NetDelays::fresh(&nl);
        let report = analyze(&nl, &delays).unwrap();
        let mut sim = TimedSimulator::new(&nl, &delays).unwrap();
        sim.step(&operands(8, 0, 0), 1e9).unwrap();
        let out = sim
            .step(&operands(8, 255, 1), report.max_delay_ps() * 0.2)
            .unwrap();
        assert_eq!(bus_to_u64(&out.settled), 256);
        assert!(out.timing_error, "sampled {:?}", out.sampled);
        assert_ne!(bus_to_u64(&out.sampled), 256);
    }

    #[test]
    fn clock_at_critical_path_is_always_safe_when_fresh() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let nl = adder(AdderKind::CarrySelect, 12);
        let delays = NetDelays::fresh(&nl);
        let clock = analyze(&nl, &delays).unwrap().max_delay_ps();
        let mut sim = TimedSimulator::new(&nl, &delays).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let a = u64::from(rng.gen::<u16>() & 0xFFF);
            let b = u64::from(rng.gen::<u16>() & 0xFFF);
            // A 1 ps margin over the STA critical path absorbs both the
            // edge-exclusive sampling semantics and per-arc tick rounding
            // (at most 0.5 fs per gate along any path).
            let out = sim.step(&operands(12, a, b), clock + 1.0).unwrap();
            assert!(!out.timing_error, "{a}+{b} erred at the fresh clock");
            assert_eq!(bus_to_u64(&out.sampled), a + b);
        }
    }

    #[test]
    fn transition_on_the_clock_edge_is_a_setup_violation() {
        // Learn the exact settle instant of the full-carry flip, then clock
        // the same transition at precisely that instant: the arrival lands
        // on the sampling edge and must count as a violation. One tick
        // later is safe.
        let nl = adder(AdderKind::RippleCarry, 8);
        let delays = NetDelays::fresh(&nl);
        let mut sim = TimedSimulator::new(&nl, &delays).unwrap();
        sim.step(&operands(8, 0, 0), 1e9).unwrap();
        let relaxed = sim.step(&operands(8, 255, 1), 1e9).unwrap();
        assert!(!relaxed.timing_error);
        let settle = relaxed.settle_ps;
        assert!(settle > 0.0);

        sim.reset();
        sim.step(&operands(8, 0, 0), 1e9).unwrap();
        let edge = sim.step(&operands(8, 255, 1), settle).unwrap();
        assert!(
            edge.timing_error,
            "a carry arriving exactly on the clock edge has zero setup margin"
        );
        assert_ne!(bus_to_u64(&edge.sampled), 256);

        sim.reset();
        sim.step(&operands(8, 0, 0), 1e9).unwrap();
        let one_tick_later = sim
            .step(&operands(8, 255, 1), settle + 1.0 / TICKS_PER_PS as f64)
            .unwrap();
        assert!(!one_tick_later.timing_error, "one tick of margin suffices");
    }

    #[test]
    fn invalid_delays_are_rejected_up_front() {
        let nl = adder(AdderKind::RippleCarry, 4);
        let good = NetDelays::fresh(&nl);
        let last = good.as_slice().len() - 1;
        for bad in [f64::NAN, -1.0, f64::INFINITY, f64::NEG_INFINITY] {
            let mut raw = good.as_slice().to_vec();
            raw[last] = bad;
            match TimedSimulator::new(&nl, &NetDelays::from_raw(raw)) {
                Err(NetlistError::InvalidDelay { net, .. }) => {
                    assert_eq!(net.index(), last, "error names the offending net");
                }
                other => panic!("delay {bad} must be rejected, got {other:?}"),
            }
        }
        // Zero and positive delays stay valid.
        let mut raw = good.as_slice().to_vec();
        raw[0] = 0.0;
        assert!(TimedSimulator::new(&nl, &NetDelays::from_raw(raw)).is_ok());
    }

    #[test]
    fn reconvergent_equal_delays_share_one_batch() {
        // Two inverter pairs from the same input, with per-net delays
        // 0.1+0.2 and 0.15+0.15 ps, reconverge on an XOR. On the tick grid
        // both paths arrive at exactly 300 fs, so the XOR sees both inputs
        // flip in one batch and never glitches. (Under f64 event times
        // 0.1+0.2 != 0.15+0.15, the instant fragments and the XOR pulses.)
        let lib = Arc::new(Library::nangate45_like());
        let inv = lib.find(CellFunction::Inv, DriveStrength::X1).unwrap();
        let xor = lib.find(CellFunction::Xor2, DriveStrength::X1).unwrap();
        let mut nl = Netlist::new("reconv", lib.clone());
        let a = nl.add_input("a");
        let n1 = nl.add_gate(inv, &[a]).unwrap()[0];
        let x1 = nl.add_gate(inv, &[n1]).unwrap()[0];
        let n2 = nl.add_gate(inv, &[a]).unwrap()[0];
        let x2 = nl.add_gate(inv, &[n2]).unwrap()[0];
        let y = nl.add_gate(xor, &[x1, x2]).unwrap()[0];
        nl.mark_output("y", y);

        let mut raw = vec![0.0; nl.net_count()];
        raw[n1.index()] = 0.1;
        raw[x1.index()] = 0.2;
        raw[n2.index()] = 0.15;
        raw[x2.index()] = 0.15;
        raw[y.index()] = 0.1;
        let delays = NetDelays::from_raw(raw);
        let mut sim = TimedSimulator::new(&nl, &delays).unwrap();
        sim.step(&[false], 1e9).unwrap();
        let out = sim.step(&[true], 1e9).unwrap();
        assert_eq!(out.settled, vec![false]);
        assert_eq!(
            sim.transition_counts()[y.index()],
            0,
            "equal-instant reconvergence must not glitch the XOR"
        );
    }

    #[test]
    fn tick_quantization_is_total_and_saturating() {
        assert_eq!(ps_to_ticks(0.0), 0);
        assert_eq!(ps_to_ticks(1.0), TICKS_PER_PS);
        assert_eq!(ps_to_ticks(0.0004), 0);
        assert_eq!(ps_to_ticks(0.0006), 1);
        assert_eq!(ps_to_ticks(f64::NAN), 0);
        assert_eq!(ps_to_ticks(-5.0), 0);
        assert_eq!(ps_to_ticks(f64::INFINITY), u64::MAX);
        assert_eq!(ps_to_ticks(f64::MAX / 4.0), u64::MAX);
        assert_eq!(ticks_to_ps(1500), 1.5);
        assert_eq!(ps_to_ticks(ticks_to_ps(987_654_321)), 987_654_321);
    }

    #[test]
    fn aged_gates_at_fresh_clock_produce_errors() {
        // A balanced-tree (Kogge-Stone) adder has many near-critical paths,
        // so sustained worst-case aging at the fresh clock must produce
        // some errors. (The raw, unsized netlist here lacks the slack wall
        // of a timing-closed design, so a 20-year horizon stands in for
        // the paper's 10-year one; `exp-fig1` exercises the synthesized
        // variant at 10 years.)
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let nl = adder(AdderKind::KoggeStone, 32);
        let fresh = NetDelays::fresh(&nl);
        let clock = analyze(&nl, &fresh).unwrap().max_delay_ps();
        let model = AgingModel::calibrated();
        let aged = NetDelays::aged(
            &nl,
            &model,
            AgingScenario::worst_case(Lifetime::from_years(20.0)),
        );
        let mut sim = TimedSimulator::new(&nl, &aged).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut errors = 0;
        let n = 2000;
        for _ in 0..n {
            let a = u64::from(rng.gen::<u32>());
            let b = u64::from(rng.gen::<u32>());
            let out = sim.step(&operands(32, a, b), clock).unwrap();
            if out.timing_error {
                errors += 1;
            }
            assert_eq!(bus_to_u64(&out.settled), a + b);
        }
        assert!(errors > 0, "aging at the fresh clock must cause errors");
        assert!(errors < n, "not every vector exercises a critical path");
    }

    #[test]
    fn reset_restores_initial_behaviour() {
        let nl = adder(AdderKind::RippleCarry, 4);
        let delays = NetDelays::fresh(&nl);
        let mut sim = TimedSimulator::new(&nl, &delays).unwrap();
        let first = sim.step(&operands(4, 7, 8), 0.001).unwrap();
        assert!(!first.timing_error, "first vector settles functionally");
        sim.reset();
        let again = sim.step(&operands(4, 7, 8), 0.001).unwrap();
        assert_eq!(first, again);
    }
}
