//! Switching-activity extraction and conversion to BTI stress factors.

use crate::packed::{lane_mask, PackedEvaluator, SimEngine, LANES};
use aix_aging::{StressFactor, StressPair};
use aix_netlist::{Evaluator, Netlist, NetlistError};

/// Signal statistics collected from functional simulation of a vector
/// stream: per-net signal probability and toggle counts.
///
/// This is the "gate-level simulation for switching activity" step of the
/// paper's Fig. 3(c) — a one-time effort per component that feeds both the
/// actual-case aging analysis and the dynamic-power model.
#[derive(Debug, Clone, PartialEq)]
pub struct Activity {
    ones: Vec<u64>,
    toggles: Vec<u64>,
    vectors: u64,
}

impl Activity {
    /// Builds an activity record from raw statistics (ones per net,
    /// transitions per net, vector count) — used by the glitch-aware
    /// timed-simulation extraction.
    ///
    /// # Panics
    ///
    /// Panics if the two statistics vectors differ in length.
    pub fn from_parts(ones: Vec<u64>, toggles: Vec<u64>, vectors: u64) -> Self {
        assert_eq!(ones.len(), toggles.len(), "per-net statistics must align");
        Self {
            ones,
            toggles,
            vectors,
        }
    }

    /// Simulates `vectors` input vectors drawn from `stimuli` and collects
    /// statistics over every net, using the engine selected by
    /// `AIX_SIM_ENGINE` (packed by default).
    ///
    /// # Errors
    ///
    /// Propagates evaluator errors (cyclic netlist, width mismatch).
    pub fn collect<I>(netlist: &Netlist, stimuli: I) -> Result<Self, NetlistError>
    where
        I: IntoIterator<Item = Vec<bool>>,
    {
        Self::collect_with(netlist, stimuli, SimEngine::from_env_or_default())
    }

    /// [`collect`](Self::collect) with an explicit engine choice. Both
    /// engines produce bit-identical `Activity` — every statistic is an
    /// exact integer count (popcounts on lane words for the packed path).
    ///
    /// # Errors
    ///
    /// Propagates evaluator errors (cyclic netlist, width mismatch).
    pub fn collect_with<I>(
        netlist: &Netlist,
        stimuli: I,
        engine: SimEngine,
    ) -> Result<Self, NetlistError>
    where
        I: IntoIterator<Item = Vec<bool>>,
    {
        let _span = aix_obs::span!("activity_collect", nets = netlist.net_count());
        match engine {
            SimEngine::Scalar => Self::collect_scalar(netlist, stimuli),
            SimEngine::Packed => Self::collect_packed(netlist, stimuli),
        }
    }

    fn collect_scalar<I>(netlist: &Netlist, stimuli: I) -> Result<Self, NetlistError>
    where
        I: IntoIterator<Item = Vec<bool>>,
    {
        let mut evaluator = Evaluator::new(netlist)?;
        let mut ones = vec![0u64; netlist.net_count()];
        let mut toggles = vec![0u64; netlist.net_count()];
        let mut previous: Option<Vec<bool>> = None;
        let mut vectors = 0u64;
        for vector in stimuli {
            evaluator.eval(&vector)?;
            let values = evaluator.net_values();
            for (i, &v) in values.iter().enumerate() {
                if v {
                    ones[i] += 1;
                }
                if let Some(prev) = &previous {
                    if prev[i] != v {
                        toggles[i] += 1;
                    }
                }
            }
            match &mut previous {
                Some(prev) => prev.copy_from_slice(values),
                None => previous = Some(values.to_vec()),
            }
            vectors += 1;
        }
        Ok(Self {
            ones,
            toggles,
            vectors,
        })
    }

    fn collect_packed<I>(netlist: &Netlist, stimuli: I) -> Result<Self, NetlistError>
    where
        I: IntoIterator<Item = Vec<bool>>,
    {
        let _span = aix_obs::span!(
            "sim_packed",
            consumer = "activity_collect",
            nets = netlist.net_count()
        );
        let mut packed = PackedEvaluator::new(netlist)?;
        let mut ones = vec![0u64; netlist.net_count()];
        let mut toggles = vec![0u64; netlist.net_count()];
        // Last-lane value of every net from the previous batch, for the
        // cross-batch toggle at the word boundary.
        let mut previous: Vec<bool> = vec![false; netlist.net_count()];
        let mut started = false;
        let mut vectors = 0u64;
        let mut batch: Vec<Vec<bool>> = Vec::with_capacity(LANES);
        let mut flush = |batch: &[Vec<bool>]| -> Result<(), NetlistError> {
            let lanes = batch.len();
            packed.eval_batch(batch)?;
            let ones_mask = lane_mask(lanes);
            // Adjacent-lane toggles live at bit positions 0..lanes-1 of
            // `w ^ (w >> 1)`.
            let pair_mask = lane_mask(lanes - 1);
            for (i, &w) in packed.net_words().iter().enumerate() {
                ones[i] += u64::from((w & ones_mask).count_ones());
                toggles[i] += u64::from(((w ^ (w >> 1)) & pair_mask).count_ones());
                let first = w & 1 == 1;
                if started && previous[i] != first {
                    toggles[i] += 1;
                }
                previous[i] = (w >> (lanes - 1)) & 1 == 1;
            }
            started = true;
            Ok(())
        };
        for vector in stimuli {
            batch.push(vector);
            vectors += 1;
            if batch.len() == LANES {
                flush(&batch)?;
                batch.clear();
            }
        }
        if !batch.is_empty() {
            flush(&batch)?;
        }
        Ok(Self {
            ones,
            toggles,
            vectors,
        })
    }

    /// Number of vectors simulated.
    pub fn vector_count(&self) -> u64 {
        self.vectors
    }

    /// Probability of net `net_index` being logic one.
    ///
    /// Returns `0.0` if no vectors were simulated.
    pub fn probability_one(&self, net_index: usize) -> f64 {
        if self.vectors == 0 {
            0.0
        } else {
            self.ones[net_index] as f64 / self.vectors as f64
        }
    }

    /// Average toggles per vector on net `net_index` (the switching
    /// activity `α` of the dynamic-power model).
    pub fn toggle_rate(&self, net_index: usize) -> f64 {
        if self.vectors <= 1 {
            0.0
        } else {
            self.toggles[net_index] as f64 / (self.vectors - 1) as f64
        }
    }

    /// Mean toggle rate over all nets.
    pub fn mean_toggle_rate(&self) -> f64 {
        if self.ones.is_empty() {
            return 0.0;
        }
        let sum: f64 = (0..self.ones.len()).map(|i| self.toggle_rate(i)).sum();
        sum / self.ones.len() as f64
    }
}

/// Collects *glitch-aware* activity by running the event-driven timed
/// simulator: every real transition counts, including hazards a zero-delay
/// functional simulation never sees. Multiplier arrays in particular
/// glitch heavily, so dynamic power computed from this activity is the
/// honest figure.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn collect_timed_activity<I>(
    netlist: &Netlist,
    delays: &aix_sta::NetDelays,
    stimuli: I,
) -> Result<Activity, NetlistError>
where
    I: IntoIterator<Item = Vec<bool>>,
{
    collect_timed_activity_with(netlist, delays, stimuli, SimEngine::from_env_or_default())
}

/// [`collect_timed_activity`] with an explicit engine choice. Both engines
/// produce bit-identical `Activity`: the packed path advances 64 vectors
/// per word through the lane-parallel timed engine, whose per-lane
/// transition sequences equal the scalar simulator's.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn collect_timed_activity_with<I>(
    netlist: &Netlist,
    delays: &aix_sta::NetDelays,
    stimuli: I,
    engine: SimEngine,
) -> Result<Activity, NetlistError>
where
    I: IntoIterator<Item = Vec<bool>>,
{
    let _span = aix_obs::span!("activity_timed", nets = netlist.net_count());
    match engine {
        SimEngine::Scalar => collect_timed_activity_scalar(netlist, delays, stimuli),
        SimEngine::Packed => collect_timed_activity_packed(netlist, delays, stimuli),
    }
}

fn collect_timed_activity_scalar<I>(
    netlist: &Netlist,
    delays: &aix_sta::NetDelays,
    stimuli: I,
) -> Result<Activity, NetlistError>
where
    I: IntoIterator<Item = Vec<bool>>,
{
    let mut sim = crate::TimedSimulator::new(netlist, delays)?;
    // A zero-delay evaluator supplies the settled per-net values for the
    // ones statistics; the timed simulator supplies true transition counts.
    let mut evaluator = Evaluator::new(netlist)?;
    let mut ones = vec![0u64; netlist.net_count()];
    let mut vectors = 0u64;
    for vector in stimuli {
        // A generous clock: only settled values and real transition counts
        // matter here, not sampling errors.
        sim.step(&vector, f64::MAX / 4.0)?;
        evaluator.eval(&vector)?;
        for (one, &value) in ones.iter_mut().zip(evaluator.net_values()) {
            *one += u64::from(value);
        }
        vectors += 1;
    }
    Ok(Activity::from_parts(
        ones,
        sim.transition_counts().to_vec(),
        vectors,
    ))
}

fn collect_timed_activity_packed<I>(
    netlist: &Netlist,
    delays: &aix_sta::NetDelays,
    stimuli: I,
) -> Result<Activity, NetlistError>
where
    I: IntoIterator<Item = Vec<bool>>,
{
    let _span = aix_obs::span!(
        aix_obs::names::sim::SPAN_TIMED_PACKED,
        consumer = "activity_timed",
        nets = netlist.net_count()
    );
    let mut sim = crate::PackedTimedSimulator::new(netlist, delays)?;
    let mut ones = vec![0u64; netlist.net_count()];
    let mut vectors = 0u64;
    let mut batch: Vec<Vec<bool>> = Vec::with_capacity(LANES);
    let flush = |batch: &[Vec<bool>],
                 sim: &mut crate::PackedTimedSimulator,
                 ones: &mut [u64]|
     -> Result<(), NetlistError> {
        // A generous clock (see the scalar path); after the step the
        // engine's net words hold each lane's settled values.
        sim.step_stream_batch(batch, f64::MAX / 4.0)?;
        let mask = lane_mask(batch.len());
        for (one, &w) in ones.iter_mut().zip(sim.net_words()) {
            *one += u64::from((w & mask).count_ones());
        }
        Ok(())
    };
    for vector in stimuli {
        batch.push(vector);
        vectors += 1;
        if batch.len() == LANES {
            flush(&batch, &mut sim, &mut ones)?;
            batch.clear();
        }
    }
    if !batch.is_empty() {
        flush(&batch, &mut sim, &mut ones)?;
    }
    Ok(Activity::from_parts(
        ones,
        sim.transition_counts().to_vec(),
        vectors,
    ))
}

/// Derives per-gate (pMOS, nMOS) stress pairs from extracted activity.
///
/// A gate's pull-up network is under NBTI stress while its inputs are low,
/// the pull-down under PBTI stress while they are high; the per-network
/// stress factor is the corresponding signal probability averaged over the
/// gate's input pins.
pub fn stress_pairs(netlist: &Netlist, activity: &Activity) -> Vec<StressPair> {
    netlist
        .gates()
        .map(|(_, gate)| {
            let mean_p_one = gate
                .inputs
                .iter()
                .map(|n| activity.probability_one(n.index()))
                .sum::<f64>()
                / gate.inputs.len().max(1) as f64;
            StressPair::from_signal_probability(mean_p_one)
        })
        .collect()
}

/// A histogram of transistor stress factors, as plotted in the paper's
/// Fig. 5 to show that artificial (normally distributed) stimuli stress the
/// netlist like real application data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StressHistogram {
    bins: Vec<u64>,
}

impl StressHistogram {
    /// Number of histogram bins over `[0, 1]`.
    pub const BINS: usize = 20;

    /// Bin counts, low stress first.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Normalized bin weights (empty histogram yields all zeros).
    pub fn weights(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; Self::BINS];
        }
        self.bins
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// L1 distance between two normalized histograms, in `[0, 2]`.
    /// The paper's "very similar stress distributions" claim corresponds to
    /// a small distance.
    pub fn distance(&self, other: &StressHistogram) -> f64 {
        self.weights()
            .iter()
            .zip(other.weights())
            .map(|(a, b)| (a - b).abs())
            .sum()
    }
}

/// Histograms the per-transistor stress factors implied by `pairs`
/// (each gate input pin contributes one pMOS and one nMOS transistor).
pub fn stress_histogram(pairs: &[StressPair]) -> StressHistogram {
    let mut bins = vec![0u64; StressHistogram::BINS];
    let mut push = |s: StressFactor| {
        let bin = ((s.value() * StressHistogram::BINS as f64) as usize)
            .min(StressHistogram::BINS - 1);
        bins[bin] += 1;
    };
    for pair in pairs {
        push(pair.pmos);
        push(pair.nmos);
    }
    StressHistogram { bins }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NormalOperands, OperandSource};
    use aix_arith::{build_adder, AdderKind, ComponentSpec};
    use aix_cells::Library;
    use std::sync::Arc;

    fn adder8() -> Netlist {
        let lib = Arc::new(Library::nangate45_like());
        build_adder(&lib, AdderKind::RippleCarry, ComponentSpec::full(8)).unwrap()
    }

    #[test]
    fn constant_inputs_give_extreme_probabilities() {
        let nl = adder8();
        let all_ones = vec![vec![true; 16]; 10];
        let act = Activity::collect(&nl, all_ones).unwrap();
        for &net in nl.inputs() {
            assert_eq!(act.probability_one(net.index()), 1.0);
            assert_eq!(act.toggle_rate(net.index()), 0.0);
        }
        let pairs = stress_pairs(&nl, &act);
        // Gates fed only by ones: nMOS fully stressed where inputs are all 1.
        let first_gate_pair = pairs[0];
        assert!(first_gate_pair.nmos.value() > 0.9 || first_gate_pair.pmos.value() > 0.0);
    }

    #[test]
    fn alternating_inputs_toggle() {
        let nl = adder8();
        let vectors: Vec<Vec<bool>> = (0..10).map(|i| vec![i % 2 == 1; 16]).collect();
        let act = Activity::collect(&nl, vectors).unwrap();
        for &net in nl.inputs() {
            assert!((act.probability_one(net.index()) - 0.5).abs() < 0.11);
            assert_eq!(act.toggle_rate(net.index()), 1.0);
        }
    }

    #[test]
    fn random_stimuli_give_interior_stress() {
        let nl = adder8();
        let stimuli = NormalOperands::new(8, 42).vectors(500);
        let act = Activity::collect(&nl, stimuli).unwrap();
        let pairs = stress_pairs(&nl, &act);
        let interior = pairs
            .iter()
            .filter(|p| p.pmos.value() > 0.1 && p.pmos.value() < 0.9)
            .count();
        assert!(
            interior > pairs.len() / 2,
            "most gates should see balanced-ish stress, got {interior}/{}",
            pairs.len()
        );
    }

    #[test]
    fn histogram_totals_and_distance() {
        let nl = adder8();
        let a1 = Activity::collect(&nl, NormalOperands::new(8, 1).vectors(400)).unwrap();
        let a2 = Activity::collect(&nl, NormalOperands::new(8, 2).vectors(400)).unwrap();
        let h1 = stress_histogram(&stress_pairs(&nl, &a1));
        let h2 = stress_histogram(&stress_pairs(&nl, &a2));
        // One pMOS + one nMOS sample per gate.
        assert_eq!(h1.total() as usize, 2 * nl.gate_count());
        // Same distribution family, different seeds: histograms nearly match.
        assert!(h1.distance(&h2) < 0.3, "distance {}", h1.distance(&h2));
        assert_eq!(h1.distance(&h1), 0.0);
    }

    #[test]
    fn timed_activity_sees_glitches_functional_misses() {
        use aix_sta::NetDelays;
        // Multiplier-style logic glitches; the timed toggle counts must be
        // at least the functional ones on every net, and strictly larger
        // somewhere.
        use aix_arith::{build_multiplier, ComponentSpec, MultiplierKind};
        let lib = Arc::new(Library::nangate45_like());
        let nl = build_multiplier(&lib, MultiplierKind::Array, ComponentSpec::full(8)).unwrap();
        let vectors: Vec<Vec<bool>> =
            NormalOperands::new(8, 9).vectors(150).collect();
        let functional = Activity::collect(&nl, vectors.clone()).unwrap();
        let timed =
            collect_timed_activity(&nl, &NetDelays::fresh(&nl), vectors).unwrap();
        let mut strictly_more = 0;
        for (id, _) in nl.nets() {
            let f = functional.toggle_rate(id.index());
            let t = timed.toggle_rate(id.index());
            assert!(t + 1e-9 >= f, "net {id}: timed {t} < functional {f}");
            if t > f + 1e-9 {
                strictly_more += 1;
            }
        }
        assert!(strictly_more > 0, "a multiplier must glitch somewhere");
    }

    #[test]
    fn from_parts_validates_alignment() {
        let a = Activity::from_parts(vec![1, 2], vec![0, 1], 4);
        assert_eq!(a.vector_count(), 4);
        assert_eq!(a.probability_one(0), 0.25);
    }

    #[test]
    fn empty_activity_is_benign() {
        let nl = adder8();
        let act = Activity::collect(&nl, Vec::<Vec<bool>>::new()).unwrap();
        assert_eq!(act.vector_count(), 0);
        assert_eq!(act.probability_one(0), 0.0);
        assert_eq!(act.mean_toggle_rate(), 0.0);
    }
}
