//! Netlist construction and validation errors.

use crate::{GateId, NetId};
use std::error::Error;
use std::fmt;

/// Errors produced while building, validating or evaluating a [`crate::Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate was instantiated with the wrong number of input connections.
    ArityMismatch {
        /// Cell name of the offending instance.
        cell: String,
        /// Pins the cell expects.
        expected: usize,
        /// Connections provided.
        provided: usize,
    },
    /// A net is read by a gate or output port but has no driver.
    UndrivenNet(NetId),
    /// A net would be driven by more than one source.
    MultipleDrivers(NetId),
    /// The gate graph contains a combinational cycle through this gate.
    CombinationalCycle(GateId),
    /// A sequential cell was instantiated in a combinational netlist.
    SequentialCell {
        /// The offending gate.
        gate: GateId,
        /// Cell name of the instance.
        cell: String,
    },
    /// An evaluation was invoked with the wrong number of input values.
    InputWidthMismatch {
        /// Number of primary inputs of the netlist.
        expected: usize,
        /// Number of values provided.
        provided: usize,
    },
    /// The netlist declares no primary outputs.
    NoOutputs,
    /// A referenced net id does not exist in this netlist.
    UnknownNet(NetId),
    /// A delay annotation is unusable for timed simulation (NaN, negative,
    /// or non-finite). The offending value is carried as its `{:?}` rendering
    /// so the variant stays `Eq`.
    InvalidDelay {
        /// Net whose annotation is invalid.
        net: NetId,
        /// The rejected delay value, rendered as text.
        delay: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ArityMismatch {
                cell,
                expected,
                provided,
            } => write!(
                f,
                "cell `{cell}` expects {expected} inputs but {provided} were connected"
            ),
            NetlistError::UndrivenNet(net) => write!(f, "net {net} has no driver"),
            NetlistError::MultipleDrivers(net) => {
                write!(f, "net {net} is driven by more than one source")
            }
            NetlistError::CombinationalCycle(gate) => {
                write!(f, "combinational cycle through gate {gate}")
            }
            NetlistError::SequentialCell { gate, cell } => write!(
                f,
                "sequential cell `{cell}` (gate {gate}) in combinational netlist"
            ),
            NetlistError::InputWidthMismatch { expected, provided } => write!(
                f,
                "netlist has {expected} primary inputs but {provided} values were supplied"
            ),
            NetlistError::NoOutputs => write!(f, "netlist declares no primary outputs"),
            NetlistError::UnknownNet(net) => write!(f, "net {net} does not exist"),
            NetlistError::InvalidDelay { net, delay } => write!(
                f,
                "net {net} has invalid delay annotation {delay} ps (must be finite and >= 0)"
            ),
        }
    }
}

impl Error for NetlistError {}
