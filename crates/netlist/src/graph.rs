//! Graph algorithms over netlists: topological ordering (Kahn's algorithm)
//! and the levelized evaluation schedule shared by every functional engine.

use crate::{GateId, NetDriver, Netlist, NetlistError};

/// A levelized evaluation schedule: every gate annotated with its logic
/// level (the longest gate-path distance from a primary input), and the
/// gate list sorted by `(level, gate id)`.
///
/// The order is a valid topological order, so it drives the scalar
/// [`Evaluator`](crate::Evaluator) directly; the level structure is what
/// bit-parallel and (future) data-parallel engines key on — all gates of a
/// level are independent of one another. Netlists cache their schedule
/// (see [`Netlist::schedule`]), so levelization is a one-time cost however
/// many evaluators a netlist feeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Raw gate indices in `(level, id)` order — a topological order.
    order: Vec<u32>,
    /// Logic level of each gate, indexed by raw gate id.
    level_of: Vec<u32>,
    /// Number of levels (0 for a gate-free netlist).
    levels: u32,
}

impl Schedule {
    /// Gate indices in evaluation (fanin-before-fanout) order.
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Evaluation order as [`GateId`]s.
    pub fn gate_order(&self) -> impl Iterator<Item = GateId> + '_ {
        self.order.iter().map(|&g| GateId(g))
    }

    /// Logic level of `gate` (0 = fed only by primary inputs or constants).
    pub fn level(&self, gate: GateId) -> u32 {
        self.level_of[gate.index()]
    }

    /// Number of logic levels.
    pub fn level_count(&self) -> u32 {
        self.levels
    }
}

/// Levelizes `netlist`: topological order first, then longest-path levels
/// in one pass, then a stable `(level, id)` sort.
pub(crate) fn levelize(netlist: &Netlist) -> Result<Schedule, NetlistError> {
    let topo = topological_order(netlist)?;
    let mut level_of = vec![0u32; netlist.gate_count()];
    let mut levels = 0u32;
    for &gate_id in &topo {
        let mut level = 0u32;
        for &net in &netlist.gate(gate_id).inputs {
            if let NetDriver::Gate { gate: driver, .. } = netlist.net(net).driver {
                level = level.max(level_of[driver.index()] + 1);
            }
        }
        level_of[gate_id.index()] = level;
        levels = levels.max(level + 1);
    }
    let mut order: Vec<u32> = topo.iter().map(|g| g.0).collect();
    order.sort_by_key(|&g| (level_of[g as usize], g));
    Ok(Schedule {
        order,
        level_of,
        levels,
    })
}

/// Computes a fanin-before-fanout ordering of all gates.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] naming one gate on a cycle
/// if the graph is not a DAG.
pub(crate) fn topological_order(netlist: &Netlist) -> Result<Vec<GateId>, NetlistError> {
    let gate_count = netlist.gate_count();
    // In-degree of each gate = number of its input nets driven by gates.
    let mut in_degree = vec![0u32; gate_count];
    // Successor lists keyed by driving gate.
    let mut successors: Vec<Vec<u32>> = vec![Vec::new(); gate_count];
    for (id, gate) in netlist.gates() {
        for &net in &gate.inputs {
            if let NetDriver::Gate { gate: driver, .. } = netlist.net(net).driver {
                successors[driver.index()].push(id.0);
                in_degree[id.index()] += 1;
            }
        }
    }
    let mut queue: Vec<u32> = (0..gate_count as u32)
        .filter(|&g| in_degree[g as usize] == 0)
        .collect();
    let mut order = Vec::with_capacity(gate_count);
    let mut head = 0;
    while head < queue.len() {
        let g = queue[head];
        head += 1;
        order.push(GateId(g));
        for &succ in &successors[g as usize] {
            in_degree[succ as usize] -= 1;
            if in_degree[succ as usize] == 0 {
                queue.push(succ);
            }
        }
    }
    if order.len() != gate_count {
        // Some gate still has positive in-degree: it lies on a cycle.
        let culprit = in_degree
            .iter()
            .position(|&d| d > 0)
            .expect("cycle implies a positive in-degree");
        return Err(NetlistError::CombinationalCycle(GateId(culprit as u32)));
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use crate::{NetDriver, Netlist, NetlistError};
    use aix_cells::{CellFunction, DriveStrength, Library};
    use std::sync::Arc;

    #[test]
    fn linear_chain_is_ordered() {
        let lib = Arc::new(Library::nangate45_like());
        let inv = lib.find(CellFunction::Inv, DriveStrength::X1).unwrap();
        let mut nl = Netlist::new("chain", lib);
        let a = nl.add_input("a");
        let mut prev = a;
        for _ in 0..10 {
            prev = nl.add_gate(inv, &[prev]).unwrap()[0];
        }
        nl.mark_output("y", prev);
        let order = nl.topological_order().unwrap();
        assert_eq!(order.len(), 10);
        for window in order.windows(2) {
            assert!(window[0].index() < window[1].index(), "chain order is id order");
        }
    }

    #[test]
    fn cycle_detected() {
        let lib = Arc::new(Library::nangate45_like());
        let nand = lib.find(CellFunction::Nand2, DriveStrength::X1).unwrap();
        let mut nl = Netlist::new("latch", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        // Cross-coupled NANDs (an SR latch): a combinational cycle.
        let q = nl.add_gate(nand, &[a, b]).unwrap()[0];
        let qn = nl.add_gate(nand, &[b, q]).unwrap()[0];
        // Rewire the first gate's second input to close the loop.
        nl.gate_mut(crate::GateId(0)).inputs[1] = qn;
        nl.mark_output("q", q);
        assert!(matches!(
            nl.topological_order(),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn diamond_respects_dependencies() {
        let lib = Arc::new(Library::nangate45_like());
        let inv = lib.find(CellFunction::Inv, DriveStrength::X1).unwrap();
        let and = lib.find(CellFunction::And2, DriveStrength::X1).unwrap();
        let mut nl = Netlist::new("diamond", lib);
        let a = nl.add_input("a");
        let l = nl.add_gate(inv, &[a]).unwrap()[0];
        let r = nl.add_gate(inv, &[a]).unwrap()[0];
        let y = nl.add_gate(and, &[l, r]).unwrap()[0];
        nl.mark_output("y", y);
        let order = nl.topological_order().unwrap();
        let pos = |g: u32| order.iter().position(|x| x.0 == g).unwrap();
        assert!(pos(0) < pos(2) && pos(1) < pos(2));
    }

    #[test]
    fn schedule_levels_respect_dependencies() {
        let lib = Arc::new(Library::nangate45_like());
        let inv = lib.find(CellFunction::Inv, DriveStrength::X1).unwrap();
        let and = lib.find(CellFunction::And2, DriveStrength::X1).unwrap();
        let mut nl = Netlist::new("diamond", lib);
        let a = nl.add_input("a");
        let l = nl.add_gate(inv, &[a]).unwrap()[0];
        let r = nl.add_gate(inv, &[a]).unwrap()[0];
        let y = nl.add_gate(and, &[l, r]).unwrap()[0];
        nl.mark_output("y", y);
        let schedule = nl.schedule().unwrap();
        assert_eq!(schedule.level_count(), 2);
        assert_eq!(schedule.level(crate::GateId(0)), 0);
        assert_eq!(schedule.level(crate::GateId(1)), 0);
        assert_eq!(schedule.level(crate::GateId(2)), 1);
        // (level, id) order is a topological order with both INVs first.
        assert_eq!(schedule.order(), &[0, 1, 2]);
    }

    #[test]
    fn schedule_is_cached_and_invalidated_on_mutation() {
        let lib = Arc::new(Library::nangate45_like());
        let inv = lib.find(CellFunction::Inv, DriveStrength::X1).unwrap();
        let mut nl = Netlist::new("chain", lib);
        let a = nl.add_input("a");
        let x = nl.add_gate(inv, &[a]).unwrap()[0];
        nl.mark_output("y", x);
        let first = nl.schedule().unwrap();
        let again = nl.schedule().unwrap();
        assert!(std::sync::Arc::ptr_eq(&first, &again), "second call hits the cache");
        let y = nl.add_gate(inv, &[x]).unwrap()[0];
        nl.mark_output("z", y);
        let rebuilt = nl.schedule().unwrap();
        assert_eq!(rebuilt.order().len(), 2, "mutation invalidates the cache");
    }

    #[test]
    fn constants_do_not_create_dependencies() {
        let lib = Arc::new(Library::nangate45_like());
        let and = lib.find(CellFunction::And2, DriveStrength::X1).unwrap();
        let mut nl = Netlist::new("const", lib);
        let a = nl.add_input("a");
        let one = nl.constant(true);
        let y = nl.add_gate(and, &[a, one]).unwrap()[0];
        nl.mark_output("y", y);
        assert_eq!(nl.topological_order().unwrap().len(), 1);
        assert!(matches!(nl.net(one).driver, NetDriver::Constant(true)));
    }
}
