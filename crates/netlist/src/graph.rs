//! Graph algorithms over netlists: topological ordering (Kahn's algorithm).

use crate::{GateId, NetDriver, Netlist, NetlistError};

/// Computes a fanin-before-fanout ordering of all gates.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] naming one gate on a cycle
/// if the graph is not a DAG.
pub(crate) fn topological_order(netlist: &Netlist) -> Result<Vec<GateId>, NetlistError> {
    let gate_count = netlist.gate_count();
    // In-degree of each gate = number of its input nets driven by gates.
    let mut in_degree = vec![0u32; gate_count];
    // Successor lists keyed by driving gate.
    let mut successors: Vec<Vec<u32>> = vec![Vec::new(); gate_count];
    for (id, gate) in netlist.gates() {
        for &net in &gate.inputs {
            if let NetDriver::Gate { gate: driver, .. } = netlist.net(net).driver {
                successors[driver.index()].push(id.0);
                in_degree[id.index()] += 1;
            }
        }
    }
    let mut queue: Vec<u32> = (0..gate_count as u32)
        .filter(|&g| in_degree[g as usize] == 0)
        .collect();
    let mut order = Vec::with_capacity(gate_count);
    let mut head = 0;
    while head < queue.len() {
        let g = queue[head];
        head += 1;
        order.push(GateId(g));
        for &succ in &successors[g as usize] {
            in_degree[succ as usize] -= 1;
            if in_degree[succ as usize] == 0 {
                queue.push(succ);
            }
        }
    }
    if order.len() != gate_count {
        // Some gate still has positive in-degree: it lies on a cycle.
        let culprit = in_degree
            .iter()
            .position(|&d| d > 0)
            .expect("cycle implies a positive in-degree");
        return Err(NetlistError::CombinationalCycle(GateId(culprit as u32)));
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use crate::{NetDriver, Netlist, NetlistError};
    use aix_cells::{CellFunction, DriveStrength, Library};
    use std::sync::Arc;

    #[test]
    fn linear_chain_is_ordered() {
        let lib = Arc::new(Library::nangate45_like());
        let inv = lib.find(CellFunction::Inv, DriveStrength::X1).unwrap();
        let mut nl = Netlist::new("chain", lib);
        let a = nl.add_input("a");
        let mut prev = a;
        for _ in 0..10 {
            prev = nl.add_gate(inv, &[prev]).unwrap()[0];
        }
        nl.mark_output("y", prev);
        let order = nl.topological_order().unwrap();
        assert_eq!(order.len(), 10);
        for window in order.windows(2) {
            assert!(window[0].index() < window[1].index(), "chain order is id order");
        }
    }

    #[test]
    fn cycle_detected() {
        let lib = Arc::new(Library::nangate45_like());
        let nand = lib.find(CellFunction::Nand2, DriveStrength::X1).unwrap();
        let mut nl = Netlist::new("latch", lib);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        // Cross-coupled NANDs (an SR latch): a combinational cycle.
        let q = nl.add_gate(nand, &[a, b]).unwrap()[0];
        let qn = nl.add_gate(nand, &[b, q]).unwrap()[0];
        // Rewire the first gate's second input to close the loop.
        nl.gate_mut(crate::GateId(0)).inputs[1] = qn;
        nl.mark_output("q", q);
        assert!(matches!(
            nl.topological_order(),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn diamond_respects_dependencies() {
        let lib = Arc::new(Library::nangate45_like());
        let inv = lib.find(CellFunction::Inv, DriveStrength::X1).unwrap();
        let and = lib.find(CellFunction::And2, DriveStrength::X1).unwrap();
        let mut nl = Netlist::new("diamond", lib);
        let a = nl.add_input("a");
        let l = nl.add_gate(inv, &[a]).unwrap()[0];
        let r = nl.add_gate(inv, &[a]).unwrap()[0];
        let y = nl.add_gate(and, &[l, r]).unwrap()[0];
        nl.mark_output("y", y);
        let order = nl.topological_order().unwrap();
        let pos = |g: u32| order.iter().position(|x| x.0 == g).unwrap();
        assert!(pos(0) < pos(2) && pos(1) < pos(2));
    }

    #[test]
    fn constants_do_not_create_dependencies() {
        let lib = Arc::new(Library::nangate45_like());
        let and = lib.find(CellFunction::And2, DriveStrength::X1).unwrap();
        let mut nl = Netlist::new("const", lib);
        let a = nl.add_input("a");
        let one = nl.constant(true);
        let y = nl.add_gate(and, &[a, one]).unwrap()[0];
        nl.mark_output("y", y);
        assert_eq!(nl.topological_order().unwrap().len(), 1);
        assert!(matches!(nl.net(one).driver, NetDriver::Constant(true)));
    }
}
