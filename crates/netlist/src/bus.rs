//! Bus helpers: converting between integers and LSB-first bit vectors.

use crate::NetId;

/// An LSB-first group of nets treated as a binary word.
pub type Bus = Vec<NetId>;

/// Expands the low `width` bits of `value` into an LSB-first bit vector.
///
/// # Examples
///
/// ```
/// use aix_netlist::bus_from_u64;
///
/// assert_eq!(bus_from_u64(0b101, 4), vec![true, false, true, false]);
/// ```
///
/// # Panics
///
/// Panics if `width > 64`.
pub fn bus_from_u64(value: u64, width: usize) -> Vec<bool> {
    assert!(width <= 64, "bus wider than u64");
    (0..width).map(|i| value >> i & 1 == 1).collect()
}

/// Packs an LSB-first bit slice into a `u64`.
///
/// # Examples
///
/// ```
/// use aix_netlist::{bus_from_u64, bus_to_u64};
///
/// assert_eq!(bus_to_u64(&bus_from_u64(0xDEAD, 16)), 0xDEAD);
/// ```
///
/// # Panics
///
/// Panics if `bits` is longer than 64.
pub fn bus_to_u64(bits: &[bool]) -> u64 {
    assert!(bits.len() <= 64, "bus wider than u64");
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        for width in [1usize, 7, 8, 16, 32, 63, 64] {
            let mask = if width == 64 { u64::MAX } else { (1 << width) - 1 };
            for value in [0u64, 1, 0x5555_5555_5555_5555, u64::MAX] {
                let v = value & mask;
                assert_eq!(bus_to_u64(&bus_from_u64(v, width)), v, "w={width} v={v:#x}");
            }
        }
    }

    #[test]
    fn lsb_first_ordering() {
        let bits = bus_from_u64(1, 3);
        assert_eq!(bits, vec![true, false, false]);
    }

    #[test]
    #[should_panic(expected = "wider than u64")]
    fn rejects_overwide() {
        let _ = bus_from_u64(0, 65);
    }
}
