//! EDIF 2.0.0 netlist export: the s-expression interchange twin of
//! [`crate::to_verilog`].
//!
//! The emitted file has two libraries — `cells` declaring the interface of
//! every referenced primitive (plus `TIE0`/`TIE1` driver cells when the
//! netlist uses constants, since EDIF has no constant literal), and `work`
//! holding the design cell itself — followed by a `(design …)` section
//! naming the top cell. Identifiers come from the same collision-free
//! [`crate::names::NameTable`] as the Verilog exporter; names that had to
//! be sanitized carry their original spelling in a `(rename id "orig")`
//! form, which the importer restores, making export ∘ import the identity
//! on exporter output (the same fixpoint the Verilog round-trip relies
//! on).
//!
//! Ordering is deterministic throughout: primitive cells in library-id
//! order, instances in gate order (tie instances last), nets in net-id
//! order with constant nets last — chosen so a re-export of the
//! re-imported netlist reproduces the file byte for byte.

use crate::names::NameTable;
use crate::verilog::{INPUT_PINS, OUTPUT_PINS};
use crate::{NetDriver, NetId, Netlist};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Renders `id`, attaching `(rename …)` when the identifier had to be
/// sanitized away from the original name.
fn renamed(id: &str, original: &str) -> String {
    if id == original {
        id.to_owned()
    } else {
        format!("(rename {id} \"{original}\")")
    }
}

/// Renders the netlist as an EDIF 2.0.0 netlist file.
///
/// # Examples
///
/// ```
/// use aix_cells::{CellFunction, DriveStrength, Library};
/// use aix_netlist::{to_edif, Netlist};
/// use std::sync::Arc;
///
/// let lib = Arc::new(Library::nangate45_like());
/// let mut nl = Netlist::new("inv_wrap", lib.clone());
/// let a = nl.add_input("a");
/// let inv = lib.find(CellFunction::Inv, DriveStrength::X1).unwrap();
/// let y = nl.add_gate(inv, &[a])?;
/// nl.mark_output("y", y[0]);
/// let edif = to_edif(&nl);
/// assert!(edif.starts_with("(edif inv_wrap"));
/// assert!(edif.contains("(cellref INV_X1"));
/// # Ok::<(), aix_netlist::NetlistError>(())
/// ```
pub fn to_edif(netlist: &Netlist) -> String {
    let mut names = NameTable::build(netlist);
    let module = names.module.clone();
    // Constant nets, in id order; emitted last (instances and nets alike)
    // so the importer's allocation order reproduces this very file.
    let const_nets: Vec<(NetId, bool)> = netlist
        .nets()
        .filter_map(|(id, net)| match net.driver {
            NetDriver::Constant(value) => Some((id, value)),
            _ => None,
        })
        .collect();
    let const_net_name = |value: bool| if value { "tie1" } else { "tie0" };
    let tie_cell = |value: bool| if value { "TIE1" } else { "TIE0" };
    let mut const_names: [Option<String>; 2] = [None, None];
    for &(_, value) in &const_nets {
        const_names[usize::from(value)] = Some(names.claim_extra(const_net_name(value)));
    }

    let mut out = String::new();
    let _ = writeln!(out, "(edif {module}");
    out.push_str("  (edifversion 2 0 0)\n");
    out.push_str("  (ediflevel 0)\n");
    out.push_str("  (keywordmap (keywordlevel 0))\n");

    // Primitive library: interface stubs for every referenced cell.
    out.push_str("  (library cells\n");
    out.push_str("    (ediflevel 0)\n");
    out.push_str("    (technology (numberdefinition))\n");
    let used_cells: BTreeSet<_> = netlist.gates().map(|(_, gate)| gate.cell).collect();
    for cell_id in &used_cells {
        let cell = netlist.library().cell(*cell_id);
        let function = cell.function;
        let _ = writeln!(out, "    (cell {}", cell.name);
        out.push_str("      (celltype GENERIC)\n");
        out.push_str("      (view netlist\n");
        out.push_str("        (viewtype NETLIST)\n");
        out.push_str("        (interface\n");
        for pin in INPUT_PINS.iter().take(function.input_count()) {
            let _ = writeln!(out, "          (port {pin} (direction INPUT))");
        }
        for pin in OUTPUT_PINS.iter().take(function.output_count()) {
            let _ = writeln!(out, "          (port {pin} (direction OUTPUT))");
        }
        out.push_str("        )))\n");
    }
    for &(_, value) in &const_nets {
        let _ = writeln!(out, "    (cell {}", tie_cell(value));
        out.push_str("      (celltype GENERIC)\n");
        out.push_str("      (view netlist\n");
        out.push_str("        (viewtype NETLIST)\n");
        out.push_str("        (interface\n");
        out.push_str("          (port y (direction OUTPUT))\n");
        out.push_str("        )))\n");
    }
    out.push_str("  )\n");

    // The design cell.
    out.push_str("  (library work\n");
    out.push_str("    (ediflevel 0)\n");
    out.push_str("    (technology (numberdefinition))\n");
    let _ = writeln!(out, "    (cell {module}");
    out.push_str("      (celltype GENERIC)\n");
    out.push_str("      (view netlist\n");
    out.push_str("        (viewtype NETLIST)\n");
    out.push_str("        (interface\n");
    for &net in netlist.inputs() {
        let original = netlist.net(net).name.clone();
        let original = original.as_deref().unwrap_or("");
        let _ = writeln!(
            out,
            "          (port {} (direction INPUT))",
            renamed(names.net(net), original)
        );
    }
    for (index, (name, _)) in netlist.outputs().iter().enumerate() {
        let _ = writeln!(
            out,
            "          (port {} (direction OUTPUT))",
            renamed(&names.outputs[index], name)
        );
    }
    out.push_str("        )\n");
    out.push_str("        (contents\n");
    for (id, gate) in netlist.gates() {
        let cell = netlist.library().cell(gate.cell);
        let _ = writeln!(
            out,
            "          (instance g{} (viewref netlist (cellref {} (libraryref cells))))",
            id.index(),
            cell.name
        );
    }
    for &(_, value) in &const_nets {
        let _ = writeln!(
            out,
            "          (instance {} (viewref netlist (cellref {} (libraryref cells))))",
            const_net_name(value),
            tie_cell(value)
        );
    }
    // Nets: driver portref first, then gate sinks in (gate, pin) order,
    // then top-level output ports.
    let fanout = netlist.fanout();
    let emit_net = |out: &mut String, id: NetId, name: &str, original: &str| {
        let mut joined = Vec::new();
        match netlist.net(id).driver {
            NetDriver::PrimaryInput(_) => joined.push(format!("(portref {name})")),
            NetDriver::Gate { gate, pin } => joined.push(format!(
                "(portref {} (instanceref g{}))",
                OUTPUT_PINS[pin as usize],
                gate.index()
            )),
            NetDriver::Constant(value) => joined.push(format!(
                "(portref y (instanceref {}))",
                const_net_name(value)
            )),
        }
        for &(gate, pin) in &fanout[id.index()] {
            joined.push(format!(
                "(portref {} (instanceref g{}))",
                INPUT_PINS[pin as usize],
                gate.index()
            ));
        }
        for (index, (_, net)) in netlist.outputs().iter().enumerate() {
            if *net == id {
                joined.push(format!("(portref {})", names.outputs[index]));
            }
        }
        let _ = writeln!(
            out,
            "          (net {} (joined {}))",
            renamed(name, original),
            joined.join(" ")
        );
    };
    for (id, net) in netlist.nets() {
        match net.driver {
            NetDriver::Constant(_) => {}
            NetDriver::PrimaryInput(_) | NetDriver::Gate { .. } => {
                let original = net.name.clone();
                let name = names.net(id).to_owned();
                emit_net(&mut out, id, &name, original.as_deref().unwrap_or(&name));
            }
        }
    }
    for &(id, value) in &const_nets {
        let name = const_names[usize::from(value)]
            .clone()
            .expect("claimed above");
        emit_net(&mut out, id, &name, &name);
    }
    out.push_str("        )))\n");
    out.push_str("  )\n");
    let _ = writeln!(out, "  (design {module} (cellref {module} (libraryref work))))");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aix_cells::{CellFunction, DriveStrength, Library};
    use std::sync::Arc;

    fn lib() -> Arc<Library> {
        Arc::new(Library::nangate45_like())
    }

    #[test]
    fn structure_of_a_half_adder() {
        let lib = lib();
        let ha = lib.find(CellFunction::HalfAdder, DriveStrength::X1).unwrap();
        let mut nl = Netlist::new("ha", lib.clone());
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let outs = nl.add_gate(ha, &[a, b]).unwrap();
        nl.mark_output("sum", outs[0]);
        nl.mark_output("carry", outs[1]);
        let e = to_edif(&nl);
        assert!(e.starts_with("(edif ha"));
        assert!(e.contains("(cell HA_X1"));
        assert!(e.contains("(port a (direction INPUT))"));
        assert!(e.contains("(port sum (direction OUTPUT))"));
        assert!(e.contains("(instance g0 (viewref netlist (cellref HA_X1 (libraryref cells))))"));
        assert!(e.contains("(net a (joined (portref a) (portref a (instanceref g0))))"));
        assert!(e.contains("(portref y (instanceref g0))"));
        assert!(e.contains("(portref sum)"));
        assert!(e.contains("(design ha (cellref ha (libraryref work))))"));
    }

    #[test]
    fn bus_ports_carry_renames() {
        let lib = lib();
        let inv = lib.find(CellFunction::Inv, DriveStrength::X1).unwrap();
        let mut nl = Netlist::new("bus", lib.clone());
        let bus = nl.add_input_bus("data", 2);
        let y = nl.add_gate(inv, &[bus[0]]).unwrap();
        nl.mark_output("q[0]", y[0]);
        let e = to_edif(&nl);
        assert!(e.contains("(port (rename data_0_ \"data[0]\") (direction INPUT))"));
        assert!(e.contains("(port (rename q_0_ \"q[0]\") (direction OUTPUT))"));
    }

    #[test]
    fn constants_become_tie_instances() {
        let lib = lib();
        let and = lib.find(CellFunction::And2, DriveStrength::X1).unwrap();
        let mut nl = Netlist::new("c", lib.clone());
        let a = nl.add_input("a");
        let one = nl.constant(true);
        let y = nl.add_gate(and, &[a, one]).unwrap();
        nl.mark_output("y", y[0]);
        let e = to_edif(&nl);
        assert!(e.contains("(cell TIE1"));
        assert!(e.contains("(instance tie1 (viewref netlist (cellref TIE1 (libraryref cells))))"));
        assert!(e.contains("(net tie1 (joined (portref y (instanceref tie1)) (portref b (instanceref g0))))"));
    }
}
