//! Structural Verilog export: makes every synthesized netlist a portable
//! artifact that can be inspected, re-simulated or re-synthesized with
//! standard EDA tooling.

use crate::{NetDriver, NetId, Netlist};
use std::fmt::Write as _;

/// Sanitizes a name into a Verilog identifier (bus bits `a[3]` become
/// `a_3_`; anything else non-alphanumeric becomes `_`).
fn identifier(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, 'n');
    }
    out
}

/// The Verilog expression for a net: a port name, an internal wire, or a
/// constant literal.
fn net_expr(netlist: &Netlist, net: NetId) -> String {
    match netlist.net(net).driver {
        NetDriver::Constant(false) => "1'b0".to_owned(),
        NetDriver::Constant(true) => "1'b1".to_owned(),
        NetDriver::PrimaryInput(_) => identifier(
            netlist
                .net(net)
                .name
                .as_deref()
                .unwrap_or(&format!("pi_{}", net.index())),
        ),
        NetDriver::Gate { .. } => format!("w{}", net.index()),
    }
}

/// Renders the netlist as a structural Verilog module.
///
/// Cells are instantiated by their library name with positional-free named
/// connections (`.a(...)`, `.b(...)`, `.c(...)` for inputs in pin order,
/// `.y(...)`/`.co(...)` for outputs), so the output pairs with any cell
/// library that follows the same naming.
///
/// # Examples
///
/// ```
/// use aix_cells::{CellFunction, DriveStrength, Library};
/// use aix_netlist::{to_verilog, Netlist};
/// use std::sync::Arc;
///
/// let lib = Arc::new(Library::nangate45_like());
/// let mut nl = Netlist::new("inv_wrap", lib.clone());
/// let a = nl.add_input("a");
/// let inv = lib.find(CellFunction::Inv, DriveStrength::X1).unwrap();
/// let y = nl.add_gate(inv, &[a])?;
/// nl.mark_output("y", y[0]);
/// let verilog = to_verilog(&nl);
/// assert!(verilog.contains("module inv_wrap"));
/// assert!(verilog.contains("INV_X1"));
/// # Ok::<(), aix_netlist::NetlistError>(())
/// ```
pub fn to_verilog(netlist: &Netlist) -> String {
    let mut out = String::new();
    let inputs: Vec<String> = netlist
        .inputs()
        .iter()
        .map(|&n| net_expr(netlist, n))
        .collect();
    let outputs: Vec<String> = netlist
        .outputs()
        .iter()
        .map(|(name, _)| identifier(name))
        .collect();
    let _ = writeln!(
        out,
        "module {} ({});",
        identifier(netlist.name()),
        inputs
            .iter()
            .chain(outputs.iter())
            .cloned()
            .collect::<Vec<_>>()
            .join(", ")
    );
    for input in &inputs {
        let _ = writeln!(out, "  input {input};");
    }
    for output in &outputs {
        let _ = writeln!(out, "  output {output};");
    }
    // Internal wires: every gate-driven net.
    for (id, net) in netlist.nets() {
        if matches!(net.driver, NetDriver::Gate { .. }) {
            let _ = writeln!(out, "  wire w{};", id.index());
        }
    }
    // Cell instances.
    const INPUT_PINS: [&str; 3] = ["a", "b", "c"];
    const OUTPUT_PINS: [&str; 2] = ["y", "co"];
    for (id, gate) in netlist.gates() {
        let cell = netlist.library().cell(gate.cell);
        let mut connections = Vec::new();
        for (pin, &net) in gate.inputs.iter().enumerate() {
            connections.push(format!(".{}({})", INPUT_PINS[pin], net_expr(netlist, net)));
        }
        for (pin, &net) in gate.outputs.iter().enumerate() {
            connections.push(format!(".{}(w{})", OUTPUT_PINS[pin], net.index()));
        }
        let _ = writeln!(
            out,
            "  {} g{} ({});",
            cell.name,
            id.index(),
            connections.join(", ")
        );
    }
    // Output port assignments.
    for (name, net) in netlist.outputs() {
        let _ = writeln!(
            out,
            "  assign {} = {};",
            identifier(name),
            net_expr(netlist, *net)
        );
    }
    out.push_str("endmodule\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aix_cells::{CellFunction, DriveStrength, Library};
    use std::sync::Arc;

    fn lib() -> Arc<Library> {
        Arc::new(Library::nangate45_like())
    }

    #[test]
    fn full_adder_module_structure() {
        let lib = lib();
        let fa = lib.find(CellFunction::FullAdder, DriveStrength::X2).unwrap();
        let mut nl = Netlist::new("fa1", lib.clone());
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let cin = nl.add_input("cin");
        let outs = nl.add_gate(fa, &[a, b, cin]).unwrap();
        nl.mark_output("sum", outs[0]);
        nl.mark_output("cout", outs[1]);
        let v = to_verilog(&nl);
        assert!(v.starts_with("module fa1 (a, b, cin, sum, cout);"));
        assert!(v.contains("input a;"));
        assert!(v.contains("output cout;"));
        assert!(v.contains("FA_X2 g0 (.a(a), .b(b), .c(cin), .y(w3), .co(w4));"));
        assert!(v.contains("assign sum = w3;"));
        assert!(v.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn bus_names_are_sanitized() {
        let lib = lib();
        let inv = lib.find(CellFunction::Inv, DriveStrength::X1).unwrap();
        let mut nl = Netlist::new("bus", lib.clone());
        let bus = nl.add_input_bus("data", 2);
        let y = nl.add_gate(inv, &[bus[1]]).unwrap();
        nl.mark_output("q[0]", y[0]);
        let v = to_verilog(&nl);
        assert!(v.contains("data_0_"));
        assert!(v.contains("data_1_"));
        assert!(v.contains("assign q_0_ = "));
        assert!(!v.contains('['), "no raw brackets in identifiers: {v}");
    }

    #[test]
    fn constants_render_as_literals() {
        let lib = lib();
        let and = lib.find(CellFunction::And2, DriveStrength::X1).unwrap();
        let mut nl = Netlist::new("c", lib.clone());
        let a = nl.add_input("a");
        let one = nl.constant(true);
        let y = nl.add_gate(and, &[a, one]).unwrap();
        nl.mark_output("y", y[0]);
        let v = to_verilog(&nl);
        assert!(v.contains(".b(1'b1)"));
    }

    #[test]
    fn every_gate_of_a_chain_is_instantiated() {
        let lib = lib();
        let inv = lib.find(CellFunction::Inv, DriveStrength::X1).unwrap();
        let nand = lib.find(CellFunction::Nand2, DriveStrength::X2).unwrap();
        let mut nl = Netlist::new("chain", lib.clone());
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let mut prev = a;
        for _ in 0..5 {
            prev = nl.add_gate(inv, &[prev]).unwrap()[0];
        }
        let y = nl.add_gate(nand, &[prev, b]).unwrap()[0];
        nl.mark_output("y", y);
        let v = to_verilog(&nl);
        let instances = v
            .lines()
            .filter(|l| l.contains("INV_X1 g") || l.contains("NAND2_X2 g"))
            .count();
        assert_eq!(instances, nl.gate_count());
    }
}
