//! Structural Verilog export: makes every synthesized netlist a portable
//! artifact that can be inspected, re-simulated or re-synthesized with
//! standard EDA tooling — and re-imported by [`crate::import`], whose
//! round-trip suite relies on two properties established here:
//!
//! * **Collision-free identifiers.** Names are allocated through
//!   [`crate::names::NameTable`], which suffixes sanitization clashes
//!   (`a[3]` vs `a_3_`) instead of silently merging them.
//! * **Name preservation.** A net that carries a name (as every net of an
//!   imported netlist does) is emitted under that name, so
//!   export ∘ import is the identity on exporter output.

use crate::names::NameTable;
use crate::{NetDriver, NetId, Netlist};
use std::fmt::Write as _;

/// Input pin names in pin order, shared with the importer.
pub(crate) const INPUT_PINS: [&str; 3] = ["a", "b", "c"];
/// Output pin names in pin order, shared with the importer.
pub(crate) const OUTPUT_PINS: [&str; 2] = ["y", "co"];

/// The Verilog expression for a net: a port or wire identifier, or a
/// constant literal.
fn net_expr(netlist: &Netlist, names: &NameTable, net: NetId) -> String {
    match netlist.net(net).driver {
        NetDriver::Constant(false) => "1'b0".to_owned(),
        NetDriver::Constant(true) => "1'b1".to_owned(),
        NetDriver::PrimaryInput(_) | NetDriver::Gate { .. } => names.net(net).to_owned(),
    }
}

/// Renders the netlist as a structural Verilog module.
///
/// Cells are instantiated by their library name with positional-free named
/// connections (`.a(...)`, `.b(...)`, `.c(...)` for inputs in pin order,
/// `.y(...)`/`.co(...)` for outputs), so the output pairs with any cell
/// library that follows the same naming.
///
/// # Examples
///
/// ```
/// use aix_cells::{CellFunction, DriveStrength, Library};
/// use aix_netlist::{to_verilog, Netlist};
/// use std::sync::Arc;
///
/// let lib = Arc::new(Library::nangate45_like());
/// let mut nl = Netlist::new("inv_wrap", lib.clone());
/// let a = nl.add_input("a");
/// let inv = lib.find(CellFunction::Inv, DriveStrength::X1).unwrap();
/// let y = nl.add_gate(inv, &[a])?;
/// nl.mark_output("y", y[0]);
/// let verilog = to_verilog(&nl);
/// assert!(verilog.contains("module inv_wrap"));
/// assert!(verilog.contains("INV_X1"));
/// # Ok::<(), aix_netlist::NetlistError>(())
/// ```
pub fn to_verilog(netlist: &Netlist) -> String {
    let names = NameTable::build(netlist);
    let mut out = String::new();
    let inputs: Vec<&str> = netlist
        .inputs()
        .iter()
        .map(|&n| names.net(n))
        .collect();
    let _ = writeln!(
        out,
        "module {} ({});",
        names.module,
        inputs
            .iter()
            .copied()
            .chain(names.outputs.iter().map(String::as_str))
            .collect::<Vec<_>>()
            .join(", ")
    );
    for input in &inputs {
        let _ = writeln!(out, "  input {input};");
    }
    for output in &names.outputs {
        let _ = writeln!(out, "  output {output};");
    }
    // Internal wires: every gate-driven net.
    for (id, net) in netlist.nets() {
        if matches!(net.driver, NetDriver::Gate { .. }) {
            let _ = writeln!(out, "  wire {};", names.net(id));
        }
    }
    // Cell instances.
    for (id, gate) in netlist.gates() {
        let cell = netlist.library().cell(gate.cell);
        let mut connections = Vec::new();
        for (pin, &net) in gate.inputs.iter().enumerate() {
            connections.push(format!(
                ".{}({})",
                INPUT_PINS[pin],
                net_expr(netlist, &names, net)
            ));
        }
        for (pin, &net) in gate.outputs.iter().enumerate() {
            connections.push(format!(".{}({})", OUTPUT_PINS[pin], names.net(net)));
        }
        let _ = writeln!(
            out,
            "  {} g{} ({});",
            cell.name,
            id.index(),
            connections.join(", ")
        );
    }
    // Output port assignments.
    for (index, (_, net)) in netlist.outputs().iter().enumerate() {
        let _ = writeln!(
            out,
            "  assign {} = {};",
            names.outputs[index],
            net_expr(netlist, &names, *net)
        );
    }
    out.push_str("endmodule\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aix_cells::{CellFunction, DriveStrength, Library};
    use std::sync::Arc;

    fn lib() -> Arc<Library> {
        Arc::new(Library::nangate45_like())
    }

    #[test]
    fn full_adder_module_structure() {
        let lib = lib();
        let fa = lib.find(CellFunction::FullAdder, DriveStrength::X2).unwrap();
        let mut nl = Netlist::new("fa1", lib.clone());
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let cin = nl.add_input("cin");
        let outs = nl.add_gate(fa, &[a, b, cin]).unwrap();
        nl.mark_output("sum", outs[0]);
        nl.mark_output("cout", outs[1]);
        let v = to_verilog(&nl);
        assert!(v.starts_with("module fa1 (a, b, cin, sum, cout);"));
        assert!(v.contains("input a;"));
        assert!(v.contains("output cout;"));
        assert!(v.contains("FA_X2 g0 (.a(a), .b(b), .c(cin), .y(w3), .co(w4));"));
        assert!(v.contains("assign sum = w3;"));
        assert!(v.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn bus_names_are_sanitized() {
        let lib = lib();
        let inv = lib.find(CellFunction::Inv, DriveStrength::X1).unwrap();
        let mut nl = Netlist::new("bus", lib.clone());
        let bus = nl.add_input_bus("data", 2);
        let y = nl.add_gate(inv, &[bus[1]]).unwrap();
        nl.mark_output("q[0]", y[0]);
        let v = to_verilog(&nl);
        assert!(v.contains("data_0_"));
        assert!(v.contains("data_1_"));
        assert!(v.contains("assign q_0_ = "));
        assert!(!v.contains('['), "no raw brackets in identifiers: {v}");
    }

    #[test]
    fn constants_render_as_literals() {
        let lib = lib();
        let and = lib.find(CellFunction::And2, DriveStrength::X1).unwrap();
        let mut nl = Netlist::new("c", lib.clone());
        let a = nl.add_input("a");
        let one = nl.constant(true);
        let y = nl.add_gate(and, &[a, one]).unwrap();
        nl.mark_output("y", y[0]);
        let v = to_verilog(&nl);
        assert!(v.contains(".b(1'b1)"));
    }

    #[test]
    fn every_gate_of_a_chain_is_instantiated() {
        let lib = lib();
        let inv = lib.find(CellFunction::Inv, DriveStrength::X1).unwrap();
        let nand = lib.find(CellFunction::Nand2, DriveStrength::X2).unwrap();
        let mut nl = Netlist::new("chain", lib.clone());
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let mut prev = a;
        for _ in 0..5 {
            prev = nl.add_gate(inv, &[prev]).unwrap()[0];
        }
        let y = nl.add_gate(nand, &[prev, b]).unwrap()[0];
        nl.mark_output("y", y);
        let v = to_verilog(&nl);
        let instances = v
            .lines()
            .filter(|l| l.contains("INV_X1 g") || l.contains("NAND2_X2 g"))
            .count();
        assert_eq!(instances, nl.gate_count());
    }

    /// Regression for the sanitizer collision: the source names `a[3]` and
    /// `a_3_` both sanitize to `a_3_`, and the old exporter emitted two
    /// ports (and two instance connections) under that one identifier.
    /// With collision-free allocation, every identifier is distinct and
    /// each connection references the right port.
    #[test]
    fn colliding_source_names_stay_distinct() {
        let lib = lib();
        let nand = lib.find(CellFunction::Nand2, DriveStrength::X1).unwrap();
        let mut nl = Netlist::new("clash", lib.clone());
        let a = nl.add_input("a[3]");
        let b = nl.add_input("a_3_");
        let y = nl.add_gate(nand, &[a, b]).unwrap();
        nl.mark_output("y", y[0]);
        let v = to_verilog(&nl);
        assert!(v.contains("input a_3_;"));
        assert!(v.contains("input a_3__2;"));
        assert!(v.contains(".a(a_3_), .b(a_3__2)"));
        // Exactly one declaration per identifier.
        assert_eq!(v.matches("input a_3_;").count(), 1);
        assert_eq!(v.matches("input a_3__2;").count(), 1);
    }

    /// Named nets are emitted under their own names — the property the
    /// round-trip fixpoint is built on.
    #[test]
    fn named_wires_are_preserved() {
        let lib = lib();
        let inv = lib.find(CellFunction::Inv, DriveStrength::X1).unwrap();
        let mut nl = Netlist::new("named", lib.clone());
        let a = nl.add_input("a");
        let x = nl.add_gate(inv, &[a]).unwrap()[0];
        nl.set_net_name(x, "my_wire");
        let y = nl.add_gate(inv, &[x]).unwrap()[0];
        nl.mark_output("y", y);
        let v = to_verilog(&nl);
        assert!(v.contains("wire my_wire;"));
        assert!(v.contains(".a(my_wire)"));
    }
}
