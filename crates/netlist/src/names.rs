//! Collision-free identifier allocation shared by the Verilog and EDIF
//! exporters.
//!
//! Source names are sanitized into legal identifiers (bus bits `a[3]`
//! become `a_3_`), but sanitization alone is lossy: distinct source names
//! like `a[3]` and `a_3_` collapse onto the same identifier, which makes a
//! re-imported netlist ambiguous. The table therefore *claims* each
//! identifier in a deterministic order (ports first, then internal wires)
//! and suffixes clashes (`a_3__2`, `a_3__3`, …), so every emitted name is
//! unique and round-trip import is exact. Language keywords are
//! pre-claimed so a port named `wire` can never shadow a declaration.

use crate::{NetDriver, NetId, Netlist};
use std::collections::HashSet;

/// Verilog keywords that may never be emitted as identifiers. (They are
/// equally safe to avoid in EDIF, whose identifier rules are stricter
/// anyway.)
const KEYWORDS: [&str; 10] = [
    "module", "endmodule", "input", "output", "inout", "wire", "assign", "reg", "supply0",
    "supply1",
];

/// Sanitizes a name into an identifier: every non-alphanumeric character
/// becomes `_`, and a leading digit (or empty name) gains an `n` prefix.
pub(crate) fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, 'n');
    }
    out
}

/// The allocated, collision-free identifiers for one netlist export.
pub(crate) struct NameTable {
    /// Module (design) identifier.
    pub module: String,
    /// Identifier per net: `Some` for primary inputs and gate-driven nets,
    /// `None` for constants (rendered as literals / tie cells).
    pub nets: Vec<Option<String>>,
    /// Identifier per primary output port, in declaration order.
    pub outputs: Vec<String>,
    /// Identifiers already claimed, for post-hoc extra claims (the EDIF
    /// exporter names tie nets through this).
    used: HashSet<String>,
}

impl NameTable {
    /// Claims identifiers for every port and wire of `netlist`, in the
    /// deterministic order inputs → outputs → gate-driven wires.
    pub fn build(netlist: &Netlist) -> Self {
        let mut used: HashSet<String> = KEYWORDS.iter().map(|k| (*k).to_owned()).collect();
        let mut nets: Vec<Option<String>> = vec![None; netlist.net_count()];
        for &net in netlist.inputs() {
            let base = match &netlist.net(net).name {
                Some(name) => sanitize(name),
                None => format!("pi_{}", net.index()),
            };
            nets[net.index()] = Some(claim(&mut used, base));
        }
        let outputs: Vec<String> = netlist
            .outputs()
            .iter()
            .map(|(name, _)| claim(&mut used, sanitize(name)))
            .collect();
        for (id, net) in netlist.nets() {
            if matches!(net.driver, NetDriver::Gate { .. }) {
                let base = match &net.name {
                    Some(name) => sanitize(name),
                    None => format!("w{}", id.index()),
                };
                nets[id.index()] = Some(claim(&mut used, base));
            }
        }
        Self {
            module: sanitize(netlist.name()),
            nets,
            outputs,
            used,
        }
    }

    /// Claims one more identifier after the table is built, suffixing on
    /// clash like every other allocation.
    pub fn claim_extra(&mut self, base: &str) -> String {
        claim(&mut self.used, sanitize(base))
    }

    /// The identifier of a named (port or wire) net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is a constant — constants have no identifier.
    pub fn net(&self, net: NetId) -> &str {
        self.nets[net.index()]
            .as_deref()
            .expect("constant nets have no identifier")
    }
}

/// Claims `base` in `used`, suffixing `_2`, `_3`, … until free.
fn claim(used: &mut HashSet<String>, base: String) -> String {
    if used.insert(base.clone()) {
        return base;
    }
    let mut k = 2usize;
    loop {
        let candidate = format!("{base}_{k}");
        if used.insert(candidate.clone()) {
            return candidate;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aix_cells::{CellFunction, DriveStrength, Library};
    use std::sync::Arc;

    #[test]
    fn sanitizer_basics() {
        assert_eq!(sanitize("a[3]"), "a_3_");
        assert_eq!(sanitize("3x"), "n3x");
        assert_eq!(sanitize(""), "n");
        assert_eq!(sanitize("ok_name9"), "ok_name9");
    }

    #[test]
    fn colliding_sources_get_distinct_identifiers() {
        let lib = Arc::new(Library::nangate45_like());
        let inv = lib.find(CellFunction::Inv, DriveStrength::X1).unwrap();
        let mut nl = crate::Netlist::new("clash", lib);
        let a = nl.add_input("a[3]");
        let b = nl.add_input("a_3_");
        let c = nl.add_input("wire");
        let x = nl.add_gate(inv, &[a]).unwrap()[0];
        let y = nl.add_gate(inv, &[b]).unwrap()[0];
        let z = nl.add_gate(inv, &[c]).unwrap()[0];
        nl.mark_output("y", x);
        nl.mark_output("y", y); // duplicate output name must also uniquify
        nl.mark_output("z", z);
        let names = NameTable::build(&nl);
        assert_eq!(names.net(a), "a_3_");
        assert_eq!(names.net(b), "a_3__2");
        assert_eq!(names.net(c), "wire_2", "keywords are pre-claimed");
        assert_eq!(names.outputs, vec!["y", "y_2", "z"]);
    }

    #[test]
    fn wire_fallback_avoids_port_clash() {
        let lib = Arc::new(Library::nangate45_like());
        let inv = lib.find(CellFunction::Inv, DriveStrength::X1).unwrap();
        let mut nl = crate::Netlist::new("wclash", lib);
        let a = nl.add_input("a");
        // The first inverter's output lands on net index 2, so its
        // fallback wire name is `w2` — which this input deliberately
        // squats on.
        let squat = nl.add_input("w2");
        let x = nl.add_gate(inv, &[a]).unwrap()[0];
        let y = nl.add_gate(inv, &[squat]).unwrap()[0];
        nl.mark_output("x", x);
        nl.mark_output("y", y);
        let names = NameTable::build(&nl);
        assert_eq!(names.net(squat), "w2");
        assert_ne!(names.net(x), "w2");
        assert_ne!(names.net(x), names.net(y));
    }
}
